// Quickstart: define an LCL problem, decide its distributed complexity,
// and run the synthesized asymptotically optimal algorithm.
//
//   $ ./examples/quickstart
//
// This walks the full pipeline of the paper: problem description ->
// decision procedure (Theorems 8+9) -> synthesized LOCAL algorithm.
#include <cstdio>

#include "decide/classifier.hpp"
#include "lcl/serialize.hpp"

int main() {
  using namespace lclpath;

  // 1. Describe an LCL problem: 3-coloring a directed cycle. The same
  //    description could be loaded from text via parse_problem().
  Alphabet inputs({"_"});
  Alphabet outputs({"red", "green", "blue"});
  PairwiseProblem problem("my-3-coloring", inputs, outputs, Topology::kDirectedCycle);
  for (Label c = 0; c < 3; ++c) problem.allow_node(Label{0}, c);
  for (Label a = 0; a < 3; ++a) {
    for (Label b = 0; b < 3; ++b) {
      if (a != b) problem.allow_edge(a, b);
    }
  }
  std::printf("Problem description:\n%s\n", serialize(problem).c_str());

  // 2. Decide its complexity class.
  const ClassifiedProblem result = classify(problem);
  std::printf("Decision: %s\n", result.summary().c_str());

  // 3. Synthesize the optimal algorithm and run it on an instance.
  const auto algorithm = result.synthesize();
  Rng rng(1);
  const std::size_t n = 2 * algorithm->radius(1 << 20) + 101;
  Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
  const SimulationResult sim = simulate(*algorithm, problem, instance);
  std::printf("Ran '%s' on n = %zu nodes: radius %zu, output %s\n",
              algorithm->name().c_str(), n, sim.radius,
              sim.verdict.ok ? "VALID" : ("INVALID: " + sim.verdict.reason).c_str());
  std::printf("First ten labels:");
  for (std::size_t v = 0; v < 10; ++v) {
    std::printf(" %s", problem.outputs().name(sim.outputs[v]).c_str());
  }
  std::printf(" ...\n");
  return sim.verdict.ok ? 0 : 1;
}
