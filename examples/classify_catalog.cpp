// Classify the whole validation catalog and print the landscape — the
// paper's headline: the complexity of every LCL on labeled paths/cycles
// is decidable, and is always O(1), Theta(log* n) or Theta(n).
// The catalog is classified as one parallel batch (decide/batch.hpp).
#include <cstdio>
#include <vector>

#include "decide/batch.hpp"

int main() {
  using namespace lclpath;
  const auto entries = catalog::validation_catalog();
  std::vector<PairwiseProblem> problems;
  problems.reserve(entries.size());
  for (const auto& entry : entries) problems.push_back(entry.problem);
  const std::vector<BatchEntry> batch = classify_batch(problems);

  std::printf("%-28s %-18s %-14s %-14s %8s\n", "problem", "topology", "expected",
              "decided", "monoid");
  bool all_match = true;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const CatalogEntry& entry = entries[i];
    if (!batch[i].ok()) {
      all_match = false;
      std::printf("%-28s %-18s %-14s error: %s\n", entry.problem.name().c_str(),
                  to_string(entry.problem.topology()).c_str(),
                  to_string(entry.expected).c_str(), batch[i].error().c_str());
      continue;
    }
    const ClassifiedProblem& result = batch[i].classified();
    const bool match = result.complexity() == entry.expected;
    all_match = all_match && match;
    std::printf("%-28s %-18s %-14s %-14s %8zu %s\n", entry.problem.name().c_str(),
                to_string(entry.problem.topology()).c_str(),
                to_string(entry.expected).c_str(),
                to_string(result.complexity()).c_str(), result.monoid_size(),
                match ? "" : "  <-- MISMATCH");
    if (!result.solvability().solvable) {
      std::printf("    unsolvable witness: %s\n",
                  word_to_string(entry.problem.inputs(),
                                 *result.solvability().counterexample)
                      .c_str());
    }
  }
  std::printf("\n%s\n", all_match ? "All verdicts match the textbook classes."
                                  : "Some verdicts mismatch!");
  return all_match ? 0 : 1;
}
