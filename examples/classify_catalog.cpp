// Classify the whole validation catalog and print the landscape — the
// paper's headline: the complexity of every LCL on labeled paths/cycles
// is decidable, and is always O(1), Theta(log* n) or Theta(n).
#include <cstdio>

#include "decide/classifier.hpp"

int main() {
  using namespace lclpath;
  std::printf("%-28s %-18s %-14s %-14s %8s\n", "problem", "topology", "expected",
              "decided", "monoid");
  bool all_match = true;
  for (const auto& entry : catalog::validation_catalog()) {
    const ClassifiedProblem result = classify(entry.problem);
    const bool match = result.complexity() == entry.expected;
    all_match = all_match && match;
    std::printf("%-28s %-18s %-14s %-14s %8zu %s\n", entry.problem.name().c_str(),
                to_string(entry.problem.topology()).c_str(),
                to_string(entry.expected).c_str(),
                to_string(result.complexity()).c_str(), result.monoid_size(),
                match ? "" : "  <-- MISMATCH");
    if (!result.solvability().solvable) {
      std::printf("    unsolvable witness: %s\n",
                  word_to_string(entry.problem.inputs(),
                                 *result.solvability().counterexample)
                      .c_str());
    }
  }
  std::printf("\n%s\n", all_match ? "All verdicts match the textbook classes."
                                  : "Some verdicts mismatch!");
  return all_match ? 0 : 1;
}
