// The Section 3 hardness construction end to end: encode an LBA's
// execution as a Pi_MB input (Figure 1), solve it with the T' algorithm,
// corrupt it (Figure 2) and watch the locally checkable error chain.
#include <cstdio>

#include "hardness/solver.hpp"
#include "lba/machines.hpp"

int main() {
  using namespace lclpath;
  using namespace lclpath::hardness;

  const std::size_t b = 3;
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  std::printf("Unary-counter LBA on a size-%zu tape halts after T = %zu steps.\n", b,
              run.steps);

  const PiProblem problem(machine, b);
  const PiSolver solver(problem, run.steps);
  const std::size_t n = encoding_length(b, run.steps) + 6;
  std::printf("Pi_MB upper bound: T' = 2 + (B+1)(T+1) = %zu rounds on %zu nodes.\n\n",
              solver.radius(), n);

  // Good input: the secret propagates.
  const auto good = good_input(machine, b, Secret::kB, run.steps, n);
  const auto good_out = solver.solve(good);
  std::printf("Good input (Figure 1): verified = %s; every encoding node outputs '%s'.\n",
              problem.verify(good, good_out).ok ? "yes" : "NO",
              problem.labels().name(good_out[3]).c_str());

  // Corrupted input: a wrongly copied tape cell (Figure 2).
  auto bad = corrupt(machine, b, good, Corruption::kWrongCopy, 2);
  const auto bad_out = solver.solve(bad);
  std::printf("Corrupted input (Figure 2, wrong copy): verified = %s.\n",
              problem.verify(bad, bad_out).ok ? "yes" : "NO");
  std::printf("Labels around the defect:\n");
  for (std::size_t v = 0; v < n; ++v) {
    if (!bad_out[v].is_specific_error() && bad_out[v].kind != OutKind::kError) continue;
    std::printf("  node %2zu: in=%-16s out=%s\n", v,
                problem.labels().name(bad[v]).c_str(),
                problem.labels().name(bad_out[v]).c_str());
    if (v > 0 && bad_out[v].kind == OutKind::kError &&
        bad_out[v - 1].is_specific_error()) {
      break;  // chain + its terminating witness shown
    }
  }
  return 0;
}
