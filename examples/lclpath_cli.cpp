// lclpath_cli — classify an LCL problem description from a file or stdin.
//
//   $ ./examples/lclpath_cli problem.lcl
//   $ ./examples/lclpath_cli --demo            # classify the catalog
//   $ cat problem.lcl | ./examples/lclpath_cli -
//
// Output: the complexity class (Theorems 8+9), the certificate summary,
// and — when the problem is solvable — a sample run of the synthesized
// algorithm on a random instance.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "decide/classifier.hpp"
#include "lcl/serialize.hpp"

namespace {

int classify_and_report(const lclpath::PairwiseProblem& problem, bool run_sample) {
  using namespace lclpath;
  const ClassifiedProblem result = classify(problem);
  std::printf("%s\n", result.summary().c_str());
  if (result.complexity() == ComplexityClass::kUnsolvable) {
    std::printf("  witness instance with no valid labeling: %s\n",
                word_to_string(problem.inputs(), *result.solvability().counterexample)
                    .c_str());
    return 0;
  }
  std::printf("  linear-gap feasible: %s; const-gap feasible: %s\n",
              result.linear_certificate().feasible ? "yes" : "no",
              result.const_certificate().feasible ? "yes" : "no");
  if (!run_sample) return 0;
  const auto algorithm = result.synthesize();
  Rng rng(42);
  const std::size_t n =
      std::min<std::size_t>(4096, 2 * algorithm->radius(1 << 20) + 33);
  Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
  const SimulationResult sim = simulate(*algorithm, problem, instance);
  std::printf("  sample run: algorithm '%s', n = %zu, radius = %zu, output %s\n",
              algorithm->name().c_str(), n, sim.radius,
              sim.verdict.ok ? "valid" : ("INVALID (" + sim.verdict.reason + ")").c_str());
  return sim.verdict.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) {
    for (const auto& entry : catalog::validation_catalog()) {
      std::printf("-- %s\n", entry.note.c_str());
      classify_and_report(entry.problem, false);
    }
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <problem.lcl | - | --demo>\n"
                 "File format: see lcl/serialize.hpp (lcl/topology/inputs/outputs/"
                 "node/edge/end).\n",
                 argv[0]);
    return 2;
  }
  std::string text;
  if (std::strcmp(argv[1], "-") == 0) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  try {
    const PairwiseProblem problem = parse_problem(text);
    return classify_and_report(problem, true);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
