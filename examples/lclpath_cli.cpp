// lclpath_cli — classify an LCL problem description from a file or stdin.
//
//   $ ./examples/lclpath_cli problem.lcl
//   $ ./examples/lclpath_cli --demo            # classify the catalog
//   $ cat problem.lcl | ./examples/lclpath_cli -
//   $ ./examples/lclpath_cli classify-batch [--threads N] many.lcl ...
//
// Output: the complexity class (Theorems 8+9), the certificate summary,
// and — when the problem is solvable — a sample run of the synthesized
// algorithm on a random instance. classify-batch reads files holding any
// number of concatenated problem blocks (each ending in `end`; `-` =
// stdin) and classifies them all on a thread pool.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "decide/batch.hpp"
#include "decide/classifier.hpp"
#include "lcl/serialize.hpp"

namespace {

std::string read_source(const char* path) {
  std::ostringstream buffer;
  if (std::strcmp(path, "-") == 0) {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream file(path);
    if (!file) throw std::runtime_error(std::string("cannot open ") + path);
    buffer << file.rdbuf();
  }
  return buffer.str();
}

int run_classify_batch(int argc, char** argv) {
  using namespace lclpath;
  // Problems sharing a transition-system skeleton (renamed copies, sweep
  // families) build their monoid once per invocation.
  MonoidCache monoids;
  BatchOptions options;
  options.classify.monoid_cache = &monoids;
  std::vector<const char*> paths;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads needs a count\n");
        return 2;
      }
      char* end = nullptr;
      const long count = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || count < 0) {
        std::fprintf(stderr, "--threads: '%s' is not a thread count\n", argv[i]);
        return 2;
      }
      options.num_threads = static_cast<std::size_t>(count);
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) paths.push_back("-");

  std::vector<PairwiseProblem> problems;
  try {
    for (const char* path : paths) {
      for (PairwiseProblem& problem : parse_problems(read_source(path))) {
        problems.push_back(std::move(problem));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (problems.empty()) {
    std::fprintf(stderr, "classify-batch: no problems found\n");
    return 2;
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<BatchEntry> batch;
  try {
    batch = classify_batch(problems, options);
  } catch (const std::exception& e) {
    // e.g. the OS refused to spawn the requested worker threads.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);

  int failures = 0;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    if (batch[i].ok()) {
      // Deduplicated slots share the representative's result; keep the
      // slot's own name in front so every input line is accounted for.
      const std::string& rep_name = batch[i].classified().problem().name();
      if (batch[i].deduplicated && problems[i].name() != rep_name) {
        std::printf("%s: same problem as '%s'  [dedup]\n", problems[i].name().c_str(),
                    rep_name.c_str());
      } else {
        std::printf("%s%s\n", batch[i].classified().summary().c_str(),
                    batch[i].deduplicated ? "  [dedup]" : "");
      }
    } else {
      ++failures;
      std::printf("%s: ERROR: %s\n", problems[i].name().c_str(),
                  batch[i].error().c_str());
    }
  }
  std::printf("classified %zu problem(s) in %.3fs (%zu failed)", problems.size(),
              elapsed.count(), static_cast<std::size_t>(failures));
  if (monoids.hits() > 0) {
    std::printf("; %llu monoid(s) reused across shared skeletons",
                static_cast<unsigned long long>(monoids.hits()));
  }
  std::printf("\n");
  return failures == 0 ? 0 : 1;
}

int classify_and_report(const lclpath::PairwiseProblem& problem, bool run_sample,
                        const lclpath::SimulationOptions& sim_options = {}) {
  using namespace lclpath;
  const ClassifiedProblem result = classify(problem);
  std::printf("%s\n", result.summary().c_str());
  if (result.complexity() == ComplexityClass::kUnsolvable) {
    std::printf("  witness instance with no valid labeling: %s\n",
                word_to_string(problem.inputs(), *result.solvability().counterexample)
                    .c_str());
    return 0;
  }
  std::printf("  linear-gap feasible: %s; const-gap feasible: %s\n",
              result.linear_certificate().feasible ? "yes" : "no",
              result.const_certificate().feasible ? "yes" : "no");
  if (!run_sample) return 0;
  // Synthesis covers all four topologies; the algorithm name carries the
  // per-topology strategy that was chosen (e.g. "[undirected-path]").
  const auto algorithm = result.synthesize();
  std::printf("  synthesized algorithm: %s, radius %zu at n = 2^20\n",
              algorithm->name().c_str(), algorithm->radius(1 << 20));
  Rng rng(42);
  const std::size_t n =
      std::min<std::size_t>(4096, 2 * algorithm->radius(1 << 20) + 33);
  Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
  const SimulationResult sim = simulate(*algorithm, problem, instance, sim_options);
  std::printf("  sample run: n = %zu, radius = %zu, threads = %zu, chunks = %zu, "
              "output %s\n",
              n, sim.radius, sim.threads_used, sim.chunks,
              sim.verdict.ok ? "valid" : ("INVALID (" + sim.verdict.reason + ")").c_str());
  return sim.verdict.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;
  if (argc >= 2 && std::strcmp(argv[1], "classify-batch") == 0) {
    return run_classify_batch(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) {
    for (const auto& entry : catalog::validation_catalog()) {
      std::printf("-- %s\n", entry.note.c_str());
      classify_and_report(entry.problem, false);
    }
    return 0;
  }
  // Single-problem mode: [--threads N] steers the sample run's chunked
  // simulation engine (0 = serial; classify itself stays single-threaded).
  SimulationOptions sim_options;
  const char* path = nullptr;
  bool usage_error = argc < 2;
  for (int i = 1; i < argc && !usage_error; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads needs a count\n");
        return 2;
      }
      char* end = nullptr;
      const long count = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || count < 0) {
        std::fprintf(stderr, "--threads: '%s' is not a thread count\n", argv[i]);
        return 2;
      }
      sim_options.threads = static_cast<std::size_t>(count);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      usage_error = true;
    }
  }
  if (usage_error || path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--threads N] <problem.lcl | - | --demo>\n"
                 "       %s classify-batch [--threads N] [file.lcl ... | -]\n"
                 "File format: see lcl/serialize.hpp (lcl/topology/inputs/outputs/"
                 "node/edge/first/last/end).\n",
                 argv[0], argv[0]);
    return 2;
  }
  try {
    const PairwiseProblem problem = parse_problem(read_source(path));
    return classify_and_report(problem, true, sim_options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
