// lclpath_cli — classify an LCL problem description from a file or stdin.
//
//   $ ./examples/lclpath_cli problem.lcl
//   $ ./examples/lclpath_cli classify [--deadline-ms N] problem.lcl
//   $ ./examples/lclpath_cli --demo            # classify the catalog
//   $ cat problem.lcl | ./examples/lclpath_cli -
//   $ ./examples/lclpath_cli classify-batch [--threads N] [--deadline-ms N]
//         [--batch-deadline-ms N] [--store DIR] many.lcl ...
//   $ ./examples/lclpath_cli deadline-suite [--deadline-ms N]
//   $ ./examples/lclpath_cli serve STORE_DIR [--classify many.lcl ...]
//         [--poll-ms N] [--polls N] [--chunk K] [--exit-when-idle]
//   $ ./examples/lclpath_cli store-fsck STORE_DIR
//
// Output: the complexity class (Theorems 8+9), the certificate summary,
// and — when the problem is solvable — a sample run of the synthesized
// algorithm on a random instance. classify-batch reads files holding any
// number of concatenated problem blocks (each ending in `end`; `-` =
// stdin) and classifies them all on a thread pool.
//
// The persistent catalog store (src/store/): classify-batch --store
// warm-starts the batch cache from the store (a cold start is a directory
// read, not a re-classify) and commits fresh results — successes and
// structured failure observations — back into crash-safe shards. `serve`
// is the long-running loop: it watches the store directory, hot-reloads
// externally changed shards only after off-to-the-side validation (a
// corrupt update is rejected while the last good snapshot keeps serving),
// and incrementally classifies + commits any problems from --classify
// files the store does not cover. `store-fsck` validates every shard's
// version/checksum/record count and exits 1 on any corruption.
//
// Deadlines (core/cancel.hpp) are cooperative: --deadline-ms bounds each
// problem, --batch-deadline-ms bounds the whole batch; a tripped deadline
// is a structured per-problem kTimeout outcome, not a crash.
//
// Exit codes: 0 = all classified; 1 = some problem failed (budget,
// malformed, internal); 2 = usage or input/infrastructure error;
// 3 = at least one problem timed out or was cancelled (3 wins over 1).
//
// deadline-suite is the CI robustness gate: it classifies the Section 3.7
// lift family plus a generator-sampled hostile set under a per-problem
// deadline on both linear-gap engines, and fails when any problem escapes
// the deadline by more than 2x (a missing checkpoint in some hot loop) or
// crashes outright.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "core/rng.hpp"
#include "decide/batch.hpp"
#include "decide/classifier.hpp"
#include "hardness/study.hpp"
#include "lcl/serialize.hpp"
#include "store/serve.hpp"
#include "store/store.hpp"

namespace {

std::string read_source(const char* path) {
  std::ostringstream buffer;
  if (std::strcmp(path, "-") == 0) {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream file(path);
    if (!file) throw std::runtime_error(std::string("cannot open ") + path);
    buffer << file.rdbuf();
  }
  return buffer.str();
}

/// Parses a non-negative integer flag value; returns false (with a
/// message) on junk.
bool parse_count(const char* flag, const char* text, std::size_t* out) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) {
    std::fprintf(stderr, "%s: '%s' is not a non-negative count\n", flag, text);
    return false;
  }
  *out = static_cast<std::size_t>(value);
  return true;
}

/// The per-kind failure census line (BatchSummary::by_error): persisted
/// and fresh runs of the same inputs are diffable kind-by-kind, not just
/// by the failure total.
void print_error_census(const lclpath::BatchSummary& summary) {
  using namespace lclpath;
  if (summary.failed == 0) return;
  std::printf("errors by kind:");
  for (std::size_t k = 0; k < kNumBatchErrorKinds; ++k) {
    std::printf(" %s=%zu", to_string(static_cast<BatchErrorKind>(k)).c_str(),
                summary.by_error[k]);
  }
  std::printf("\n");
}

int run_classify_batch(int argc, char** argv) {
  using namespace lclpath;
  // Problems sharing a transition-system skeleton (renamed copies, sweep
  // families) build their monoid once per invocation.
  MonoidCache monoids;
  BatchOptions options;
  options.classify.monoid_cache = &monoids;
  std::vector<const char*> paths;
  const char* store_dir = nullptr;
  std::size_t store_shards = 16;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      std::size_t count = 0;
      if (i + 1 >= argc || !parse_count("--threads", argv[++i], &count)) return 2;
      options.num_threads = count;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      std::size_t ms = 0;
      if (i + 1 >= argc || !parse_count("--deadline-ms", argv[++i], &ms)) return 2;
      options.problem_deadline_ms = ms;
    } else if (std::strcmp(argv[i], "--batch-deadline-ms") == 0) {
      std::size_t ms = 0;
      if (i + 1 >= argc || !parse_count("--batch-deadline-ms", argv[++i], &ms)) return 2;
      options.batch_deadline_ms = ms;
    } else if (std::strcmp(argv[i], "--store") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--store needs a directory\n");
        return 2;
      }
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      if (i + 1 >= argc || !parse_count("--shards", argv[++i], &store_shards)) return 2;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) paths.push_back("-");

  // With --store the run is persistent: warm-start the cache from the
  // store (known problems cost a lookup, not a decider run) and commit
  // every fresh outcome — including failure observations — afterwards.
  std::optional<store::ResultStore> result_store;
  BatchCache cache;
  std::size_t preloaded = 0;
  if (store_dir != nullptr) {
    result_store.emplace(store_dir, store::StoreOptions{store_shards});
    const store::LoadReport loaded = result_store->load();
    for (const std::string& dirty : loaded.dirty) {
      std::fprintf(stderr, "store: dirty shard skipped: %s\n", dirty.c_str());
    }
    preloaded = result_store->warm_start(cache);
    options.cache = &cache;
  }

  std::vector<PairwiseProblem> problems;
  try {
    for (const char* path : paths) {
      for (PairwiseProblem& problem : parse_problems(read_source(path))) {
        problems.push_back(std::move(problem));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (problems.empty()) {
    std::fprintf(stderr, "classify-batch: no problems found\n");
    return 2;
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<BatchEntry> batch;
  try {
    batch = classify_batch(problems, options);
  } catch (const std::exception& e) {
    // e.g. the OS refused to spawn the requested worker threads.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);

  int failures = 0;
  bool any_timeout = false;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    if (batch[i].ok()) {
      // Deduplicated slots share the representative's result; keep the
      // slot's own name in front so every input line is accounted for.
      const std::string& rep_name = batch[i].classified().problem().name();
      if (batch[i].deduplicated && problems[i].name() != rep_name) {
        std::printf("%s: same problem as '%s'  [dedup]\n", problems[i].name().c_str(),
                    rep_name.c_str());
      } else {
        std::printf("%s%s\n", batch[i].classified().summary().c_str(),
                    batch[i].deduplicated ? "  [dedup]" : "");
      }
    } else {
      ++failures;
      const BatchErrorKind kind =
          batch[i].error_kind().value_or(BatchErrorKind::kInternal);
      if (kind == BatchErrorKind::kTimeout || kind == BatchErrorKind::kCancelled) {
        any_timeout = true;
      }
      std::printf("%s: ERROR[%s]: %s\n", problems[i].name().c_str(),
                  to_string(kind).c_str(), batch[i].error().c_str());
    }
  }
  const BatchSummary summary = summarize_batch(batch);
  std::printf("classified %zu problem(s) in %.3fs (%zu failed)", problems.size(),
              elapsed.count(), static_cast<std::size_t>(failures));
  if (monoids.hits() > 0) {
    std::printf("; %llu monoid(s) reused across shared skeletons",
                static_cast<unsigned long long>(monoids.hits()));
  }
  std::printf("\n");
  print_error_census(summary);

  if (result_store) {
    // Persist only what this run actually produced: cache hits came from
    // the store, dedup slots share their representative's record.
    for (std::size_t i = 0; i < problems.size(); ++i) {
      if (batch[i].deduplicated || batch[i].from_cache) continue;
      result_store->put(store::record_of(problems[i], batch[i], options.classify));
    }
    std::size_t shards_written = 0;
    try {
      shards_written = result_store->commit();
    } catch (const store::StoreIoError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    const std::size_t fresh =
        summary.total - summary.from_cache - summary.deduplicated;
    std::printf("store: preloaded %zu record(s); %zu classified fresh; committed "
                "%zu shard(s); %zu record(s) total\n",
                preloaded, fresh, shards_written, result_store->size());
  }
  if (any_timeout) return 3;
  return failures == 0 ? 0 : 1;
}

int run_store_fsck(int argc, char** argv) {
  using namespace lclpath;
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s store-fsck STORE_DIR\n", argv[0]);
    return 2;
  }
  const store::FsckReport report = store::fsck(argv[2]);
  for (const store::FsckShard& shard : report.shards) {
    if (shard.ok) {
      std::printf("%s  v%u  %zu record(s)  checksum %016llx  ok\n",
                  shard.file.c_str(), shard.version, shard.records,
                  static_cast<unsigned long long>(shard.checksum));
    } else {
      std::printf("%s  DIRTY: %s\n", shard.file.c_str(), shard.error.c_str());
    }
  }
  std::printf("store-fsck: %zu shard(s), %zu record(s): %s\n", report.shards.size(),
              report.records, report.clean ? "clean" : "CORRUPTION DETECTED");
  return report.clean ? 0 : 1;
}

// The long-running catalog service loop: watch the store directory with
// validated hot reloads, and incrementally classify + commit whatever the
// --classify files cover that the store does not. Built to be killed at
// any instant (the CI kill-and-recover gate SIGKILLs it mid-commit): every
// shard write is atomic, so recovery is a reload plus an incremental
// re-classify of whatever had not landed yet.
int run_serve(int argc, char** argv) {
  using namespace lclpath;
  const char* dir = nullptr;
  std::size_t poll_ms = 200;
  std::size_t polls = 0;  // 0 = forever
  std::size_t chunk = 4;
  std::size_t store_shards = 16;
  std::size_t deadline_ms = 0;
  bool exit_when_idle = false;
  BatchOptions options;
  std::vector<const char*> classify_paths;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--poll-ms") == 0) {
      if (i + 1 >= argc || !parse_count("--poll-ms", argv[++i], &poll_ms)) return 2;
    } else if (std::strcmp(argv[i], "--polls") == 0) {
      if (i + 1 >= argc || !parse_count("--polls", argv[++i], &polls)) return 2;
    } else if (std::strcmp(argv[i], "--chunk") == 0) {
      if (i + 1 >= argc || !parse_count("--chunk", argv[++i], &chunk)) return 2;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      if (i + 1 >= argc || !parse_count("--shards", argv[++i], &store_shards)) return 2;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      std::size_t count = 0;
      if (i + 1 >= argc || !parse_count("--threads", argv[++i], &count)) return 2;
      options.num_threads = count;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      if (i + 1 >= argc || !parse_count("--deadline-ms", argv[++i], &deadline_ms)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--classify") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--classify needs a file\n");
        return 2;
      }
      classify_paths.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--exit-when-idle") == 0) {
      exit_when_idle = true;
    } else if (dir == nullptr) {
      dir = argv[i];
    } else {
      std::fprintf(stderr, "serve: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (dir == nullptr) {
    std::fprintf(stderr, "usage: %s serve STORE_DIR [--classify FILE ...] "
                         "[--poll-ms N] [--polls N] [--chunk K] [--threads N] "
                         "[--shards N] [--deadline-ms N] [--exit-when-idle]\n",
                 argv[0]);
    return 2;
  }
  if (chunk == 0) chunk = 1;
  options.problem_deadline_ms = deadline_ms;

  std::vector<PairwiseProblem> problems;
  try {
    for (const char* path : classify_paths) {
      for (PairwiseProblem& problem : parse_problems(read_source(path))) {
        problems.push_back(std::move(problem));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  MonoidCache monoids;
  BatchCache cache;
  options.classify.monoid_cache = &monoids;
  options.cache = &cache;
  store::ResultStore writer(dir, store::StoreOptions{store_shards});
  const store::LoadReport loaded = writer.load();
  const std::size_t preloaded = writer.warm_start(cache);
  std::printf("serve: %s: %zu shard(s) (%zu dirty), %zu record(s), %zu preloaded "
              "into cache\n",
              dir, loaded.shards_seen, loaded.dirty.size(), writer.size(), preloaded);
  for (const std::string& dirty : loaded.dirty) {
    std::printf("serve: dirty shard will be re-derived incrementally: %s\n",
                dirty.c_str());
  }
  std::fflush(stdout);

  store::CatalogServer server(dir);
  const std::string identity_suffix = cache_identity_suffix(
      options.classify.linear_engine, options.classify.certificate_mode);
  // Each problem is (re)classified at most once per serve process, so a
  // deterministic failure cannot turn the loop into a hot retry spin;
  // retry-eligible observations from *previous* runs are retried here.
  std::set<std::size_t> attempted;
  for (std::size_t iteration = 0; polls == 0 || iteration < polls; ++iteration) {
    const store::ReloadReport report = server.poll();
    for (const std::string& note : report.notes) {
      std::printf("serve: %s\n", note.c_str());
    }
    if (report.changed()) {
      std::printf("serve: generation %llu: %zu reloaded, %zu removed, snapshot %zu "
                  "record(s)\n",
                  static_cast<unsigned long long>(server.generation()),
                  report.reloaded, report.removed, server.snapshot()->size());
    }

    std::vector<std::size_t> todo;
    for (std::size_t i = 0; i < problems.size() && todo.size() < chunk; ++i) {
      if (attempted.count(i) != 0) continue;
      const std::string key = canonical_key(problems[i]) + identity_suffix;
      const store::StoreRecord* record = writer.find(key);
      if (record != nullptr &&
          (record->ok() || !store::retry_eligible(record->observation->kind))) {
        continue;
      }
      todo.push_back(i);
    }
    if (!todo.empty()) {
      std::vector<PairwiseProblem> chunk_problems;
      chunk_problems.reserve(todo.size());
      for (const std::size_t i : todo) {
        attempted.insert(i);
        chunk_problems.push_back(problems[i]);
      }
      const std::vector<BatchEntry> batch = classify_batch(chunk_problems, options);
      for (std::size_t j = 0; j < batch.size(); ++j) {
        if (batch[j].deduplicated || batch[j].from_cache) continue;
        writer.put(store::record_of(chunk_problems[j], batch[j], options.classify));
      }
      try {
        const std::size_t shards_written = writer.commit();
        const BatchSummary summary = summarize_batch(batch);
        std::printf("serve: classified %zu problem(s) (%zu ok, %zu failed), "
                    "committed %zu shard(s), store %zu record(s)\n",
                    summary.total, summary.ok, summary.failed, shards_written,
                    writer.size());
      } catch (const store::StoreIoError& e) {
        // Old-complete or new-complete on disk either way; the dirty
        // shards stay queued, so a later iteration retries the commit.
        std::printf("serve: commit failed (will retry): %s\n", e.what());
      }
    } else {
      // Retry any commit a failed iteration left queued (no-op when
      // nothing is dirty); only a fully-committed store counts as idle.
      bool committed = true;
      try {
        writer.commit();
      } catch (const store::StoreIoError& e) {
        committed = false;
        std::printf("serve: commit retry failed: %s\n", e.what());
      }
      if (exit_when_idle && committed) {
        std::printf("serve: idle (nothing left to classify); exiting\n");
        break;
      }
    }
    std::fflush(stdout);
    if (poll_ms > 0 && (polls == 0 || iteration + 1 < polls)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
  }
  std::printf("serve: done: store %zu record(s), %llu reload(s), %llu rejection(s)\n",
              writer.size(), static_cast<unsigned long long>(server.reloads()),
              static_cast<unsigned long long>(server.rejections()));
  return 0;
}

int classify_and_report(const lclpath::PairwiseProblem& problem, bool run_sample,
                        const lclpath::SimulationOptions& sim_options = {},
                        const lclpath::ExecutionBudget* budget = nullptr) {
  using namespace lclpath;
  ClassifyOptions options;
  options.budget = budget;
  const ClassifiedProblem result = classify(problem, options);
  std::printf("%s\n", result.summary().c_str());
  if (result.complexity() == ComplexityClass::kUnsolvable) {
    std::printf("  witness instance with no valid labeling: %s\n",
                word_to_string(problem.inputs(), *result.solvability().counterexample)
                    .c_str());
    return 0;
  }
  std::printf("  linear-gap feasible: %s; const-gap feasible: %s\n",
              result.linear_certificate().feasible ? "yes" : "no",
              result.const_certificate().feasible ? "yes" : "no");
  if (!run_sample) return 0;
  // Synthesis covers all four topologies; the algorithm name carries the
  // per-topology strategy that was chosen (e.g. "[undirected-path]").
  const auto algorithm = result.synthesize();
  std::printf("  synthesized algorithm: %s, radius %zu at n = 2^20\n",
              algorithm->name().c_str(), algorithm->radius(1 << 20));
  Rng rng(42);
  const std::size_t n =
      std::min<std::size_t>(4096, 2 * algorithm->radius(1 << 20) + 33);
  Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
  SimulationOptions sim = sim_options;
  sim.budget = budget;
  const SimulationResult result_sim = simulate(*algorithm, problem, instance, sim);
  std::printf("  sample run: n = %zu, radius = %zu, threads = %zu, chunks = %zu, "
              "output %s\n",
              n, result_sim.radius, result_sim.threads_used, result_sim.chunks,
              result_sim.verdict.ok
                  ? "valid"
                  : ("INVALID (" + result_sim.verdict.reason + ")").c_str());
  return result_sim.verdict.ok ? 0 : 1;
}

/// Random pairwise problem in the generator-sampled hostile set (the same
/// shape bench_monoid scales with; fixed seed per size so CI runs are
/// reproducible).
lclpath::PairwiseProblem hostile_problem(std::size_t alpha, std::size_t beta,
                                         std::uint64_t seed,
                                         lclpath::Topology topology) {
  using namespace lclpath;
  Rng rng(seed);
  Alphabet in, out;
  for (std::size_t i = 0; i < alpha; ++i) in.add("i" + std::to_string(i));
  for (std::size_t o = 0; o < beta; ++o) out.add("o" + std::to_string(o));
  PairwiseProblem p("hostile-a" + std::to_string(alpha) + "-b" + std::to_string(beta) +
                        "-s" + std::to_string(seed),
                    in, out, topology);
  for (Label i = 0; i < alpha; ++i)
    for (Label o = 0; o < beta; ++o)
      if (rng.next_bool(3, 4)) p.allow_node(i, o);
  for (Label a = 0; a < beta; ++a)
    for (Label b = 0; b < beta; ++b)
      if (rng.next_bool(3, 4)) p.allow_edge(a, b);
  return p;
}

// The CI robustness gate: every problem must either classify, fail with a
// structured budget error, or trip its deadline — within 2x the deadline,
// on both engines. Escaping by more than 2x means some hot loop is missing
// a budget checkpoint; any other exception is a crash. Exit 0 = gate holds.
int run_deadline_suite(int argc, char** argv) {
  using namespace lclpath;
  std::size_t deadline_ms = 100;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      if (i + 1 >= argc || !parse_count("--deadline-ms", argv[++i], &deadline_ms)) {
        return 2;
      }
    } else {
      std::fprintf(stderr, "deadline-suite: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (deadline_ms == 0) {
    std::fprintf(stderr, "deadline-suite: --deadline-ms must be positive\n");
    return 2;
  }

  std::vector<PairwiseProblem> problems = hardness::lift_workload();
  const std::size_t grid[][2] = {{2, 4}, {3, 3}, {3, 4}, {2, 5}, {4, 4}, {2, 6}};
  for (const auto& [alpha, beta] : grid) {
    problems.push_back(hostile_problem(alpha, beta, alpha * 100 + beta,
                                       Topology::kDirectedCycle));
    problems.push_back(hostile_problem(alpha, beta, alpha * 1000 + beta,
                                       Topology::kDirectedPath));
  }

  std::size_t escapes = 0;
  std::size_t crashes = 0;
  std::size_t timeouts = 0;
  for (const LinearGapEngine engine :
       {LinearGapEngine::kFactorized, LinearGapEngine::kPairwise}) {
    const char* engine_name =
        engine == LinearGapEngine::kFactorized ? "factorized" : "pairwise";
    for (const PairwiseProblem& problem : problems) {
      ExecutionBudget budget;
      budget.set_timeout(std::chrono::milliseconds(deadline_ms));
      ClassifyOptions options;
      options.budget = &budget;
      options.linear_engine = engine;
      const auto start = std::chrono::steady_clock::now();
      std::string outcome = "ok";
      try {
        const ClassifiedProblem result = classify(problem, options);
        outcome = to_string(result.complexity());
      } catch (const CancelledError&) {
        outcome = "timeout";
        ++timeouts;
      } catch (const MonoidBudgetError&) {
        outcome = "budget";
      } catch (const std::exception& e) {
        outcome = std::string("CRASH: ") + e.what();
        ++crashes;
      }
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                    start)
              .count();
      const bool escaped = elapsed_ms > 2.0 * static_cast<double>(deadline_ms);
      if (escaped) ++escapes;
      std::printf("%-10s %-44s %10.2fms  %s%s\n", engine_name, problem.name().c_str(),
                  elapsed_ms, outcome.c_str(), escaped ? "  [ESCAPED DEADLINE]" : "");
    }
  }
  std::printf("deadline-suite: %zu problem(s) x 2 engines, deadline %zums: "
              "%zu timeout(s), %zu escape(s), %zu crash(es)\n",
              problems.size(), deadline_ms, timeouts, escapes, crashes);
  return (escapes == 0 && crashes == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;
  if (argc >= 2 && std::strcmp(argv[1], "classify-batch") == 0) {
    return run_classify_batch(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "deadline-suite") == 0) {
    return run_deadline_suite(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    return run_serve(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "store-fsck") == 0) {
    return run_store_fsck(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) {
    for (const auto& entry : catalog::validation_catalog()) {
      std::printf("-- %s\n", entry.note.c_str());
      classify_and_report(entry.problem, false);
    }
    return 0;
  }
  // Single-problem mode (optionally spelled `classify`): [--threads N]
  // steers the sample run's chunked simulation engine (0 = serial;
  // classify itself stays single-threaded); [--deadline-ms N] bounds the
  // whole classification + sample run with a cooperative deadline.
  const int first_arg = (argc >= 2 && std::strcmp(argv[1], "classify") == 0) ? 2 : 1;
  SimulationOptions sim_options;
  std::size_t deadline_ms = 0;
  const char* path = nullptr;
  bool usage_error = argc < first_arg + 1;
  for (int i = first_arg; i < argc && !usage_error; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      std::size_t count = 0;
      if (i + 1 >= argc || !parse_count("--threads", argv[++i], &count)) return 2;
      sim_options.threads = count;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      if (i + 1 >= argc || !parse_count("--deadline-ms", argv[++i], &deadline_ms)) {
        return 2;
      }
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      usage_error = true;
    }
  }
  if (usage_error || path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [classify] [--threads N] [--deadline-ms N] "
                 "<problem.lcl | - | --demo>\n"
                 "       %s classify-batch [--threads N] [--deadline-ms N] "
                 "[--batch-deadline-ms N] [--store DIR [--shards N]] "
                 "[file.lcl ... | -]\n"
                 "       %s deadline-suite [--deadline-ms N]\n"
                 "       %s serve STORE_DIR [--classify FILE ...] [--poll-ms N] "
                 "[--polls N] [--chunk K] [--exit-when-idle]\n"
                 "       %s store-fsck STORE_DIR\n"
                 "File format: see lcl/serialize.hpp (lcl/topology/inputs/outputs/"
                 "node/edge/first/last/end).\n"
                 "Exit codes: 0 ok, 1 failed, 2 usage/input, 3 timeout/cancelled.\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  try {
    const PairwiseProblem problem = parse_problem(read_source(path));
    ExecutionBudget budget;
    const ExecutionBudget* budget_ptr = nullptr;
    if (deadline_ms > 0) {
      budget.set_timeout(std::chrono::milliseconds(deadline_ms));
      budget_ptr = &budget;
    }
    return classify_and_report(problem, true, sim_options, budget_ptr);
  } catch (const CancelledError& e) {
    std::fprintf(stderr, "%s: %s\n",
                 e.reason() == CancelReason::kDeadline ? "timeout" : "cancelled",
                 e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
