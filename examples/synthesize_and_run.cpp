// One problem per complexity class, synthesized and executed side by
// side: the paper's O(1) / Theta(log* n) / Theta(n) trichotomy made
// runnable.
#include <cstdio>

#include "decide/classifier.hpp"

int main() {
  using namespace lclpath;
  struct Row {
    PairwiseProblem problem;
    const char* blurb;
  };
  const Row rows[] = {
      {catalog::copy_input(), "copy the input (O(1))"},
      {catalog::coloring(3), "3-coloring (Theta(log* n))"},
      {catalog::agreement(), "secret agreement (Theta(n))"},
  };
  Rng rng(3);
  for (const Row& row : rows) {
    const ClassifiedProblem result = classify(row.problem);
    const auto algorithm = result.synthesize();
    // Pick n just above the constant regimes so every code path runs.
    const std::size_t n =
        result.complexity() == ComplexityClass::kLinear
            ? 2048
            : 2 * algorithm->radius(1 << 20) + 57;
    Instance instance =
        random_instance(row.problem.topology(), n, row.problem.num_inputs(), rng);
    const SimulationResult sim = simulate(*algorithm, row.problem, instance);
    std::printf("%-28s -> %-14s | algorithm %-22s | n=%7zu radius=%6zu | %s\n",
                row.blurb, to_string(result.complexity()).c_str(),
                algorithm->name().c_str(), n, sim.radius,
                sim.verdict.ok ? "valid" : "INVALID");
  }
  return 0;
}
