// The paper's O(1) / Theta(log* n) / Theta(n) trichotomy made runnable on
// every topology: one problem per sub-linear class on each of the four
// topologies, plus the Theta(n) gather-all baseline on the two directed
// ones, synthesized and executed side by side. The algorithm name carries
// the per-topology strategy that was chosen.
#include <cstdio>

#include "decide/classifier.hpp"

int main() {
  using namespace lclpath;
  struct Row {
    PairwiseProblem problem;
    const char* blurb;
  };
  std::vector<Row> rows;
  const Topology topologies[] = {Topology::kDirectedCycle, Topology::kDirectedPath,
                                 Topology::kUndirectedCycle, Topology::kUndirectedPath};
  for (Topology t : topologies) {
    rows.push_back({catalog::copy_input(t), "copy the input (O(1))"});
    rows.push_back({catalog::coloring(3, t), "3-coloring (Theta(log* n))"});
  }
  rows.push_back({catalog::agreement(), "secret agreement (Theta(n))"});
  rows.push_back({catalog::agreement(Topology::kDirectedPath), "secret agreement (Theta(n))"});

  Rng rng(3);
  int failures = 0;
  for (const Row& row : rows) {
    const ClassifiedProblem result = classify(row.problem);
    const auto algorithm = result.synthesize();
    // Pick n just above the structured regime so every code path runs —
    // except for the heavyweight undirected O(1) radii, where the demo
    // stays in the (equally synthesized) full-view regime to keep the
    // example quick.
    const std::size_t structured = 2 * algorithm->radius(1 << 20) + 57;
    const std::size_t n = result.complexity() == ComplexityClass::kLinear ? 2048
                          : structured <= 12000                           ? structured
                                                                          : 1024;
    Instance instance =
        random_instance(row.problem.topology(), n, row.problem.num_inputs(), rng);
    const SimulationResult sim = simulate(*algorithm, row.problem, instance);
    std::printf("%-26s %-16s -> %-14s | %-38s | n=%5zu radius=%6zu | %s\n", row.blurb,
                to_string(row.problem.topology()).c_str(),
                to_string(result.complexity()).c_str(), algorithm->name().c_str(), n,
                sim.radius, sim.verdict.ok ? "valid" : "INVALID");
    if (!sim.verdict.ok) failures = 1;
  }
  return failures;
}
