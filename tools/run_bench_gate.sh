#!/usr/bin/env bash
# One scripted bench gate: run a bench family's binaries in their
# --emit-json / --perf-smoke CI mode, merge multi-binary families into a
# single fresh JSON, and compare it against the committed baseline with
# tools/compare_bench.py. CI's Release job loops this over every family
# instead of carrying one copy-pasted step block per bench.
#
# Usage: tools/run_bench_gate.sh FAMILY [BUILD_DIR]
#   FAMILY    linear_gap | monoid | synthesized | hardness | simulation
#   BUILD_DIR cmake build directory holding the bench binaries (default:
#             build)
#
# Writes BENCH_<FAMILY>.fresh.json into the current directory (the
# baseline-refresh vehicle CI uploads as an artifact — download it and
# commit it as BENCH_<FAMILY>.json after an intentional perf change).
# Exit code is nonzero when any binary's perf smoke fails or the compare
# finds drift/regression; all binaries of a family still run so one
# failure does not mask the rest.
set -u

if [ $# -lt 1 ]; then
  echo "usage: $0 FAMILY [BUILD_DIR]" >&2
  exit 2
fi
family=$1
build=${2:-build}
status=0

run() {
  echo "+ $*"
  "$@" || status=1
}

case "$family" in
  linear_gap)
    # --perf-smoke doubles as the lazy-certificate regression tripwire:
    # beyond the overall fixed-cost budget it bounds the lifted
    # shift-input end-to-end classify at a sixth of the budget.
    run "$build/bench_gap_scaling" --emit-json=BENCH_linear_gap.fresh.json \
      --perf-smoke=60 --benchmark_list_tests=true
    ;;
  monoid)
    # --perf-smoke also asserts the cold-vs-cached sweep actually hits the
    # MonoidCache.
    run "$build/bench_monoid" --emit-json=BENCH_monoid.fresh.json \
      --perf-smoke=60 --benchmark_list_tests=true
    ;;
  synthesized)
    # --perf-smoke runs the self-selection tripwires on every row
    # (synthesized_radius < n, synthesized_s <= gather_s) on top of the
    # overall fixed-cost budget.
    run "$build/bench_synthesized" --emit-json=BENCH_synthesized.fresh.json \
      --perf-smoke=60 --benchmark_list_tests=true
    ;;
  simulation)
    # --perf-smoke runs the engine tripwires: parallel speedup where the
    # hardware has the cores (4x at >= 8, any win at >= 2), the
    # no-materialize RSS ceiling on the 10^7-node streaming row, and the
    # memoized-gather / synthesized wins over the honest Theta(n^2)
    # baseline.
    run "$build/bench_simulation" --emit-json=BENCH_simulation.fresh.json \
      --perf-smoke=90 --benchmark_list_tests=true
    ;;
  hardness)
    # Five binaries, one tracked JSON: each emits its own top-level
    # section ({"encoding"}, {"error_chains"}, {"theorem4"}, {"theorem5"},
    # {"lower_bound"}); the merge is a plain key union. --perf-smoke runs
    # each binary's structural tripwires (encodings verify, Pi_MB
    # classification budget-caps, batch caches hit, ...).
    parts=()
    for bin in lba_encoding error_chains theorem4 theorem5_scaling lower_bound; do
      part="BENCH_hardness_${bin}.part.json"
      run "$build/bench_${bin}" --emit-json="$part" --perf-smoke=60 \
        --benchmark_list_tests=true
      parts+=("$part")
    done
    python3 - "${parts[@]}" <<'PYEOF' || status=1
import json, sys
merged = {}
for path in sys.argv[1:]:
    with open(path) as f:
        section = json.load(f)
    overlap = merged.keys() & section.keys()
    if overlap:
        raise SystemExit(f"duplicate bench sections: {sorted(overlap)}")
    merged.update(section)
with open("BENCH_hardness.fresh.json", "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
PYEOF
    rm -f "${parts[@]}"
    ;;
  *)
    echo "unknown bench family: $family (expected linear_gap | monoid |" \
      "synthesized | hardness | simulation)" >&2
    exit 2
    ;;
esac

run python3 tools/compare_bench.py "BENCH_${family}.json" \
  "BENCH_${family}.fresh.json"
exit $status
