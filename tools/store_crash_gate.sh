#!/usr/bin/env bash
# The catalog store's CI gate: a real round trip, an fsck pass, and a
# kill-and-recover loop against the serve subcommand.
#
# Usage: tools/store_crash_gate.sh [BUILD_DIR]
#   BUILD_DIR cmake build directory holding lclpath_cli (default: build)
#
# Three phases, each a hard failure when it breaks:
#   1. Round trip — classify-batch --store twice over a generated problem
#      corpus (coloring k=3..8 across all four topologies): the first run
#      classifies everything fresh, the second must be served entirely
#      from the persisted store ("0 classified fresh").
#   2. store-fsck gate — every shard header/checksum/record-count must
#      validate (exit 0, ": clean").
#   3. Kill-and-recover — a background serve loop is SIGKILLed while it is
#      classifying and committing; the store left behind must fsck clean
#      (atomic shard commits: old-complete or new-complete, stray *.tmp
#      ignored), and a rerun with --exit-when-idle must finish the
#      remaining work so the final store holds every record.
set -u

build=${1:-build}
cli=$build/lclpath_cli
if [ ! -x "$cli" ]; then
  echo "store_crash_gate: $cli not found or not executable" >&2
  exit 2
fi

workdir=$(mktemp -d)
serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "store_crash_gate: FAIL: $*" >&2
  exit 1
}

run() {
  echo "+ $*" >&2
  "$@"
}

# ---------------------------------------------------------------- corpus
# Proper k-coloring for k=3..8 on every topology: 24 problems, covering
# O(1)/Theta(log* n) classes and both directed/undirected code paths.
corpus=$workdir/corpus.lcl
expected=0
for k in 3 4 5 6 7 8; do
  for topology in directed-path directed-cycle undirected-path undirected-cycle; do
    {
      echo "lcl coloring-k${k}-${topology}"
      echo "topology ${topology}"
      echo "inputs a"
      echo -n "outputs"
      for ((c = 0; c < k; ++c)); do echo -n " c${c}"; done
      echo
      for ((c = 0; c < k; ++c)); do echo "node a c${c}"; done
      for ((i = 0; i < k; ++i)); do
        for ((j = 0; j < k; ++j)); do
          [ "$i" -ne "$j" ] && echo "edge c${i} c${j}"
        done
      done
      echo "end"
    } >> "$corpus"
    expected=$((expected + 1))
  done
done
echo "store_crash_gate: corpus of $expected problems"

# ------------------------------------------------------------ round trip
store=$workdir/store_roundtrip
out=$workdir/run1.out
run "$cli" classify-batch --store "$store" "$corpus" > "$out" || fail "first classify-batch run"
grep -q "$expected classified fresh" "$out" \
  || fail "first run did not classify all $expected problems fresh: $(grep '^store:' "$out")"

out=$workdir/run2.out
run "$cli" classify-batch --store "$store" "$corpus" > "$out" || fail "second classify-batch run"
grep -q "preloaded $expected record(s); 0 classified fresh" "$out" \
  || fail "second run was not served entirely from the store: $(grep '^store:' "$out")"

# ------------------------------------------------------------- fsck gate
out=$workdir/fsck1.out
run "$cli" store-fsck "$store" > "$out" || fail "store-fsck flagged the round-trip store"
grep -q ": clean" "$out" || fail "store-fsck did not report clean"
grep -q "$expected record(s): clean" "$out" \
  || fail "store-fsck record count drifted: $(tail -1 "$out")"

# ------------------------------------------------------- kill and recover
store=$workdir/store_killed
"$cli" serve "$store" --classify "$corpus" --chunk 2 --poll-ms 20 \
  > "$workdir/serve1.out" 2>&1 &
serve_pid=$!
# Let it classify and commit a few chunks, then pull the plug mid-loop.
# (Whether the kill lands mid-commit or between chunks, the invariant is
# the same: every shard file on disk must validate.)
sleep 0.3
kill -9 "$serve_pid" 2>/dev/null || fail "serve loop already exited before SIGKILL"
wait "$serve_pid" 2>/dev/null
serve_pid=""
echo "+ SIGKILL delivered mid-serve; store left behind:"

out=$workdir/fsck2.out
run "$cli" store-fsck "$store" > "$out" || fail "SIGKILL left a corrupt shard (atomic commit broken)"
grep -q ": clean" "$out" || fail "post-kill store-fsck did not report clean"
cat "$out"

out=$workdir/serve2.out
run "$cli" serve "$store" --classify "$corpus" --chunk 4 --poll-ms 20 --exit-when-idle \
  > "$out" || fail "recovery serve run"
grep -q "store $expected record(s)" "$out" \
  || fail "recovery did not finish the remaining work: $(tail -2 "$out")"

out=$workdir/fsck3.out
run "$cli" store-fsck "$store" > "$out" || fail "recovered store failed fsck"
grep -q "$expected record(s): clean" "$out" \
  || fail "recovered store record count drifted: $(tail -1 "$out")"

echo "store_crash_gate: PASS (round trip, fsck, kill-and-recover)"
