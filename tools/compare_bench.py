#!/usr/bin/env python3
"""Compare a fresh benchmark JSON against the committed baseline.

Usage: compare_bench.py BASELINE FRESH [--max-slowdown X]

The committed BENCH_*.json files at the repo root are the tracked perf
trajectory; CI regenerates each one and runs this check so the trajectory
is compared in-repo instead of only living in ephemeral artifacts.

Policy (kept deliberately coarse — the baseline may come from a different
machine than the runner, so absolute timings can legitimately differ by
several x):
  * structural drift fails: different keys, row counts, problem names,
    feasibility/complexity verdicts, element/point counts, or a metric
    flipping between measured and null (e.g. a phase that used to run now
    being skipped);
  * timing/memory metrics (keys ending in _s, _ms, _us, _mb) fail only on
    order-of-magnitude regressions: fresh > max-slowdown x baseline AND
    above a per-unit noise floor. Improvements and noise-level wiggle just
    print. The tight absolute budgets live in the benches' --perf-smoke
    modes; this gate exists to catch structural drift and gross
    (lazy-certificate-sized) slowdowns, not single-digit percentages;
  * synthesized-vs-gather-all rows (any dict carrying synthesized_s and
    gather_s) additionally fail absolutely — on the fresh file alone —
    when synthesized_radius >= n or synthesized_s > gather_s: the
    synthesized algorithm self-selecting into a worse-than-baseline
    regime is a bug at any machine speed.

Exit code 0 = within policy, 1 = regression or drift (fails the CI step).
"""

import argparse
import json
import sys

# Metric suffix -> noise floor in that unit. Below the floor a value is
# measurement noise (or plain machine-speed variation on a tiny row) and
# never fails, no matter the ratio.
METRIC_FLOORS = {"_s": 0.25, "_ms": 25.0, "_us": 25.0, "_mb": 100.0}


def metric_floor(key):
    for suffix, floor in METRIC_FLOORS.items():
        if key.endswith(suffix):
            return floor
    return None


def walk(baseline, fresh, path, report):
    if isinstance(baseline, dict) and isinstance(fresh, dict):
        if set(baseline) != set(fresh):
            report.drift(path, f"keys {sorted(set(baseline) ^ set(fresh))} differ")
            return
        for key in baseline:
            walk(baseline[key], fresh[key], f"{path}.{key}" if path else key, report)
    elif isinstance(baseline, list) and isinstance(fresh, list):
        if len(baseline) != len(fresh):
            report.drift(path, f"row count {len(baseline)} -> {len(fresh)}")
            return
        for i, (b, f) in enumerate(zip(baseline, fresh)):
            # Rows with a "problem" field index by name for readable paths.
            tag = b.get("problem", i) if isinstance(b, dict) else i
            walk(b, f, f"{path}[{tag}]", report)
    else:
        compare_leaf(baseline, fresh, path, report)


def compare_leaf(baseline, fresh, path, report):
    key = path.rsplit(".", 1)[-1]
    floor = metric_floor(key)
    if floor is not None:
        if (baseline is None) != (fresh is None):
            report.drift(path, f"measured/null flip: {baseline} -> {fresh}")
        elif baseline is not None:
            report.metric(path, float(baseline), float(fresh), floor)
        return
    if isinstance(baseline, float) or isinstance(fresh, float):
        # Non-metric floats (e.g. hit_rate) carry semantics: tight tolerance.
        if abs(float(baseline) - float(fresh)) > 1e-6:
            report.drift(path, f"{baseline} -> {fresh}")
        return
    if baseline != fresh:
        report.drift(path, f"{baseline!r} -> {fresh!r}")


class Report:
    def __init__(self, max_slowdown):
        self.max_slowdown = max_slowdown
        self.failures = []
        self.lines = []

    def drift(self, path, message):
        self.failures.append(f"DRIFT  {path}: {message}")

    def metric(self, path, baseline, fresh, floor):
        ratio = fresh / baseline if baseline > 0 else float("inf")
        line = f"{path}: {baseline:.4f} -> {fresh:.4f}"
        if fresh > floor and baseline > 0 and ratio > self.max_slowdown:
            self.failures.append(f"REGRESSION  {line}  ({ratio:.1f}x, limit "
                                 f"{self.max_slowdown:.1f}x)")
        elif fresh > max(floor, baseline * 1.5) or (baseline > floor
                                                    and fresh < baseline / 1.5):
            self.lines.append(f"  note  {line}")


def check_synth_rows(node, path, report):
    """Absolute tripwires on the fresh synthesized-vs-gather-all rows.

    ISSUE 7's bench pathology: a nominally-O(1) algorithm whose derived
    radius exceeded the instance, so "synthesized" saw more than gather-all
    and lost to it. The per-problem radii make that impossible by
    construction; this check keeps it impossible. Unlike the relative
    metric policy above, these compare fresh against itself (no baseline
    machine-speed excuse applies to radius >= n or losing to the baseline
    measured in the same process)."""
    if isinstance(node, dict):
        if "synthesized_s" in node and "gather_s" in node:
            if node.get("synthesized_radius", 0) >= node.get("n", float("inf")):
                report.drift(path, f"synthesized_radius {node['synthesized_radius']}"
                                   f" >= n {node['n']}")
            if node["synthesized_s"] > node["gather_s"]:
                report.drift(path, f"synthesized_s {node['synthesized_s']} > "
                                   f"gather_s {node['gather_s']} (loses to the "
                                   f"Theta(n) baseline)")
        for key, value in node.items():
            check_synth_rows(value, f"{path}.{key}" if path else key, report)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            tag = value.get("problem", i) if isinstance(value, dict) else i
            check_synth_rows(value, f"{path}[{tag}]", report)


def check_simulation_rows(node, path, report):
    """Absolute tripwires on the fresh simulation-engine rows.

    Machine-speed differences never excuse these: an invalid verdict is a
    correctness bug, a no-materialize run whose RSS growth rivals the
    output Word it promised not to allocate defeats the streaming
    verifier, and a memoized gather losing to the honest Theta(n^2)
    baseline means the memo regressed to re-solving per node. The
    hardware-gated parallel-speedup tripwire lives in the bench binary's
    --perf-smoke mode instead (this script cannot know the runner's core
    count from the JSON alone)."""
    if isinstance(node, dict):
        if "engine_s" in node or "stream_s" in node or "memo_s" in node:
            if node.get("valid") is not True:
                report.drift(path, "simulation row is not valid")
        if "rss_delta_mb" in node and "outputs_mb" in node:
            if node["rss_delta_mb"] >= node["outputs_mb"] / 2:
                report.drift(path, f"rss_delta_mb {node['rss_delta_mb']} not well "
                                   f"below outputs_mb {node['outputs_mb']}")
        if "memo_s" in node and "honest_s" in node:
            if node["memo_s"] > node["honest_s"]:
                report.drift(path, f"memo_s {node['memo_s']} > honest_s "
                                   f"{node['honest_s']} (memoized gather lost)")
        for key, value in node.items():
            check_simulation_rows(value, f"{path}.{key}" if path else key, report)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            tag = value.get("problem", i) if isinstance(value, dict) else i
            check_simulation_rows(value, f"{path}[{tag}]", report)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--max-slowdown", type=float, default=10.0,
                        help="fail when a metric above its noise floor is this "
                             "many times slower than the baseline (generous: "
                             "the baseline machine and the runner differ)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    report = Report(args.max_slowdown)
    walk(baseline, fresh, "", report)
    check_synth_rows(fresh, "", report)
    check_simulation_rows(fresh, "", report)

    print(f"compare_bench: {args.fresh} vs baseline {args.baseline}")
    for line in report.lines:
        print(line)
    if report.failures:
        for failure in report.failures:
            print(failure)
        print(f"compare_bench: {len(report.failures)} failure(s)")
        return 1
    print("compare_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
