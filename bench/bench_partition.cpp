// Experiment E11 (Lemmas 16, 19-22): the O(1)/O(log* n) partition
// primitives — ruling sets, l-orientation, and the
// (l_width, l_count, l_pattern)-partition — timed per node across n.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "local/decomposition.hpp"
#include "local/orientation.hpp"
#include "local/partition.hpp"

namespace {

using namespace lclpath;

void RulingSetPerNode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Instance instance = random_instance(Topology::kDirectedCycle, n, 2, rng);
  const std::size_t min_gap = 16;
  const std::size_t radius = ruling_radius(min_gap);
  std::size_t v = 0;
  for (auto _ : state) {
    const bool member = ruling_member(extract_view(instance, v, radius), min_gap);
    benchmark::DoNotOptimize(member);
    v = (v + 1) % n;
  }
  state.counters["radius"] = static_cast<double>(radius);
}
BENCHMARK(RulingSetPerNode)->Arg(4096)->Arg(16384)->Unit(benchmark::kMicrosecond);

void OrientationPerNode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Instance instance = random_instance(Topology::kDirectedCycle, n, 2, rng);
  const std::size_t ell = 5;
  const std::size_t radius = orientation_radius(ell);
  std::size_t v = 0;
  for (auto _ : state) {
    const Direction d = orient(extract_view(instance, v, radius), ell);
    benchmark::DoNotOptimize(d);
    v = (v + 1) % n;
  }
}
BENCHMARK(OrientationPerNode)->Arg(4096)->Arg(16384)->Unit(benchmark::kMicrosecond);

void WholePartition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Instance instance = random_instance(Topology::kDirectedCycle, n, 2, rng);
  PartitionParams params{3, 4, 3};
  for (auto _ : state) {
    auto part = partition(instance, params);
    benchmark::DoNotOptimize(part.components.size());
  }
}
BENCHMARK(WholePartition)->Arg(1024)->Arg(4096)->Arg(16384)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;
  std::printf("=== E11: partition primitive structure sizes ===\n");
  Rng rng(4);
  for (std::size_t n : {1024u, 4096u}) {
    Instance random = random_instance(Topology::kDirectedCycle, n, 2, rng);
    Instance periodic = periodic_instance(Topology::kDirectedCycle, n, {0, 1, 1}, rng);
    PartitionParams params{3, 4, 3};
    const Partition pr = partition(random, params);
    const Partition pp = partition(periodic, params);
    std::size_t long_r = 0, long_p = 0;
    for (const auto& c : pr.components) long_r += c.long_component ? 1 : 0;
    for (const auto& c : pp.components) long_p += c.long_component ? 1 : 0;
    std::printf("n=%6zu random: %4zu components (%zu long) | periodic: %4zu (%zu long%s)\n",
                n, pr.components.size(), long_r, pp.components.size(), long_p,
                pp.whole_cycle_periodic ? ", whole cycle" : "");
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
