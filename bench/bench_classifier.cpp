// Experiments E7 + E8: the decision procedure (Theorems 8 + 9) over the
// validation catalog — verdicts, type-space sizes, and decision cost —
// plus the serial-vs-batch comparison for the thread-pooled engine.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "decide/batch.hpp"
#include "decide/classifier.hpp"
#include "hardness/undirected.hpp"

namespace {

using namespace lclpath;

// The batch workload: every catalog problem, the Section 3.7
// path-to-cycle lifts of the cheap directed-path entries, the undirected
// lifts of the same entries (classifiable since decide_linear_gap's
// factorized engine replaced the quadratic point-pair sweep — previously
// they had to stay out entirely), and renamed replicas of the medium-cost
// problems so the pool has enough balanced work to overlap (a single
// dominant item would cap the speedup by Amdahl, which is why the 0.7s
// copy-input cycle lift is excluded). Lifts that reject their source are
// skipped.
std::vector<PairwiseProblem> batch_workload() {
  std::vector<PairwiseProblem> problems;
  for (const auto& entry : catalog::validation_catalog()) {
    problems.push_back(entry.problem);
  }
  const PairwiseProblem liftable[] = {
      catalog::coloring(3, Topology::kDirectedPath),
      catalog::two_coloring(Topology::kDirectedPath),
      catalog::constant_output(Topology::kDirectedPath),
  };
  for (const PairwiseProblem& p : liftable) {
    try {
      problems.push_back(hardness::lift_path_to_cycle(p));
    } catch (const std::exception&) {
    }
    try {
      problems.push_back(hardness::lift_to_undirected(p));
    } catch (const std::exception&) {
    }
  }
  for (int copy = 0; copy < 4; ++copy) {
    for (PairwiseProblem p : {catalog::agreement(),
                              catalog::agreement(Topology::kDirectedPath),
                              catalog::shift_input()}) {
      p.set_name(p.name() + "#" + std::to_string(copy));
      problems.push_back(std::move(p));
    }
  }
  return problems;
}

void ClassifyWorkloadSerial(benchmark::State& state) {
  const auto problems = batch_workload();
  for (auto _ : state) {
    for (const PairwiseProblem& p : problems) {
      try {
        const ClassifiedProblem result = classify(p);
        benchmark::DoNotOptimize(result.complexity());
      } catch (const std::exception&) {
      }
    }
  }
  state.counters["problems"] = static_cast<double>(problems.size());
}
BENCHMARK(ClassifyWorkloadSerial)->Unit(benchmark::kMillisecond)->UseRealTime();

void ClassifyWorkloadBatch(benchmark::State& state) {
  const auto problems = batch_workload();
  BatchOptions options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  options.dedup = false;  // match the serial loop's work exactly
  for (auto _ : state) {
    const auto results = classify_batch(problems, options);
    benchmark::DoNotOptimize(results.size());
  }
  state.counters["problems"] = static_cast<double>(problems.size());
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(ClassifyWorkloadBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// End-to-end classification of the ROADMAP headline case the old engine
// could not touch: lift_to_undirected(coloring(3, path)), ~7 * 10^5 domain
// points. Exists so the factorized decide_linear_gap speedup is visible at
// the classify() surface, not just inside the decider.
void ClassifyLiftedUndirectedColoring(benchmark::State& state) {
  const PairwiseProblem lifted =
      hardness::lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath));
  for (auto _ : state) {
    const ClassifiedProblem result = classify(lifted);
    if (result.complexity() != ComplexityClass::kConstant) {
      state.SkipWithError("unexpected class");
    }
    benchmark::DoNotOptimize(result.monoid_size());
  }
}
BENCHMARK(ClassifyLiftedUndirectedColoring)->Unit(benchmark::kMillisecond);

void ClassifyCatalogEntry(benchmark::State& state) {
  const auto entries = catalog::validation_catalog();
  const CatalogEntry& entry = entries.at(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const ClassifiedProblem result = classify(entry.problem);
    benchmark::DoNotOptimize(result.complexity());
  }
  const ClassifiedProblem result = classify(entry.problem);
  state.SetLabel(entry.problem.name() + " -> " + to_string(result.complexity()) +
                 " (expected " + to_string(entry.expected) + ", monoid " +
                 std::to_string(result.monoid_size()) + ")");
  state.counters["monoid"] = static_cast<double>(result.monoid_size());
  state.counters["class"] = static_cast<double>(result.complexity());
}
BENCHMARK(ClassifyCatalogEntry)
    ->DenseRange(0, static_cast<long>(lclpath::catalog::validation_catalog().size()) - 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Table E7/E8: verdict per catalog problem.
  std::printf("=== E7/E8: classifier verdicts (Theorems 8+9) ===\n");
  std::printf("%-28s %-14s %-14s %8s\n", "problem", "expected", "decided", "monoid");
  for (const auto& entry : lclpath::catalog::validation_catalog()) {
    const auto result = lclpath::classify(entry.problem);
    std::printf("%-28s %-14s %-14s %8zu\n", entry.problem.name().c_str(),
                lclpath::to_string(entry.expected).c_str(),
                lclpath::to_string(result.complexity()).c_str(), result.monoid_size());
  }
  std::printf("\n");

  // Headline number for the batch engine: one serial pass vs one 8-thread
  // batch over the same workload (catalog + cheap lifts), wall clock.
  // Skipped when a filter is given — a filtered run wants one benchmark,
  // not seconds of fixed-cost preamble.
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strstr(argv[i], "--benchmark_filter") != nullptr) filtered = true;
  }
  if (!filtered) {
    using namespace lclpath;
    const auto problems = batch_workload();
    using clock = std::chrono::steady_clock;
    const auto serial_start = clock::now();
    for (const PairwiseProblem& p : problems) {
      try {
        const ClassifiedProblem result = classify(p);
        benchmark::DoNotOptimize(result.complexity());
      } catch (const std::exception&) {
      }
    }
    const double serial_s =
        std::chrono::duration<double>(clock::now() - serial_start).count();
    BatchOptions options;
    options.num_threads = 8;
    options.dedup = false;
    const auto batch_start = clock::now();
    const auto results = classify_batch(problems, options);
    const double batch_s =
        std::chrono::duration<double>(clock::now() - batch_start).count();
    std::printf("=== batch engine: %zu problems ===\n", problems.size());
    std::printf("serial:          %.3fs\n", serial_s);
    std::printf("batch@8threads:  %.3fs  (speedup %.2fx, %u hardware threads)\n\n",
                batch_s, batch_s > 0 ? serial_s / batch_s : 0.0,
                std::thread::hardware_concurrency());
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
