// Experiments E7 + E8: the decision procedure (Theorems 8 + 9) over the
// validation catalog — verdicts, type-space sizes, and decision cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "decide/classifier.hpp"

namespace {

using namespace lclpath;

void ClassifyCatalogEntry(benchmark::State& state) {
  const auto entries = catalog::validation_catalog();
  const CatalogEntry& entry = entries.at(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const ClassifiedProblem result = classify(entry.problem);
    benchmark::DoNotOptimize(result.complexity());
  }
  const ClassifiedProblem result = classify(entry.problem);
  state.SetLabel(entry.problem.name() + " -> " + to_string(result.complexity()) +
                 " (expected " + to_string(entry.expected) + ", monoid " +
                 std::to_string(result.monoid_size()) + ")");
  state.counters["monoid"] = static_cast<double>(result.monoid_size());
  state.counters["class"] = static_cast<double>(result.complexity());
}
BENCHMARK(ClassifyCatalogEntry)
    ->DenseRange(0, static_cast<long>(lclpath::catalog::validation_catalog().size()) - 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Table E7/E8: verdict per catalog problem.
  std::printf("=== E7/E8: classifier verdicts (Theorems 8+9) ===\n");
  std::printf("%-28s %-14s %-14s %8s\n", "problem", "expected", "decided", "monoid");
  for (const auto& entry : lclpath::catalog::validation_catalog()) {
    const auto result = lclpath::classify(entry.problem);
    std::printf("%-28s %-14s %-14s %8zu\n", entry.problem.name().c_str(),
                lclpath::to_string(entry.expected).c_str(),
                lclpath::to_string(result.complexity()).c_str(), result.monoid_size());
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
