// Cross-topology synthesis benchmark: for one problem per sub-linear
// class on each of the four topologies, time one simulated execution of
// the synthesized algorithm against the Theta(n) gather-all baseline at
// the same n, and report both radii. `--emit-json[=path]` writes the
// measurements as machine-readable JSON (default BENCH_synthesized.json;
// uploaded as a CI artifact like BENCH_linear_gap.json).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "decide/classifier.hpp"

namespace {

using namespace lclpath;

struct SynthMeasurement {
  std::string problem;
  std::string topology;
  std::string complexity;
  std::string algorithm;
  std::size_t n = 0;
  std::size_t synthesized_radius = 0;
  double synthesized_s = 0;
  double gather_s = 0;
  bool valid = false;
};

std::vector<SynthMeasurement> run_synth_comparison() {
  std::vector<SynthMeasurement> rows;
  using clock = std::chrono::steady_clock;
  const Topology topologies[] = {Topology::kDirectedCycle, Topology::kDirectedPath,
                                 Topology::kUndirectedCycle, Topology::kUndirectedPath};
  std::vector<PairwiseProblem> workload;
  for (Topology t : topologies) {
    workload.push_back(catalog::coloring(3, t));      // Theta(log* n)
    workload.push_back(catalog::constant_output(t));  // O(1)
  }
  Rng rng(97);
  for (const PairwiseProblem& problem : workload) {
    const ClassifiedProblem result = classify(problem);
    const auto algorithm = result.synthesize();
    const GatherAllAlgorithm gather(result.problem());
    // Just above the structured regime where affordable; the heavyweight
    // undirected O(1) radii fall back to the (still synthesized)
    // full-view regime so the fixed-cost preamble stays benchable.
    const std::size_t structured = 2 * algorithm->radius(1 << 20) + 33;
    const std::size_t n = structured <= 12000 ? structured : 2048;
    Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);

    SynthMeasurement row;
    row.problem = problem.name();
    row.topology = to_string(problem.topology());
    row.complexity = to_string(result.complexity());
    row.algorithm = algorithm->name();
    row.n = n;
    row.synthesized_radius = algorithm->radius(n);
    const auto t0 = clock::now();
    const SimulationResult synth = simulate(*algorithm, problem, instance);
    const auto t1 = clock::now();
    const SimulationResult base = simulate(gather, problem, instance);
    const auto t2 = clock::now();
    row.synthesized_s = std::chrono::duration<double>(t1 - t0).count();
    row.gather_s = std::chrono::duration<double>(t2 - t1).count();
    row.valid = synth.verdict.ok && base.verdict.ok;
    if (!row.valid) {
      std::fprintf(stderr, "INVALID OUTPUT on %s (%s)\n", row.problem.c_str(),
                   row.topology.c_str());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_synth_table(const std::vector<SynthMeasurement>& rows) {
  std::printf("=== synthesized vs gather-all, per topology ===\n");
  std::printf("%-18s %-16s %-14s %7s %8s %12s %12s\n", "problem", "topology", "class",
              "n", "radius", "synthesized", "gather-all");
  for (const SynthMeasurement& r : rows) {
    std::printf("%-18s %-16s %-14s %7zu %8zu %11.4fs %11.4fs%s\n", r.problem.c_str(),
                r.topology.c_str(), r.complexity.c_str(), r.n, r.synthesized_radius,
                r.synthesized_s, r.gather_s, r.valid ? "" : "  INVALID");
  }
  std::printf("(radius is the synthesized view radius; gather-all always uses n.)\n\n");
}

using benchjson::json_escaped;

void write_synth_json(const std::vector<SynthMeasurement>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SynthMeasurement& r = rows[i];
    std::fprintf(out,
                 "  {\"problem\": \"%s\", \"topology\": \"%s\", \"class\": \"%s\", "
                 "\"algorithm\": \"%s\", \"n\": %zu, \"synthesized_radius\": %zu, "
                 "\"synthesized_s\": %.6f, \"gather_s\": %.6f, \"valid\": %s}%s\n",
                 json_escaped(r.problem).c_str(), json_escaped(r.topology).c_str(),
                 json_escaped(r.complexity).c_str(), json_escaped(r.algorithm).c_str(),
                 r.n, r.synthesized_radius, r.synthesized_s, r.gather_s,
                 r.valid ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("wrote %s (%zu rows)\n\n", path, rows.size());
}

void SimulateSynthesizedColoringUndirectedCycle(benchmark::State& state) {
  const PairwiseProblem problem = catalog::coloring(3, Topology::kUndirectedCycle);
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  Rng rng(98);
  const std::size_t n = 2 * algorithm->radius(1 << 20) + 33;
  Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
  for (auto _ : state) {
    const auto sim = simulate(*algorithm, problem, instance);
    if (!sim.verdict.ok) state.SkipWithError("invalid output");
    benchmark::DoNotOptimize(sim.outputs);
  }
  state.SetLabel(algorithm->name() + " n=" + std::to_string(n));
}
BENCHMARK(SimulateSynthesizedColoringUndirectedCycle)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // --emit-json[=path] is ours, not google-benchmark's; strip it.
  const char* json_path = nullptr;
  bool filtered = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-json") == 0) {
      json_path = "BENCH_synthesized.json";
    } else if (std::strncmp(argv[i], "--emit-json=", 12) == 0) {
      json_path = argv[i] + 12;
    } else {
      if (std::strstr(argv[i], "--benchmark_filter") != nullptr) filtered = true;
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());

  // A filtered run wants one benchmark, not the fixed-cost comparison
  // preamble (same convention as bench_gap_scaling).
  if (filtered && json_path == nullptr) {
    benchmark::Initialize(&filtered_argc, args.data());
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }

  const std::vector<SynthMeasurement> rows = run_synth_comparison();
  print_synth_table(rows);
  if (json_path != nullptr) write_synth_json(rows, json_path);
  int exit_code = 0;
  for (const SynthMeasurement& r : rows) {
    // An invalid synthesized output must fail the process (CI runs this
    // binary as its own step), not just leave a line in the log.
    if (!r.valid) exit_code = 1;
  }

  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return exit_code;
}
