// Cross-topology synthesis benchmark: for one problem per sub-linear
// class on each of the four topologies, time one simulated execution of
// the synthesized algorithm against the Theta(n) gather-all baseline at
// the same n, and report both radii. Speaks the shared benchjson::Harness
// protocol: `--emit-json[=path]` writes the measurements as JSON (default
// BENCH_synthesized.json, the committed baseline), `--perf-smoke[=s]`
// bounds the preamble wall clock and runs the structural tripwires
// (synthesized_radius < n and synthesized_s <= gather_s on every row).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "decide/classifier.hpp"

namespace {

using namespace lclpath;

struct SynthMeasurement {
  std::string problem;
  std::string topology;
  std::string complexity;
  std::string algorithm;
  std::size_t n = 0;
  std::size_t synthesized_radius = 0;
  double synthesized_s = 0;
  double gather_s = 0;
  bool valid = false;
};

std::vector<SynthMeasurement> run_synth_comparison() {
  std::vector<SynthMeasurement> rows;
  using clock = std::chrono::steady_clock;
  const Topology topologies[] = {Topology::kDirectedCycle, Topology::kDirectedPath,
                                 Topology::kUndirectedCycle, Topology::kUndirectedPath};
  std::vector<PairwiseProblem> workload;
  for (Topology t : topologies) {
    workload.push_back(catalog::coloring(3, t));      // Theta(log* n)
    workload.push_back(catalog::constant_output(t));  // O(1)
  }
  Rng rng(97);
  for (const PairwiseProblem& problem : workload) {
    const ClassifiedProblem result = classify(problem);
    const auto algorithm = result.synthesize();
    const GatherAllAlgorithm gather(result.problem());
    // Just above the structured regime where affordable; the heavyweight
    // undirected O(1) radii fall back to the (still synthesized)
    // full-view regime so the fixed-cost preamble stays benchable.
    const std::size_t structured = 2 * algorithm->radius(1 << 20) + 33;
    const std::size_t n = structured <= 12000 ? structured : 2048;
    Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);

    SynthMeasurement row;
    row.problem = problem.name();
    row.topology = to_string(problem.topology());
    row.complexity = to_string(result.complexity());
    row.algorithm = algorithm->name();
    row.n = n;
    row.synthesized_radius = algorithm->radius(n);
    // The baseline must stay the honest Theta(n^2) gather (per-node view
    // extraction and canonical solve): the engine's default full-view
    // memoization turns gather-all into O(n), which is a different
    // algorithm than the one the synthesized_s <= gather_s tripwire is
    // calibrated against (bench_simulation tracks the memoized split).
    SimulationOptions honest;
    honest.full_view_memo = false;
    const auto t0 = clock::now();
    const SimulationResult synth = simulate(*algorithm, problem, instance);
    const auto t1 = clock::now();
    const SimulationResult base = simulate(gather, problem, instance, honest);
    const auto t2 = clock::now();
    row.synthesized_s = std::chrono::duration<double>(t1 - t0).count();
    row.gather_s = std::chrono::duration<double>(t2 - t1).count();
    row.valid = synth.verdict.ok && base.verdict.ok;
    if (!row.valid) {
      std::fprintf(stderr, "INVALID OUTPUT on %s (%s)\n", row.problem.c_str(),
                   row.topology.c_str());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_synth_table(const std::vector<SynthMeasurement>& rows) {
  std::printf("=== synthesized vs gather-all, per topology ===\n");
  std::printf("%-18s %-16s %-14s %7s %8s %12s %12s\n", "problem", "topology", "class",
              "n", "radius", "synthesized", "gather-all");
  for (const SynthMeasurement& r : rows) {
    std::printf("%-18s %-16s %-14s %7zu %8zu %11.4fs %11.4fs%s\n", r.problem.c_str(),
                r.topology.c_str(), r.complexity.c_str(), r.n, r.synthesized_radius,
                r.synthesized_s, r.gather_s, r.valid ? "" : "  INVALID");
  }
  std::printf("(radius is the synthesized view radius; gather-all always uses n.)\n\n");
}

using benchjson::json_escaped;

void write_synth_json(const std::vector<SynthMeasurement>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SynthMeasurement& r = rows[i];
    std::fprintf(out,
                 "  {\"problem\": \"%s\", \"topology\": \"%s\", \"class\": \"%s\", "
                 "\"algorithm\": \"%s\", \"n\": %zu, \"synthesized_radius\": %zu, "
                 "\"synthesized_s\": %.6f, \"gather_s\": %.6f, \"valid\": %s}%s\n",
                 json_escaped(r.problem).c_str(), json_escaped(r.topology).c_str(),
                 json_escaped(r.complexity).c_str(), json_escaped(r.algorithm).c_str(),
                 r.n, r.synthesized_radius, r.synthesized_s, r.gather_s,
                 r.valid ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("wrote %s (%zu rows)\n\n", path, rows.size());
}

void SimulateSynthesizedColoringUndirectedCycle(benchmark::State& state) {
  const PairwiseProblem problem = catalog::coloring(3, Topology::kUndirectedCycle);
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  Rng rng(98);
  const std::size_t n = 2 * algorithm->radius(1 << 20) + 33;
  Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
  for (auto _ : state) {
    const auto sim = simulate(*algorithm, problem, instance);
    if (!sim.verdict.ok) state.SkipWithError("invalid output");
    benchmark::DoNotOptimize(sim.outputs);
  }
  state.SetLabel(algorithm->name() + " n=" + std::to_string(n));
}
BENCHMARK(SimulateSynthesizedColoringUndirectedCycle)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchjson::Harness harness(argc, argv, "BENCH_synthesized.json");
  if (harness.filtered_only()) return harness.run_benchmarks();

  const std::vector<SynthMeasurement> rows = run_synth_comparison();
  print_synth_table(rows);
  if (harness.emit_json()) write_synth_json(rows, harness.json_path());

  for (const SynthMeasurement& r : rows) {
    // An invalid synthesized output must fail the process (CI runs this
    // binary as its own step), not just leave a line in the log.
    if (!r.valid) harness.fail();
    const std::string tag = r.problem + " (" + r.topology + ")";
    // The per-problem radii guarantee the synthesized algorithm never
    // regresses to a worse-than-gather-all regime: its view must be a
    // strict sub-window of the instance, and its wall clock must not lose
    // to the Theta(n) baseline it exists to beat.
    harness.require(r.synthesized_radius < r.n,
                    ("synthesized_radius < n for " + tag).c_str());
    harness.require(r.synthesized_s <= r.gather_s,
                    ("synthesized_s <= gather_s for " + tag).c_str());
  }
  harness.check_smoke_budget();
  return harness.run_benchmarks();
}
