// Experiment E12 (Sections 3.7-3.8): the undirected/cycle lifts and the
// tree encoding of input labels — construction sizes and round-trip cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/rng.hpp"
#include "hardness/tree_encoding.hpp"
#include "hardness/undirected.hpp"
#include "lcl/catalog.hpp"

namespace {

using namespace lclpath;
using namespace lclpath::hardness;

void UndirectedLiftBuild(benchmark::State& state) {
  const PairwiseProblem directed = catalog::agreement();
  for (auto _ : state) {
    auto lifted = lift_to_undirected(directed);
    benchmark::DoNotOptimize(lifted.num_outputs());
  }
}
BENCHMARK(UndirectedLiftBuild)->Unit(benchmark::kMicrosecond);

void GStarRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  Word labels;
  for (std::size_t v = 0; v < n; ++v) labels.push_back(static_cast<Label>(rng.next_below(5)));
  for (auto _ : state) {
    const GStar gstar = build_gstar(labels, 5);
    auto recovered = recover_labels(gstar, 5);
    if (!recovered || *recovered != labels) state.SkipWithError("round trip failed");
    benchmark::DoNotOptimize(recovered);
  }
}
BENCHMARK(GStarRoundTrip)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;
  using namespace lclpath::hardness;
  std::printf("=== E12: lift sizes (Sections 3.7-3.8) ===\n");
  const PairwiseProblem directed = catalog::agreement();
  const PairwiseProblem undirected = lift_to_undirected(directed);
  const PairwiseProblem cyclic =
      lift_path_to_cycle(catalog::agreement(Topology::kDirectedPath));
  std::printf("agreement:            %zu in / %zu out\n", directed.num_inputs(),
              directed.num_outputs());
  std::printf("undirected lift:      %zu in / %zu out (3x counters + 5 escapes)\n",
              undirected.num_inputs(), undirected.num_outputs());
  std::printf("path->cycle lift:     %zu in / %zu out (marks + S + X)\n",
              cyclic.num_inputs(), cyclic.num_outputs());
  const GStar gstar = build_gstar(Word{0, 1, 2, 3, 4}, 5);
  std::printf("G* for 5 nodes over a 5-letter alphabet: %zu nodes, max degree 3\n",
              gstar.graph.size());
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
