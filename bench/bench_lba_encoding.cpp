// Experiment E1 (Figure 1 + Section 3.3): encoding LBA executions as good
// inputs and solving Pi_MB with the T' = 2 + (B+1)T algorithm.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "hardness/solver.hpp"
#include "lba/machines.hpp"

namespace {

using namespace lclpath;
using namespace lclpath::hardness;

void EncodeGoodInput(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  const std::size_t n = encoding_length(b, run.steps) + 8;
  for (auto _ : state) {
    auto input = good_input(machine, b, Secret::kA, run.steps, n);
    benchmark::DoNotOptimize(input);
  }
  state.counters["T"] = static_cast<double>(run.steps);
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(EncodeGoodInput)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void SolveGoodInput(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const PiSolver solver(problem, run.steps);
  const std::size_t n = encoding_length(b, run.steps) + 8;
  const auto input = good_input(machine, b, Secret::kA, run.steps, n);
  for (auto _ : state) {
    auto output = solver.solve(input);
    benchmark::DoNotOptimize(output);
  }
  state.counters["radius"] = static_cast<double>(solver.radius());
}
BENCHMARK(SolveGoodInput)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;
  using namespace lclpath::hardness;
  std::printf("=== E1: Pi_MB upper bound T' = 2+(B+1)T (unary counter) ===\n");
  std::printf("%4s %8s %12s %12s %10s\n", "B", "T", "enc length", "radius T'", "verified");
  for (std::size_t b : {2u, 3u, 4u, 5u}) {
    const auto machine = lba::unary_counter();
    const auto run = lba::run(machine, b);
    const PiProblem problem(machine, b);
    const PiSolver solver(problem, run.steps);
    const std::size_t n = encoding_length(b, run.steps) + 8;
    const auto input = good_input(machine, b, Secret::kB, run.steps, n);
    const auto output = solver.solve(input);
    const bool ok = problem.verify(input, output).ok;
    std::printf("%4zu %8zu %12zu %12zu %10s\n", b, run.steps,
                encoding_length(b, run.steps), solver.radius(), ok ? "yes" : "NO");
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
