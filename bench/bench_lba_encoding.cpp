// Experiment E1 (Figure 1 + Section 3.3): encoding LBA executions as good
// inputs and solving Pi_MB with the T' = 2 + (B+1)T algorithm. The encoder
// hot path steps a packed configuration against the machine's compiled
// StepTable (built once, cached on the Machine) instead of re-deriving the
// transition per cell; the solver shares one global first-defect scan
// across all nodes.
//
// `--emit-json[=path]` writes an {"encoding": ...} section (merged into
// BENCH_hardness.json by tools/run_bench_gate.sh); `--perf-smoke[=seconds]`
// bounds the preamble and asserts every encoding verifies.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "hardness/solver.hpp"
#include "lba/machines.hpp"

namespace {

using namespace lclpath;
using namespace lclpath::hardness;
using clock_type = std::chrono::steady_clock;

void EncodeGoodInput(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  const std::size_t n = encoding_length(b, run.steps) + 8;
  for (auto _ : state) {
    auto input = good_input(machine, b, Secret::kA, run.steps, n);
    benchmark::DoNotOptimize(input);
  }
  state.counters["T"] = static_cast<double>(run.steps);
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(EncodeGoodInput)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void SolveGoodInput(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const PiSolver solver(problem, run.steps);
  const std::size_t n = encoding_length(b, run.steps) + 8;
  const auto input = good_input(machine, b, Secret::kA, run.steps, n);
  for (auto _ : state) {
    auto output = solver.solve(input);
    benchmark::DoNotOptimize(output);
  }
  state.counters["radius"] = static_cast<double>(solver.radius());
}
BENCHMARK(SolveGoodInput)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

struct EncodingRow {
  std::size_t b = 0;
  std::size_t steps = 0;
  std::size_t enc_length = 0;
  std::size_t radius = 0;
  bool verified = false;
  double encode_us = 0;
  double solve_us = 0;
};

std::vector<EncodingRow> run_encoding() {
  std::vector<EncodingRow> rows;
  for (std::size_t b : {2u, 3u, 4u, 5u}) {
    const auto machine = lba::unary_counter();
    const auto run = lba::run(machine, b);
    const PiProblem problem(machine, b);
    const PiSolver solver(problem, run.steps);
    const std::size_t n = encoding_length(b, run.steps) + 8;

    EncodingRow row;
    row.b = b;
    row.steps = run.steps;
    row.enc_length = encoding_length(b, run.steps);
    row.radius = solver.radius();

    // Sub-microsecond per call: average a fixed rep count instead of
    // trusting one clock read.
    constexpr std::size_t kReps = 200;
    const auto t0 = clock_type::now();
    std::vector<InLabel> input;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      input = good_input(machine, b, Secret::kB, run.steps, n);
      benchmark::DoNotOptimize(input);
    }
    const auto t1 = clock_type::now();
    row.encode_us = std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;

    const auto t2 = clock_type::now();
    std::vector<OutLabel> output;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      output = solver.solve(input);
      benchmark::DoNotOptimize(output);
    }
    const auto t3 = clock_type::now();
    row.solve_us = std::chrono::duration<double, std::micro>(t3 - t2).count() / kReps;

    row.verified = problem.verify(input, output).ok;
    rows.push_back(row);
  }
  return rows;
}

void print_table(const std::vector<EncodingRow>& rows) {
  std::printf("=== E1: Pi_MB upper bound T' = 2+(B+1)T (unary counter) ===\n");
  std::printf("%4s %8s %12s %12s %10s %12s %12s\n", "B", "T", "enc length",
              "radius T'", "verified", "encode", "solve");
  for (const EncodingRow& r : rows) {
    std::printf("%4zu %8zu %12zu %12zu %10s %10.3fus %10.3fus\n", r.b, r.steps,
                r.enc_length, r.radius, r.verified ? "yes" : "NO", r.encode_us,
                r.solve_us);
  }
  std::printf("\n");
}

void write_json(const std::vector<EncodingRow>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"encoding\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const EncodingRow& r = rows[i];
    std::fprintf(out,
                 "    {\"b\": %zu, \"steps\": %zu, \"enc_length\": %zu, "
                 "\"radius\": %zu, \"verified\": %s, \"encode_us\": %.4f, "
                 "\"solve_us\": %.4f}%s\n",
                 r.b, r.steps, r.enc_length, r.radius, r.verified ? "true" : "false",
                 r.encode_us, r.solve_us, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::Harness harness(argc, argv, "BENCH_encoding.json");
  if (harness.filtered_only()) return harness.run_benchmarks();

  const std::vector<EncodingRow> rows = run_encoding();
  print_table(rows);
  if (harness.emit_json()) write_json(rows, harness.json_path());

  harness.check_smoke_budget();
  bool all_verified = true;
  for (const EncodingRow& r : rows) all_verified = all_verified && r.verified;
  harness.require(all_verified, "every good-input encoding verifies");

  return harness.run_benchmarks();
}
