// Experiment E6 (Lemmas 2-3, Figure 3): normalization blowups — the
// alpha*beta product of Lemma 2 and the beta' = 2^gamma (beta+3) binary
// form of Lemma 3 — plus the cost of building and solving them.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lcl/normalize.hpp"
#include "lcl/catalog.hpp"
#include "lcl/verifier.hpp"

namespace {

using namespace lclpath;

void BuildBinaryNormalized(benchmark::State& state) {
  const PairwiseProblem original = catalog::agreement(Topology::kDirectedPath);
  for (auto _ : state) {
    auto normalized = normalize_binary(original);
    benchmark::DoNotOptimize(normalized.problem.num_outputs());
  }
}
BENCHMARK(BuildBinaryNormalized)->Unit(benchmark::kMillisecond);

void SolveNormalizedEncoding(benchmark::State& state) {
  const PairwiseProblem original = catalog::agreement(Topology::kDirectedPath);
  const BinaryNormalized normalized = normalize_binary(original);
  const Word inputs{0, 2, 2, 1, 2};  // sa 0 0 sb 0
  const Word encoded = normalized.encode_inputs(inputs);
  for (auto _ : state) {
    auto solved = solve_by_dp(normalized.problem, encoded);
    benchmark::DoNotOptimize(solved);
  }
}
BENCHMARK(SolveNormalizedEncoding)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;
  std::printf("=== E6: normalization blowups (Lemmas 2-3) ===\n");
  std::printf("%-28s %8s %8s %10s %10s %8s\n", "problem", "alpha", "beta", "gamma",
              "beta'", "ratio");
  for (const auto& entry : catalog::validation_catalog()) {
    if (is_cycle(entry.problem.topology())) continue;
    if (entry.problem.has_first_constraint()) continue;
    const auto normalized = normalize_binary(entry.problem);
    const double ratio = static_cast<double>(normalized.problem.num_outputs()) /
                         static_cast<double>(entry.problem.num_outputs());
    std::printf("%-28s %8zu %8zu %10zu %10zu %8.1f\n", entry.problem.name().c_str(),
                entry.problem.num_inputs(), entry.problem.num_outputs(),
                normalized.gamma, normalized.problem.num_outputs(), ratio);
  }
  std::printf("(beta' = 2^gamma * (beta + 3) with gamma = 2*ceil(log2 alpha) + 3;\n"
              " the description stays O(beta'^2), which Theorem 5 counts.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
