// Experiment E2 (Figure 2): every corruption kind gets a locally
// checkable error-chain proof from the Section 3.3 solver.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "hardness/solver.hpp"
#include "lba/machines.hpp"

namespace {

using namespace lclpath;
using namespace lclpath::hardness;

const char* corruption_name(Corruption c) {
  switch (c) {
    case Corruption::kWrongInitialTape: return "wrong-initial-tape";
    case Corruption::kTapeTooLong: return "tape-too-long";
    case Corruption::kTapeTooShort: return "tape-too-short";
    case Corruption::kWrongCopy: return "wrong-copy (Fig. 2)";
    case Corruption::kInconsistentState: return "inconsistent-state";
    case Corruption::kWrongTransition: return "wrong-transition";
    case Corruption::kTwoHeads: return "two-heads";
  }
  return "?";
}

void SolveCorrupted(benchmark::State& state) {
  const auto corruption = static_cast<Corruption>(state.range(0));
  const std::size_t b = 3;
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const PiSolver solver(problem, run.steps);
  const std::size_t n = encoding_length(b, run.steps) + 8;
  auto input = good_input(machine, b, Secret::kA, run.steps, n);
  input = corrupt(machine, b, std::move(input), corruption, 2);
  for (auto _ : state) {
    auto output = solver.solve(input);
    benchmark::DoNotOptimize(output);
  }
  state.SetLabel(corruption_name(corruption));
}
BENCHMARK(SolveCorrupted)->DenseRange(0, 6);

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;
  using namespace lclpath::hardness;
  std::printf("=== E2: error chains per corruption kind (B = 3, unary counter) ===\n");
  std::printf("%-22s %10s %16s\n", "corruption", "verified", "error labels used");
  const std::size_t b = 3;
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const PiSolver solver(problem, run.steps);
  const std::size_t n = encoding_length(b, run.steps) + 8;
  for (int k = 0; k <= 6; ++k) {
    const auto corruption = static_cast<Corruption>(k);
    auto input = good_input(machine, b, Secret::kA, run.steps, n);
    try {
      input = corrupt(machine, b, std::move(input), corruption, 2);
    } catch (const std::exception&) {
      std::printf("%-22s %10s\n", corruption_name(corruption), "n/a");
      continue;
    }
    const auto output = solver.solve(input);
    const bool ok = problem.verify(input, output).ok;
    // Count distinct error kinds used.
    int kinds = 0;
    bool seen[16] = {};
    for (const OutLabel& o : output) {
      if (o.is_specific_error() && !seen[static_cast<int>(o.kind)]) {
        seen[static_cast<int>(o.kind)] = true;
        ++kinds;
      }
    }
    std::printf("%-22s %10s %16d\n", corruption_name(corruption), ok ? "yes" : "NO",
                kinds);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
