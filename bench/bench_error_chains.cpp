// Experiment E2 (Figure 2): every corruption kind gets a locally
// checkable error-chain proof from the Section 3.3 solver.
//
// `--emit-json[=path]` writes an {"error_chains": ...} section (merged
// into BENCH_hardness.json by tools/run_bench_gate.sh);
// `--perf-smoke[=seconds]` bounds the preamble and asserts every
// applicable corruption's output verifies.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "hardness/solver.hpp"
#include "lba/machines.hpp"

namespace {

using namespace lclpath;
using namespace lclpath::hardness;
using clock_type = std::chrono::steady_clock;

const char* corruption_name(Corruption c) {
  switch (c) {
    case Corruption::kWrongInitialTape: return "wrong-initial-tape";
    case Corruption::kTapeTooLong: return "tape-too-long";
    case Corruption::kTapeTooShort: return "tape-too-short";
    case Corruption::kWrongCopy: return "wrong-copy (Fig. 2)";
    case Corruption::kInconsistentState: return "inconsistent-state";
    case Corruption::kWrongTransition: return "wrong-transition";
    case Corruption::kTwoHeads: return "two-heads";
  }
  return "?";
}

void SolveCorrupted(benchmark::State& state) {
  const auto corruption = static_cast<Corruption>(state.range(0));
  const std::size_t b = 3;
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const PiSolver solver(problem, run.steps);
  const std::size_t n = encoding_length(b, run.steps) + 8;
  auto input = good_input(machine, b, Secret::kA, run.steps, n);
  input = corrupt(machine, b, std::move(input), corruption, 2);
  for (auto _ : state) {
    auto output = solver.solve(input);
    benchmark::DoNotOptimize(output);
  }
  state.SetLabel(corruption_name(corruption));
}
BENCHMARK(SolveCorrupted)->DenseRange(0, 6);

struct ChainRow {
  std::string corruption;
  bool applicable = false;  ///< corrupt() can produce this kind here
  bool verified = false;
  int error_kinds = 0;      ///< distinct specific-error labels in the proof
  double solve_us = 0;
};

std::vector<ChainRow> run_chains() {
  const std::size_t b = 3;
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const PiSolver solver(problem, run.steps);
  const std::size_t n = encoding_length(b, run.steps) + 8;

  std::vector<ChainRow> rows;
  for (int k = 0; k <= 6; ++k) {
    const auto corruption = static_cast<Corruption>(k);
    ChainRow row;
    row.corruption = corruption_name(corruption);
    auto input = good_input(machine, b, Secret::kA, run.steps, n);
    try {
      input = corrupt(machine, b, std::move(input), corruption, 2);
      row.applicable = true;
    } catch (const std::exception&) {
      rows.push_back(std::move(row));
      continue;
    }

    constexpr std::size_t kReps = 100;
    const auto t0 = clock_type::now();
    std::vector<OutLabel> output;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      output = solver.solve(input);
      benchmark::DoNotOptimize(output);
    }
    const auto t1 = clock_type::now();
    row.solve_us = std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;

    row.verified = problem.verify(input, output).ok;
    bool seen[16] = {};
    for (const OutLabel& o : output) {
      if (o.is_specific_error() && !seen[static_cast<int>(o.kind)]) {
        seen[static_cast<int>(o.kind)] = true;
        ++row.error_kinds;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_table(const std::vector<ChainRow>& rows) {
  std::printf("=== E2: error chains per corruption kind (B = 3, unary counter) ===\n");
  std::printf("%-22s %10s %16s %12s\n", "corruption", "verified", "error labels used",
              "solve");
  for (const ChainRow& r : rows) {
    if (!r.applicable) {
      std::printf("%-22s %10s\n", r.corruption.c_str(), "n/a");
      continue;
    }
    std::printf("%-22s %10s %16d %10.3fus\n", r.corruption.c_str(),
                r.verified ? "yes" : "NO", r.error_kinds, r.solve_us);
  }
  std::printf("\n");
}

using benchjson::json_escaped;

void write_json(const std::vector<ChainRow>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"error_chains\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ChainRow& r = rows[i];
    std::fprintf(out, "    {\"corruption\": \"%s\", \"applicable\": %s, ",
                 json_escaped(r.corruption).c_str(), r.applicable ? "true" : "false");
    if (r.applicable) {
      std::fprintf(out,
                   "\"verified\": %s, \"error_kinds\": %d, \"solve_us\": %.4f}",
                   r.verified ? "true" : "false", r.error_kinds, r.solve_us);
    } else {
      std::fprintf(out, "\"verified\": null, \"error_kinds\": null, \"solve_us\": null}");
    }
    std::fprintf(out, "%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::Harness harness(argc, argv, "BENCH_error_chains.json");
  if (harness.filtered_only()) return harness.run_benchmarks();

  const std::vector<ChainRow> rows = run_chains();
  print_table(rows);
  if (harness.emit_json()) write_json(rows, harness.json_path());

  harness.check_smoke_budget();
  bool all_verified = true;
  for (const ChainRow& r : rows) {
    if (r.applicable) all_verified = all_verified && r.verified;
  }
  harness.require(all_verified, "every applicable corruption's proof verifies");

  return harness.run_benchmarks();
}
