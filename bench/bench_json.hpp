// Shared harness for the bench binaries' CI modes.
//
// Every bench binary speaks the same protocol (one implementation here so
// the binaries can never drift apart):
//
//   --emit-json[=path]     write the fixed-cost experiment measurements as
//                          machine-readable JSON (default path per binary;
//                          committed at the repo root as the tracked
//                          baseline, regenerated and compared by CI);
//   --perf-smoke[=seconds] bound the fixed-cost experiments' wall clock
//                          and run the binary's structural assertions —
//                          the regression tripwires CI fails loudly on;
//   --benchmark_filter=... (google-benchmark's flag) on its own skips the
//                          fixed-cost preamble entirely: a filtered run
//                          wants one benchmark, not the experiment suite.
#pragma once

#include <benchmark/benchmark.h>

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace lclpath::benchjson {

/// Minimal JSON string escaping (problem names are plain catalog strings
/// today, but a quote or backslash must never corrupt a CI artifact).
inline std::string json_escaped(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Current resident set in MB (Linux /proc; 0 where unavailable). Deltas
/// around a phase attribute its working-set growth; allocator caching
/// makes small deltas noisy, but the GB-vs-MB splits benches report with
/// this are orders of magnitude.
inline double current_rss_mb() {
  std::ifstream statm("/proc/self/statm");
  long long pages_total = 0;
  long long pages_resident = 0;
  if (!(statm >> pages_total >> pages_resident)) return 0;
  return static_cast<double>(pages_resident) *
         static_cast<double>(sysconf(_SC_PAGESIZE)) / (1024.0 * 1024.0);
}

/// Process-wide peak resident set in MB (monotone).
inline double peak_rss_mb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Parses and owns the --emit-json / --perf-smoke / filtered-run state for
/// one bench binary's main().
///
///   int main(int argc, char** argv) {
///     benchjson::Harness harness(argc, argv, "BENCH_foo.json");
///     if (harness.filtered_only()) return harness.run_benchmarks();
///     ... fixed-cost experiments, tables ...
///     if (harness.emit_json()) write_json(rows, harness.json_path());
///     harness.check_smoke_budget();
///     harness.require(some_invariant, "what the tripwire guards");
///     return harness.run_benchmarks();
///   }
class Harness {
 public:
  Harness(int argc, char** argv, const char* default_json_path)
      : t0_(std::chrono::steady_clock::now()) {
    for (int i = 0; i < argc; ++i) {
      if (std::strcmp(argv[i], "--emit-json") == 0) {
        json_path_ = default_json_path;
      } else if (std::strncmp(argv[i], "--emit-json=", 12) == 0) {
        json_path_ = argv[i] + 12;
      } else if (std::strcmp(argv[i], "--perf-smoke") == 0) {
        smoke_budget_s_ = 60;
      } else if (std::strncmp(argv[i], "--perf-smoke=", 13) == 0) {
        smoke_budget_s_ = std::atof(argv[i] + 13);
      } else {
        if (std::strstr(argv[i], "--benchmark_filter") != nullptr) filtered_ = true;
        args_.push_back(argv[i]);
      }
    }
  }

  /// Path for the JSON artifact; null when --emit-json was not given.
  const char* json_path() const { return json_path_; }
  bool emit_json() const { return json_path_ != nullptr; }

  double smoke_budget_s() const { return smoke_budget_s_; }
  bool smoke() const { return smoke_budget_s_ >= 0; }

  /// True when the invocation is a plain filtered benchmark run (and not a
  /// JSON/smoke run): the caller should skip the fixed-cost preamble and
  /// go straight to run_benchmarks().
  bool filtered_only() const {
    return filtered_ && json_path_ == nullptr && smoke_budget_s_ < 0;
  }

  /// Seconds since the harness was constructed (the preamble wall clock).
  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

  /// The overall --perf-smoke wall-clock bound. No-op without --perf-smoke.
  void check_smoke_budget() {
    if (!smoke()) return;
    const double elapsed = elapsed_s();
    const bool ok = elapsed <= smoke_budget_s_;
    std::printf("perf smoke: fixed-cost experiments took %.2fs (budget %.0fs): %s\n",
                elapsed, smoke_budget_s_, ok ? "OK" : "FAIL");
    if (!ok) exit_code_ = 1;
  }

  /// A named sub-budget (one experiment bounded tighter than the whole
  /// preamble). No-op without --perf-smoke.
  void check_smoke(const char* label, double value_s, double budget_s) {
    if (!smoke()) return;
    const bool ok = value_s <= budget_s;
    std::printf("perf smoke: %s %.2fs (budget %.2fs): %s\n", label, value_s, budget_s,
                ok ? "OK" : "FAIL");
    if (!ok) exit_code_ = 1;
  }

  /// A structural assertion surfaced through the smoke protocol (cache
  /// actually hit, expected verdicts, ...). No-op without --perf-smoke.
  void require(bool ok, const char* what) {
    if (!smoke()) return;
    std::printf("perf smoke: %s: %s\n", what, ok ? "OK" : "FAIL");
    if (!ok) exit_code_ = 1;
  }

  /// Unconditional failure (engine mismatch and friends — conditions that
  /// must fail the process even outside --perf-smoke runs).
  void fail() { exit_code_ = 1; }

  /// Runs google-benchmark on the stripped argv; returns the process exit
  /// code (any failed check above folds in).
  int run_benchmarks() {
    int argc = static_cast<int>(args_.size());
    benchmark::Initialize(&argc, args_.data());
    benchmark::RunSpecifiedBenchmarks();
    return exit_code_;
  }

 private:
  const char* json_path_ = nullptr;
  double smoke_budget_s_ = -1;
  bool filtered_ = false;
  std::vector<char*> args_;
  int exit_code_ = 0;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace lclpath::benchjson
