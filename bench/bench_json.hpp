// Shared helper for the bench binaries' --emit-json CI artifacts.
#pragma once

#include <string>

namespace lclpath::benchjson {

/// Minimal JSON string escaping (problem names are plain catalog strings
/// today, but a quote or backslash must never corrupt a CI artifact).
inline std::string json_escaped(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace lclpath::benchjson
