// Experiment E3 (Section 3.4): the Omega(T'') lower bound, executed.
// On good inputs the only valid outputs for encoding nodes are the
// secret, so any algorithm must see p0 — we count, per position, how many
// output labels survive the full-path feasibility DP.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "hardness/encoder.hpp"
#include "hardness/pi_problem.hpp"
#include "lba/machines.hpp"

namespace {

using namespace lclpath;
using namespace lclpath::hardness;

/// Feasible output labels per position on the given input (forward +
/// backward DP over the full-edge verifier with the last-node rule).
std::vector<std::size_t> feasible_counts(const PiProblem& problem,
                                         const std::vector<InLabel>& input) {
  const PiLabels& labels = problem.labels();
  const std::size_t n = input.size();
  const std::size_t num_out = labels.num_outputs();
  std::vector<std::vector<char>> reach(n, std::vector<char>(num_out, 0));
  for (Label o = 0; o < num_out; ++o) {
    if (problem.node_ok(0, input[0], labels.decode_output(o), nullptr, nullptr)) {
      reach[0][o] = 1;
    }
  }
  for (std::size_t v = 1; v < n; ++v) {
    for (Label o = 0; o < num_out; ++o) {
      const OutLabel out = labels.decode_output(o);
      for (Label p = 0; p < num_out && !reach[v][o]; ++p) {
        if (!reach[v - 1][p]) continue;
        const OutLabel pred = labels.decode_output(p);
        if (problem.node_ok(v, input[v], out, &input[v - 1], &pred)) reach[v][o] = 1;
      }
    }
  }
  std::vector<std::vector<char>> feasible = reach;
  for (Label o = 0; o < num_out; ++o) {
    if (!problem.allowed_at_last(labels.decode_output(o))) feasible[n - 1][o] = 0;
  }
  for (std::size_t v = n - 1; v > 0; --v) {
    for (Label p = 0; p < num_out; ++p) {
      if (!feasible[v - 1][p]) continue;
      bool extends = false;
      const OutLabel pred = labels.decode_output(p);
      for (Label o = 0; o < num_out && !extends; ++o) {
        if (!feasible[v][o]) continue;
        extends = problem.node_ok(v, input[v], labels.decode_output(o), &input[v - 1],
                                  &pred);
      }
      if (!extends) feasible[v - 1][p] = 0;
    }
  }
  std::vector<std::size_t> counts(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (Label o = 0; o < num_out; ++o) counts[v] += feasible[v][o] ? 1 : 0;
  }
  return counts;
}

void FeasibilityDp(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const std::size_t n = encoding_length(b, run.steps) + 4;
  const auto input = good_input(machine, b, Secret::kA, run.steps, n);
  for (auto _ : state) {
    auto counts = feasible_counts(problem, input);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(FeasibilityDp)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;
  using namespace lclpath::hardness;
  std::printf("=== E3: lower bound — feasible outputs on good inputs ===\n");
  std::printf("Claim (Section 3.4): every node encoding the execution is forced to\n");
  std::printf("the secret; only Empty-padding nodes have any freedom.\n\n");
  for (std::size_t b : {2u, 3u}) {
    const auto machine = lba::unary_counter();
    const auto run = lba::run(machine, b);
    const PiProblem problem(machine, b);
    const std::size_t n = encoding_length(b, run.steps) + 4;
    const auto input = good_input(machine, b, Secret::kA, run.steps, n);
    const auto counts = feasible_counts(problem, input);
    std::size_t forced = 0, total_encoding = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (input[v].kind == InKind::kEmpty) continue;
      ++total_encoding;
      if (counts[v] == 1) ++forced;
    }
    std::printf("B=%zu: %zu / %zu encoding nodes have exactly one valid output\n", b,
                forced, total_encoding);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
