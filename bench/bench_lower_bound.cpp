// Experiment E3 (Section 3.4): the Omega(T'') lower bound, executed.
// On good inputs the only valid outputs for encoding nodes are the
// secret, so any algorithm must see p0 — we count, per position, how many
// output labels survive the full-path feasibility DP.
//
// The DP is hardness::PiFeasibility: per-input-pair transfer matrices over
// the output alphabet, built once and reused across positions, with the
// forward/backward sweeps as word-parallel BitVector x BitMatrix products
// (the scalar reference DP it replaced lives on in
// tests/hardness_diff_test.cpp, pinning this implementation bit for bit).
//
// `--emit-json[=path]` writes a {"lower_bound": ...} section (merged into
// BENCH_hardness.json by tools/run_bench_gate.sh);
// `--perf-smoke[=seconds]` bounds the preamble and asserts the forcing
// claim itself.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "hardness/encoder.hpp"
#include "hardness/feasibility.hpp"
#include "lba/machines.hpp"

namespace {

using namespace lclpath;
using namespace lclpath::hardness;
using clock_type = std::chrono::steady_clock;

void FeasibilityDp(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const PiFeasibility feasibility(problem);
  const std::size_t n = encoding_length(b, run.steps) + 4;
  const auto input = good_input(machine, b, Secret::kA, run.steps, n);
  for (auto _ : state) {
    auto counts = feasibility.feasible_counts(input);
    benchmark::DoNotOptimize(counts);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(FeasibilityDp)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

struct LowerBoundRow {
  std::size_t b = 0;
  std::size_t n = 0;
  std::size_t encoding_nodes = 0;
  std::size_t forced = 0;
  std::size_t transfers = 0;  ///< distinct transfer matrices the DP needed
  double dp_ms = 0;           ///< transfer-warm feasibility sweep
};

std::vector<LowerBoundRow> run_lower_bound() {
  std::vector<LowerBoundRow> rows;
  for (std::size_t b : {2u, 3u, 4u}) {
    const auto machine = lba::unary_counter();
    const auto run = lba::run(machine, b);
    const PiProblem problem(machine, b);
    const PiFeasibility feasibility(problem);
    const std::size_t n = encoding_length(b, run.steps) + 4;
    const auto input = good_input(machine, b, Secret::kA, run.steps, n);

    LowerBoundRow row;
    row.b = b;
    row.n = n;

    const auto counts = feasibility.feasible_counts(input);  // warms transfers
    const auto t0 = clock_type::now();
    const auto counts_warm = feasibility.feasible_counts(input);
    const auto t1 = clock_type::now();
    row.dp_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    row.transfers = feasibility.cached_transfers();
    benchmark::DoNotOptimize(counts_warm);

    for (std::size_t v = 0; v < n; ++v) {
      if (input[v].kind == InKind::kEmpty) continue;
      ++row.encoding_nodes;
      if (counts[v] == 1) ++row.forced;
    }
    rows.push_back(row);
  }
  return rows;
}

void print_table(const std::vector<LowerBoundRow>& rows) {
  std::printf("=== E3: lower bound — feasible outputs on good inputs ===\n");
  std::printf("Claim (Section 3.4): every node encoding the execution is forced to\n");
  std::printf("the secret; only Empty-padding nodes have any freedom.\n\n");
  std::printf("%4s %8s %10s %10s %10s %12s\n", "B", "n", "encoding", "forced",
              "transfers", "dp sweep");
  for (const LowerBoundRow& r : rows) {
    std::printf("%4zu %8zu %10zu %10zu %10zu %10.4fms\n", r.b, r.n, r.encoding_nodes,
                r.forced, r.transfers, r.dp_ms);
  }
  std::printf("(transfers = distinct (input, input) pairs whose output-transfer\n"
              " matrix the DP built once and reused across all positions.)\n\n");
}

void write_json(const std::vector<LowerBoundRow>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"lower_bound\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LowerBoundRow& r = rows[i];
    std::fprintf(out,
                 "    {\"b\": %zu, \"n\": %zu, \"encoding_nodes\": %zu, "
                 "\"forced\": %zu, \"transfers\": %zu, \"dp_ms\": %.4f}%s\n",
                 r.b, r.n, r.encoding_nodes, r.forced, r.transfers, r.dp_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::Harness harness(argc, argv, "BENCH_lower_bound.json");
  if (harness.filtered_only()) return harness.run_benchmarks();

  const std::vector<LowerBoundRow> rows = run_lower_bound();
  print_table(rows);
  if (harness.emit_json()) write_json(rows, harness.json_path());

  harness.check_smoke_budget();
  // The Section 3.4 claim itself: all encoding nodes forced to one output.
  bool all_forced = true;
  for (const LowerBoundRow& r : rows) {
    all_forced = all_forced && r.forced == r.encoding_nodes;
  }
  harness.require(all_forced, "every encoding node is forced to the secret");

  return harness.run_benchmarks();
}
