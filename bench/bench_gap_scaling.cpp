// Experiment E9: the three-regime separation. For one problem from each
// class, report the synthesized algorithm's view radius ("rounds") across
// n — the paper's O(1) / Theta(log* n) / Theta(n) landscape. Also times
// one full simulated execution per regime at a moderate n.
//
// Experiment E10: decide_linear_gap scaling — the factorized aggregate
// engine (default) against the legacy pair-wise sweep across growing block
// domains, including the Section 3.7 undirected lifts whose ~10^5-point
// domains the pair-wise engine cannot search. `--emit-json[=path]` writes
// the measurements as machine-readable JSON (default BENCH_linear_gap.json;
// uploaded as a CI artifact).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "decide/classifier.hpp"
#include "hardness/undirected.hpp"

namespace {

using namespace lclpath;

void SimulateRegime(benchmark::State& state) {
  // 0 = constant, 1 = logstar, 2 = linear
  const long regime = state.range(0);
  const PairwiseProblem problem = regime == 0   ? catalog::constant_output()
                                  : regime == 1 ? catalog::coloring(3)
                                                : catalog::agreement();
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  Rng rng(static_cast<std::uint64_t>(regime) + 11);
  // Keep n moderate so the O(n^2)-ish simulation cost stays benchable.
  const std::size_t n = regime == 2 ? 4096 : 2 * algorithm->radius(1 << 20) + 33;
  Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
  for (auto _ : state) {
    const auto sim = simulate(*algorithm, problem, instance);
    if (!sim.verdict.ok) state.SkipWithError("invalid output");
    benchmark::DoNotOptimize(sim.outputs);
  }
  state.SetLabel(problem.name() + " n=" + std::to_string(n) +
                 " radius=" + std::to_string(algorithm->radius(n)));
}
BENCHMARK(SimulateRegime)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------- E10

/// The pair-wise engine is quadratic in domain points; beyond this it
/// stops answering in benchable time (on the lifts it effectively never
/// terminates — the ROADMAP open item this PR's engine resolved).
constexpr std::size_t kPairwiseDomainLimit = 4096;

struct GapMeasurement {
  std::string problem;
  std::size_t points = 0;
  std::size_t contexts = 0;
  std::size_t monoid = 0;
  bool feasible = false;
  bool mismatch = false;  ///< engines disagreed on feasibility
  double factorized_s = 0;
  double pairwise_s = -1;  ///< < 0: not run (domain beyond the oracle limit)
};

std::vector<PairwiseProblem> gap_workload() {
  std::vector<PairwiseProblem> problems = {
      catalog::coloring(3),
      catalog::input_gated_coloring(),
      catalog::shift_input(),
      catalog::agreement(),
      hardness::lift_path_to_cycle(catalog::agreement(Topology::kDirectedPath)),
      hardness::lift_to_undirected(catalog::constant_output(Topology::kDirectedPath)),
      hardness::lift_to_undirected(catalog::two_coloring(Topology::kDirectedPath)),
      hardness::lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath)),
  };
  return problems;
}

std::vector<GapMeasurement> run_gap_scaling() {
  std::vector<GapMeasurement> rows;
  using clock = std::chrono::steady_clock;
  for (const PairwiseProblem& problem : gap_workload()) {
    GapMeasurement row;
    row.problem = problem.name() + " on " + to_string(problem.topology());
    const Monoid monoid = Monoid::enumerate(TransitionSystem::build(problem));
    row.monoid = monoid.size();
    row.points = linear_gap_domain_size(monoid, &row.contexts);
    const auto t0 = clock::now();
    const LinearGapCertificate fac = decide_linear_gap(monoid);
    const auto t1 = clock::now();
    row.feasible = fac.feasible;
    row.factorized_s = std::chrono::duration<double>(t1 - t0).count();
    if (row.points <= kPairwiseDomainLimit) {
      const auto t2 = clock::now();
      const LinearGapCertificate pair =
          decide_linear_gap(monoid, LinearGapEngine::kPairwise);
      const auto t3 = clock::now();
      row.pairwise_s = std::chrono::duration<double>(t3 - t2).count();
      if (pair.feasible != fac.feasible) {
        row.mismatch = true;
        std::fprintf(stderr, "ENGINE MISMATCH on %s\n", row.problem.c_str());
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_gap_table(const std::vector<GapMeasurement>& rows) {
  std::printf("=== E10: decide_linear_gap — factorized vs pair-wise ===\n");
  std::printf("%-44s %9s %6s %9s %12s %12s\n", "problem", "points", "ctx", "feasible",
              "factorized", "pairwise");
  for (const GapMeasurement& r : rows) {
    char pairwise[32];
    if (r.pairwise_s >= 0) {
      std::snprintf(pairwise, sizeof pairwise, "%.4fs", r.pairwise_s);
    } else {
      std::snprintf(pairwise, sizeof pairwise, "(skipped)");
    }
    std::printf("%-44s %9zu %6zu %9s %11.4fs %12s\n", r.problem.c_str(), r.points,
                r.contexts, r.feasible ? "yes" : "no", r.factorized_s, pairwise);
  }
  std::printf("(pairwise runs only on domains <= %zu points: it is quadratic in "
              "them,\n and effectively non-terminating on the lifted domains.)\n\n",
              kPairwiseDomainLimit);
}

using benchjson::json_escaped;

void write_gap_json(const std::vector<GapMeasurement>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GapMeasurement& r = rows[i];
    std::fprintf(out,
                 "  {\"problem\": \"%s\", \"points\": %zu, \"contexts\": %zu, "
                 "\"monoid\": %zu, \"feasible\": %s, \"engine_mismatch\": %s, "
                 "\"factorized_s\": %.6f, \"pairwise_s\": ",
                 json_escaped(r.problem).c_str(), r.points, r.contexts, r.monoid,
                 r.feasible ? "true" : "false", r.mismatch ? "true" : "false",
                 r.factorized_s);
    if (r.pairwise_s >= 0) {
      std::fprintf(out, "%.6f}%s\n", r.pairwise_s, i + 1 < rows.size() ? "," : "");
    } else {
      std::fprintf(out, "null}%s\n", i + 1 < rows.size() ? "," : "");
    }
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("wrote %s (%zu rows)\n\n", path, rows.size());
}

void DecideLinearGapLiftedColoring(benchmark::State& state) {
  const PairwiseProblem lifted =
      hardness::lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath));
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(lifted));
  for (auto _ : state) {
    const LinearGapCertificate cert = decide_linear_gap(monoid);
    if (!cert.feasible) state.SkipWithError("expected feasible");
    benchmark::DoNotOptimize(cert.choice.size());
  }
  state.counters["points"] = static_cast<double>(linear_gap_domain_size(monoid));
}
BENCHMARK(DecideLinearGapLiftedColoring)->Unit(benchmark::kMillisecond);

void DecideLinearGapEngines(benchmark::State& state) {
  // Both engines on a pair-wise-affordable domain (shift-input, 1024 pts).
  const LinearGapEngine engine =
      state.range(0) == 0 ? LinearGapEngine::kFactorized : LinearGapEngine::kPairwise;
  const Monoid monoid =
      Monoid::enumerate(TransitionSystem::build(catalog::shift_input()));
  for (auto _ : state) {
    const LinearGapCertificate cert = decide_linear_gap(monoid, engine);
    benchmark::DoNotOptimize(cert.feasible);
  }
  state.SetLabel(engine == LinearGapEngine::kFactorized ? "factorized" : "pairwise");
}
BENCHMARK(DecideLinearGapEngines)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;

  // --emit-json[=path] is ours, not google-benchmark's; strip it.
  const char* json_path = nullptr;
  bool filtered = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-json") == 0) {
      json_path = "BENCH_linear_gap.json";
    } else if (std::strncmp(argv[i], "--emit-json=", 12) == 0) {
      json_path = argv[i] + 12;
    } else {
      if (std::strstr(argv[i], "--benchmark_filter") != nullptr) filtered = true;
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  int exit_code = 0;

  // A filtered run wants one benchmark, not the fixed-cost experiment
  // preamble (same convention as bench_classifier).
  if (filtered && json_path == nullptr) {
    benchmark::Initialize(&filtered_argc, args.data());
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }

  std::printf("=== E9: rounds (view radius) vs n for the three regimes ===\n");
  const auto constant = classify(catalog::constant_output()).synthesize();
  const auto logstar = classify(catalog::coloring(3)).synthesize();
  const auto linear = classify(catalog::agreement()).synthesize();
  std::printf("%12s %14s %14s %14s\n", "n", "O(1) rounds", "log* rounds", "Theta(n) rounds");
  for (std::size_t n : {1u << 10, 1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 20}) {
    std::printf("%12zu %14zu %14zu %14zu\n", n, constant->radius(n), logstar->radius(n),
                linear->radius(n));
  }
  std::printf("(log*(2^64) = 5: the log* term hides inside the constant; the shape\n"
              " to check is constant-vs-constant-vs-linear, as in the paper.)\n\n");

  const std::vector<GapMeasurement> rows = run_gap_scaling();
  print_gap_table(rows);
  if (json_path != nullptr) write_gap_json(rows, json_path);
  for (const GapMeasurement& r : rows) {
    // An engine disagreement must fail the process (CI runs this binary as
    // its own step), not just leave a line in the log.
    if (r.mismatch) exit_code = 1;
  }

  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return exit_code;
}
