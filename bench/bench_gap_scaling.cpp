// Experiment E9: the three-regime separation. For one problem from each
// class, report the synthesized algorithm's view radius ("rounds") across
// n — the paper's O(1) / Theta(log* n) / Theta(n) landscape. Also times
// one full simulated execution per regime at a moderate n.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "decide/classifier.hpp"

namespace {

using namespace lclpath;

void SimulateRegime(benchmark::State& state) {
  // 0 = constant, 1 = logstar, 2 = linear
  const long regime = state.range(0);
  const PairwiseProblem problem = regime == 0   ? catalog::constant_output()
                                  : regime == 1 ? catalog::coloring(3)
                                                : catalog::agreement();
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  Rng rng(static_cast<std::uint64_t>(regime) + 11);
  // Keep n moderate so the O(n^2)-ish simulation cost stays benchable.
  const std::size_t n = regime == 2 ? 4096 : 2 * algorithm->radius(1 << 20) + 33;
  Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
  for (auto _ : state) {
    const auto sim = simulate(*algorithm, problem, instance);
    if (!sim.verdict.ok) state.SkipWithError("invalid output");
    benchmark::DoNotOptimize(sim.outputs);
  }
  state.SetLabel(problem.name() + " n=" + std::to_string(n) +
                 " radius=" + std::to_string(algorithm->radius(n)));
}
BENCHMARK(SimulateRegime)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;
  std::printf("=== E9: rounds (view radius) vs n for the three regimes ===\n");
  const auto constant = classify(catalog::constant_output()).synthesize();
  const auto logstar = classify(catalog::coloring(3)).synthesize();
  const auto linear = classify(catalog::agreement()).synthesize();
  std::printf("%12s %14s %14s %14s\n", "n", "O(1) rounds", "log* rounds", "Theta(n) rounds");
  for (std::size_t n : {1u << 10, 1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 20}) {
    std::printf("%12u %14zu %14zu %14zu\n", n, constant->radius(n), logstar->radius(n),
                linear->radius(n));
  }
  std::printf("(log*(2^64) = 5: the log* term hides inside the constant; the shape\n"
              " to check is constant-vs-constant-vs-linear, as in the paper.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
