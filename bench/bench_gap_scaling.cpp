// Experiment E9: the three-regime separation. For one problem from each
// class, report the synthesized algorithm's view radius ("rounds") across
// n — the paper's O(1) / Theta(log* n) / Theta(n) landscape. Also times
// one full simulated execution per regime at a moderate n.
//
// Experiment E10: decide_linear_gap scaling — the factorized aggregate
// engine (default) against the legacy pair-wise sweep across growing block
// domains, including the Section 3.7 undirected lifts whose huge domains
// the pair-wise engine cannot search. Since ISSUE 5 the certificate build
// is phase-split: `search` is the factorized aggregate search emitting the
// lazy class-indexed certificate (cost independent of domain size),
// `materialize` is the extra cost of the dense point-table backend (run
// only on domains where it is affordable), and `lookup` is the amortized
// lazy value_at cost the synthesized algorithms pay at runtime. Rows also
// report resident-memory deltas per phase, and an end-to-end classify()
// table covers the full decision procedure — the lifted shift-input row
// (monoid 930, ~2.9 * 10^7 points) is the ISSUE 5 headline.
//
// `--emit-json[=path]` writes the measurements as machine-readable JSON
// (default BENCH_linear_gap.json; committed at the repo root as the
// tracked baseline and uploaded fresh as a CI artifact).
// `--perf-smoke[=seconds]` additionally enforces a wall-clock bound on the
// fixed-cost experiments and — the regression tripwire — bounds the lifted
// shift-input end-to-end classify at a sixth of the budget: a slide back
// toward the old ~30 s eager materialization fails the CI step loudly.
#include <benchmark/benchmark.h>

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "decide/classifier.hpp"
#include "hardness/undirected.hpp"

namespace {

using namespace lclpath;
using clock_type = std::chrono::steady_clock;

using benchjson::current_rss_mb;
using benchjson::peak_rss_mb;

void SimulateRegime(benchmark::State& state) {
  // 0 = constant, 1 = logstar, 2 = linear
  const long regime = state.range(0);
  const PairwiseProblem problem = regime == 0   ? catalog::constant_output()
                                  : regime == 1 ? catalog::coloring(3)
                                                : catalog::agreement();
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  Rng rng(static_cast<std::uint64_t>(regime) + 11);
  // Keep n moderate so the O(n^2)-ish simulation cost stays benchable.
  const std::size_t n = regime == 2 ? 4096 : 2 * algorithm->radius(1 << 20) + 33;
  Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
  for (auto _ : state) {
    const auto sim = simulate(*algorithm, problem, instance);
    if (!sim.verdict.ok) state.SkipWithError("invalid output");
    benchmark::DoNotOptimize(sim.outputs);
  }
  state.SetLabel(problem.name() + " n=" + std::to_string(n) +
                 " radius=" + std::to_string(algorithm->radius(n)));
}
BENCHMARK(SimulateRegime)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------- E10

/// The pair-wise engine is quadratic in domain points; beyond this it
/// stops answering in benchable time (on the lifts it effectively never
/// terminates — the ROADMAP open item PR 2's engine resolved).
constexpr std::size_t kPairwiseDomainLimit = 4096;

/// Dense materialization is linear in domain points with a hash insert per
/// point; past this it costs tens of seconds and GBs (the ISSUE 5
/// motivation), so the bench only materializes where it stays snappy.
constexpr std::size_t kMaterializeDomainLimit = 1u << 21;

/// Lazy value_at lookups per row for the amortized-lookup column.
constexpr std::size_t kLookupSamples = 10000;

struct GapMeasurement {
  std::string problem;
  std::size_t points = 0;
  std::size_t contexts = 0;
  std::size_t monoid = 0;
  bool feasible = false;
  bool mismatch = false;  ///< engines disagreed on feasibility
  double search_s = 0;          ///< factorized search -> lazy certificate
  double search_rss_mb = 0;     ///< resident-set delta across the search
  double materialize_s = -1;    ///< dense backend extra cost (< 0: skipped)
  double materialize_rss_mb = 0;///< resident-set delta across materialization
  double lookup_us = -1;        ///< mean lazy value_at (< 0: infeasible)
  double pairwise_s = -1;       ///< < 0: not run (domain beyond the oracle limit)
};

struct EndToEndMeasurement {
  std::string problem;
  std::string complexity;
  double classify_s = 0;
};

std::vector<PairwiseProblem> gap_workload() {
  std::vector<PairwiseProblem> problems = {
      catalog::coloring(3),
      catalog::input_gated_coloring(),
      catalog::shift_input(),
      catalog::agreement(),
      hardness::lift_path_to_cycle(catalog::agreement(Topology::kDirectedPath)),
      hardness::lift_to_undirected(catalog::constant_output(Topology::kDirectedPath)),
      hardness::lift_to_undirected(catalog::two_coloring(Topology::kDirectedPath)),
      hardness::lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath)),
      hardness::lift_to_undirected(catalog::shift_input()),
  };
  return problems;
}

/// The lifted shift-input: the huge-feasible-domain headline whose
/// end-to-end time the perf smoke bounds.
const char* kSmokeProblem = "shift-input (undirected) on undirected cycle";

/// Deterministic interior sample points for the lookup column, spread
/// across the certificate's context layers and the input alphabet.
std::vector<BlockPoint> sample_points(const Monoid& monoid,
                                      const LinearGapCertificate& cert) {
  std::vector<std::size_t> contexts = monoid.layer_at(cert.ell_ctx);
  const std::vector<std::size_t> next = monoid.layer_at(cert.ell_ctx + 1);
  contexts.insert(contexts.end(), next.begin(), next.end());
  const std::size_t alpha = monoid.transitions().num_inputs();
  std::vector<BlockPoint> sample;
  sample.reserve(kLookupSamples);
  for (std::size_t i = 0; i < kLookupSamples; ++i) {
    sample.push_back(BlockPoint{BlockKind::kInterior,
                                contexts[(i * 131) % contexts.size()],
                                static_cast<Label>(i % alpha),
                                static_cast<Label>((i / 3) % alpha),
                                contexts[(i * 197) % contexts.size()]});
  }
  return sample;
}

std::vector<GapMeasurement> run_gap_scaling() {
  std::vector<GapMeasurement> rows;
  for (const PairwiseProblem& problem : gap_workload()) {
    GapMeasurement row;
    row.problem = problem.name() + " on " + to_string(problem.topology());
    const Monoid monoid = Monoid::enumerate(TransitionSystem::build(problem));
    row.monoid = monoid.size();
    row.points = linear_gap_domain_size(monoid, &row.contexts);

    const double rss0 = current_rss_mb();
    const auto t0 = clock_type::now();
    const LinearGapCertificate lazy =
        decide_linear_gap(monoid, LinearGapEngine::kFactorized, CertificateMode::kLazy);
    const auto t1 = clock_type::now();
    row.feasible = lazy.feasible;
    row.search_s = std::chrono::duration<double>(t1 - t0).count();
    row.search_rss_mb = current_rss_mb() - rss0;

    if (row.feasible && row.points <= kMaterializeDomainLimit) {
      const double rss1 = current_rss_mb();
      const auto t2 = clock_type::now();
      const LinearGapCertificate dense = decide_linear_gap(
          monoid, LinearGapEngine::kFactorized, CertificateMode::kDense);
      const auto t3 = clock_type::now();
      // The dense run repeats the search; its extra cost is the
      // materialization phase.
      row.materialize_s =
          std::chrono::duration<double>(t3 - t2).count() - row.search_s;
      if (row.materialize_s < 0) row.materialize_s = 0;
      row.materialize_rss_mb = current_rss_mb() - rss1;
      benchmark::DoNotOptimize(dense.domain_size());
    }

    if (row.feasible) {
      const std::vector<BlockPoint> sample = sample_points(monoid, lazy);
      const auto t4 = clock_type::now();
      std::size_t checksum = 0;
      for (const BlockPoint& p : sample) checksum += lazy.value_at(p).a;
      const auto t5 = clock_type::now();
      benchmark::DoNotOptimize(checksum);
      row.lookup_us = std::chrono::duration<double, std::micro>(t5 - t4).count() /
                      static_cast<double>(sample.size());
    }

    if (row.points <= kPairwiseDomainLimit) {
      const auto t6 = clock_type::now();
      const LinearGapCertificate pair =
          decide_linear_gap(monoid, LinearGapEngine::kPairwise);
      const auto t7 = clock_type::now();
      row.pairwise_s = std::chrono::duration<double>(t7 - t6).count();
      if (pair.feasible != lazy.feasible) {
        row.mismatch = true;
        std::fprintf(stderr, "ENGINE MISMATCH on %s\n", row.problem.c_str());
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<EndToEndMeasurement> run_end_to_end() {
  std::vector<EndToEndMeasurement> rows;
  for (const PairwiseProblem& problem : gap_workload()) {
    EndToEndMeasurement row;
    row.problem = problem.name() + " on " + to_string(problem.topology());
    const auto t0 = clock_type::now();
    const ClassifiedProblem result = classify(problem);
    const auto t1 = clock_type::now();
    row.classify_s = std::chrono::duration<double>(t1 - t0).count();
    row.complexity = to_string(result.complexity());
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_gap_table(const std::vector<GapMeasurement>& rows) {
  std::printf("=== E10: decide_linear_gap — certificate phases and engines ===\n");
  std::printf("%-44s %9s %6s %9s %9s %12s %10s %12s\n", "problem", "points", "ctx",
              "feasible", "search", "materialize", "lookup", "pairwise");
  for (const GapMeasurement& r : rows) {
    char materialize[32];
    if (r.materialize_s >= 0) {
      std::snprintf(materialize, sizeof materialize, "%.4fs", r.materialize_s);
    } else {
      std::snprintf(materialize, sizeof materialize, "(skipped)");
    }
    char lookup[32];
    if (r.lookup_us >= 0) {
      std::snprintf(lookup, sizeof lookup, "%.3fus", r.lookup_us);
    } else {
      std::snprintf(lookup, sizeof lookup, "-");
    }
    char pairwise[32];
    if (r.pairwise_s >= 0) {
      std::snprintf(pairwise, sizeof pairwise, "%.4fs", r.pairwise_s);
    } else {
      std::snprintf(pairwise, sizeof pairwise, "(skipped)");
    }
    std::printf("%-44s %9zu %6zu %9s %8.4fs %12s %10s %12s\n", r.problem.c_str(),
                r.points, r.contexts, r.feasible ? "yes" : "no", r.search_s,
                materialize, lookup, pairwise);
  }
  std::printf(
      "(search = factorized aggregate search emitting the lazy class-indexed\n"
      " certificate; materialize = extra cost of the dense point tables, run only\n"
      " on domains <= %zu points; lookup = mean lazy value_at over %zu sampled\n"
      " points; pairwise runs only on domains <= %zu points — it is quadratic in\n"
      " them, and effectively non-terminating on the lifted domains.)\n\n",
      static_cast<std::size_t>(kMaterializeDomainLimit),
      static_cast<std::size_t>(kLookupSamples),
      static_cast<std::size_t>(kPairwiseDomainLimit));
}

void print_end_to_end(const std::vector<EndToEndMeasurement>& rows) {
  std::printf("=== E10b: end-to-end classify() (monoid + solvability + both gaps) ===\n");
  std::printf("%-44s %12s %12s\n", "problem", "class", "classify");
  for (const EndToEndMeasurement& r : rows) {
    std::printf("%-44s %12s %11.4fs\n", r.problem.c_str(), r.complexity.c_str(),
                r.classify_s);
  }
  std::printf("(peak RSS this run %.1f MB; before the lazy certificate backend the\n"
              " lifted shift-input row alone took ~30 s and ~4.4 GB of dense tables.)\n\n",
              peak_rss_mb());
}

using benchjson::json_escaped;

void write_gap_json(const std::vector<GapMeasurement>& rows,
                    const std::vector<EndToEndMeasurement>& e2e, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  auto optional_s = [out](const char* key, double value, const char* suffix) {
    if (value >= 0) {
      std::fprintf(out, "\"%s\": %.6f%s", key, value, suffix);
    } else {
      std::fprintf(out, "\"%s\": null%s", key, suffix);
    }
  };
  std::fprintf(out, "{\n  \"decide\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GapMeasurement& r = rows[i];
    std::fprintf(out,
                 "    {\"problem\": \"%s\", \"points\": %zu, \"contexts\": %zu, "
                 "\"monoid\": %zu, \"feasible\": %s, \"engine_mismatch\": %s, "
                 "\"search_s\": %.6f, \"search_rss_mb\": %.2f, ",
                 json_escaped(r.problem).c_str(), r.points, r.contexts, r.monoid,
                 r.feasible ? "true" : "false", r.mismatch ? "true" : "false",
                 r.search_s, r.search_rss_mb);
    optional_s("materialize_s", r.materialize_s, ", ");
    std::fprintf(out, "\"materialize_rss_mb\": %.2f, ", r.materialize_rss_mb);
    optional_s("lookup_us", r.lookup_us, ", ");
    optional_s("pairwise_s", r.pairwise_s, "");
    std::fprintf(out, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"end_to_end\": [\n");
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const EndToEndMeasurement& r = e2e[i];
    std::fprintf(out,
                 "    {\"problem\": \"%s\", \"complexity\": \"%s\", "
                 "\"classify_s\": %.6f}%s\n",
                 json_escaped(r.problem).c_str(), json_escaped(r.complexity).c_str(),
                 r.classify_s, i + 1 < e2e.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"peak_rss_mb\": %.1f\n}\n", peak_rss_mb());
  std::fclose(out);
  std::printf("wrote %s (%zu decide rows, %zu end-to-end rows)\n\n", path, rows.size(),
              e2e.size());
}

void DecideLinearGapLiftedColoring(benchmark::State& state) {
  const PairwiseProblem lifted =
      hardness::lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath));
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(lifted));
  for (auto _ : state) {
    const LinearGapCertificate cert = decide_linear_gap(monoid);
    if (!cert.feasible) state.SkipWithError("expected feasible");
    benchmark::DoNotOptimize(cert.domain_size());
  }
  state.counters["points"] = static_cast<double>(linear_gap_domain_size(monoid));
}
BENCHMARK(DecideLinearGapLiftedColoring)->Unit(benchmark::kMillisecond);

void DecideLinearGapLiftedShiftInput(benchmark::State& state) {
  // The ISSUE 5 headline: monoid 930, ~2.9e7 points — only benchable at
  // all because the default certificate is the lazy class solution.
  const PairwiseProblem lifted = hardness::lift_to_undirected(catalog::shift_input());
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(lifted));
  for (auto _ : state) {
    const LinearGapCertificate cert = decide_linear_gap(monoid);
    if (!cert.feasible) state.SkipWithError("expected feasible");
    benchmark::DoNotOptimize(cert.domain_size());
  }
  state.counters["points"] = static_cast<double>(linear_gap_domain_size(monoid));
}
BENCHMARK(DecideLinearGapLiftedShiftInput)->Unit(benchmark::kMillisecond);

void LazyCertificateLookup(benchmark::State& state) {
  const PairwiseProblem lifted =
      hardness::lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath));
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(lifted));
  const LinearGapCertificate cert =
      decide_linear_gap(monoid, LinearGapEngine::kFactorized, CertificateMode::kLazy);
  const std::vector<BlockPoint> sample = sample_points(monoid, cert);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cert.value_at(sample[i]));
    i = (i + 1) % sample.size();
  }
}
BENCHMARK(LazyCertificateLookup);

void DecideLinearGapEngines(benchmark::State& state) {
  // Both engines on a pair-wise-affordable domain (shift-input, 1024 pts).
  const LinearGapEngine engine =
      state.range(0) == 0 ? LinearGapEngine::kFactorized : LinearGapEngine::kPairwise;
  const Monoid monoid =
      Monoid::enumerate(TransitionSystem::build(catalog::shift_input()));
  for (auto _ : state) {
    const LinearGapCertificate cert = decide_linear_gap(monoid, engine);
    benchmark::DoNotOptimize(cert.feasible);
  }
  state.SetLabel(engine == LinearGapEngine::kFactorized ? "factorized" : "pairwise");
}
BENCHMARK(DecideLinearGapEngines)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;

  benchjson::Harness harness(argc, argv, "BENCH_linear_gap.json");
  if (harness.filtered_only()) return harness.run_benchmarks();

  std::printf("=== E9: rounds (view radius) vs n for the three regimes ===\n");
  const auto constant = classify(catalog::constant_output()).synthesize();
  const auto logstar = classify(catalog::coloring(3)).synthesize();
  const auto linear = classify(catalog::agreement()).synthesize();
  std::printf("%12s %14s %14s %14s\n", "n", "O(1) rounds", "log* rounds", "Theta(n) rounds");
  for (std::size_t n : {1u << 10, 1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 20}) {
    std::printf("%12zu %14zu %14zu %14zu\n", n, constant->radius(n), logstar->radius(n),
                linear->radius(n));
  }
  std::printf("(log*(2^64) = 5: the log* term hides inside the constant; the shape\n"
              " to check is constant-vs-constant-vs-linear, as in the paper.)\n\n");

  const std::vector<GapMeasurement> rows = run_gap_scaling();
  print_gap_table(rows);
  const std::vector<EndToEndMeasurement> e2e = run_end_to_end();
  print_end_to_end(e2e);
  if (harness.emit_json()) write_gap_json(rows, e2e, harness.json_path());
  for (const GapMeasurement& r : rows) {
    // An engine disagreement must fail the process (CI runs this binary as
    // its own step), not just leave a line in the log.
    if (r.mismatch) harness.fail();
  }

  harness.check_smoke_budget();
  // The ISSUE 5 regression tripwire: the lifted shift-input end-to-end
  // classify must stay lazy-certificate fast (~1 s in Release). A sixth
  // of the smoke budget (10 s under CI's --perf-smoke=60) is ~10x
  // headroom over the healthy time yet far below the ~30 s
  // eager-materialization regression — a partial slide fails too.
  bool found = false;
  for (const EndToEndMeasurement& r : e2e) {
    if (r.problem != kSmokeProblem) continue;
    found = true;
    harness.check_smoke("lifted shift-input end-to-end", r.classify_s,
                        harness.smoke_budget_s() / 6);
  }
  harness.require(found, "lifted shift-input row present");

  return harness.run_benchmarks();
}
