// Experiment E4 (Theorem 4): beta-normalized LCLs solvable in constant
// time whose constant is 2^Omega(beta). The binary-counter LBA runs for
// Theta(2^B) steps; Pi_MB's complexity T' = 2 + (B+1)T then grows
// exponentially in the output-alphabet size beta = Theta(B * |Q|).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "hardness/solver.hpp"
#include "lba/machines.hpp"

namespace {

using namespace lclpath;
using namespace lclpath::hardness;

void BinaryCounterRun(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto run = lba::run(lba::binary_counter(), b);
    benchmark::DoNotOptimize(run.steps);
  }
}
BENCHMARK(BinaryCounterRun)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;
  using namespace lclpath::hardness;
  std::printf("=== E4 (Theorem 4): 2^Omega(beta) constant-time complexity ===\n");
  std::printf("%4s %10s %12s %12s %14s\n", "B", "beta", "T (steps)", "T' rounds",
              "T' / 2^B");
  for (std::size_t b = 2; b <= 12; ++b) {
    const auto machine = lba::binary_counter();
    const auto run = lba::run(machine, b);
    const PiLabels labels(machine, b);
    const std::size_t beta = labels.num_outputs();
    const std::size_t t_prime = 2 + (b + 1) * (run.steps + 1);
    std::printf("%4zu %10zu %12zu %12zu %14.2f\n", b, beta, run.steps, t_prime,
                static_cast<double>(t_prime) / std::pow(2.0, static_cast<double>(b)));
  }
  std::printf("(T' grows exponentially in B while beta grows linearly: the\n"
              " constant-time complexity is 2^Omega(beta), Theorem 4.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
