// Experiment E4 (Theorem 4): beta-normalized LCLs solvable in constant
// time whose constant is 2^Omega(beta). The binary-counter LBA runs for
// Theta(2^B) steps; Pi_MB's complexity T' = 2 + (B+1)T then grows
// exponentially in the output-alphabet size beta = Theta(B * |Q|).
//
// `--emit-json[=path]` writes a {"theorem4": ...} section (merged into
// BENCH_hardness.json by tools/run_bench_gate.sh);
// `--perf-smoke[=seconds]` bounds the preamble wall clock.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "hardness/solver.hpp"
#include "lba/machines.hpp"

namespace {

using namespace lclpath;
using namespace lclpath::hardness;
using clock_type = std::chrono::steady_clock;

void BinaryCounterRun(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto run = lba::run(lba::binary_counter(), b);
    benchmark::DoNotOptimize(run.steps);
  }
}
BENCHMARK(BinaryCounterRun)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

struct Theorem4Row {
  std::size_t b = 0;
  std::size_t beta = 0;
  std::size_t steps = 0;
  std::size_t t_prime = 0;
  double run_ms = 0;
};

std::vector<Theorem4Row> run_theorem4() {
  std::vector<Theorem4Row> rows;
  for (std::size_t b = 2; b <= 12; ++b) {
    const auto machine = lba::binary_counter();
    const auto t0 = clock_type::now();
    const auto run = lba::run(machine, b);
    const auto t1 = clock_type::now();
    const PiLabels labels(machine, b);
    Theorem4Row row;
    row.b = b;
    row.beta = labels.num_outputs();
    row.steps = run.steps;
    row.t_prime = 2 + (b + 1) * (run.steps + 1);
    row.run_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    rows.push_back(row);
  }
  return rows;
}

void print_table(const std::vector<Theorem4Row>& rows) {
  std::printf("=== E4 (Theorem 4): 2^Omega(beta) constant-time complexity ===\n");
  std::printf("%4s %10s %12s %12s %14s %12s\n", "B", "beta", "T (steps)", "T' rounds",
              "T' / 2^B", "run");
  for (const Theorem4Row& r : rows) {
    std::printf("%4zu %10zu %12zu %12zu %14.2f %10.3fms\n", r.b, r.beta, r.steps,
                r.t_prime,
                static_cast<double>(r.t_prime) / std::pow(2.0, static_cast<double>(r.b)),
                r.run_ms);
  }
  std::printf("(T' grows exponentially in B while beta grows linearly: the\n"
              " constant-time complexity is 2^Omega(beta), Theorem 4.)\n\n");
}

void write_json(const std::vector<Theorem4Row>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"theorem4\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Theorem4Row& r = rows[i];
    std::fprintf(out,
                 "    {\"b\": %zu, \"beta\": %zu, \"steps\": %zu, \"t_prime\": %zu, "
                 "\"run_ms\": %.4f}%s\n",
                 r.b, r.beta, r.steps, r.t_prime, r.run_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::Harness harness(argc, argv, "BENCH_theorem4.json");
  if (harness.filtered_only()) return harness.run_benchmarks();

  const std::vector<Theorem4Row> rows = run_theorem4();
  print_table(rows);
  if (harness.emit_json()) write_json(rows, harness.json_path());

  harness.check_smoke_budget();
  // The theorem's shape: T = 2^B - 1 exactly for the binary counter.
  bool exponential = true;
  for (const Theorem4Row& r : rows) {
    exponential = exponential && (r.steps + 1 == (std::size_t{1} << r.b));
  }
  harness.require(exponential, "binary counter runs exactly 2^B - 1 steps");

  return harness.run_benchmarks();
}
