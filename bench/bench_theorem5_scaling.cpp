// Experiment E5 (Theorem 5): PSPACE-hardness in practice. Deciding
// Pi_MB's class means deciding whether the LBA halts; the generic decider
// would have to traverse a type space that blows up with B. We report the
// decision-relevant state-space sizes: the LBA's configuration space and
// the monoid budget the pairwise normalization of Pi_MB would need.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "hardness/labels.hpp"
#include "lba/machines.hpp"

namespace {

using namespace lclpath;
using namespace lclpath::hardness;

void LbaHaltingDecision(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto run = lba::run(lba::binary_counter(), b);
    benchmark::DoNotOptimize(run.halts);
  }
  state.counters["steps"] =
      static_cast<double>(lba::run(lba::binary_counter(), b).steps);
}
BENCHMARK(LbaHaltingDecision)->Arg(6)->Arg(10)->Arg(14)->Arg(18)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace lclpath;
  using namespace lclpath::hardness;
  std::printf("=== E5 (Theorem 5): decision state space vs B ===\n");
  std::printf("%4s %14s %14s %22s\n", "B", "|Sigma_in|", "|Sigma_out|",
              "LBA config space");
  for (std::size_t b = 2; b <= 10; ++b) {
    const auto machine = lba::binary_counter();
    const PiLabels labels(machine, b);
    double configs = static_cast<double>(machine.num_states()) * static_cast<double>(b);
    for (std::size_t k = 0; k + 2 < b; ++k) configs *= 2.0;  // interior cells
    std::printf("%4zu %14zu %14zu %22.3g\n", b, labels.num_inputs(),
                labels.num_outputs(), configs);
  }
  std::printf("(The classifier must distinguish halting from looping LBAs —\n"
              " PSPACE-hard; the exponential configuration space is the shape\n"
              " the theorem predicts. Deciding Pi_MB through the generic\n"
              " pairwise decider is correspondingly budget-capped.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
