// Experiment E5 (Theorem 5): PSPACE-hardness in practice. Deciding
// Pi_MB's class means deciding whether the LBA halts; the generic decider
// would have to traverse a type space that blows up with B. We report the
// decision-relevant state-space sizes, time the halting decision itself
// (the packed-configuration stepper with flat-table loop detection, and
// the O(B)-memory Brent variant that reaches tape sizes an order of
// magnitude past the trace-keeping one), and run the theorem as a batch
// study: Pi_MB's pairwise product fed through classify_batch is
// budget-capped — the *recorded failure* is the observable — while the
// Section 3.7 lift workload classifies and exercises the batch engine's
// dedup and cross-call caches.
//
// `--emit-json[=path]` writes a {"theorem5": ...} section (merged with the
// other hardness benches' sections into BENCH_hardness.json by
// tools/run_bench_gate.sh). `--perf-smoke[=seconds]` bounds the preamble
// and asserts the study's expected shape.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "hardness/labels.hpp"
#include "hardness/study.hpp"
#include "lba/machines.hpp"

namespace {

using namespace lclpath;
using namespace lclpath::hardness;
using clock_type = std::chrono::steady_clock;

void LbaHaltingDecision(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto run = lba::run(lba::binary_counter(), b);
    benchmark::DoNotOptimize(run.halts);
  }
  state.counters["steps"] =
      static_cast<double>(lba::run(lba::binary_counter(), b).steps);
}
BENCHMARK(LbaHaltingDecision)->Arg(6)->Arg(10)->Arg(14)->Arg(18)->Unit(benchmark::kMillisecond);

void LbaHaltingHeadless(benchmark::State& state) {
  // Brent's algorithm: O(B) memory, no per-step configuration store — the
  // variant that scales the halting decision to B = 22 (4.2M steps, 16x
  // the trace-keeping benchmark's largest size) in comparable wall-clock.
  const auto b = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto stats = lba::run_headless(lba::binary_counter(), b);
    benchmark::DoNotOptimize(stats.halts);
  }
  state.counters["steps"] =
      static_cast<double>(lba::run_headless(lba::binary_counter(), b).steps);
}
BENCHMARK(LbaHaltingHeadless)->Arg(14)->Arg(18)->Arg(22)->Unit(benchmark::kMillisecond);

struct StateSpaceRow {
  std::size_t b = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  double configs = 0;
};

struct HaltingRow {
  std::size_t b = 0;
  std::size_t steps = 0;
  double run_ms = 0;       ///< trace-keeping run (loop detection + trace)
  double headless_ms = -1; ///< Brent variant (< 0: not run at this size)
};

struct StudyMeasurement {
  // Pi_MB pairwise product, budget-capped classification.
  std::size_t pi_outputs = 0;
  double pi_build_ms = 0;
  std::size_t pi_budget = 0;
  std::size_t pi_failed = 0;  ///< expected 1: Theorem 5's observable
  double pi_classify_s = 0;
  // Lift workload through the batch engine, cold then cache-warm.
  std::size_t lift_problems = 0;
  std::size_t lift_ok = 0;
  std::size_t lift_deduplicated = 0;
  std::size_t lift_warm_from_cache = 0;
  std::uint64_t lift_monoid_misses = 0;
  double lift_cold_s = 0;
  double lift_warm_s = 0;
};

std::vector<StateSpaceRow> run_state_space() {
  std::vector<StateSpaceRow> rows;
  for (std::size_t b = 2; b <= 10; ++b) {
    const auto machine = lba::binary_counter();
    const PiLabels labels(machine, b);
    StateSpaceRow row;
    row.b = b;
    row.inputs = labels.num_inputs();
    row.outputs = labels.num_outputs();
    row.configs = static_cast<double>(machine.num_states()) * static_cast<double>(b);
    for (std::size_t k = 0; k + 2 < b; ++k) row.configs *= 2.0;  // interior cells
    rows.push_back(row);
  }
  return rows;
}

std::vector<HaltingRow> run_halting() {
  std::vector<HaltingRow> rows;
  for (std::size_t b : {6u, 10u, 14u, 18u, 20u, 22u}) {
    HaltingRow row;
    row.b = b;
    if (b <= 18) {
      // The trace-keeping run stores every configuration; past B = 18 the
      // arena alone is the bottleneck — that is the point of the headless
      // rows below it.
      const auto t0 = clock_type::now();
      const auto result = lba::run(lba::binary_counter(), b);
      const auto t1 = clock_type::now();
      row.steps = result.steps;
      row.run_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    }
    const auto t2 = clock_type::now();
    const auto stats = lba::run_headless(lba::binary_counter(), b);
    const auto t3 = clock_type::now();
    row.steps = stats.steps;
    row.headless_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();
    rows.push_back(row);
  }
  return rows;
}

StudyMeasurement run_study() {
  StudyMeasurement m;

  const auto t0 = clock_type::now();
  const PairwiseProblem pi = pi_pairwise(lba::immediate_halt(), 2);
  const auto t1 = clock_type::now();
  m.pi_outputs = pi.num_outputs();
  m.pi_build_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  StudyOptions capped;
  capped.max_monoid = 200;  // overflows in ~1 s; the overflow is the result
  m.pi_budget = capped.max_monoid;
  std::vector<PairwiseProblem> pi_batch{pi};
  const auto t2 = clock_type::now();
  const StudyResult pi_result = classify_hardness(pi_batch, capped);
  const auto t3 = clock_type::now();
  m.pi_failed = pi_result.summary.failed;
  m.pi_classify_s = std::chrono::duration<double>(t3 - t2).count();

  const std::vector<PairwiseProblem> lifts = lift_workload();
  m.lift_problems = lifts.size();
  MonoidCache monoids;
  BatchCache batch;
  StudyOptions shared;
  shared.monoid_cache = &monoids;
  shared.batch_cache = &batch;
  const auto t4 = clock_type::now();
  const StudyResult cold = classify_hardness(lifts, shared);
  const auto t5 = clock_type::now();
  const StudyResult warm = classify_hardness(lifts, shared);
  const auto t6 = clock_type::now();
  m.lift_ok = cold.summary.ok;
  m.lift_deduplicated = cold.summary.deduplicated;
  m.lift_warm_from_cache = warm.summary.from_cache;
  m.lift_monoid_misses = cold.monoid_misses;
  m.lift_cold_s = std::chrono::duration<double>(t5 - t4).count();
  m.lift_warm_s = std::chrono::duration<double>(t6 - t5).count();
  return m;
}

void print_tables(const std::vector<StateSpaceRow>& space,
                  const std::vector<HaltingRow>& halting, const StudyMeasurement& m) {
  std::printf("=== E5 (Theorem 5): decision state space vs B ===\n");
  std::printf("%4s %14s %14s %22s\n", "B", "|Sigma_in|", "|Sigma_out|",
              "LBA config space");
  for (const StateSpaceRow& r : space) {
    std::printf("%4zu %14zu %14zu %22.3g\n", r.b, r.inputs, r.outputs, r.configs);
  }
  std::printf("(The classifier must distinguish halting from looping LBAs —\n"
              " PSPACE-hard; the exponential configuration space is the shape\n"
              " the theorem predicts.)\n\n");

  std::printf("=== E5b: the halting decision itself (binary counter) ===\n");
  std::printf("%4s %12s %12s %12s\n", "B", "steps", "run", "headless");
  for (const HaltingRow& r : halting) {
    char run_col[32];
    if (r.run_ms > 0) {
      std::snprintf(run_col, sizeof run_col, "%.3fms", r.run_ms);
    } else {
      std::snprintf(run_col, sizeof run_col, "(skipped)");
    }
    std::printf("%4zu %12zu %12s %10.3fms\n", r.b, r.steps, run_col, r.headless_ms);
  }
  std::printf("(run keeps the full configuration trace for loop certificates;\n"
              " headless is Brent's O(B)-memory variant, which is how B = 22 —\n"
              " 16x the largest trace-keeping size — stays benchable.)\n\n");

  std::printf("=== E5c: Pi_MB through the batch classifier (the theorem, executed) ===\n");
  std::printf("pi_pairwise(immediate-halt, B=2): %zu product outputs, built in %.1f ms\n",
              m.pi_outputs, m.pi_build_ms);
  std::printf("classify at monoid budget %zu: %zu budget-capped in %.2f s (expected:\n"
              "deciding Pi_MB's class is deciding LBA halting — the cap IS the result)\n",
              m.pi_budget, m.pi_failed, m.pi_classify_s);
  std::printf("lift workload (%zu problems): cold %.2f s (%zu ok, %zu dedup, %llu\n"
              "monoid builds), warm %.4f s (%zu from cache)\n\n",
              m.lift_problems, m.lift_cold_s, m.lift_ok, m.lift_deduplicated,
              static_cast<unsigned long long>(m.lift_monoid_misses), m.lift_warm_s,
              m.lift_warm_from_cache);
}

void write_json(const std::vector<StateSpaceRow>& space,
                const std::vector<HaltingRow>& halting, const StudyMeasurement& m,
                const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"theorem5\": {\n    \"state_space\": [\n");
  for (std::size_t i = 0; i < space.size(); ++i) {
    const StateSpaceRow& r = space[i];
    std::fprintf(out,
                 "      {\"b\": %zu, \"inputs\": %zu, \"outputs\": %zu, "
                 "\"configs\": %.6g}%s\n",
                 r.b, r.inputs, r.outputs, r.configs,
                 i + 1 < space.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n    \"halting\": [\n");
  for (std::size_t i = 0; i < halting.size(); ++i) {
    const HaltingRow& r = halting[i];
    std::fprintf(out, "      {\"b\": %zu, \"steps\": %zu, ", r.b, r.steps);
    if (r.run_ms > 0) {
      std::fprintf(out, "\"run_ms\": %.4f, ", r.run_ms);
    } else {
      std::fprintf(out, "\"run_ms\": null, ");
    }
    std::fprintf(out, "\"headless_ms\": %.4f}%s\n", r.headless_ms,
                 i + 1 < halting.size() ? "," : "");
  }
  std::fprintf(out,
               "    ],\n    \"study\": {\"pi_outputs\": %zu, \"pi_build_ms\": %.4f, "
               "\"pi_budget\": %zu, \"pi_failed\": %zu, \"pi_classify_s\": %.4f,\n"
               "      \"lift_problems\": %zu, \"lift_ok\": %zu, "
               "\"lift_deduplicated\": %zu, \"lift_warm_from_cache\": %zu, "
               "\"lift_monoid_misses\": %llu,\n"
               "      \"lift_cold_s\": %.4f, \"lift_warm_s\": %.6f}\n  }\n}\n",
               m.pi_outputs, m.pi_build_ms, m.pi_budget, m.pi_failed, m.pi_classify_s,
               m.lift_problems, m.lift_ok, m.lift_deduplicated, m.lift_warm_from_cache,
               static_cast<unsigned long long>(m.lift_monoid_misses), m.lift_cold_s,
               m.lift_warm_s);
  std::fclose(out);
  std::printf("wrote %s\n\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::Harness harness(argc, argv, "BENCH_theorem5.json");
  if (harness.filtered_only()) return harness.run_benchmarks();

  const std::vector<StateSpaceRow> space = run_state_space();
  const std::vector<HaltingRow> halting = run_halting();
  const StudyMeasurement study = run_study();
  print_tables(space, halting, study);
  if (harness.emit_json()) write_json(space, halting, study, harness.json_path());

  harness.check_smoke_budget();
  // Theorem 5's observable: the generic decider must hit its budget on
  // Pi_MB — a pass here would mean the product construction degenerated.
  harness.require(study.pi_failed == 1, "Pi_MB classification is budget-capped");
  harness.require(study.lift_ok == study.lift_problems, "lift workload classifies");
  harness.require(study.lift_deduplicated >= 1,
                  "renamed duplicate deduplicated in-batch");
  harness.require(study.lift_warm_from_cache == study.lift_problems,
                  "warm pass served entirely from the batch cache");

  return harness.run_benchmarks();
}
