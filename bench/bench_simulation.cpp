// Million-node engine benchmark: the chunked, thread-pooled, streaming
// simulator (src/local/simulator.cpp) driving synthesized log* / O(1)
// algorithms and the gather-all baseline at n = 10^6-10^7 across all four
// topologies, including the lifted monoid-90 family whose structured
// regime only opens up at n ~ 10^5-10^6.
//
// Four experiment sections, one JSON artifact (BENCH_simulation.json):
//   engine         one simulate() per workload at large n (default engine
//                  options) — the headline per-topology scaling rows;
//   scaling        the same 10^6-node workload at threads=1 vs threads=8
//                  (the parallel-speedup tripwire, gated on the runner's
//                  hardware concurrency);
//   no_materialize a 10^7-node run with keep_outputs=false — streaming
//                  verification only, no output Word; the tripwire bounds
//                  the RSS growth well below the 4 n bytes materializing
//                  the outputs would cost;
//   gather         memoized vs honest gather-all (and the synthesized
//                  algorithm) on one instance — the O(n) vs Theta(n^2)
//                  full-view-regime split.
//
// Speaks the shared benchjson::Harness protocol: `--emit-json[=path]`
// writes the measurements, `--perf-smoke[=s]` bounds the preamble wall
// clock and runs the structural tripwires above.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "decide/classifier.hpp"
#include "hardness/undirected.hpp"

namespace {

using namespace lclpath;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

// ------------------------------------------------------------------ engine

struct EngineRow {
  std::string problem;
  std::string topology;
  std::string complexity;
  std::string algorithm;
  std::size_t n = 0;
  std::size_t radius = 0;
  double engine_s = 0;
  bool valid = false;
};

EngineRow run_engine_row(const PairwiseProblem& problem, std::size_t n_request,
                         std::uint64_t seed) {
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  EngineRow row;
  row.problem = problem.name();
  row.topology = to_string(problem.topology());
  row.complexity = to_string(result.complexity());
  row.algorithm = algorithm->name();
  row.n = n_request;
  row.radius = algorithm->radius(row.n);
  Rng rng(seed);
  Instance instance =
      random_instance(problem.topology(), row.n, problem.num_inputs(), rng);
  const auto t0 = clock_type::now();
  const SimulationResult sim = simulate(*algorithm, problem, instance);
  row.engine_s = seconds_since(t0);
  row.valid = sim.verdict.ok;
  if (!row.valid) {
    std::fprintf(stderr, "INVALID OUTPUT on %s (%s)\n", row.problem.c_str(),
                 row.topology.c_str());
  }
  return row;
}

std::vector<EngineRow> run_engine_rows() {
  std::vector<EngineRow> rows;
  const Topology topologies[] = {Topology::kDirectedCycle, Topology::kDirectedPath,
                                 Topology::kUndirectedCycle, Topology::kUndirectedPath};
  constexpr std::size_t kMillion = 1000000;
  std::uint64_t seed = 400;
  for (Topology t : topologies) {
    rows.push_back(run_engine_row(catalog::coloring(3, t), kMillion, seed++));
    rows.push_back(run_engine_row(catalog::constant_output(t), kMillion, seed++));
  }
  // The lifted monoid-90 family (undirected lifts of the path problems):
  // structured radii ~7 * 10^4, so honest structured-regime execution
  // needs n ~ 10^5-10^6 — exactly what the old per-node simulator could
  // not afford. Cycle instances stay a radius above the 2r + 1 threshold
  // (at n = 2r + O(1) every view is nearly the whole cycle, and the
  // per-node window cost is physics, not engine overhead).
  {
    const PairwiseProblem lifted =
        hardness::lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath));
    const ClassifiedProblem result = classify(lifted);
    const std::size_t r = result.synthesize()->radius(std::size_t{1} << 40);
    rows.push_back(run_engine_row(lifted, std::max<std::size_t>(100000, 2 * r + 33), 420));
  }
  {
    const PairwiseProblem lifted = hardness::lift_to_undirected(catalog::coloring(3));
    const ClassifiedProblem result = classify(lifted);
    const std::size_t r = result.synthesize()->radius(std::size_t{1} << 40);
    rows.push_back(run_engine_row(lifted, std::max<std::size_t>(100000, 3 * r + 33), 421));
  }
  return rows;
}

void print_engine_table(const std::vector<EngineRow>& rows) {
  std::printf("=== chunked engine, one simulate() per workload ===\n");
  std::printf("%-32s %-16s %-10s %9s %8s %10s\n", "problem", "topology", "class", "n",
              "radius", "engine");
  for (const EngineRow& r : rows) {
    std::printf("%-32s %-16s %-10s %9zu %8zu %9.3fs%s\n", r.problem.c_str(),
                r.topology.c_str(), r.complexity.c_str(), r.n, r.radius, r.engine_s,
                r.valid ? "" : "  INVALID");
  }
  std::printf("\n");
}

// ----------------------------------------------------------------- scaling

struct ScalingRow {
  std::string problem;
  std::string topology;
  std::size_t n = 0;
  std::size_t multi_threads = 0;
  double single_s = 0;
  double multi_s = 0;
  bool valid = false;
};

ScalingRow run_scaling_row() {
  const PairwiseProblem problem = catalog::coloring(3, Topology::kDirectedCycle);
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  ScalingRow row;
  row.problem = problem.name();
  row.topology = to_string(problem.topology());
  row.n = 1000000;
  row.multi_threads = 8;
  Rng rng(430);
  Instance instance =
      random_instance(problem.topology(), row.n, problem.num_inputs(), rng);
  SimulationOptions single;
  single.threads = 1;
  SimulationOptions multi;
  multi.threads = row.multi_threads;
  const auto t0 = clock_type::now();
  const SimulationResult serial = simulate(*algorithm, problem, instance, single);
  const auto t1 = clock_type::now();
  const SimulationResult pooled = simulate(*algorithm, problem, instance, multi);
  row.single_s = std::chrono::duration<double>(t1 - t0).count();
  row.multi_s = seconds_since(t1);
  row.valid = serial.verdict.ok && pooled.verdict.ok && serial.outputs == pooled.outputs;
  return row;
}

// ----------------------------------------------------- streaming at 10^7

struct StreamRow {
  std::string problem;
  std::string topology;
  std::size_t n = 0;
  std::size_t radius = 0;
  double stream_s = 0;
  double rss_delta_mb = 0;
  double outputs_mb = 0;  ///< what materializing the output Word would cost
  bool valid = false;
};

StreamRow run_stream_row() {
  const PairwiseProblem problem = catalog::coloring(3, Topology::kDirectedCycle);
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  StreamRow row;
  row.problem = problem.name();
  row.topology = to_string(problem.topology());
  row.n = 10000000;
  row.radius = algorithm->radius(row.n);
  row.outputs_mb =
      static_cast<double>(row.n * sizeof(Label)) / (1024.0 * 1024.0);
  Rng rng(440);
  Instance instance =
      random_instance(problem.topology(), row.n, problem.num_inputs(), rng);
  SimulationOptions options;
  options.keep_outputs = false;
  // Bounded per-worker windows: the RSS ceiling below is the point of the
  // row, so pin the chunk size instead of letting auto pick n / 4.
  options.chunk_size = std::size_t{1} << 16;
  const double rss0 = benchjson::current_rss_mb();
  const auto t0 = clock_type::now();
  const SimulationResult sim = simulate(*algorithm, problem, instance, options);
  row.stream_s = seconds_since(t0);
  row.rss_delta_mb = benchjson::current_rss_mb() - rss0;
  row.valid = sim.verdict.ok && sim.outputs.empty();
  return row;
}

// ------------------------------------------------------------------ gather

struct GatherRow {
  std::string problem;
  std::string topology;
  std::size_t n = 0;
  double memo_s = 0;    ///< gather-all, memoized canonical solve (default)
  double honest_s = 0;  ///< gather-all, full_view_memo = false (Theta(n^2))
  double synth_s = 0;   ///< the synthesized algorithm on the same instance
  bool valid = false;
};

GatherRow run_gather_row() {
  const PairwiseProblem problem = catalog::coloring(3, Topology::kDirectedCycle);
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  const GatherAllAlgorithm gather(result.problem());
  GatherRow row;
  row.problem = problem.name();
  row.topology = to_string(problem.topology());
  row.n = 4000;
  Rng rng(450);
  Instance instance =
      random_instance(problem.topology(), row.n, problem.num_inputs(), rng);
  SimulationOptions honest;
  honest.full_view_memo = false;
  const auto t0 = clock_type::now();
  const SimulationResult memo = simulate(gather, problem, instance);
  const auto t1 = clock_type::now();
  const SimulationResult slow = simulate(gather, problem, instance, honest);
  const auto t2 = clock_type::now();
  const SimulationResult synth = simulate(*algorithm, problem, instance);
  row.memo_s = std::chrono::duration<double>(t1 - t0).count();
  row.honest_s = std::chrono::duration<double>(t2 - t1).count();
  row.synth_s = seconds_since(t2);
  row.valid = memo.verdict.ok && slow.verdict.ok && synth.verdict.ok &&
              memo.outputs == slow.outputs;
  return row;
}

// -------------------------------------------------------------------- JSON

using benchjson::json_escaped;

void write_json(const std::vector<EngineRow>& engine, const ScalingRow& scaling,
                const StreamRow& stream, const GatherRow& gather, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"engine\": [\n");
  for (std::size_t i = 0; i < engine.size(); ++i) {
    const EngineRow& r = engine[i];
    std::fprintf(out,
                 "    {\"problem\": \"%s\", \"topology\": \"%s\", \"class\": \"%s\", "
                 "\"algorithm\": \"%s\", \"n\": %zu, \"radius\": %zu, "
                 "\"engine_s\": %.6f, \"valid\": %s}%s\n",
                 json_escaped(r.problem).c_str(), json_escaped(r.topology).c_str(),
                 json_escaped(r.complexity).c_str(), json_escaped(r.algorithm).c_str(),
                 r.n, r.radius, r.engine_s, r.valid ? "true" : "false",
                 i + 1 < engine.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"scaling\": {\"problem\": \"%s\", \"topology\": \"%s\", \"n\": %zu, "
               "\"multi_threads\": %zu, \"single_s\": %.6f, \"multi_s\": %.6f, "
               "\"valid\": %s},\n",
               json_escaped(scaling.problem).c_str(),
               json_escaped(scaling.topology).c_str(), scaling.n, scaling.multi_threads,
               scaling.single_s, scaling.multi_s, scaling.valid ? "true" : "false");
  std::fprintf(out,
               "  \"no_materialize\": {\"problem\": \"%s\", \"topology\": \"%s\", "
               "\"n\": %zu, \"radius\": %zu, \"stream_s\": %.6f, "
               "\"rss_delta_mb\": %.1f, \"outputs_mb\": %.1f, \"valid\": %s},\n",
               json_escaped(stream.problem).c_str(), json_escaped(stream.topology).c_str(),
               stream.n, stream.radius, stream.stream_s, stream.rss_delta_mb,
               stream.outputs_mb, stream.valid ? "true" : "false");
  std::fprintf(out,
               "  \"gather\": {\"problem\": \"%s\", \"topology\": \"%s\", \"n\": %zu, "
               "\"memo_s\": %.6f, \"honest_s\": %.6f, \"synth_s\": %.6f, "
               "\"valid\": %s}\n}\n",
               json_escaped(gather.problem).c_str(), json_escaped(gather.topology).c_str(),
               gather.n, gather.memo_s, gather.honest_s, gather.synth_s,
               gather.valid ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n\n", path);
}

// ---------------------------------------------- registered micro-benchmark

void SimulateSpanColoringDirectedCycle(benchmark::State& state) {
  const PairwiseProblem problem = catalog::coloring(3, Topology::kDirectedCycle);
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  Rng rng(460);
  const std::size_t n = 1 << 20;
  Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
  SimulationOptions options;
  options.keep_outputs = false;
  for (auto _ : state) {
    const auto sim = simulate(*algorithm, problem, instance, options);
    if (!sim.verdict.ok) state.SkipWithError("invalid output");
    benchmark::DoNotOptimize(sim.verdict);
  }
  state.SetLabel(algorithm->name() + " n=" + std::to_string(n));
}
BENCHMARK(SimulateSpanColoringDirectedCycle)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchjson::Harness harness(argc, argv, "BENCH_simulation.json");
  if (harness.filtered_only()) return harness.run_benchmarks();

  const std::vector<EngineRow> engine = run_engine_rows();
  print_engine_table(engine);
  const ScalingRow scaling = run_scaling_row();
  std::printf("=== thread scaling at n=%zu ===\n", scaling.n);
  std::printf("threads=1: %.3fs   threads=%zu: %.3fs   (outputs bit-identical: %s)\n\n",
              scaling.single_s, scaling.multi_threads, scaling.multi_s,
              scaling.valid ? "yes" : "NO");
  const StreamRow stream = run_stream_row();
  std::printf("=== streaming verify at n=%zu, keep_outputs=false ===\n", stream.n);
  std::printf("%.3fs, RSS delta %.1f MB (materialized outputs would be %.1f MB)\n\n",
              stream.stream_s, stream.rss_delta_mb, stream.outputs_mb);
  const GatherRow gather = run_gather_row();
  std::printf("=== gather-all full-view regime at n=%zu ===\n", gather.n);
  std::printf("memoized: %.4fs   honest Theta(n^2): %.4fs   synthesized: %.4fs\n\n",
              gather.memo_s, gather.honest_s, gather.synth_s);

  if (harness.emit_json()) write_json(engine, scaling, stream, gather, harness.json_path());

  for (const EngineRow& r : engine) {
    if (!r.valid) harness.fail();
    const std::string tag = r.problem + " (" + r.topology + ")";
    harness.require(r.radius < r.n, ("radius < n for " + tag).c_str());
  }
  if (!scaling.valid || !stream.valid || !gather.valid) harness.fail();
  // Parallel speedup is a property of the runner: only demand it where
  // the hardware can deliver it (the committed baseline may come from a
  // single-core container).
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (hw >= 8) {
    harness.require(scaling.multi_s < scaling.single_s / 4,
                    "8-thread run at least 4x faster than single on 10^6 nodes");
  } else if (hw >= 2) {
    harness.require(scaling.multi_s < scaling.single_s,
                    "multi-thread run beats single on 10^6 nodes");
  }
  harness.require(stream.rss_delta_mb < stream.outputs_mb / 2,
                  "no-materialize RSS growth well below the output Word");
  harness.check_smoke("10^7-node streaming simulate+verify", stream.stream_s, 30);
  harness.require(gather.memo_s <= gather.honest_s,
                  "memoized gather-all beats the honest Theta(n^2) baseline");
  harness.require(gather.synth_s <= gather.honest_s,
                  "synthesized beats honest gather-all");
  harness.check_smoke_budget();
  return harness.run_benchmarks();
}
