// Experiment E10: the type machinery (Lemmas 12-15) — monoid sizes and
// enumeration cost vs. alphabet sizes, plus pumping throughput and the
// MonoidCache cold-vs-cached classify_batch sweep. `--emit-json[=path]`
// writes the measurements as machine-readable JSON (default
// BENCH_monoid.json; uploaded as a CI artifact, the perf trajectory of the
// monoid layer). `--perf-smoke[=seconds]` additionally enforces a generous
// wall-clock bound on the fixed-cost experiments (CI's Release-job monoid
// regression tripwire): nonzero exit if exceeded.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "automata/pumping.hpp"
#include "bench_json.hpp"
#include "core/rng.hpp"
#include "decide/batch.hpp"
#include "lcl/catalog.hpp"

namespace {

using namespace lclpath;
using clock_type = std::chrono::steady_clock;

/// Random pairwise problem with given alphabet sizes (fixed seed per size
/// so runs are comparable).
PairwiseProblem random_problem(std::size_t alpha, std::size_t beta, std::uint64_t seed) {
  Rng rng(seed);
  Alphabet in, out;
  for (std::size_t i = 0; i < alpha; ++i) in.add("i" + std::to_string(i));
  for (std::size_t o = 0; o < beta; ++o) out.add("o" + std::to_string(o));
  PairwiseProblem p("rnd-a" + std::to_string(alpha) + "-b" + std::to_string(beta), in, out,
                    Topology::kDirectedCycle);
  for (Label i = 0; i < alpha; ++i)
    for (Label o = 0; o < beta; ++o)
      if (rng.next_bool(3, 4)) p.allow_node(i, o);
  for (Label a = 0; a < beta; ++a)
    for (Label b = 0; b < beta; ++b)
      if (rng.next_bool(3, 4)) p.allow_edge(a, b);
  return p;
}

/// The E10 grid: the random (alpha, beta) problems also registered as
/// google-benchmark cases below.
const std::vector<std::pair<std::size_t, std::size_t>>& e10_grid() {
  static const std::vector<std::pair<std::size_t, std::size_t>> grid = {
      {2, 2}, {2, 3}, {2, 4}, {3, 3}, {3, 4}, {2, 5}};
  return grid;
}

struct EnumRow {
  std::string problem;
  std::size_t elements = 0;
  std::size_t ell_pump = 0;
  double enumerate_ms = 0;
};

EnumRow time_enumeration(const std::string& name, const PairwiseProblem& problem) {
  EnumRow row;
  row.problem = name;
  const TransitionSystem ts = TransitionSystem::build(problem);
  {
    const Monoid warmup = Monoid::enumerate(ts);  // touch caches, size the run
    row.elements = warmup.size();
    row.ell_pump = warmup.ell_pump();
  }
  // Enough repeats for sub-ms monoids to measure; one is plenty beyond.
  const int iters = row.elements < 100 ? 20 : (row.elements < 500 ? 5 : 1);
  const auto t0 = clock_type::now();
  for (int i = 0; i < iters; ++i) {
    const Monoid monoid = Monoid::enumerate(ts);
    benchmark::DoNotOptimize(monoid.size());
  }
  const auto t1 = clock_type::now();
  row.enumerate_ms = std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
  return row;
}

struct SweepResult {
  std::size_t problems = 0;
  double cold_s = 0;
  double cached_s = 0;
  std::uint64_t monoid_hits = 0;
  std::uint64_t monoid_misses = 0;
};

/// Cold-vs-cached classify_batch over the coloring(k) k = 2..6 sweep: the
/// cold pass fills the caller-owned MonoidCache, the cached pass replays
/// the identical batch against it — the delta is monoid construction.
SweepResult run_batch_sweep() {
  std::vector<PairwiseProblem> problems;
  for (std::size_t k = 2; k <= 6; ++k) problems.push_back(catalog::coloring(k));

  MonoidCache cache;
  BatchOptions options;
  options.dedup = false;
  options.classify.monoid_cache = &cache;

  SweepResult result;
  result.problems = problems.size();
  const auto t0 = clock_type::now();
  const auto cold = classify_batch(problems, options);
  const auto t1 = clock_type::now();
  const auto cached = classify_batch(problems, options);
  const auto t2 = clock_type::now();
  result.cold_s = std::chrono::duration<double>(t1 - t0).count();
  result.cached_s = std::chrono::duration<double>(t2 - t1).count();
  result.monoid_hits = cache.hits();
  result.monoid_misses = cache.misses();
  for (const auto& entry : cold) {
    if (!entry.ok()) std::fprintf(stderr, "sweep entry failed: %s\n", entry.error().c_str());
  }
  for (std::size_t i = 0; i < cached.size(); ++i) {
    // Cached classifications must alias the cold pass's monoids.
    if (cached[i].ok() && cold[i].ok() &&
        cached[i].classified().monoid_ptr().get() != cold[i].classified().monoid_ptr().get()) {
      std::fprintf(stderr, "sweep entry %zu did not share its monoid\n", i);
    }
  }
  return result;
}

void print_sweep(const SweepResult& s) {
  const double rate =
      s.monoid_hits + s.monoid_misses == 0
          ? 0
          : 100.0 * static_cast<double>(s.monoid_hits) /
                static_cast<double>(s.monoid_hits + s.monoid_misses);
  std::printf("=== MonoidCache: cold vs cached classify_batch, coloring(k) k=2..6 ===\n");
  std::printf("%zu problems: cold %.4fs, cached %.4fs (%.2fx); monoid cache %llu hits / "
              "%llu misses (hit rate %.0f%%)\n\n",
              s.problems, s.cold_s, s.cached_s, s.cached_s > 0 ? s.cold_s / s.cached_s : 0,
              static_cast<unsigned long long>(s.monoid_hits),
              static_cast<unsigned long long>(s.monoid_misses), rate);
}

using benchjson::json_escaped;

void write_json(const std::vector<EnumRow>& catalog_rows,
                const std::vector<EnumRow>& grid_rows, const SweepResult& sweep,
                const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  auto write_rows = [out](const char* section, const std::vector<EnumRow>& rows) {
    std::fprintf(out, "  \"%s\": [\n", section);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const EnumRow& r = rows[i];
      std::fprintf(out,
                   "    {\"problem\": \"%s\", \"elements\": %zu, \"ell_pump\": %zu, "
                   "\"enumerate_ms\": %.6f}%s\n",
                   json_escaped(r.problem).c_str(), r.elements, r.ell_pump, r.enumerate_ms,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
  };
  std::fprintf(out, "{\n");
  write_rows("catalog", catalog_rows);
  write_rows("grid", grid_rows);
  const std::uint64_t lookups = sweep.monoid_hits + sweep.monoid_misses;
  std::fprintf(out,
               "  \"batch_sweep\": {\"problems\": %zu, \"cold_s\": %.6f, \"cached_s\": %.6f, "
               "\"monoid_hits\": %llu, \"monoid_misses\": %llu, \"hit_rate\": %.4f}\n}\n",
               sweep.problems, sweep.cold_s, sweep.cached_s,
               static_cast<unsigned long long>(sweep.monoid_hits),
               static_cast<unsigned long long>(sweep.monoid_misses),
               lookups == 0 ? 0
                            : static_cast<double>(sweep.monoid_hits) /
                                  static_cast<double>(lookups));
  std::fclose(out);
  std::printf("wrote %s\n\n", path);
}

void MonoidEnumeration(benchmark::State& state) {
  const auto alpha = static_cast<std::size_t>(state.range(0));
  const auto beta = static_cast<std::size_t>(state.range(1));
  const PairwiseProblem p = random_problem(alpha, beta, alpha * 100 + beta);
  const TransitionSystem ts = TransitionSystem::build(p);
  std::size_t size = 0;
  for (auto _ : state) {
    const Monoid monoid = Monoid::enumerate(ts);
    size = monoid.size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["elements"] = static_cast<double>(size);
}
BENCHMARK(MonoidEnumeration)
    ->Apply([](benchmark::internal::Benchmark* b) {
      // One source of truth: the registered cases are exactly the e10_grid()
      // problems the preamble tables and BENCH_monoid.json report.
      for (const auto& [alpha, beta] : e10_grid()) {
        b->Args({static_cast<long>(alpha), static_cast<long>(beta)});
      }
    })
    ->Unit(benchmark::kMillisecond);

void PumpDecompositionThroughput(benchmark::State& state) {
  const PairwiseProblem p = catalog::agreement();
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(p));
  Rng rng(7);
  Word w;
  for (std::size_t i = 0; i < monoid.size() + 10; ++i) {
    w.push_back(static_cast<Label>(rng.next_below(p.num_inputs())));
  }
  for (auto _ : state) {
    auto d = pump_decomposition(monoid, w);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(PumpDecompositionThroughput);

}  // namespace

int main(int argc, char** argv) {
  benchjson::Harness harness(argc, argv, "BENCH_monoid.json");
  if (harness.filtered_only()) return harness.run_benchmarks();

  std::printf("=== E10: reachable type-space sizes (Lemma 13 in practice) ===\n");
  std::printf("%-28s %10s %10s %14s\n", "problem", "elements", "ell_pump", "enumerate");
  std::vector<EnumRow> catalog_rows;
  for (const auto& entry : catalog::validation_catalog()) {
    catalog_rows.push_back(time_enumeration(entry.problem.name(), entry.problem));
    const EnumRow& r = catalog_rows.back();
    std::printf("%-28s %10zu %10zu %12.4fms\n", r.problem.c_str(), r.elements, r.ell_pump,
                r.enumerate_ms);
  }
  std::printf("\n=== E10 grid: random problems, alphabet scaling ===\n");
  std::printf("%-28s %10s %10s %14s\n", "problem", "elements", "ell_pump", "enumerate");
  std::vector<EnumRow> grid_rows;
  for (const auto& [alpha, beta] : e10_grid()) {
    const PairwiseProblem p = random_problem(alpha, beta, alpha * 100 + beta);
    grid_rows.push_back(time_enumeration(p.name(), p));
    const EnumRow& r = grid_rows.back();
    std::printf("%-28s %10zu %10zu %12.4fms\n", r.problem.c_str(), r.elements, r.ell_pump,
                r.enumerate_ms);
  }
  std::printf("\n");

  const SweepResult sweep = run_batch_sweep();
  print_sweep(sweep);
  if (harness.emit_json()) write_json(catalog_rows, grid_rows, sweep, harness.json_path());

  harness.check_smoke_budget();
  // The sweep must also actually exercise the cache: every problem misses
  // once on the cold pass and hits once on the cached pass.
  harness.require(sweep.monoid_hits >= sweep.problems,
                  "cached sweep hit the monoid cache for every problem");

  return harness.run_benchmarks();
}
