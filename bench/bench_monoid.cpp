// Experiment E10: the type machinery (Lemmas 12-15) — monoid sizes and
// enumeration cost vs. alphabet sizes, plus pumping throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "automata/pumping.hpp"
#include "core/rng.hpp"
#include "lcl/catalog.hpp"

namespace {

using namespace lclpath;

/// Random pairwise problem with given alphabet sizes (fixed seed per size
/// so runs are comparable).
PairwiseProblem random_problem(std::size_t alpha, std::size_t beta, std::uint64_t seed) {
  Rng rng(seed);
  Alphabet in, out;
  for (std::size_t i = 0; i < alpha; ++i) in.add("i" + std::to_string(i));
  for (std::size_t o = 0; o < beta; ++o) out.add("o" + std::to_string(o));
  PairwiseProblem p("rnd-a" + std::to_string(alpha) + "-b" + std::to_string(beta), in, out,
                    Topology::kDirectedCycle);
  for (Label i = 0; i < alpha; ++i)
    for (Label o = 0; o < beta; ++o)
      if (rng.next_bool(3, 4)) p.allow_node(i, o);
  for (Label a = 0; a < beta; ++a)
    for (Label b = 0; b < beta; ++b)
      if (rng.next_bool(3, 4)) p.allow_edge(a, b);
  return p;
}

void MonoidEnumeration(benchmark::State& state) {
  const auto alpha = static_cast<std::size_t>(state.range(0));
  const auto beta = static_cast<std::size_t>(state.range(1));
  const PairwiseProblem p = random_problem(alpha, beta, alpha * 100 + beta);
  const TransitionSystem ts = TransitionSystem::build(p);
  std::size_t size = 0;
  for (auto _ : state) {
    const Monoid monoid = Monoid::enumerate(ts);
    size = monoid.size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["elements"] = static_cast<double>(size);
}
BENCHMARK(MonoidEnumeration)
    ->Args({2, 2})
    ->Args({2, 3})
    ->Args({2, 4})
    ->Args({3, 3})
    ->Args({3, 4})
    ->Args({2, 5})
    ->Unit(benchmark::kMillisecond);

void PumpDecompositionThroughput(benchmark::State& state) {
  const PairwiseProblem p = catalog::agreement();
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(p));
  Rng rng(7);
  Word w;
  for (std::size_t i = 0; i < monoid.size() + 10; ++i) {
    w.push_back(static_cast<Label>(rng.next_below(p.num_inputs())));
  }
  for (auto _ : state) {
    auto d = pump_decomposition(monoid, w);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(PumpDecompositionThroughput);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E10: reachable type-space sizes (Lemma 13 in practice) ===\n");
  std::printf("%-28s %10s %10s\n", "problem", "elements", "ell_pump");
  for (const auto& entry : lclpath::catalog::validation_catalog()) {
    const auto ts = lclpath::TransitionSystem::build(entry.problem);
    const auto monoid = lclpath::Monoid::enumerate(ts);
    std::printf("%-28s %10zu %10zu\n", entry.problem.name().c_str(), monoid.size(),
                monoid.ell_pump());
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
