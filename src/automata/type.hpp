// Path types (the paper's ?~ equivalence, Section 4.1).
//
// For the pairwise (r = 1) form, Type(P) of a directed input-labeled path
// P = (u_1 .. u_k) is captured exactly by:
//   * k itself when k <= 4r = 4 (short paths: the type is the word);
//   * otherwise: the input labels of D1 u D2 (the first two and last two
//     nodes) plus the extendibility relation of boundary labelings, which
//     reduces to the interior reachability matrix
//       M = A(w_2) * ... * A(w_{k-3})   (0-based interior symbols).
//
// An assignment L = (a0, a1, b0, b1) of outputs to D1 u D2 is extendible
// w.r.t. P iff a labeling of the whole path exists that agrees with L and
// is locally consistent at every node except the two endpoints; in matrix
// terms:
//   node(w1, a1) & edge(a0, a1) & (M path from a1 to b0 through the
//   interior, with the node check of position k-2 folded into the last
//   factor) & node(w_{k-2}, b0)  [b1 is unconstrained: position k-1 is in D1].
//
// This module provides the ground-truth objects used by the decidability
// tests: type computation, extendibility by explicit DP, and the
// replacement lemma checks (Lemmas 10-12).
#pragma once

#include <array>
#include <optional>

#include "automata/transition.hpp"

namespace lclpath {

struct PathType {
  /// Exact word for short paths (size <= 4); otherwise the 4 boundary
  /// inputs (w0, w1, w_{k-2}, w_{k-1}).
  Word boundary;
  bool short_path = false;
  /// Interior matrix (identity when k == 4). Meaningful only when
  /// !short_path.
  BitMatrix interior;

  bool operator==(const PathType& other) const = default;
  std::size_t hash() const;
};

/// Computes Type(P) for a nonempty word.
PathType type_of(const TransitionSystem& ts, const Word& w);

/// Ground-truth extendibility by explicit dynamic programming: does a
/// complete labeling of w exist that assigns (a0, a1) to the first two and
/// (b0, b1) to the last two nodes and is locally consistent at every node
/// except the endpoints? Requires |w| >= 4.
bool extendible(const TransitionSystem& ts, const Word& w,
                const std::array<Label, 4>& boundary_outputs);

}  // namespace lclpath
