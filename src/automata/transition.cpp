#include "automata/transition.hpp"

#include "lcl/serialize.hpp"

namespace lclpath {

TransitionSystem TransitionSystem::build(const PairwiseProblem& problem) {
  TransitionSystem ts;
  ts.problem_ = problem;
  const std::size_t beta = problem.num_outputs();
  ts.edge_ = problem.edge_matrix();
  ts.step_.reserve(problem.num_inputs());
  ts.start_.reserve(problem.num_inputs());
  ts.start_first_.reserve(problem.num_inputs());
  ts.last_mask_ = problem.last_mask().dim() == 0 ? BitVector::ones(beta)
                                                 : problem.last_mask();
  ts.anchored_.reserve(problem.num_inputs());
  for (Label sigma = 0; sigma < problem.num_inputs(); ++sigma) {
    BitMatrix a(beta);
    BitMatrix anchored(beta);
    const BitVector& allowed = problem.outputs_for(sigma);
    for (Label y = 0; y < beta; ++y) {
      if (!allowed.get(y)) continue;
      anchored.set(y, y, true);
      for (Label x = 0; x < beta; ++x) {
        if (problem.edge_ok(x, y)) a.set(x, y, true);
      }
    }
    ts.step_.push_back(std::move(a));
    ts.start_.push_back(allowed);
    ts.start_first_.push_back(problem.outputs_for_first(sigma));
    ts.anchored_.push_back(std::move(anchored));
  }
  return ts;
}

std::string TransitionSystem::canonical_key() const {
  std::string key;
  key += "topology ";
  key += to_string(problem_.topology());
  key += "\ndims ";
  key += std::to_string(num_inputs());
  key += ' ';
  key += std::to_string(num_outputs());
  key += "\nedge\n";
  key += edge_.to_string();
  key += "last ";
  key += last_mask_.to_string();
  for (Label sigma = 0; sigma < num_inputs(); ++sigma) {
    key += "\nsigma ";
    key += std::to_string(sigma);
    key += "\nstep\n";
    key += step_[sigma].to_string();
    key += "anchored\n";
    key += anchored_[sigma].to_string();
    key += "start ";
    key += start_[sigma].to_string();
    key += "\nstart_first ";
    key += start_first_[sigma].to_string();
  }
  return key;
}

std::uint64_t TransitionSystem::canonical_hash() const {
  return lclpath::canonical_hash(canonical_key());
}

BitMatrix TransitionSystem::word_matrix(const Word& w) const {
  BitMatrix m = BitMatrix::identity(num_outputs());
  for (Label sigma : w) m *= step_[sigma];
  return m;
}

BitMatrix TransitionSystem::word_matrix_reversed(const Word& w) const {
  BitMatrix m = BitMatrix::identity(num_outputs());
  for (auto it = w.rbegin(); it != w.rend(); ++it) m *= step_[*it];
  return m;
}

BitVector TransitionSystem::prefix_vector(const Word& w) const {
  if (w.empty()) return BitVector::ones(num_outputs());
  BitVector v = start_first_[w[0]];
  for (std::size_t i = 1; i < w.size(); ++i) v = v.multiplied(step_[w[i]]);
  return v;
}

BitMatrix TransitionSystem::anchored_matrix(const Word& w) const {
  BitMatrix m = BitMatrix::identity(num_outputs());
  if (w.empty()) return m;
  m = anchored_[w[0]];
  for (std::size_t i = 1; i < w.size(); ++i) m *= step_[w[i]];
  return m;
}

}  // namespace lclpath
