#include "automata/pumping.hpp"

#include <unordered_map>

namespace lclpath {

Word PumpDecomposition::pumped(std::size_t i) const {
  Word out = x;
  for (std::size_t k = 0; k < i; ++k) out.insert(out.end(), y.begin(), y.end());
  out.insert(out.end(), z.begin(), z.end());
  return out;
}

std::optional<PumpDecomposition> pump_decomposition(const Monoid& monoid, const Word& w) {
  // Walk prefixes w[0..p) for p = 1..|w|, recording the monoid element of
  // each. A repeat at prefixes p1 < p2 yields y = w[p1..p2). To keep the
  // type's boundary inputs intact we only accept repeats with p1 >= 2 and
  // p2 <= |w| - 2.
  if (w.size() < 5) return std::nullopt;
  std::unordered_map<std::size_t, std::size_t> first_seen;  // element -> prefix length
  std::size_t element = monoid.of_symbol(w[0]);
  for (std::size_t p = 2; p <= w.size(); ++p) {
    element = monoid.extend(element, w[p - 1]);
    if (p < 2 || p > w.size() - 2) continue;
    auto [it, inserted] = first_seen.emplace(element, p);
    if (!inserted) {
      const std::size_t p1 = it->second;
      const std::size_t p2 = p;
      PumpDecomposition d;
      d.x = Word(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(p1));
      d.y = Word(w.begin() + static_cast<std::ptrdiff_t>(p1),
                 w.begin() + static_cast<std::ptrdiff_t>(p2));
      d.z = Word(w.begin() + static_cast<std::ptrdiff_t>(p2), w.end());
      return d;
    }
  }
  return std::nullopt;
}

std::optional<Word> pump_to_length(const Monoid& monoid, const Word& w,
                                   std::size_t min_length) {
  if (w.size() >= min_length) return w;
  auto decomposition = pump_decomposition(monoid, w);
  if (!decomposition) return std::nullopt;
  const std::size_t deficit = min_length - w.size();
  const std::size_t extra = (deficit + decomposition->y.size() - 1) / decomposition->y.size();
  return decomposition->pumped(1 + extra);
}

PowerPump power_pump(const Monoid& monoid, const Word& w) {
  const std::size_t base = monoid.of_word(w);
  std::unordered_map<std::size_t, std::size_t> first_seen;  // element -> exponent
  std::size_t element = base;
  std::size_t exponent = 1;
  while (true) {
    auto [it, inserted] = first_seen.emplace(element, exponent);
    if (!inserted) {
      PowerPump pump;
      pump.a = it->second;
      pump.b = exponent - it->second;
      return pump;
    }
    // element(w^{e+1}) = element(w^e) extended by w.
    for (Label sigma : w) element = monoid.extend(element, sigma);
    ++exponent;
  }
}

}  // namespace lclpath
