#include "automata/type.hpp"

#include <stdexcept>

namespace lclpath {

std::size_t PathType::hash() const {
  std::size_t h = hash_mix(0xABCD, short_path ? 1 : 0);
  for (Label l : boundary) h = hash_mix(h, l);
  if (!short_path) h = hash_mix(h, interior.hash());
  return h;
}

PathType type_of(const TransitionSystem& ts, const Word& w) {
  if (w.empty()) throw std::invalid_argument("type_of: empty word");
  PathType t;
  if (w.size() <= 4) {
    t.short_path = true;
    t.boundary = w;
    t.interior = BitMatrix::identity(ts.num_outputs());
    return t;
  }
  t.short_path = false;
  t.boundary = {w[0], w[1], w[w.size() - 2], w[w.size() - 1]};
  BitMatrix m = BitMatrix::identity(ts.num_outputs());
  for (std::size_t i = 2; i + 1 < w.size(); ++i) m *= ts.step(w[i]);
  t.interior = m;
  return t;
}

bool extendible(const TransitionSystem& ts, const Word& w,
                const std::array<Label, 4>& boundary_outputs) {
  const std::size_t k = w.size();
  if (k < 4) throw std::invalid_argument("extendible: |w| must be >= 4");
  const auto [a0, a1, b0, b1] = boundary_outputs;
  (void)b1;  // position k-1 is in D1: no consistency required there
  const PairwiseProblem& p = ts.problem();
  // Consistency at position 1: node check + edge from position 0.
  if (!p.node_ok(w[1], a1) || !p.edge_ok(a0, a1)) return false;
  // Consistency at position k-2 (node check folded into the chain) and the
  // chain through interior positions 2 .. k-2 ending at b0.
  BitVector v = BitVector::unit(ts.num_outputs(), a1);
  for (std::size_t i = 2; i + 1 < k; ++i) v = v.multiplied(ts.step(w[i]));
  return v.get(b0);
}

}  // namespace lclpath
