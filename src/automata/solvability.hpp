// Global solvability of a pairwise LCL over all instances of a topology.
//
// A problem admits a LOCAL algorithm at all only if every instance has a
// valid labeling; the paper implicitly assumes this (its constructions are
// always-solvable by design). We decide it exactly:
//
//  * cycles: the instance w (a cyclic word) is solvable iff N(w) has a
//    nonempty diagonal — the diagonal entry is the label of the last node,
//    doubling as the virtual predecessor of the first. Quantifying over
//    all w = quantifying over all reachable monoid elements.
//
//  * paths: the instance w is solvable iff the prefix vector of w is
//    nonempty (no wrap edge; the first node has no predecessor check).
//
// On failure we return the shortest witness instance, which the tests
// cross-check against the DP solver.
#pragma once

#include <optional>

#include "automata/monoid.hpp"

namespace lclpath {

struct SolvabilityReport {
  bool solvable = true;
  /// A shortest instance with no valid labeling, when !solvable.
  std::optional<Word> counterexample;
};

SolvabilityReport check_solvability(const Monoid& monoid, Topology topology);

}  // namespace lclpath
