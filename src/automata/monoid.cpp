#include "automata/monoid.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace lclpath {

bool MonoidElement::same_data(const MonoidElement& other) const {
  return first == other.first && last == other.last && fwd == other.fwd &&
         rev == other.rev && anchored == other.anchored &&
         anchored_rev == other.anchored_rev && pvec == other.pvec &&
         pvec_rev == other.pvec_rev;
}

std::size_t MonoidElement::data_hash() const {
  std::size_t h = hash_mix(first, last);
  h = hash_mix(h, fwd.hash());
  h = hash_mix(h, rev.hash());
  h = hash_mix(h, anchored.hash());
  h = hash_mix(h, anchored_rev.hash());
  h = hash_mix(h, pvec.hash());
  h = hash_mix(h, pvec_rev.hash());
  return h;
}

std::size_t Monoid::lookup(const MonoidElement& e) const {
  auto it = by_hash_.find(e.data_hash());
  if (it == by_hash_.end()) return elements_.size();
  for (std::size_t index : it->second) {
    if (elements_[index].same_data(e)) return index;
  }
  return elements_.size();
}

Monoid Monoid::enumerate(const TransitionSystem& ts, std::size_t max_elements) {
  Monoid monoid;
  monoid.ts_ = ts;
  const std::size_t num_inputs = ts.num_inputs();

  auto intern = [&monoid](MonoidElement&& e) -> std::pair<std::size_t, bool> {
    const std::size_t found = monoid.lookup(e);
    if (found < monoid.elements_.size()) return {found, false};
    const std::size_t index = monoid.elements_.size();
    monoid.by_hash_[e.data_hash()].push_back(index);
    monoid.elements_.push_back(std::move(e));
    return {index, true};
  };

  std::deque<std::size_t> queue;
  for (Label sigma = 0; sigma < num_inputs; ++sigma) {
    MonoidElement e;
    e.fwd = ts.step(sigma);
    e.rev = ts.step(sigma);
    e.anchored = ts.anchored(sigma);
    e.anchored_rev = ts.anchored(sigma);
    e.pvec = ts.start_first(sigma);
    e.pvec_rev = ts.start_first(sigma);
    e.first = sigma;
    e.last = sigma;
    e.witness = {sigma};
    auto [index, fresh] = intern(std::move(e));
    if (fresh) queue.push_back(index);
  }

  while (!queue.empty()) {
    const std::size_t index = queue.front();
    queue.pop_front();
    for (Label sigma = 0; sigma < num_inputs; ++sigma) {
      // Copy source fields up front: intern() may grow elements_ and
      // invalidate references.
      const BitMatrix src_fwd = monoid.elements_[index].fwd;
      const BitMatrix src_rev = monoid.elements_[index].rev;
      const BitMatrix src_anchored = monoid.elements_[index].anchored;
      const BitVector src_pvec = monoid.elements_[index].pvec;
      const Label src_first = monoid.elements_[index].first;
      const Word src_witness = monoid.elements_[index].witness;

      MonoidElement e;
      e.fwd = src_fwd * ts.step(sigma);
      e.rev = ts.step(sigma) * src_rev;           // N((w sigma)^R) = A(sigma) N(w^R)
      e.anchored = src_anchored * ts.step(sigma);
      e.anchored_rev = ts.anchored(sigma) * src_rev;  // B((w sigma)^R) = B(sigma) N(w^R)
      e.pvec = src_pvec.multiplied(ts.step(sigma));
      e.pvec_rev = ts.start_first(sigma).multiplied(src_rev);  // prefix of (w sigma)^R
      e.first = src_first;
      e.last = sigma;
      e.witness = src_witness;
      e.witness.push_back(sigma);
      auto [new_index, fresh] = intern(std::move(e));
      if (fresh) {
        if (monoid.elements_.size() > max_elements) {
          throw std::runtime_error(
              "Monoid::enumerate: reachable type space exceeds the configured budget (" +
              std::to_string(max_elements) + " elements)");
        }
        queue.push_back(new_index);
      }
    }
  }

  // Dense extend table and reversal map.
  monoid.extend_table_.assign(monoid.elements_.size() * num_inputs, 0);
  for (std::size_t index = 0; index < monoid.elements_.size(); ++index) {
    for (Label sigma = 0; sigma < num_inputs; ++sigma) {
      MonoidElement e;
      e.fwd = monoid.elements_[index].fwd * ts.step(sigma);
      e.rev = ts.step(sigma) * monoid.elements_[index].rev;
      e.anchored = monoid.elements_[index].anchored * ts.step(sigma);
      e.anchored_rev = ts.anchored(sigma) * monoid.elements_[index].rev;
      e.pvec = monoid.elements_[index].pvec.multiplied(ts.step(sigma));
      e.pvec_rev = ts.start_first(sigma).multiplied(monoid.elements_[index].rev);
      e.first = monoid.elements_[index].first;
      e.last = sigma;
      const std::size_t found = monoid.lookup(e);
      if (found >= monoid.elements_.size()) {
        throw std::logic_error("Monoid::enumerate: extend table hit an unknown element");
      }
      monoid.extend_table_[index * num_inputs + sigma] = found;
    }
  }
  monoid.reversed_.assign(monoid.elements_.size(), 0);
  for (std::size_t index = 0; index < monoid.elements_.size(); ++index) {
    const MonoidElement& e = monoid.elements_[index];
    MonoidElement r;
    r.fwd = e.rev;
    r.rev = e.fwd;
    r.anchored = e.anchored_rev;
    r.anchored_rev = e.anchored;
    r.pvec = e.pvec_rev;
    r.pvec_rev = e.pvec;
    r.first = e.last;
    r.last = e.first;
    const std::size_t found = monoid.lookup(r);
    if (found >= monoid.elements_.size()) {
      throw std::logic_error("Monoid::enumerate: reversal map hit an unknown element");
    }
    monoid.reversed_[index] = found;
  }
  return monoid;
}

std::size_t Monoid::extend(std::size_t element, Label sigma) const {
  return extend_table_[element * ts_.num_inputs() + sigma];
}

std::size_t Monoid::of_symbol(Label sigma) const {
  MonoidElement e;
  e.fwd = ts_.step(sigma);
  e.rev = ts_.step(sigma);
  e.anchored = ts_.anchored(sigma);
  e.anchored_rev = ts_.anchored(sigma);
  e.pvec = ts_.start_first(sigma);
  e.pvec_rev = ts_.start_first(sigma);
  e.first = sigma;
  e.last = sigma;
  const std::size_t found = lookup(e);
  if (found >= elements_.size()) {
    throw std::logic_error("Monoid::of_symbol: unknown element");
  }
  return found;
}

std::size_t Monoid::of_word(const Word& w) const {
  if (w.empty()) throw std::invalid_argument("Monoid::of_word: empty word");
  std::size_t index = of_symbol(w[0]);
  for (std::size_t i = 1; i < w.size(); ++i) index = extend(index, w[i]);
  return index;
}

std::size_t Monoid::reversed_index(std::size_t element) const { return reversed_[element]; }

std::vector<std::size_t> Monoid::layer_at(std::size_t length) const {
  if (length == 0) throw std::invalid_argument("Monoid::layer_at: length must be >= 1");
  // The layer-set sequence S_1, S_2, ... evolves by a deterministic map on
  // subsets, so it is eventually periodic; memoize sets until a repeat.
  auto step_layer = [this](const std::vector<std::size_t>& layer) {
    std::vector<char> seen(elements_.size(), 0);
    std::vector<std::size_t> next;
    for (std::size_t index : layer) {
      for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) {
        const std::size_t extended = extend(index, sigma);
        if (!seen[extended]) {
          seen[extended] = 1;
          next.push_back(extended);
        }
      }
    }
    std::sort(next.begin(), next.end());
    return next;
  };
  auto hash_layer = [](const std::vector<std::size_t>& layer) {
    std::size_t h = hash_mix(0x77, layer.size());
    for (std::size_t index : layer) h = hash_mix(h, index);
    return h;
  };

  std::vector<std::size_t> current;
  for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) current.push_back(of_symbol(sigma));
  std::sort(current.begin(), current.end());
  current.erase(std::unique(current.begin(), current.end()), current.end());

  std::vector<std::vector<std::size_t>> history = {current};
  std::unordered_map<std::size_t, std::vector<std::size_t>> seen_at;  // hash -> indices
  seen_at[hash_layer(current)].push_back(0);

  for (std::size_t l = 1; l < length; ++l) {
    current = step_layer(current);
    // Repeat detection.
    const std::size_t h = hash_layer(current);
    auto it = seen_at.find(h);
    if (it != seen_at.end()) {
      for (std::size_t prev : it->second) {
        if (history[prev] == current) {
          // Sequence cycles: history[i] holds the layer of length i+1,
          // and the (not yet stored) current layer of length l+1 equals
          // history[prev].
          const std::size_t target = length - 1;  // history index wanted
          if (target == l) return current;
          if (target < l) return history[target];
          const std::size_t period = l - prev;
          return history[prev + ((target - prev) % period)];
        }
      }
    }
    history.push_back(current);
    seen_at[h].push_back(l);
  }
  return history[length - 1];
}

std::vector<std::pair<std::size_t, Word>> Monoid::layer_witnesses(std::size_t length) const {
  // BFS over (element) per layer, keeping one witness word of each exact
  // length. Lengths used by callers are bounded by the feasibility
  // machinery's context length; for very large lengths, build a witness by
  // pumping instead (callers use pump_to_length).
  std::vector<std::pair<std::size_t, Word>> layer;
  for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) {
    layer.emplace_back(of_symbol(sigma), Word{sigma});
  }
  {
    std::vector<char> seen(elements_.size(), 0);
    std::vector<std::pair<std::size_t, Word>> dedup;
    for (auto& [e, w] : layer) {
      if (!seen[e]) {
        seen[e] = 1;
        dedup.emplace_back(e, std::move(w));
      }
    }
    layer = std::move(dedup);
  }
  for (std::size_t l = 2; l <= length; ++l) {
    std::vector<char> seen(elements_.size(), 0);
    std::vector<std::pair<std::size_t, Word>> next;
    for (const auto& [e, w] : layer) {
      for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) {
        const std::size_t extended = extend(e, sigma);
        if (!seen[extended]) {
          seen[extended] = 1;
          Word nw = w;
          nw.push_back(sigma);
          next.emplace_back(extended, std::move(nw));
        }
      }
    }
    layer = std::move(next);
  }
  return layer;
}

std::vector<std::vector<std::size_t>> Monoid::layers(std::size_t max_length) const {
  std::vector<std::vector<std::size_t>> layers;
  layers.reserve(max_length);
  std::vector<char> in_layer(elements_.size(), 0);

  std::vector<std::size_t> current;
  for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) {
    const std::size_t index = of_symbol(sigma);
    if (!in_layer[index]) {
      in_layer[index] = 1;
      current.push_back(index);
    }
  }
  for (std::size_t index : current) in_layer[index] = 0;
  layers.push_back(current);

  for (std::size_t length = 2; length <= max_length; ++length) {
    std::vector<std::size_t> next;
    for (std::size_t index : layers.back()) {
      for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) {
        const std::size_t extended = extend(index, sigma);
        if (!in_layer[extended]) {
          in_layer[extended] = 1;
          next.push_back(extended);
        }
      }
    }
    for (std::size_t index : next) in_layer[index] = 0;
    layers.push_back(std::move(next));
  }
  return layers;
}

}  // namespace lclpath
