#include "automata/monoid.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lclpath {

namespace {

constexpr std::size_t kNoParent = std::numeric_limits<std::size_t>::max();

/// data_hash() decomposed over component hashes, so the reversal map can
/// combine already-computed component hashes instead of re-hashing (or
/// re-materializing) any element. Must stay in sync with
/// MonoidElement::data_hash().
std::size_t combine_hashes(Label first, Label last, std::size_t fwd_h, std::size_t rev_h,
                           std::size_t anchored_h, std::size_t anchored_rev_h,
                           std::size_t pvec_h, std::size_t pvec_rev_h) {
  std::size_t h = hash_mix(first, last);
  h = hash_mix(h, fwd_h);
  h = hash_mix(h, rev_h);
  h = hash_mix(h, anchored_h);
  h = hash_mix(h, anchored_rev_h);
  h = hash_mix(h, pvec_h);
  h = hash_mix(h, pvec_rev_h);
  return h;
}

/// True iff `candidate` carries exactly the data of `e` reversed.
bool same_data_reversed(const MonoidElement& candidate, const MonoidElement& e) {
  return candidate.first == e.last && candidate.last == e.first &&
         candidate.fwd == e.rev && candidate.rev == e.fwd &&
         candidate.anchored == e.anchored_rev && candidate.anchored_rev == e.anchored &&
         candidate.pvec == e.pvec_rev && candidate.pvec_rev == e.pvec;
}

}  // namespace

void throw_monoid_budget_overflow(std::size_t max_elements) {
  throw MonoidBudgetError(max_elements);
}

bool MonoidElement::same_data(const MonoidElement& other) const {
  return first == other.first && last == other.last && fwd == other.fwd &&
         rev == other.rev && anchored == other.anchored &&
         anchored_rev == other.anchored_rev && pvec == other.pvec &&
         pvec_rev == other.pvec_rev;
}

std::size_t MonoidElement::data_hash() const {
  return combine_hashes(first, last, fwd.hash(), rev.hash(), anchored.hash(),
                        anchored_rev.hash(), pvec.hash(), pvec_rev.hash());
}

Monoid Monoid::enumerate(const TransitionSystem& ts, std::size_t max_elements,
                         const ExecutionBudget* budget) {
  Monoid monoid;
  monoid.ts_ = ts;
  const std::size_t num_inputs = ts.num_inputs();
  const std::size_t beta = ts.num_outputs();

  // Per-element storage charged against a memory-limited budget: four
  // beta x beta bit matrices, two beta bit vectors, bookkeeping.
  const std::size_t words_per_row = (beta + 63) / 64;
  const std::size_t element_bytes = 4 * beta * words_per_row * 8 +
                                    2 * words_per_row * 8 + sizeof(MonoidElement);

  // Reversed-data hash of each element (combined from the same component
  // hashes as the forward hash, at intern time); consumed by the reversal
  // pass below and discarded afterwards.
  std::vector<std::size_t> rev_hash;

  // One scratch element holds every probe; only *fresh* probes are moved
  // into elements_ (and the scratch re-allocated), so the ~|M| x |Sigma|
  // duplicate probes of the BFS cost zero allocations.
  auto make_scratch = [beta] {
    MonoidElement e;
    e.fwd = BitMatrix(beta);
    e.rev = BitMatrix(beta);
    e.anchored = BitMatrix(beta);
    e.anchored_rev = BitMatrix(beta);
    e.pvec = BitVector(beta);
    e.pvec_rev = BitVector(beta);
    return e;
  };
  MonoidElement probe = make_scratch();

  // Looks up `probe` under its precomputed hash; on a miss interns it
  // (recording hashes and the BFS parent link) and resets the scratch.
  auto intern = [&](std::size_t hash, std::size_t reversed_hash, std::size_t parent,
                    Label sigma) -> std::pair<std::size_t, bool> {
    auto it = monoid.by_hash_.find(hash);
    if (it != monoid.by_hash_.end()) {
      for (std::size_t index : it->second) {
        if (monoid.elements_[index].same_data(probe)) return {index, false};
      }
    }
    const std::size_t index = monoid.elements_.size();
    monoid.by_hash_[hash].push_back(index);
    rev_hash.push_back(reversed_hash);
    monoid.parent_.emplace_back(parent, sigma);
    monoid.elements_.push_back(std::move(probe));
    probe = make_scratch();
    if (monoid.elements_.size() > max_elements) {
      throw_monoid_budget_overflow(max_elements);
    }
    budget_charge_memory(budget, element_bytes);
    return {index, true};
  };

  auto hash_probe = [&probe](std::size_t& forward, std::size_t& reversed) {
    const std::size_t fwd_h = probe.fwd.hash();
    const std::size_t rev_h = probe.rev.hash();
    const std::size_t anchored_h = probe.anchored.hash();
    const std::size_t anchored_rev_h = probe.anchored_rev.hash();
    const std::size_t pvec_h = probe.pvec.hash();
    const std::size_t pvec_rev_h = probe.pvec_rev.hash();
    forward = combine_hashes(probe.first, probe.last, fwd_h, rev_h, anchored_h,
                             anchored_rev_h, pvec_h, pvec_rev_h);
    reversed = combine_hashes(probe.last, probe.first, rev_h, fwd_h, anchored_rev_h,
                              anchored_h, pvec_rev_h, pvec_h);
  };

  monoid.symbol_index_.assign(num_inputs, 0);
  for (Label sigma = 0; sigma < num_inputs; ++sigma) {
    probe.fwd = ts.step(sigma);
    probe.rev = ts.step(sigma);
    probe.anchored = ts.anchored(sigma);
    probe.anchored_rev = ts.anchored(sigma);
    probe.pvec = ts.start_first(sigma);
    probe.pvec_rev = ts.start_first(sigma);
    probe.first = sigma;
    probe.last = sigma;
    std::size_t h = 0;
    std::size_t rh = 0;
    hash_probe(h, rh);
    monoid.symbol_index_[sigma] = intern(h, rh, kNoParent, sigma).first;
  }

  // BFS. Elements are interned (and therefore queued) in index order, so
  // the pop sequence is 0, 1, 2, ... and the extend table — whose entries
  // are exactly the intern results of the probes — is appended row by row
  // in the same sweep; no second pass re-multiplies anything.
  monoid.extend_table_.reserve(monoid.elements_.size() * num_inputs);
  for (std::size_t index = 0; index < monoid.elements_.size(); ++index) {
    for (Label sigma = 0; sigma < num_inputs; ++sigma) {
      budget_checkpoint(budget);
      // Reads of src complete before intern() may grow elements_.
      const MonoidElement& src = monoid.elements_[index];
      src.fwd.multiply_into(ts.step(sigma), probe.fwd);
      ts.step(sigma).multiply_into(src.rev, probe.rev);  // N((w s)^R) = A(s) N(w^R)
      src.anchored.multiply_into(ts.step(sigma), probe.anchored);
      ts.anchored(sigma).multiply_into(src.rev, probe.anchored_rev);
      src.pvec.multiply_into(ts.step(sigma), probe.pvec);
      // prefix of (w sigma)^R
      ts.start_first(sigma).multiply_into(src.rev, probe.pvec_rev);
      probe.first = src.first;
      probe.last = sigma;
      std::size_t h = 0;
      std::size_t rh = 0;
      hash_probe(h, rh);
      monoid.extend_table_.push_back(intern(h, rh, index, sigma).first);
    }
  }

  // Reversal map, from the cached reversed-data hashes: the reverse of a
  // reachable word is reachable, so every bucket probe must land.
  monoid.reversed_.assign(monoid.elements_.size(), 0);
  for (std::size_t index = 0; index < monoid.elements_.size(); ++index) {
    const MonoidElement& e = monoid.elements_[index];
    bool found = false;
    auto it = monoid.by_hash_.find(rev_hash[index]);
    if (it != monoid.by_hash_.end()) {
      for (std::size_t candidate : it->second) {
        if (same_data_reversed(monoid.elements_[candidate], e)) {
          monoid.reversed_[index] = candidate;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      throw std::logic_error("Monoid::enumerate: reversal map hit an unknown element");
    }
  }
  return monoid;
}

std::size_t Monoid::extend(std::size_t element, Label sigma) const {
  return extend_table_[element * ts_.num_inputs() + sigma];
}

std::size_t Monoid::of_symbol(Label sigma) const { return symbol_index_[sigma]; }

std::size_t Monoid::of_word(const Word& w) const {
  if (w.empty()) throw std::invalid_argument("Monoid::of_word: empty word");
  std::size_t index = of_symbol(w[0]);
  for (std::size_t i = 1; i < w.size(); ++i) index = extend(index, w[i]);
  return index;
}

Word Monoid::witness(std::size_t element) const {
  Word w;
  std::size_t index = element;
  while (true) {
    w.push_back(parent_[index].second);
    if (parent_[index].first == kNoParent) break;
    index = parent_[index].first;
  }
  std::reverse(w.begin(), w.end());
  return w;
}

std::size_t Monoid::reversed_index(std::size_t element) const { return reversed_[element]; }

std::vector<std::size_t> Monoid::layer_at(std::size_t length) const {
  if (length == 0) throw std::invalid_argument("Monoid::layer_at: length must be >= 1");
  // The layer-set sequence S_1, S_2, ... evolves by a deterministic map on
  // subsets, so it is eventually periodic; memoize sets until a repeat.
  auto step_layer = [this](const std::vector<std::size_t>& layer) {
    std::vector<char> seen(elements_.size(), 0);
    std::vector<std::size_t> next;
    for (std::size_t index : layer) {
      for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) {
        const std::size_t extended = extend(index, sigma);
        if (!seen[extended]) {
          seen[extended] = 1;
          next.push_back(extended);
        }
      }
    }
    std::sort(next.begin(), next.end());
    return next;
  };
  auto hash_layer = [](const std::vector<std::size_t>& layer) {
    std::size_t h = hash_mix(0x77, layer.size());
    for (std::size_t index : layer) h = hash_mix(h, index);
    return h;
  };

  std::vector<std::size_t> current;
  for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) current.push_back(of_symbol(sigma));
  std::sort(current.begin(), current.end());
  current.erase(std::unique(current.begin(), current.end()), current.end());

  std::vector<std::vector<std::size_t>> history = {current};
  std::unordered_map<std::size_t, std::vector<std::size_t>> seen_at;  // hash -> indices
  seen_at[hash_layer(current)].push_back(0);

  for (std::size_t l = 1; l < length; ++l) {
    current = step_layer(current);
    // Repeat detection.
    const std::size_t h = hash_layer(current);
    auto it = seen_at.find(h);
    if (it != seen_at.end()) {
      for (std::size_t prev : it->second) {
        if (history[prev] == current) {
          // Sequence cycles: history[i] holds the layer of length i+1,
          // and the (not yet stored) current layer of length l+1 equals
          // history[prev].
          const std::size_t target = length - 1;  // history index wanted
          if (target == l) return current;
          if (target < l) return history[target];
          const std::size_t period = l - prev;
          return history[prev + ((target - prev) % period)];
        }
      }
    }
    history.push_back(current);
    seen_at[h].push_back(l);
  }
  return history[length - 1];
}

std::size_t Monoid::layer_stabilization() const {
  // Same deterministic subset walk as layer_at, run to its first repeat:
  // history[i] = layer of length i + 1, with history[l] == history[prev]
  // establishing preperiod `prev` and period `l - prev`. The answer only
  // needs indices up to prev + period + 2, all resolvable through the
  // modular fold.
  auto step_layer = [this](const std::vector<std::size_t>& layer) {
    std::vector<char> seen(elements_.size(), 0);
    std::vector<std::size_t> next;
    for (std::size_t index : layer) {
      for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) {
        const std::size_t extended = extend(index, sigma);
        if (!seen[extended]) {
          seen[extended] = 1;
          next.push_back(extended);
        }
      }
    }
    std::sort(next.begin(), next.end());
    return next;
  };

  std::vector<std::size_t> current;
  for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) current.push_back(of_symbol(sigma));
  std::sort(current.begin(), current.end());
  current.erase(std::unique(current.begin(), current.end()), current.end());

  std::vector<std::vector<std::size_t>> history = {current};
  std::size_t prev = 0;
  std::size_t period = 0;
  while (period == 0) {
    current = step_layer(current);
    for (std::size_t i = 0; i < history.size(); ++i) {
      if (history[i] == current) {
        prev = i;
        period = history.size() - i;
        break;
      }
    }
    if (period == 0) history.push_back(current);
  }
  auto layer_of = [&](std::size_t length) -> const std::vector<std::size_t>& {
    const std::size_t index = length - 1;
    if (index < history.size()) return history[index];
    return history[prev + ((index - prev) % period)];
  };
  for (std::size_t k = 1; k <= prev + period; ++k) {
    if (layer_of(k) == layer_of(k + 2)) return k;
  }
  return static_cast<std::size_t>(-1);  // cycle longer than 2
}

std::vector<std::pair<std::size_t, Word>> Monoid::layer_witnesses(std::size_t length) const {
  // BFS over (element) per layer, keeping one witness word of each exact
  // length. Lengths used by callers are bounded by the feasibility
  // machinery's context length; for very large lengths, build a witness by
  // pumping instead (callers use pump_to_length).
  std::vector<std::pair<std::size_t, Word>> layer;
  for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) {
    layer.emplace_back(of_symbol(sigma), Word{sigma});
  }
  {
    std::vector<char> seen(elements_.size(), 0);
    std::vector<std::pair<std::size_t, Word>> dedup;
    for (auto& [e, w] : layer) {
      if (!seen[e]) {
        seen[e] = 1;
        dedup.emplace_back(e, std::move(w));
      }
    }
    layer = std::move(dedup);
  }
  for (std::size_t l = 2; l <= length; ++l) {
    std::vector<char> seen(elements_.size(), 0);
    std::vector<std::pair<std::size_t, Word>> next;
    for (const auto& [e, w] : layer) {
      for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) {
        const std::size_t extended = extend(e, sigma);
        if (!seen[extended]) {
          seen[extended] = 1;
          Word nw = w;
          nw.push_back(sigma);
          next.emplace_back(extended, std::move(nw));
        }
      }
    }
    layer = std::move(next);
  }
  return layer;
}

std::vector<std::vector<std::size_t>> Monoid::layers(std::size_t max_length) const {
  std::vector<std::vector<std::size_t>> layers;
  layers.reserve(max_length);
  std::vector<char> in_layer(elements_.size(), 0);

  std::vector<std::size_t> current;
  for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) {
    const std::size_t index = of_symbol(sigma);
    if (!in_layer[index]) {
      in_layer[index] = 1;
      current.push_back(index);
    }
  }
  for (std::size_t index : current) in_layer[index] = 0;
  layers.push_back(current);

  for (std::size_t length = 2; length <= max_length; ++length) {
    std::vector<std::size_t> next;
    for (std::size_t index : layers.back()) {
      for (Label sigma = 0; sigma < ts_.num_inputs(); ++sigma) {
        const std::size_t extended = extend(index, sigma);
        if (!in_layer[extended]) {
          in_layer[extended] = 1;
          next.push_back(extended);
        }
      }
    }
    for (std::size_t index : next) in_layer[index] = 0;
    layers.push_back(std::move(next));
  }
  return layers;
}

std::shared_ptr<const Monoid> MonoidCache::find(std::uint64_t hash,
                                               const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [begin, end] = entries_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second.first == key) {
      ++hits_;
      return it->second.second;
    }
  }
  ++misses_;
  return nullptr;
}

std::shared_ptr<const Monoid> MonoidCache::insert(std::uint64_t hash, std::string key,
                                                  std::shared_ptr<const Monoid> monoid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [begin, end] = entries_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second.first == key) return it->second.second;  // first writer wins
  }
  auto it = entries_.emplace(hash, std::make_pair(std::move(key), std::move(monoid)));
  return it->second.second;
}

bool MonoidCache::erase(std::uint64_t hash, const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [begin, end] = entries_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second.first == key) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t MonoidCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t MonoidCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t MonoidCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace lclpath
