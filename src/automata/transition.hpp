// Transition-matrix view of a pairwise LCL (Section 4.1 machinery).
//
// For a pairwise problem with step relation C_edge and node relation
// C_node, define for every input symbol sigma the boolean matrix
//
//   A(sigma)[x][y] = (x, y) in C_edge  AND  (sigma, y) in C_node,
//
// i.e. "a node with input sigma can output y after a predecessor that
// output x". For an input word w = w_0 .. w_{k-1}:
//
//   N(w) = A(w_0) * A(w_1) * ... * A(w_{k-1})
//
// has N(w)[x][y] = "the word admits a labeling whose last label is y, all
// node checks and internal edge checks pass, and the label of a virtual
// predecessor x is compatible with the first node". All of the paper's
// type/extendibility notions (Lemmas 10-13) reduce to N (plus boundary
// input symbols), which is why path concatenation becomes matrix
// multiplication (Lemma 12) and the number of types is finite (Lemma 13).
//
// Additional tracked objects:
//   * start(w)  = outputs_for(w_0) * A(w_1) * ... — labelings of a path
//     *prefix* (no virtual predecessor); used for path topologies.
//   * B(w) = diag(node(w_0, .)) * A(w_1) * ... — "anchored" chains whose
//     first label is the row index; used for periodic labelings in the
//     Theta(1)-gap decider (Section 4.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/alphabet.hpp"
#include "core/bitmatrix.hpp"
#include "lcl/problem.hpp"

namespace lclpath {

class TransitionSystem {
 public:
  static TransitionSystem build(const PairwiseProblem& problem);

  const PairwiseProblem& problem() const { return problem_; }
  std::size_t num_outputs() const { return step_.empty() ? 0 : step_[0].dim(); }
  std::size_t num_inputs() const { return step_.size(); }

  /// A(sigma).
  const BitMatrix& step(Label sigma) const { return step_[sigma]; }
  /// outputs_for(sigma) as a row vector.
  const BitVector& start(Label sigma) const { return start_[sigma]; }
  /// outputs_for_first(sigma): the path-start variant (first-node rules).
  const BitVector& start_first(Label sigma) const { return start_first_[sigma]; }
  /// Allowed outputs at a path's last node (all-ones when unrestricted).
  const BitVector& last_mask() const { return last_mask_; }
  /// diag(node(sigma, .)): anchored single-node matrix.
  const BitMatrix& anchored(Label sigma) const { return anchored_[sigma]; }
  /// C_edge as a matrix.
  const BitMatrix& edge() const { return edge_; }

  /// Skeleton fingerprint: a canonical description of everything a decider
  /// or synthesized algorithm can observe through this transition system —
  /// the topology plus every matrix/vector above (which together determine
  /// the problem's constraint tables up to cosmetic names). Two problems
  /// with equal canonical keys build bit-identical monoids and classify
  /// identically, so the key is the identity for MonoidCache sharing
  /// (analogous to lcl/serialize.hpp's canonical_key for whole problems,
  /// but name-blind on labels too).
  std::string canonical_key() const;
  /// FNV-1a of canonical_key(); callers that cannot tolerate collisions
  /// must compare keys on hash hits (MonoidCache does). When you already
  /// hold the key string, hash it directly via lcl/serialize.hpp's
  /// canonical_hash(std::string_view) instead of rebuilding it here.
  std::uint64_t canonical_hash() const;

  /// N(w) for a nonempty word (identity for the empty word).
  BitMatrix word_matrix(const Word& w) const;
  /// N(reverse(w)).
  BitMatrix word_matrix_reversed(const Word& w) const;
  /// start-restricted vector for a path prefix (empty word -> all-ones).
  BitVector prefix_vector(const Word& w) const;
  /// B(w) (identity for the empty word).
  BitMatrix anchored_matrix(const Word& w) const;

 private:
  PairwiseProblem problem_;
  std::vector<BitMatrix> step_;
  std::vector<BitVector> start_;
  std::vector<BitVector> start_first_;
  BitVector last_mask_;
  std::vector<BitMatrix> anchored_;
  BitMatrix edge_;
};

}  // namespace lclpath
