#include "automata/solvability.hpp"

#include <deque>

namespace lclpath {

namespace {

/// Minimum number of nodes in a cycle instance: simple cycles have >= 3
/// nodes; shorter "cycles" (self-loops, digons) are not graphs the LOCAL
/// model quantifies over.
constexpr std::size_t kMinCycleLength = 3;

}  // namespace

SolvabilityReport check_solvability(const Monoid& monoid, Topology topology) {
  SolvabilityReport report;
  const bool cycle = is_cycle(topology);

  // Which elements are reached by a word of admissible instance length,
  // and a witness word of that length for each. Paths admit every length
  // >= 1; cycles only >= kMinCycleLength.
  const std::size_t min_length = cycle ? kMinCycleLength : 1;
  std::vector<char> admissible(monoid.size(), 0);
  std::vector<Word> witness(monoid.size());

  // Seed with all elements at exactly min_length, tracking witnesses.
  struct Frontier {
    std::size_t element;
    Word word;
  };
  std::deque<Frontier> queue;
  {
    // Enumerate length-min_length words through the extend table; the
    // number of distinct states per layer is bounded by the monoid size,
    // so deduplicate per layer.
    std::vector<Frontier> layer;
    const TransitionSystem& ts = monoid.transitions();
    for (Label sigma = 0; sigma < ts.num_inputs(); ++sigma) {
      layer.push_back({monoid.of_symbol(sigma), Word{sigma}});
    }
    for (std::size_t length = 2; length <= min_length; ++length) {
      std::vector<char> seen(monoid.size(), 0);
      std::vector<Frontier> next;
      for (const Frontier& f : layer) {
        for (Label sigma = 0; sigma < ts.num_inputs(); ++sigma) {
          const std::size_t e = monoid.extend(f.element, sigma);
          if (seen[e]) continue;
          seen[e] = 1;
          Frontier nf{e, f.word};
          nf.word.push_back(sigma);
          next.push_back(std::move(nf));
        }
      }
      layer = std::move(next);
    }
    for (Frontier& f : layer) {
      if (!admissible[f.element]) {
        admissible[f.element] = 1;
        witness[f.element] = f.word;
        queue.push_back(std::move(f));
      }
    }
  }
  // Close under extension: anything reachable from an admissible-length
  // word is also admissible.
  while (!queue.empty()) {
    Frontier f = std::move(queue.front());
    queue.pop_front();
    for (Label sigma = 0; sigma < monoid.transitions().num_inputs(); ++sigma) {
      const std::size_t e = monoid.extend(f.element, sigma);
      if (admissible[e]) continue;
      admissible[e] = 1;
      Frontier nf{e, f.word};
      nf.word.push_back(sigma);
      witness[e] = nf.word;
      queue.push_back(std::move(nf));
    }
  }

  std::optional<Word> best;
  for (std::size_t index = 0; index < monoid.size(); ++index) {
    if (!admissible[index]) continue;
    const MonoidElement& element = monoid.element(index);
    const bool ok = cycle
                        ? element.fwd.any_diagonal()
                        : (element.pvec & monoid.transitions().last_mask()).any();
    if (!ok) {
      if (!best || witness[index].size() < best->size() ||
          (witness[index].size() == best->size() && witness[index] < *best)) {
        best = witness[index];
      }
    }
  }
  if (best) {
    report.solvable = false;
    report.counterexample = std::move(best);
  }
  return report;
}

}  // namespace lclpath
