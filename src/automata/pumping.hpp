// Pumping lemmas for input-labeled paths (Lemmas 14 and 15).
//
// Lemma 14: any word of length >= ell_pump decomposes as x ◦ y ◦ z with
// |xy| <= ell_pump + margin, |y| >= 1, and Type(x ◦ y^i ◦ z) = Type(w) for
// every i >= 0. We find the repeat among *monoid elements* of prefixes
// (which refine types), keeping a margin of 2 symbols on each side so the
// boundary inputs of the type are untouched.
//
// Lemma 15: for any word w there are a, b with a + b <= ell_pump + 1 such
// that Type(w^{a + b*i}) is invariant over i >= 0; we return the repeat in
// the power sequence of the element of w.
#pragma once

#include <cstddef>
#include <optional>

#include "automata/monoid.hpp"

namespace lclpath {

struct PumpDecomposition {
  Word x, y, z;

  Word pumped(std::size_t i) const;  ///< x ◦ y^i ◦ z
};

/// Lemma 14. Returns std::nullopt if w is too short to contain a repeated
/// interior prefix element (|w| <= ell_pump + 4 may still succeed; longer
/// words always do).
std::optional<PumpDecomposition> pump_decomposition(const Monoid& monoid, const Word& w);

/// Pumps w (if possible) until its length is at least min_length,
/// preserving the monoid element (hence the type). Returns w itself when
/// already long enough; std::nullopt when no decomposition exists.
std::optional<Word> pump_to_length(const Monoid& monoid, const Word& w,
                                   std::size_t min_length);

struct PowerPump {
  std::size_t a = 0;  ///< first exponent of the cycle
  std::size_t b = 0;  ///< cycle length: element(w^{a}) == element(w^{a+b})
};

/// Lemma 15: the repeat structure of the powers of w's element.
PowerPump power_pump(const Monoid& monoid, const Word& w);

}  // namespace lclpath
