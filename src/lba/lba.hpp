// Linear bounded automata (paper Section 3.1).
//
// An LBA is a Turing machine on a tape of fixed size B whose first and
// last cells hold the boundary markers L and R. The hardness construction
// (Section 3.2) encodes an LBA execution as the input labeling of a path;
// the LCL family Pi_MB's complexity is Theta(B * T) where T is the LBA's
// running time — with loop detection deciding which side of the
// O(1)-vs-Omega(n) dichotomy the problem falls on (and deciding *that* is
// PSPACE-hard, Theorem 5).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lclpath::lba {

/// Tape symbols: 0, 1 and the boundary markers.
enum class Symbol : std::uint8_t { k0 = 0, k1 = 1, kL = 2, kR = 3 };
constexpr std::size_t kNumSymbols = 4;

std::string to_string(Symbol s);

/// Head movements.
enum class Move : std::uint8_t { kStay, kLeft, kRight };

using State = std::uint32_t;

struct Transition {
  State next_state = 0;
  Symbol write = Symbol::k0;
  Move move = Move::kStay;
};

/// M = (Q, q0, qf, Gamma, delta). States are dense indices; state 0 is the
/// initial state by convention and `final_state` the accepting one.
class Machine {
 public:
  Machine(std::size_t num_states, State initial, State final_state,
          std::vector<std::string> state_names = {});

  std::size_t num_states() const { return num_states_; }
  State initial() const { return initial_; }
  State final_state() const { return final_; }
  const std::string& state_name(State q) const;

  /// delta(q, s); must be set for every (q, s) with q != final_state.
  void set_transition(State q, Symbol s, Transition t);
  const Transition& transition(State q, Symbol s) const;
  bool has_transition(State q, Symbol s) const;

  /// Validates totality of delta on non-final states.
  void validate() const;

 private:
  std::size_t num_states_;
  State initial_;
  State final_;
  std::vector<std::string> names_;
  std::vector<std::optional<Transition>> delta_;  // q * kNumSymbols + s
};

/// One configuration: state, tape, head position.
struct Configuration {
  State state = 0;
  std::vector<Symbol> tape;
  std::size_t head = 0;

  bool operator==(const Configuration&) const = default;
  std::size_t hash() const;
};

/// Initial configuration on a size-B tape: (L, 0, ..., 0, R), head at 0.
/// Requires B >= 2.
Configuration initial_configuration(const Machine& machine, std::size_t tape_size);

/// Result of running a machine with loop detection.
struct RunResult {
  bool halts = false;
  /// Number of steps until the final state (valid when halts).
  std::size_t steps = 0;
  /// The full execution trace: configurations step_0 (initial) .. step_T.
  /// For looping machines: the trace up to (and including) the first
  /// repeated configuration.
  std::vector<Configuration> trace;
  /// For looping machines: index at which the loop re-enters the trace.
  std::optional<std::size_t> loop_start;
};

/// Runs the machine from the initial configuration, detecting loops by
/// configuration hashing (the configuration space is finite:
/// |Q| * B * |Gamma|^B). `max_steps` guards against pathological blowups;
/// exceeding it throws std::runtime_error.
RunResult run(const Machine& machine, std::size_t tape_size,
              std::size_t max_steps = 10'000'000);

/// Applies delta once. Throws if the configuration is final or the head
/// would leave the tape (a malformed machine).
Configuration step(const Machine& machine, const Configuration& config);

}  // namespace lclpath::lba
