// Linear bounded automata (paper Section 3.1).
//
// An LBA is a Turing machine on a tape of fixed size B whose first and
// last cells hold the boundary markers L and R. The hardness construction
// (Section 3.2) encodes an LBA execution as the input labeling of a path;
// the LCL family Pi_MB's complexity is Theta(B * T) where T is the LBA's
// running time — with loop detection deciding which side of the
// O(1)-vs-Omega(n) dichotomy the problem falls on (and deciding *that* is
// PSPACE-hard, Theorem 5).
//
// The step relation has two representations:
//
//  * Configuration / step() — structured, one tape symbol per byte, a new
//    configuration per step. The readable reference semantics.
//  * StepTable / PackedConfig — delta compiled once into a dense table
//    (built lazily per machine and reused across every run and encoding
//    size) driving in-place steps on a configuration packed into 64-bit
//    words, 2 bits per tape cell. run(), run_headless() and the hardness
//    encoder all step through this path; the differential tests pin it
//    against the reference.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cancel.hpp"

namespace lclpath::lba {

/// Tape symbols: 0, 1 and the boundary markers.
enum class Symbol : std::uint8_t { k0 = 0, k1 = 1, kL = 2, kR = 3 };
constexpr std::size_t kNumSymbols = 4;

std::string to_string(Symbol s);

/// Head movements.
enum class Move : std::uint8_t { kStay, kLeft, kRight };

using State = std::uint32_t;

struct Transition {
  State next_state = 0;
  Symbol write = Symbol::k0;
  Move move = Move::kStay;
};

class StepTable;

/// M = (Q, q0, qf, Gamma, delta). States are dense indices; state 0 is the
/// initial state by convention and `final_state` the accepting one.
class Machine {
 public:
  Machine(std::size_t num_states, State initial, State final_state,
          std::vector<std::string> state_names = {});

  std::size_t num_states() const { return num_states_; }
  State initial() const { return initial_; }
  State final_state() const { return final_; }
  const std::string& state_name(State q) const;

  /// delta(q, s); must be set for every (q, s) with q != final_state.
  void set_transition(State q, Symbol s, Transition t);
  const Transition& transition(State q, Symbol s) const;
  bool has_transition(State q, Symbol s) const;

  /// Validates totality of delta on non-final states.
  void validate() const;

  /// delta compiled into a dense StepTable, built (and validated) on first
  /// use and cached until the next set_transition(). The cache makes every
  /// run / encoding over the same machine share one table, but the lazy
  /// build itself is not synchronized: touch step_table() once before
  /// handing the machine to concurrent workers.
  const StepTable& step_table() const;

 private:
  std::size_t num_states_;
  State initial_;
  State final_;
  std::vector<std::string> names_;
  std::vector<std::optional<Transition>> delta_;  // q * kNumSymbols + s
  mutable std::shared_ptr<const StepTable> step_table_;
};

/// delta as a flat array indexed by q * kNumSymbols + s, with the head
/// movement pre-decoded to a signed offset — the per-step representation
/// used by every packed run.
class StepTable {
 public:
  struct Entry {
    State next_state = 0;
    std::uint8_t write = 0;  // Symbol as raw 2-bit value
    std::int8_t dhead = 0;   // -1 / 0 / +1
  };

  /// Compiles the machine's delta; validates totality first.
  explicit StepTable(const Machine& machine);

  State final_state() const { return final_; }
  const Entry& at(State q, Symbol s) const {
    return entries_[q * kNumSymbols + static_cast<std::size_t>(s)];
  }

 private:
  State final_ = 0;
  std::vector<Entry> entries_;
};

/// One configuration: state, tape, head position. The structured
/// reference form.
struct Configuration {
  State state = 0;
  std::vector<Symbol> tape;
  std::size_t head = 0;

  bool operator==(const Configuration&) const = default;
  std::size_t hash() const;
};

/// A configuration packed into 64-bit words: word 0 holds state (low half)
/// and head (high half), then the tape at 2 bits per cell. step() mutates
/// in place — no allocation, O(1) work — so a T-step run touches O(B)
/// memory instead of copying T tapes.
class PackedConfig {
 public:
  PackedConfig() = default;
  /// The initial configuration (L, 0, ..., 0, R), head at 0; requires
  /// tape_size >= 2.
  PackedConfig(const Machine& machine, std::size_t tape_size);

  std::size_t tape_size() const { return tape_size_; }
  State state() const { return static_cast<State>(words_[0] & 0xFFFFFFFFu); }
  std::size_t head() const { return static_cast<std::size_t>(words_[0] >> 32); }
  Symbol cell(std::size_t i) const {
    return static_cast<Symbol>((words_[1 + i / 32] >> (2 * (i % 32))) & 3u);
  }

  /// Applies delta once in place. Throws if the configuration is final or
  /// the head would leave the tape (a malformed machine).
  void step(const StepTable& table);

  const std::vector<std::uint64_t>& words() const { return words_; }
  std::size_t hash() const;
  Configuration unpack() const;

  bool operator==(const PackedConfig&) const = default;

 private:
  std::size_t tape_size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Result of running a machine with loop detection. The run records
/// packed configurations only; the structured trace is materialized on
/// demand (most callers — the halting decisions of Theorems 4/5 — only
/// read halts/steps).
class RunResult {
 public:
  bool halts = false;
  /// Number of steps until the final state (valid when halts).
  std::size_t steps = 0;
  /// For looping machines: index at which the loop re-enters the trace.
  std::optional<std::size_t> loop_start;

  /// Number of configurations recorded: step_0 (initial) .. step_T for a
  /// halting run; for looping machines the prefix up to (and including)
  /// the first repeated configuration.
  std::size_t trace_length() const;
  /// The execution trace as structured configurations, unpacked on first
  /// access and cached (not thread-safe; copy the RunResult per thread).
  const std::vector<Configuration>& trace() const;

 private:
  friend RunResult run(const Machine&, std::size_t, std::size_t,
                       const ExecutionBudget*);
  std::size_t tape_size_ = 0;
  std::size_t words_per_config_ = 0;
  std::vector<std::uint64_t> arena_;  // trace_length() packed configs
  mutable std::vector<Configuration> trace_;
};

/// Runs the machine from the initial configuration, detecting loops by
/// configuration hashing (the configuration space is finite:
/// |Q| * B * |Gamma|^B). `max_steps` guards against pathological blowups;
/// exceeding it throws std::runtime_error. A non-null `budget` is
/// checkpointed per step and charged the trace arena's growth, so long
/// runs honor deadlines, cancellation, and memory ceilings.
RunResult run(const Machine& machine, std::size_t tape_size,
              std::size_t max_steps = 10'000'000,
              const ExecutionBudget* budget = nullptr);

/// Halting statistics without a trace: loop_start/loop_length are the
/// (mu, lambda) of the configuration orbit for looping machines.
struct RunStats {
  bool halts = false;
  std::size_t steps = 0;  ///< steps to the final state (valid when halts)
  std::optional<std::size_t> loop_start;
  std::optional<std::size_t> loop_length;
};

/// Decides halting in O(B) memory via Brent's cycle detection on the
/// deterministic step sequence — the Theorem 5 halting decision at tape
/// sizes whose trace (run() keeps all of it for loop detection) would not
/// fit. Costs at most ~3 (mu + lambda) steps; throws std::runtime_error
/// when the halting time or mu + lambda exceeds `max_steps`.
RunStats run_headless(const Machine& machine, std::size_t tape_size,
                      std::size_t max_steps = 100'000'000,
                      const ExecutionBudget* budget = nullptr);

/// Initial configuration on a size-B tape: (L, 0, ..., 0, R), head at 0.
/// Requires B >= 2.
Configuration initial_configuration(const Machine& machine, std::size_t tape_size);

/// Applies delta once (reference semantics: returns a fresh
/// configuration). Throws if the configuration is final or the head would
/// leave the tape (a malformed machine).
Configuration step(const Machine& machine, const Configuration& config);

}  // namespace lclpath::lba
