// LBA catalog used by the hardness experiments.
//
//  * immediate_halt: accepts in one step — Pi_MB is O(1) with a tiny
//    constant.
//  * unary_counter: flips tape cells to 1 one sweep at a time; halts after
//    Theta(B^2) steps (Figure 1's flavor of machine).
//  * binary_counter: increments a binary counter until overflow; halts
//    after Theta(2^B) steps — the witness for Theorem 4's 2^Omega(beta)
//    constant-time complexity.
//  * looper: never halts — Pi_MB becomes Theta(n).
#pragma once

#include "lba/lba.hpp"

namespace lclpath::lba {

Machine immediate_halt();
Machine unary_counter();
Machine binary_counter();
Machine looper();

}  // namespace lclpath::lba
