#include "lba/machines.hpp"

namespace lclpath::lba {

namespace {
constexpr Symbol k0 = Symbol::k0;
constexpr Symbol k1 = Symbol::k1;
constexpr Symbol kL = Symbol::kL;
constexpr Symbol kR = Symbol::kR;

/// Fills any undefined transition with a harmless self-loop so that
/// validate() passes; the filled entries are unreachable by construction
/// of the specific machines below.
void fill_unreachable(Machine& m) {
  for (State q = 0; q < m.num_states(); ++q) {
    if (q == m.final_state()) continue;
    for (std::size_t s = 0; s < kNumSymbols; ++s) {
      const Symbol symbol = static_cast<Symbol>(s);
      if (!m.has_transition(q, symbol)) {
        m.set_transition(q, symbol, {q, symbol, Move::kStay});
      }
    }
  }
}
}  // namespace

Machine immediate_halt() {
  Machine m(2, 0, 1, {"q0", "qf"});
  m.set_transition(0, kL, {1, kL, Move::kStay});
  fill_unreachable(m);
  // The filled self-loops on q0 are unreachable: the head starts on L.
  return m;
}

Machine unary_counter() {
  // q0 scans right over L/1s; the first 0 becomes 1 and q1 rewinds to L.
  // Reading R in q0 means the tape is full: accept.
  Machine m(3, 0, 2, {"q0", "q1", "qf"});
  m.set_transition(0, kL, {0, kL, Move::kRight});
  m.set_transition(0, k1, {0, k1, Move::kRight});
  m.set_transition(0, k0, {1, k1, Move::kLeft});
  m.set_transition(0, kR, {2, kR, Move::kStay});
  m.set_transition(1, k1, {1, k1, Move::kLeft});
  m.set_transition(1, kL, {0, kL, Move::kRight});
  fill_unreachable(m);
  return m;
}

Machine binary_counter() {
  // q0 walks to the right marker; q1 increments right-to-left (1 -> 0 and
  // keep carrying, 0 -> 1 and go back to q0). Carrying into L overflows:
  // accept. Runs for Theta(2^B) steps.
  Machine m(3, 0, 2, {"q0", "q1", "qf"});
  m.set_transition(0, kL, {0, kL, Move::kRight});
  m.set_transition(0, k0, {0, k0, Move::kRight});
  m.set_transition(0, k1, {0, k1, Move::kRight});
  m.set_transition(0, kR, {1, kR, Move::kLeft});
  m.set_transition(1, k1, {1, k0, Move::kLeft});
  m.set_transition(1, k0, {0, k1, Move::kRight});
  m.set_transition(1, kL, {2, kL, Move::kStay});
  fill_unreachable(m);
  return m;
}

Machine looper() {
  // Bounces between the two leftmost cells forever; qf unreachable.
  Machine m(3, 0, 2, {"q0", "q1", "qf"});
  m.set_transition(0, kL, {1, kL, Move::kRight});
  m.set_transition(1, k0, {0, k0, Move::kLeft});
  m.set_transition(1, k1, {0, k1, Move::kLeft});
  m.set_transition(1, kR, {0, kR, Move::kLeft});
  fill_unreachable(m);
  return m;
}

}  // namespace lclpath::lba
