#include "lba/lba.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/bitmatrix.hpp"  // hash_mix

namespace lclpath::lba {

std::string to_string(Symbol s) {
  switch (s) {
    case Symbol::k0: return "0";
    case Symbol::k1: return "1";
    case Symbol::kL: return "L";
    case Symbol::kR: return "R";
  }
  return "?";
}

Machine::Machine(std::size_t num_states, State initial, State final_state,
                 std::vector<std::string> state_names)
    : num_states_(num_states),
      initial_(initial),
      final_(final_state),
      names_(std::move(state_names)),
      delta_(num_states * kNumSymbols) {
  if (initial >= num_states || final_state >= num_states) {
    throw std::invalid_argument("Machine: state index out of range");
  }
  if (names_.empty()) {
    for (std::size_t q = 0; q < num_states; ++q) names_.push_back("q" + std::to_string(q));
  }
  if (names_.size() != num_states) {
    throw std::invalid_argument("Machine: state name count mismatch");
  }
}

const std::string& Machine::state_name(State q) const {
  if (q >= num_states_) throw std::out_of_range("Machine::state_name");
  return names_[q];
}

void Machine::set_transition(State q, Symbol s, Transition t) {
  if (q >= num_states_) throw std::out_of_range("Machine::set_transition: bad state");
  if (q == final_) {
    throw std::invalid_argument("Machine::set_transition: final state has no outgoing delta");
  }
  if (t.next_state >= num_states_) {
    throw std::out_of_range("Machine::set_transition: bad target state");
  }
  delta_[q * kNumSymbols + static_cast<std::size_t>(s)] = t;
  step_table_.reset();
}

const Transition& Machine::transition(State q, Symbol s) const {
  const auto& t = delta_[q * kNumSymbols + static_cast<std::size_t>(s)];
  if (!t) {
    throw std::logic_error("Machine::transition: delta(" + state_name(q) + ", " +
                           lba::to_string(s) + ") undefined");
  }
  return *t;
}

bool Machine::has_transition(State q, Symbol s) const {
  return delta_[q * kNumSymbols + static_cast<std::size_t>(s)].has_value();
}

void Machine::validate() const {
  for (State q = 0; q < num_states_; ++q) {
    if (q == final_) continue;
    for (std::size_t s = 0; s < kNumSymbols; ++s) {
      if (!delta_[q * kNumSymbols + s]) {
        throw std::logic_error("Machine::validate: delta(" + state_name(q) + ", " +
                               lba::to_string(static_cast<Symbol>(s)) + ") undefined");
      }
    }
  }
}

const StepTable& Machine::step_table() const {
  if (!step_table_) step_table_ = std::make_shared<const StepTable>(*this);
  return *step_table_;
}

StepTable::StepTable(const Machine& machine) : final_(machine.final_state()) {
  machine.validate();
  entries_.resize(machine.num_states() * kNumSymbols);
  for (State q = 0; q < machine.num_states(); ++q) {
    if (q == final_) continue;
    for (std::size_t s = 0; s < kNumSymbols; ++s) {
      const Transition& t = machine.transition(q, static_cast<Symbol>(s));
      Entry& e = entries_[q * kNumSymbols + s];
      e.next_state = t.next_state;
      e.write = static_cast<std::uint8_t>(t.write);
      e.dhead = t.move == Move::kLeft ? -1 : t.move == Move::kRight ? 1 : 0;
    }
  }
}

std::size_t Configuration::hash() const {
  std::size_t h = hash_mix(state, head);
  for (Symbol s : tape) h = hash_mix(h, static_cast<std::size_t>(s));
  return h;
}

PackedConfig::PackedConfig(const Machine& machine, std::size_t tape_size)
    : tape_size_(tape_size) {
  if (tape_size < 2) throw std::invalid_argument("PackedConfig: B must be >= 2");
  words_.assign(1 + (tape_size + 31) / 32, 0);
  words_[0] = static_cast<std::uint64_t>(machine.initial());  // head = 0
  // Tape (L, 0, ..., 0, R): interior cells are Symbol::k0 == 0 already.
  words_[1] |= static_cast<std::uint64_t>(Symbol::kL);
  const std::size_t last = tape_size - 1;
  words_[1 + last / 32] |= static_cast<std::uint64_t>(Symbol::kR) << (2 * (last % 32));
}

void PackedConfig::step(const StepTable& table) {
  const std::uint64_t w0 = words_[0];
  const State q = static_cast<State>(w0 & 0xFFFFFFFFu);
  if (q == table.final_state()) {
    throw std::logic_error("lba::PackedConfig::step: machine already in the final state");
  }
  const std::size_t h = static_cast<std::size_t>(w0 >> 32);
  const std::size_t word = 1 + h / 32;
  const unsigned shift = 2 * (h % 32);
  const Symbol s = static_cast<Symbol>((words_[word] >> shift) & 3u);
  const StepTable::Entry& e = table.at(q, s);
  words_[word] = (words_[word] & ~(3ull << shift)) |
                 (static_cast<std::uint64_t>(e.write) << shift);
  std::size_t next_head = h;
  if (e.dhead < 0) {
    if (h == 0) throw std::logic_error("lba::step: head moved off the left boundary");
    next_head = h - 1;
  } else if (e.dhead > 0) {
    if (h + 1 >= tape_size_) {
      throw std::logic_error("lba::step: head moved off the right boundary");
    }
    next_head = h + 1;
  }
  words_[0] = static_cast<std::uint64_t>(e.next_state) |
              (static_cast<std::uint64_t>(next_head) << 32);
}

std::size_t PackedConfig::hash() const {
  std::size_t h = tape_size_;
  for (const std::uint64_t w : words_) h = hash_mix(h, static_cast<std::size_t>(w));
  return h;
}

Configuration PackedConfig::unpack() const {
  Configuration c;
  c.state = state();
  c.head = head();
  c.tape.resize(tape_size_);
  for (std::size_t i = 0; i < tape_size_; ++i) c.tape[i] = cell(i);
  return c;
}

Configuration initial_configuration(const Machine& machine, std::size_t tape_size) {
  if (tape_size < 2) throw std::invalid_argument("initial_configuration: B must be >= 2");
  Configuration c;
  c.state = machine.initial();
  c.head = 0;
  c.tape.assign(tape_size, Symbol::k0);
  c.tape.front() = Symbol::kL;
  c.tape.back() = Symbol::kR;
  return c;
}

Configuration step(const Machine& machine, const Configuration& config) {
  if (config.state == machine.final_state()) {
    throw std::logic_error("lba::step: machine already in the final state");
  }
  const Transition& t = machine.transition(config.state, config.tape[config.head]);
  Configuration next = config;
  next.state = t.next_state;
  next.tape[config.head] = t.write;
  switch (t.move) {
    case Move::kStay: break;
    case Move::kLeft:
      if (config.head == 0) {
        throw std::logic_error("lba::step: head moved off the left boundary");
      }
      next.head = config.head - 1;
      break;
    case Move::kRight:
      if (config.head + 1 >= config.tape.size()) {
        throw std::logic_error("lba::step: head moved off the right boundary");
      }
      next.head = config.head + 1;
      break;
  }
  return next;
}

std::size_t RunResult::trace_length() const {
  return words_per_config_ == 0 ? 0 : arena_.size() / words_per_config_;
}

const std::vector<Configuration>& RunResult::trace() const {
  if (trace_.empty() && !arena_.empty()) {
    const std::size_t count = trace_length();
    trace_.reserve(count);
    for (std::size_t idx = 0; idx < count; ++idx) {
      const std::uint64_t* words = arena_.data() + idx * words_per_config_;
      Configuration c;
      c.state = static_cast<State>(words[0] & 0xFFFFFFFFu);
      c.head = static_cast<std::size_t>(words[0] >> 32);
      c.tape.resize(tape_size_);
      for (std::size_t i = 0; i < tape_size_; ++i) {
        c.tape[i] = static_cast<Symbol>((words[1 + i / 32] >> (2 * (i % 32))) & 3u);
      }
      trace_.push_back(std::move(c));
    }
  }
  return trace_;
}

namespace {
std::size_t hash_words(const std::uint64_t* words, std::size_t count, std::size_t seed) {
  std::size_t h = seed;
  for (std::size_t i = 0; i < count; ++i) {
    h = hash_mix(h, static_cast<std::size_t>(words[i]));
  }
  return h;
}
}  // namespace

RunResult run(const Machine& machine, std::size_t tape_size, std::size_t max_steps,
              const ExecutionBudget* budget) {
  const StepTable& table = machine.step_table();
  const State final_state = machine.final_state();
  RunResult result;
  PackedConfig current(machine, tape_size);
  const std::size_t wpc = current.words().size();
  result.tape_size_ = tape_size;
  result.words_per_config_ = wpc;
  std::vector<std::uint64_t>& arena = result.arena_;

  // Loop detection on an open-addressed index table over the arena: slots
  // hold trace-index + 1 (0 = empty), collisions probe linearly and are
  // resolved by comparing the packed words — no per-step allocation, no
  // node-based map. Rehashing recomputes hashes from the arena.
  std::vector<std::uint32_t> slots(1u << 10, 0);
  std::size_t mask = slots.size() - 1;
  std::size_t used = 0;
  const auto matches = [&](std::uint32_t idx) {
    return std::equal(current.words().begin(), current.words().end(),
                      arena.begin() + static_cast<std::ptrdiff_t>(idx * wpc));
  };
  const auto grow = [&] {
    std::vector<std::uint32_t> bigger(slots.size() * 2, 0);
    const std::size_t bigger_mask = bigger.size() - 1;
    for (const std::uint32_t stored : slots) {
      if (stored == 0) continue;
      const std::size_t h =
          hash_words(arena.data() + (stored - 1) * wpc, wpc, tape_size);
      std::size_t slot = h & bigger_mask;
      while (bigger[slot] != 0) slot = (slot + 1) & bigger_mask;
      bigger[slot] = stored;
    }
    slots = std::move(bigger);
    mask = bigger_mask;
  };
  // Returns the index of a previously-seen identical configuration, or
  // inserts the new index and returns npos.
  const auto find_or_insert = [&](std::uint32_t idx) -> std::size_t {
    if (used * 10 >= slots.size() * 7) grow();
    const std::size_t h = hash_words(current.words().data(), wpc, tape_size);
    for (std::size_t slot = h & mask;; slot = (slot + 1) & mask) {
      if (slots[slot] == 0) {
        slots[slot] = idx + 1;
        ++used;
        return static_cast<std::size_t>(-1);
      }
      if (matches(slots[slot] - 1)) return slots[slot] - 1;
    }
  };
  const auto push = [&] {
    arena.insert(arena.end(), current.words().begin(), current.words().end());
    budget_charge_memory(budget, wpc * sizeof(std::uint64_t));
  };

  push();
  find_or_insert(0);
  for (std::size_t s = 0; s < max_steps; ++s) {
    budget_checkpoint(budget);
    if (current.state() == final_state) {
      result.halts = true;
      result.steps = s;
      return result;
    }
    current.step(table);
    const std::size_t previous =
        find_or_insert(static_cast<std::uint32_t>(arena.size() / wpc));
    push();
    if (previous != static_cast<std::size_t>(-1)) {
      result.halts = false;
      result.loop_start = previous;
      return result;
    }
  }
  throw std::runtime_error("lba::run: exceeded max_steps without halting or looping");
}

RunStats run_headless(const Machine& machine, std::size_t tape_size,
                      std::size_t max_steps, const ExecutionBudget* budget) {
  const StepTable& table = machine.step_table();
  const State final_state = machine.final_state();
  RunStats result;
  // Brent's algorithm: the hare walks the orbit once (checking for the
  // final state before each step), the tortoise teleports to the hare at
  // powers of two. They meet after at most mu + 2 * lambda hare steps.
  PackedConfig tortoise(machine, tape_size);
  PackedConfig hare = tortoise;
  std::size_t power = 1;
  std::size_t lambda = 0;
  std::size_t hare_steps = 0;
  do {
    budget_checkpoint(budget);
    if (power == lambda) {
      tortoise = hare;
      power *= 2;
      lambda = 0;
    }
    if (hare.state() == final_state) {
      result.halts = true;
      result.steps = hare_steps;
      return result;
    }
    if (hare_steps >= 2 * max_steps + 2) {
      throw std::runtime_error(
          "lba::run_headless: exceeded max_steps without halting or looping");
    }
    hare.step(table);
    ++hare_steps;
    ++lambda;
  } while (!(tortoise == hare));

  // Cycle length lambda found; locate mu by walking two cursors lambda
  // steps apart from the start.
  PackedConfig front(machine, tape_size);
  PackedConfig back(machine, tape_size);
  for (std::size_t i = 0; i < lambda; ++i) {
    budget_checkpoint(budget);
    front.step(table);
  }
  std::size_t mu = 0;
  while (!(front == back)) {
    budget_checkpoint(budget);
    front.step(table);
    back.step(table);
    ++mu;
  }
  if (mu + lambda > max_steps) {
    throw std::runtime_error(
        "lba::run_headless: exceeded max_steps without halting or looping");
  }
  result.halts = false;
  result.loop_start = mu;
  result.loop_length = lambda;
  return result;
}

}  // namespace lclpath::lba
