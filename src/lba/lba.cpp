#include "lba/lba.hpp"

#include <stdexcept>
#include <unordered_map>

#include "core/bitmatrix.hpp"  // hash_mix

namespace lclpath::lba {

std::string to_string(Symbol s) {
  switch (s) {
    case Symbol::k0: return "0";
    case Symbol::k1: return "1";
    case Symbol::kL: return "L";
    case Symbol::kR: return "R";
  }
  return "?";
}

Machine::Machine(std::size_t num_states, State initial, State final_state,
                 std::vector<std::string> state_names)
    : num_states_(num_states),
      initial_(initial),
      final_(final_state),
      names_(std::move(state_names)),
      delta_(num_states * kNumSymbols) {
  if (initial >= num_states || final_state >= num_states) {
    throw std::invalid_argument("Machine: state index out of range");
  }
  if (names_.empty()) {
    for (std::size_t q = 0; q < num_states; ++q) names_.push_back("q" + std::to_string(q));
  }
  if (names_.size() != num_states) {
    throw std::invalid_argument("Machine: state name count mismatch");
  }
}

const std::string& Machine::state_name(State q) const {
  if (q >= num_states_) throw std::out_of_range("Machine::state_name");
  return names_[q];
}

void Machine::set_transition(State q, Symbol s, Transition t) {
  if (q >= num_states_) throw std::out_of_range("Machine::set_transition: bad state");
  if (q == final_) {
    throw std::invalid_argument("Machine::set_transition: final state has no outgoing delta");
  }
  if (t.next_state >= num_states_) {
    throw std::out_of_range("Machine::set_transition: bad target state");
  }
  delta_[q * kNumSymbols + static_cast<std::size_t>(s)] = t;
}

const Transition& Machine::transition(State q, Symbol s) const {
  const auto& t = delta_[q * kNumSymbols + static_cast<std::size_t>(s)];
  if (!t) {
    throw std::logic_error("Machine::transition: delta(" + state_name(q) + ", " +
                           lba::to_string(s) + ") undefined");
  }
  return *t;
}

bool Machine::has_transition(State q, Symbol s) const {
  return delta_[q * kNumSymbols + static_cast<std::size_t>(s)].has_value();
}

void Machine::validate() const {
  for (State q = 0; q < num_states_; ++q) {
    if (q == final_) continue;
    for (std::size_t s = 0; s < kNumSymbols; ++s) {
      if (!delta_[q * kNumSymbols + s]) {
        throw std::logic_error("Machine::validate: delta(" + state_name(q) + ", " +
                               lba::to_string(static_cast<Symbol>(s)) + ") undefined");
      }
    }
  }
}

std::size_t Configuration::hash() const {
  std::size_t h = hash_mix(state, head);
  for (Symbol s : tape) h = hash_mix(h, static_cast<std::size_t>(s));
  return h;
}

Configuration initial_configuration(const Machine& machine, std::size_t tape_size) {
  if (tape_size < 2) throw std::invalid_argument("initial_configuration: B must be >= 2");
  Configuration c;
  c.state = machine.initial();
  c.head = 0;
  c.tape.assign(tape_size, Symbol::k0);
  c.tape.front() = Symbol::kL;
  c.tape.back() = Symbol::kR;
  return c;
}

Configuration step(const Machine& machine, const Configuration& config) {
  if (config.state == machine.final_state()) {
    throw std::logic_error("lba::step: machine already in the final state");
  }
  const Transition& t = machine.transition(config.state, config.tape[config.head]);
  Configuration next = config;
  next.state = t.next_state;
  next.tape[config.head] = t.write;
  switch (t.move) {
    case Move::kStay: break;
    case Move::kLeft:
      if (config.head == 0) {
        throw std::logic_error("lba::step: head moved off the left boundary");
      }
      next.head = config.head - 1;
      break;
    case Move::kRight:
      if (config.head + 1 >= config.tape.size()) {
        throw std::logic_error("lba::step: head moved off the right boundary");
      }
      next.head = config.head + 1;
      break;
  }
  return next;
}

RunResult run(const Machine& machine, std::size_t tape_size, std::size_t max_steps) {
  machine.validate();
  RunResult result;
  Configuration current = initial_configuration(machine, tape_size);
  std::unordered_map<std::size_t, std::vector<std::size_t>> seen;  // hash -> trace idx
  result.trace.push_back(current);
  seen[current.hash()].push_back(0);
  for (std::size_t s = 0; s < max_steps; ++s) {
    if (current.state == machine.final_state()) {
      result.halts = true;
      result.steps = s;
      return result;
    }
    current = step(machine, current);
    // Loop detection before pushing.
    const std::size_t h = current.hash();
    auto it = seen.find(h);
    if (it != seen.end()) {
      for (std::size_t idx : it->second) {
        if (result.trace[idx] == current) {
          result.trace.push_back(current);
          result.halts = false;
          result.loop_start = idx;
          return result;
        }
      }
    }
    result.trace.push_back(current);
    seen[h].push_back(result.trace.size() - 1);
  }
  throw std::runtime_error("lba::run: exceeded max_steps without halting or looping");
}

}  // namespace lclpath::lba
