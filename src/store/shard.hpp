// Shard files: the on-disk unit of the persistent result store.
//
// A shard is a plain-text file holding serialized classification records,
// fronted by a self-describing header:
//
//   lclshard 1 <record-count> <payload-checksum-16hex>
//   record factorized auto class log-star
//   lcl 3-coloring
//   topology directed-cycle
//   ...
//   end
//   record factorized auto error timeout
//   message deadline expired after 100ms
//   lcl hostile-a4-b4-s7
//   ...
//   end
//
// Each record carries the full problem serialization (lcl/serialize.hpp)
// plus the engine / certificate-mode configuration it was classified
// under — together exactly the in-memory BatchCache identity
// (canonical_key + cache_identity_suffix) — and either a complexity class
// or a BatchError observation.
//
// PERSISTENCE CONTRACT
//
//   * Commit side: write_shard_atomic() goes write-temp -> fsync ->
//     atomic rename -> fsync(dir). A crash or I/O failure at any point
//     leaves the destination either the complete old file or the complete
//     new file, never a torn mix; stray "*.tmp" leftovers are ignored by
//     every reader. I/O failures throw StoreIoError (and only that).
//   * Load side: decode validates the magic, the format version, the
//     payload checksum and the record count before trusting a single
//     byte. A truncated tail, a bit flip, an unknown version or hostile
//     bytes make the shard *dirty* — a skippable, reportable state that
//     means "re-classify incrementally" — never a crash and never a
//     partially-applied shard.
//   * Failure records are observations, not cached outcomes: loaders
//     surface them so a service can decide retry policy (see
//     store::retry_eligible), but they are never served as if they were
//     classifications.
//
// Under LCLPATH_FAULT_INJECTION every write/fsync/rename/load reports to
// core/fault_injection's I/O harness, which makes the whole contract
// testable deterministically (tests/store_test.cpp sweeps every point).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "decide/batch.hpp"
#include "lcl/problem.hpp"

namespace lclpath::store {

/// The shard format this build writes; decode() rejects anything newer
/// (or older, once the format evolves) as dirty rather than guessing.
inline constexpr std::uint32_t kShardFormatVersion = 1;

/// Thrown by the commit path on any I/O failure (open/write/fsync/
/// rename). The store file set is still old-complete or new-complete —
/// callers may retry the commit verbatim.
class StoreIoError : public std::runtime_error {
 public:
  explicit StoreIoError(const std::string& message) : std::runtime_error(message) {}
};

/// One persisted result: a problem, the configuration it was classified
/// under, and either a complexity class (`classified`) or a structured
/// failure observation (`observation`). Exactly one of the two is set.
struct StoreRecord {
  PairwiseProblem problem;
  LinearGapEngine engine = LinearGapEngine::kFactorized;
  CertificateMode mode = CertificateMode::kAuto;
  std::optional<ComplexityClass> classified;
  std::optional<BatchError> observation;

  bool ok() const { return classified.has_value(); }
  /// The full cache identity — canonical_key(problem) plus the engine/
  /// certificate suffix — i.e. the same string classify_batch keys its
  /// BatchCache with.
  std::string cache_key() const;
};

/// The outcome of decoding one shard. `ok == false` means the shard is
/// dirty: `error` says why, `records` is empty, and the caller re-derives
/// the shard's content instead of trusting any of it.
struct ShardLoadResult {
  bool ok = false;
  std::string error;
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  std::size_t declared_records = 0;
  std::vector<StoreRecord> records;
};

/// Serializes records into shard bytes (header + payload).
std::string encode_shard(const std::vector<StoreRecord>& records);

/// Validates + parses shard bytes; never throws on hostile input.
ShardLoadResult decode_shard(const std::string& bytes);

/// Reads and decodes one shard file. A missing/unreadable file is dirty,
/// not an exception (the loader's callers treat every bad shard the same
/// way). Reports fault::IoPoint::kLoad.
ShardLoadResult load_shard(const std::string& path);

/// Writes `bytes` to `path` crash-safely: temp file in the same
/// directory, fsync, atomic rename over `path`, fsync of the directory.
/// Throws StoreIoError on failure, after removing the temp file; the
/// destination is untouched unless the rename completed. Reports
/// fault::IoPoint::{kWrite,kFsync,kRename}.
void write_shard_atomic(const std::string& path, const std::string& bytes);

}  // namespace lclpath::store
