// The validated hot-reload serve loop over a catalog directory.
//
// CatalogServer watches a store directory and keeps an immutable
// StoreSnapshot current, with the subscription/validate/swap shape of
// Envoy's SdsApi: a changed shard file is parsed and checksummed fully
// off to the side, and only a shard that validates end-to-end is swapped
// in — RCU-style, via a shared_ptr swap, so in-flight readers holding the
// previous snapshot() keep a consistent view for as long as they need it.
// An invalid update (torn tail, bit flip, unknown version, hostile bytes,
// injected load fault) is *rejected*: the rejection is counted and
// reported, and the server keeps answering every lookup from the last
// good state. A rejected shard is retried automatically once its file
// changes again.
//
// Thread model: poll() is single-threaded (one poller — the serve loop);
// snapshot() and the counters are safe from any number of concurrent
// reader threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "store/store.hpp"

namespace lclpath::store {

/// What one poll() pass did.
struct ReloadReport {
  std::size_t reloaded = 0;   ///< shards validated and swapped in
  std::size_t rejected = 0;   ///< shards that failed validation (old state kept)
  std::size_t unchanged = 0;  ///< shards whose stat was untouched
  std::size_t removed = 0;    ///< shard files that disappeared
  /// Human-readable "file: what happened" lines for reloads/rejections.
  std::vector<std::string> notes;

  bool changed() const { return reloaded > 0 || removed > 0; }
};

class CatalogServer {
 public:
  explicit CatalogServer(std::string directory);

  /// One watch pass: stats every shard file, validates anything new or
  /// changed off to the side, then publishes a fresh snapshot if (and
  /// only if) at least one shard validated or disappeared. The first
  /// call is the initial load.
  ReloadReport poll();

  /// The current snapshot (RCU read). Never null; empty before the first
  /// poll(). Callers keep the returned pointer for a whole request so
  /// every lookup within it is consistent, even across a concurrent swap.
  std::shared_ptr<const StoreSnapshot> snapshot() const;

  const std::string& directory() const { return directory_; }
  /// Bumped on every published swap.
  std::uint64_t generation() const { return generation_.load(std::memory_order_relaxed); }
  std::uint64_t reloads() const { return reloads_.load(std::memory_order_relaxed); }
  std::uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }

 private:
  struct ShardState {
    std::int64_t mtime_ns = 0;
    std::uint64_t size = 0;
    /// Last *validated* content; kept across rejections of newer writes.
    std::vector<StoreRecord> records;
  };

  void publish();

  std::string directory_;
  /// Keyed by file path (sorted), so union order is deterministic.
  std::map<std::string, ShardState> shards_;
  mutable std::mutex mutex_;
  std::shared_ptr<const StoreSnapshot> snapshot_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> rejections_{0};
};

}  // namespace lclpath::store
