#include "store/store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "decide/classifier.hpp"
#include "lcl/serialize.hpp"

namespace lclpath::store {

namespace fs = std::filesystem;

std::vector<std::string> list_shard_files(const std::string& directory) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".lcls") == 0) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool retry_eligible(BatchErrorKind kind) { return kind != BatchErrorKind::kMalformed; }

StoreRecord record_of(const PairwiseProblem& problem, const BatchEntry& entry,
                      const ClassifyOptions& options) {
  StoreRecord record;
  record.problem = problem;
  record.engine = options.linear_engine;
  record.mode = options.certificate_mode;
  if (entry.ok()) {
    record.classified = entry.classified().complexity();
  } else if (entry.outcome != nullptr && entry.outcome->error) {
    record.observation = *entry.outcome->error;
  } else {
    record.observation = BatchError{BatchErrorKind::kInternal, "missing batch outcome"};
  }
  return record;
}

const StoreRecord* StoreSnapshot::find(const std::string& cache_key) const {
  const auto it = records_.find(cache_key);
  return it == records_.end() ? nullptr : &it->second;
}

ResultStore::ResultStore(std::string directory, StoreOptions options)
    : directory_(std::move(directory)), options_(options) {
  if (options_.shard_count == 0) options_.shard_count = 1;
}

LoadReport ResultStore::load() {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  LoadReport report;
  for (const std::string& file : list_shard_files(directory_)) {
    ++report.shards_seen;
    ShardLoadResult shard = load_shard(file);
    if (!shard.ok) {
      report.dirty.push_back(file + ": " + shard.error);
      continue;
    }
    ++report.shards_ok;
    for (StoreRecord& record : shard.records) {
      std::string key = record.cache_key();
      const auto [it, inserted] = records_.emplace(std::move(key), std::move(record));
      (void)it;
      if (inserted) {
        ++report.records;
      } else {
        ++report.duplicates;
      }
    }
  }
  return report;
}

void ResultStore::put(StoreRecord record) {
  std::string key = record.cache_key();
  const auto it = records_.find(key);
  if (it != records_.end() && it->second.ok() && !record.ok()) {
    // Never clobber a stored classification with an observation: the
    // class is machine-independent truth, the failure is circumstance.
    return;
  }
  dirty_shards_.insert(shard_index(key));
  records_.insert_or_assign(std::move(key), std::move(record));
}

std::size_t ResultStore::commit() {
  if (dirty_shards_.empty()) return 0;
  // Group records by target shard once; only dirty shards are rewritten.
  std::map<std::size_t, std::vector<StoreRecord>> by_shard;
  for (const auto& [key, record] : records_) {
    const std::size_t index = shard_index(key);
    if (dirty_shards_.count(index) != 0) by_shard[index].push_back(record);
  }
  std::size_t written = 0;
  // Erase each dirty flag only after its shard landed: a commit that
  // throws mid-way keeps the unwritten shards dirty, so retrying the
  // commit finishes exactly the remaining files.
  for (auto it = dirty_shards_.begin(); it != dirty_shards_.end();) {
    const std::size_t index = *it;
    write_shard_atomic(shard_path(index), encode_shard(by_shard[index]));
    ++written;
    it = dirty_shards_.erase(it);
  }
  return written;
}

std::shared_ptr<const StoreSnapshot> ResultStore::snapshot() const {
  std::unordered_map<std::string, StoreRecord> copy(records_.begin(), records_.end());
  return std::make_shared<const StoreSnapshot>(std::move(copy));
}

std::size_t ResultStore::warm_start(BatchCache& cache) {
  preloaded_ = 0;
  for (const auto& [key, record] : records_) {
    if (!record.ok()) continue;  // observations are never cache entries
    auto outcome = std::make_shared<BatchOutcome>();
    outcome->classified = ClassifiedProblem::restore(record.problem, *record.classified);
    cache.insert(canonical_hash(key), key, std::move(outcome));
    ++preloaded_;
  }
  return preloaded_;
}

const StoreRecord* ResultStore::find(const std::string& cache_key) const {
  const auto it = records_.find(cache_key);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t ResultStore::shard_index(const std::string& cache_key) const {
  return canonical_hash(cache_key) % options_.shard_count;
}

std::string ResultStore::shard_path(std::size_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04zu.lcls", index);
  return directory_ + "/" + name;
}

FsckReport fsck(const std::string& directory) {
  FsckReport report;
  for (const std::string& file : list_shard_files(directory)) {
    FsckShard shard;
    shard.file = file;
    ShardLoadResult loaded = load_shard(file);
    shard.ok = loaded.ok;
    shard.version = loaded.version;
    shard.checksum = loaded.checksum;
    shard.records = loaded.records.size();
    shard.error = loaded.error;
    if (loaded.ok) {
      report.records += loaded.records.size();
    } else {
      report.clean = false;
    }
    report.shards.push_back(std::move(shard));
  }
  return report;
}

}  // namespace lclpath::store
