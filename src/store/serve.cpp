#include "store/serve.hpp"

#include <chrono>
#include <filesystem>
#include <set>
#include <unordered_map>
#include <utility>

namespace lclpath::store {

namespace fs = std::filesystem;

CatalogServer::CatalogServer(std::string directory)
    : directory_(std::move(directory)),
      snapshot_(std::make_shared<const StoreSnapshot>()) {}

ReloadReport CatalogServer::poll() {
  ReloadReport report;
  std::set<std::string> seen;
  for (const std::string& file : list_shard_files(directory_)) {
    std::error_code ec;
    const auto mtime = fs::last_write_time(file, ec);
    const std::uint64_t size = ec ? 0 : fs::file_size(file, ec);
    if (ec) continue;  // raced with a delete; the next poll settles it
    const std::int64_t mtime_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                      mtime.time_since_epoch())
                                      .count();
    seen.insert(file);
    auto it = shards_.find(file);
    if (it != shards_.end() && it->second.mtime_ns == mtime_ns &&
        it->second.size == size) {
      ++report.unchanged;
      continue;
    }

    // Validate fully off to the side: nothing below touches the served
    // snapshot until the shard proved itself whole.
    ShardLoadResult loaded = load_shard(file);
    if (!loaded.ok) {
      ++report.rejected;
      rejections_.fetch_add(1, std::memory_order_relaxed);
      report.notes.push_back(file + ": rejected: " + loaded.error);
      // Remember the stat so an untouched bad file is not re-counted
      // every poll, but keep the last validated records — the server
      // keeps answering from the last good state.
      if (it != shards_.end()) {
        it->second.mtime_ns = mtime_ns;
        it->second.size = size;
      } else {
        shards_.emplace(file, ShardState{mtime_ns, size, {}});
      }
      continue;
    }
    shards_.insert_or_assign(file,
                             ShardState{mtime_ns, size, std::move(loaded.records)});
    ++report.reloaded;
    reloads_.fetch_add(1, std::memory_order_relaxed);
    report.notes.push_back(file + ": reloaded (" +
                           std::to_string(shards_[file].records.size()) +
                           " record(s))");
  }

  for (auto it = shards_.begin(); it != shards_.end();) {
    if (seen.count(it->first) == 0) {
      it = shards_.erase(it);
      ++report.removed;
    } else {
      ++it;
    }
  }

  if (report.changed()) publish();
  return report;
}

void CatalogServer::publish() {
  std::unordered_map<std::string, StoreRecord> records;
  for (const auto& [file, state] : shards_) {
    for (const StoreRecord& record : state.records) {
      records.emplace(record.cache_key(), record);  // first file wins on dups
    }
  }
  auto next = std::make_shared<const StoreSnapshot>(std::move(records));
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot_ = std::move(next);
  generation_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const StoreSnapshot> CatalogServer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_;
}

}  // namespace lclpath::store
