// The persistent result store: a directory of shard files behind the
// in-memory BatchCache.
//
// Records are keyed by the exact BatchCache identity (canonical problem
// key + engine + certificate mode), sharded by key hash into
// `shard-NNNN.lcls` files. The store is the durable side of the catalog
// service the ROADMAP asks for: millions of classifications cold-start as
// a directory read plus warm_start() into a BatchCache — zero decider
// runs — and survive crashes because every shard commit is atomic
// (store/shard.hpp's persistence contract).
//
// PERSISTENCE CONTRACT (directory level)
//
//   * load() unions every valid `*.lcls` shard; dirty shards (bad
//     checksum, truncated tail, unknown version, hostile bytes) are
//     skipped and reported — "shard dirty" means "re-classify those
//     problems incrementally", never a crash. Records are
//     self-describing, so a layout change (different shard_count) merely
//     redistributes them; duplicate keys across files dedupe on load.
//   * commit() rewrites only the shards put() touched, each atomically.
//     A failed commit leaves every shard file old-complete or
//     new-complete; retrying the commit is always safe.
//   * Failure records are observations, never cached outcomes:
//     warm_start() preloads only successful classifications, and
//     retry_eligible() encodes which observations a service should retry
//     (a timeout depends on last run's deadline; malformed is a property
//     of the input and is never retried).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/shard.hpp"

namespace lclpath::store {

/// Should a service re-run a problem whose stored record is this kind of
/// failure? Everything transient or environment-dependent is retried —
/// kTimeout/kCancelled (that run's deadline or caller), kBudget (that
/// run's ceilings), kInternal (possibly a fixed bug) — while kMalformed
/// is a property of the problem text itself and is never retried.
bool retry_eligible(BatchErrorKind kind);

/// Builds the store record for one batch slot: the problem, the
/// configuration it ran under, and its classification or failure
/// observation. The entry must hold an outcome (classified or error).
StoreRecord record_of(const PairwiseProblem& problem, const BatchEntry& entry,
                      const ClassifyOptions& options);

/// An immutable point-in-time view of the store, shared RCU-style: the
/// serve loop swaps a new snapshot in after validating a reload while
/// in-flight readers keep the old one alive through their shared_ptr.
class StoreSnapshot {
 public:
  StoreSnapshot() = default;
  explicit StoreSnapshot(std::unordered_map<std::string, StoreRecord> records)
      : records_(std::move(records)) {}

  /// Lookup by full cache identity (StoreRecord::cache_key()); nullptr
  /// when the store has no record — classified or observed — for it.
  const StoreRecord* find(const std::string& cache_key) const;
  std::size_t size() const { return records_.size(); }
  const std::unordered_map<std::string, StoreRecord>& records() const {
    return records_;
  }

 private:
  std::unordered_map<std::string, StoreRecord> records_;
};

/// What load() found on disk. Dirty shards are reported, not fatal.
struct LoadReport {
  std::size_t shards_seen = 0;
  std::size_t shards_ok = 0;
  std::size_t records = 0;
  std::size_t duplicates = 0;
  /// "file: reason" per dirty shard.
  std::vector<std::string> dirty;
};

struct StoreOptions {
  /// Shard files a commit distributes records over. Read-side is
  /// layout-agnostic (records are self-describing).
  std::size_t shard_count = 16;
};

/// The mutable, single-writer store handle: load a directory, stage
/// records, commit dirty shards atomically. Not thread-safe (one writer —
/// the serve loop or a CLI invocation); concurrent *readers* use the
/// immutable snapshot() or the serve loop's CatalogServer instead.
class ResultStore {
 public:
  explicit ResultStore(std::string directory, StoreOptions options = {});

  const std::string& directory() const { return directory_; }

  /// Loads every `*.lcls` shard in the directory (creating the directory
  /// if missing). Safe to call on an empty or half-corrupted store.
  LoadReport load();

  /// Stages a record under its cache key. A success overwrites anything;
  /// a failure observation overwrites a previous observation but never a
  /// stored classification (a success is machine-independent truth, an
  /// observation is circumstance).
  void put(StoreRecord record);

  /// Rewrites every shard touched since the last commit, each via the
  /// atomic write protocol. Returns the number of shard files written.
  /// Throws StoreIoError on failure; shards already written stay written
  /// (old-complete or new-complete per file), and the failed commit may
  /// be retried verbatim.
  std::size_t commit();

  /// Immutable copy of the current record set.
  std::shared_ptr<const StoreSnapshot> snapshot() const;

  /// Preloads every *successful* classification into `cache` as a
  /// restored outcome (ClassifiedProblem::restore) — a warm start is a
  /// directory read, not a re-classify. Failure observations are NOT
  /// preloaded (the in-memory cache never memoizes failures; the store
  /// keeps them only as observations). Returns the number preloaded and
  /// remembers it for preloaded().
  std::size_t warm_start(BatchCache& cache);

  /// Records preloaded by the last warm_start().
  std::size_t preloaded() const { return preloaded_; }

  std::size_t size() const { return records_.size(); }
  const std::map<std::string, StoreRecord>& records() const { return records_; }
  const StoreRecord* find(const std::string& cache_key) const;

  /// The shard index (and file name) a key commits to under this layout.
  std::size_t shard_index(const std::string& cache_key) const;
  std::string shard_path(std::size_t index) const;

 private:
  std::string directory_;
  StoreOptions options_;
  /// Ordered so shard encodings are deterministic run-to-run.
  std::map<std::string, StoreRecord> records_;
  std::set<std::size_t> dirty_shards_;
  std::size_t preloaded_ = 0;
};

/// One shard's fsck verdict.
struct FsckShard {
  std::string file;
  bool ok = false;
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  std::size_t records = 0;
  std::string error;
};

struct FsckReport {
  bool clean = true;
  std::size_t records = 0;
  std::vector<FsckShard> shards;
};

/// Walks a catalog directory and validates every shard header/checksum/
/// record count — the same tripwire for operators and CI. Never throws
/// on corruption (that is the report's job); a missing directory yields
/// an empty, clean report.
FsckReport fsck(const std::string& directory);

/// Sorted `*.lcls` files of a directory. `*.tmp` crash leftovers and
/// unrelated files are ignored; a missing directory lists empty.
std::vector<std::string> list_shard_files(const std::string& directory);

}  // namespace lclpath::store
