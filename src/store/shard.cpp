#include "store/shard.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/fault_injection.hpp"
#include "lcl/serialize.hpp"

namespace lclpath::store {

namespace {

const char* engine_word(LinearGapEngine engine) {
  return engine == LinearGapEngine::kPairwise ? "pairwise" : "factorized";
}

const char* mode_word(CertificateMode mode) {
  switch (mode) {
    case CertificateMode::kAuto: return "auto";
    case CertificateMode::kDense: return "dense";
    case CertificateMode::kLazy: return "lazy";
  }
  return "auto";
}

const char* class_word(ComplexityClass c) {
  switch (c) {
    case ComplexityClass::kUnsolvable: return "unsolvable";
    case ComplexityClass::kConstant: return "constant";
    case ComplexityClass::kLogStar: return "log-star";
    case ComplexityClass::kLinear: return "linear";
  }
  return "linear";
}

bool parse_engine(const std::string& word, LinearGapEngine* out) {
  if (word == "factorized") return *out = LinearGapEngine::kFactorized, true;
  if (word == "pairwise") return *out = LinearGapEngine::kPairwise, true;
  return false;
}

bool parse_mode(const std::string& word, CertificateMode* out) {
  if (word == "auto") return *out = CertificateMode::kAuto, true;
  if (word == "dense") return *out = CertificateMode::kDense, true;
  if (word == "lazy") return *out = CertificateMode::kLazy, true;
  return false;
}

bool parse_class(const std::string& word, ComplexityClass* out) {
  if (word == "unsolvable") return *out = ComplexityClass::kUnsolvable, true;
  if (word == "constant") return *out = ComplexityClass::kConstant, true;
  if (word == "log-star") return *out = ComplexityClass::kLogStar, true;
  if (word == "linear") return *out = ComplexityClass::kLinear, true;
  return false;
}

bool parse_error_kind(const std::string& word, BatchErrorKind* out) {
  for (std::size_t k = 0; k < kNumBatchErrorKinds; ++k) {
    const auto kind = static_cast<BatchErrorKind>(k);
    if (word == to_string(kind)) return *out = kind, true;
  }
  return false;
}

std::string checksum_hex(std::uint64_t checksum) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(checksum));
  return buffer;
}

/// The error message travels on one `message` line; newlines would break
/// the framing, so they are flattened to spaces (the message is for
/// humans and retry policy keys off the kind, never the text).
std::string flatten(std::string message) {
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return message;
}

ShardLoadResult dirty(std::string why) {
  ShardLoadResult result;
  result.ok = false;
  result.error = std::move(why);
  return result;
}

}  // namespace

std::string StoreRecord::cache_key() const {
  return canonical_key(problem) + cache_identity_suffix(engine, mode);
}

std::string encode_shard(const std::vector<StoreRecord>& records) {
  std::ostringstream payload;
  for (const StoreRecord& record : records) {
    payload << "record " << engine_word(record.engine) << " " << mode_word(record.mode);
    if (record.ok()) {
      payload << " class " << class_word(*record.classified) << "\n";
    } else {
      const BatchError& error =
          record.observation ? *record.observation
                             : BatchError{BatchErrorKind::kInternal, "missing"};
      payload << " error " << to_string(error.kind) << "\n";
      payload << "message " << flatten(error.message) << "\n";
    }
    serialize(record.problem, payload);
  }
  const std::string body = payload.str();
  std::ostringstream out;
  out << "lclshard " << kShardFormatVersion << " " << records.size() << " "
      << checksum_hex(canonical_hash(body)) << "\n"
      << body;
  return out.str();
}

ShardLoadResult decode_shard(const std::string& bytes) {
  const std::size_t header_end = bytes.find('\n');
  if (header_end == std::string::npos) return dirty("missing header line");
  std::istringstream header(bytes.substr(0, header_end));
  std::string magic;
  std::uint32_t version = 0;
  std::size_t declared = 0;
  std::string checksum_text;
  if (!(header >> magic >> version >> declared >> checksum_text) ||
      magic != "lclshard") {
    return dirty("bad magic/header");
  }
  ShardLoadResult result;
  result.version = version;
  result.declared_records = declared;
  if (version != kShardFormatVersion) {
    return dirty("unsupported format version " + std::to_string(version));
  }
  char* end = nullptr;
  result.checksum = std::strtoull(checksum_text.c_str(), &end, 16);
  if (end == checksum_text.c_str() || *end != '\0' || checksum_text.size() != 16) {
    return dirty("malformed checksum field");
  }
  const std::string_view payload(bytes.data() + header_end + 1,
                                 bytes.size() - header_end - 1);
  if (canonical_hash(payload) != result.checksum) {
    return dirty("checksum mismatch (torn or corrupted payload)");
  }

  // The payload is now authenticated, but still parsed defensively: any
  // structural surprise (hostile bytes that happened to carry a matching
  // checksum, or a writer bug) makes the shard dirty, never a crash.
  try {
    std::istringstream in{std::string(payload)};
    std::string line;
    std::size_t line_no = 1;  // the header was line 1 of the file
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      std::istringstream fields(line);
      std::string keyword;
      fields >> keyword;
      if (keyword != "record") {
        return dirty("line " + std::to_string(line_no) + ": expected 'record', got '" +
                     keyword + "'");
      }
      StoreRecord record;
      std::string engine_text, mode_text, outcome_keyword, outcome_word;
      if (!(fields >> engine_text >> mode_text >> outcome_keyword >> outcome_word) ||
          !parse_engine(engine_text, &record.engine) ||
          !parse_mode(mode_text, &record.mode)) {
        return dirty("line " + std::to_string(line_no) + ": malformed record header");
      }
      if (outcome_keyword == "class") {
        ComplexityClass c;
        if (!parse_class(outcome_word, &c)) {
          return dirty("line " + std::to_string(line_no) + ": unknown class '" +
                       outcome_word + "'");
        }
        record.classified = c;
      } else if (outcome_keyword == "error") {
        BatchError error;
        if (!parse_error_kind(outcome_word, &error.kind)) {
          return dirty("line " + std::to_string(line_no) + ": unknown error kind '" +
                       outcome_word + "'");
        }
        if (!std::getline(in, line)) {
          return dirty("line " + std::to_string(line_no) + ": truncated error record");
        }
        ++line_no;
        if (line.rfind("message", 0) != 0) {
          return dirty("line " + std::to_string(line_no) + ": expected 'message' line");
        }
        error.message = line.size() > 8 ? line.substr(8) : std::string();
        record.observation = std::move(error);
      } else {
        return dirty("line " + std::to_string(line_no) + ": expected 'class' or 'error'");
      }

      // Collect the problem block up to its own `end` terminator.
      std::string block;
      bool saw_end = false;
      while (std::getline(in, line)) {
        ++line_no;
        block += line;
        block += '\n';
        std::istringstream block_fields(line);
        std::string first;
        if (block_fields >> first && first == "end") {
          saw_end = true;
          break;
        }
      }
      if (!saw_end) {
        return dirty("line " + std::to_string(line_no) + ": truncated problem block");
      }
      record.problem = parse_problem(block);
      result.records.push_back(std::move(record));
    }
  } catch (const std::exception& e) {
    return dirty(std::string("payload parse failure: ") + e.what());
  }
  if (result.records.size() != declared) {
    return dirty("record count mismatch: header declares " + std::to_string(declared) +
                 ", payload holds " + std::to_string(result.records.size()));
  }
  result.ok = true;
  return result;
}

ShardLoadResult load_shard(const std::string& path) {
  if (fault::io_should_fail(fault::IoPoint::kLoad)) {
    return dirty("fault injection: scripted load failure");
  }
  std::ifstream file(path, std::ios::binary);
  if (!file) return dirty("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (!file.good() && !file.eof()) return dirty("read error on " + path);
  return decode_shard(buffer.str());
}

void write_shard_atomic(const std::string& path, const std::string& bytes) {
  const std::string temp = path + ".tmp";
  const auto fail = [&temp](int fd, const std::string& what) -> void {
    const std::string detail = errno != 0 ? std::strerror(errno) : "injected fault";
    if (fd >= 0) ::close(fd);
    ::unlink(temp.c_str());
    throw StoreIoError("store commit: " + what + ": " + detail);
  };

  errno = 0;
  int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(-1, "open " + temp);

  // A single faulted write simulates the torn case: a prefix of the bytes
  // reaches the temp file, then the "device" fails. The destination file
  // is untouched either way — only the rename publishes.
  if (fault::io_should_fail(fault::IoPoint::kWrite)) {
    (void)!::write(fd, bytes.data(), bytes.size() / 2);
    errno = 0;
    fail(fd, "write " + temp);
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(fd, "write " + temp);
    }
    written += static_cast<std::size_t>(n);
  }

  if (fault::io_should_fail(fault::IoPoint::kFsync)) {
    errno = 0;
    fail(fd, "fsync " + temp);
  }
  if (::fsync(fd) != 0) fail(fd, "fsync " + temp);
  if (::close(fd) != 0) fail(-1, "close " + temp);

  if (fault::io_should_fail(fault::IoPoint::kRename)) {
    errno = 0;
    fail(-1, "rename " + temp + " -> " + path);
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    fail(-1, "rename " + temp + " -> " + path);
  }

  // Durability of the rename itself: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  errno = 0;
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    throw StoreIoError("store commit: open dir " + dir + ": " + std::strerror(errno));
  }
  const bool dir_fault = fault::io_should_fail(fault::IoPoint::kFsync);
  if (dir_fault || ::fsync(dir_fd) != 0) {
    const std::string detail = dir_fault ? "injected fault" : std::strerror(errno);
    ::close(dir_fd);
    throw StoreIoError("store commit: fsync dir " + dir + ": " + detail);
  }
  ::close(dir_fd);
}

}  // namespace lclpath::store
