#include "decide/classifier.hpp"

#include <sstream>
#include <stdexcept>

#include "lcl/serialize.hpp"

namespace lclpath {

ClassifiedProblem ClassifiedProblem::restore(PairwiseProblem problem,
                                             ComplexityClass complexity) {
  ClassifiedProblem result;
  result.problem_ = std::make_unique<PairwiseProblem>(std::move(problem));
  result.complexity_ = complexity;
  // A restored kUnsolvable has no counterexample (not persisted); the
  // solvable flag still matches the class so summary() stays truthful.
  result.solvability_.solvable = complexity != ComplexityClass::kUnsolvable;
  return result;
}

std::unique_ptr<LocalAlgorithm> ClassifiedProblem::synthesize() const {
  if (restored() && (complexity_ == ComplexityClass::kConstant ||
                     complexity_ == ComplexityClass::kLogStar)) {
    // The certificates back the O(1)/log* constructions and are not
    // persisted; kLinear falls through — gather-all needs only the problem.
    throw std::logic_error(
        "synthesize: result was restored from a catalog store without "
        "certificates; re-classify the problem to synthesize");
  }
  switch (complexity_) {
    case ComplexityClass::kUnsolvable:
      throw std::logic_error("synthesize: problem is unsolvable (" +
                             (solvability_.counterexample
                                  ? word_to_string(problem_->inputs(),
                                                   *solvability_.counterexample)
                                  : std::string("?")) +
                             " has no valid labeling)");
    case ComplexityClass::kConstant:
      return std::make_unique<SynthesizedConstant>(*monoid_, const_);
    case ComplexityClass::kLogStar:
      return std::make_unique<SynthesizedLogStar>(*monoid_, linear_);
    case ComplexityClass::kLinear:
      break;
  }
  return std::make_unique<GatherAllAlgorithm>(*problem_);
}

std::string ClassifiedProblem::summary() const {
  std::ostringstream out;
  out << problem_->name() << " on " << lclpath::to_string(problem_->topology()) << ": "
      << lclpath::to_string(complexity_);
  if (restored()) {
    out << " (restored from store)";
  } else {
    out << " (monoid " << monoid_->size() << " elements)";
  }
  if (!solvability_.solvable && solvability_.counterexample) {
    out << "; counterexample inputs: "
        << word_to_string(problem_->inputs(), *solvability_.counterexample);
  }
  return out.str();
}

ClassifiedProblem classify(const PairwiseProblem& problem, std::size_t max_monoid) {
  ClassifyOptions options;
  options.max_monoid = max_monoid;
  return classify(problem, options);
}

ClassifiedProblem classify(const PairwiseProblem& problem, const ClassifyOptions& options) {
  if (!is_directed(problem.topology()) && !problem.is_orientation_symmetric()) {
    throw std::invalid_argument(
        "classify: undirected topologies require an orientation-symmetric edge "
        "constraint (see Section 3.7 for the lift from directed problems)");
  }
  budget_check(options.budget);
  ClassifiedProblem result;
  result.problem_ = std::make_unique<PairwiseProblem>(problem);
  const TransitionSystem transitions = TransitionSystem::build(*result.problem_);
  // Tracks whether THIS call published the monoid into the shared cache,
  // so a later cancellation can de-publish it (abandoned problems must
  // leave no cache trace).
  bool published_monoid = false;
  std::string skeleton_key;
  std::uint64_t skeleton_hash = 0;
  if (options.monoid_cache != nullptr) {
    skeleton_key = transitions.canonical_key();
    skeleton_hash = canonical_hash(skeleton_key);
    result.monoid_ = options.monoid_cache->find(skeleton_hash, skeleton_key);
    if (result.monoid_ != nullptr && result.monoid_->size() > options.max_monoid) {
      // Same contract as enumeration: a tighter-budget caller must see the
      // overflow, not silently receive a bigger monoid another caller paid
      // for.
      throw_monoid_budget_overflow(options.max_monoid);
    }
    if (result.monoid_ == nullptr) {
      // A budget overflow or cancellation throws here, before insert():
      // failures are never cached, so a retry recomputes.
      auto built = std::make_shared<const Monoid>(
          Monoid::enumerate(transitions, options.max_monoid, options.budget));
      result.monoid_ =
          options.monoid_cache->insert(skeleton_hash, skeleton_key, built);
      published_monoid = (result.monoid_ == built);
    }
  } else {
    result.monoid_ = std::make_shared<const Monoid>(
        Monoid::enumerate(transitions, options.max_monoid, options.budget));
  }

  try {
    result.solvability_ = check_solvability(*result.monoid_, problem.topology());
    if (!result.solvability_.solvable) {
      result.complexity_ = ComplexityClass::kUnsolvable;
      return result;
    }

    result.linear_ = decide_linear_gap(*result.monoid_, options.linear_engine,
                                       options.certificate_mode, options.budget);
    if (!result.linear_.feasible) {
      result.complexity_ = ComplexityClass::kLinear;
      return result;
    }

    result.const_ = decide_const_gap(*result.monoid_, options.budget);
    result.complexity_ = result.const_.feasible ? ComplexityClass::kConstant
                                                : ComplexityClass::kLogStar;
    return result;
  } catch (...) {
    // The monoid itself is sound (enumeration completed), but a run that
    // fails mid-decision must not leave the abandoned problem discoverable
    // in the shared cache — the no-poisoned-entries contract deadlines and
    // fault injection both test. Lost insert races stay untouched: the
    // other writer's entry is doing real work for other callers.
    if (published_monoid) {
      options.monoid_cache->erase(skeleton_hash, skeleton_key);
    }
    throw;
  }
}

}  // namespace lclpath
