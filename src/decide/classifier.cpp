#include "decide/classifier.hpp"

#include <sstream>
#include <stdexcept>

#include "lcl/serialize.hpp"

namespace lclpath {

std::unique_ptr<LocalAlgorithm> ClassifiedProblem::synthesize() const {
  switch (complexity_) {
    case ComplexityClass::kUnsolvable:
      throw std::logic_error("synthesize: problem is unsolvable (" +
                             (solvability_.counterexample
                                  ? word_to_string(problem_->inputs(),
                                                   *solvability_.counterexample)
                                  : std::string("?")) +
                             " has no valid labeling)");
    case ComplexityClass::kConstant:
      return std::make_unique<SynthesizedConstant>(*monoid_, const_);
    case ComplexityClass::kLogStar:
      return std::make_unique<SynthesizedLogStar>(*monoid_, linear_);
    case ComplexityClass::kLinear:
      break;
  }
  return std::make_unique<GatherAllAlgorithm>(*problem_);
}

std::string ClassifiedProblem::summary() const {
  std::ostringstream out;
  out << problem_->name() << " on " << lclpath::to_string(problem_->topology()) << ": "
      << lclpath::to_string(complexity_) << " (monoid " << monoid_->size()
      << " elements)";
  if (!solvability_.solvable && solvability_.counterexample) {
    out << "; counterexample inputs: "
        << word_to_string(problem_->inputs(), *solvability_.counterexample);
  }
  return out.str();
}

ClassifiedProblem classify(const PairwiseProblem& problem, std::size_t max_monoid) {
  ClassifyOptions options;
  options.max_monoid = max_monoid;
  return classify(problem, options);
}

ClassifiedProblem classify(const PairwiseProblem& problem, const ClassifyOptions& options) {
  if (!is_directed(problem.topology()) && !problem.is_orientation_symmetric()) {
    throw std::invalid_argument(
        "classify: undirected topologies require an orientation-symmetric edge "
        "constraint (see Section 3.7 for the lift from directed problems)");
  }
  ClassifiedProblem result;
  result.problem_ = std::make_unique<PairwiseProblem>(problem);
  const TransitionSystem transitions = TransitionSystem::build(*result.problem_);
  if (options.monoid_cache != nullptr) {
    const std::string skeleton_key = transitions.canonical_key();
    const std::uint64_t skeleton_hash = canonical_hash(skeleton_key);
    result.monoid_ = options.monoid_cache->find(skeleton_hash, skeleton_key);
    if (result.monoid_ != nullptr && result.monoid_->size() > options.max_monoid) {
      // Same contract as enumeration: a tighter-budget caller must see the
      // overflow, not silently receive a bigger monoid another caller paid
      // for.
      throw_monoid_budget_overflow(options.max_monoid);
    }
    if (result.monoid_ == nullptr) {
      // A budget overflow throws here, before insert(): failures are never
      // cached, so a retry with a bigger budget recomputes.
      result.monoid_ = options.monoid_cache->insert(
          skeleton_hash, skeleton_key,
          std::make_shared<const Monoid>(Monoid::enumerate(transitions, options.max_monoid)));
    }
  } else {
    result.monoid_ = std::make_shared<const Monoid>(
        Monoid::enumerate(transitions, options.max_monoid));
  }

  result.solvability_ = check_solvability(*result.monoid_, problem.topology());
  if (!result.solvability_.solvable) {
    result.complexity_ = ComplexityClass::kUnsolvable;
    return result;
  }

  result.linear_ =
      decide_linear_gap(*result.monoid_, options.linear_engine, options.certificate_mode);
  if (!result.linear_.feasible) {
    result.complexity_ = ComplexityClass::kLinear;
    return result;
  }

  result.const_ = decide_const_gap(*result.monoid_);
  result.complexity_ = result.const_.feasible ? ComplexityClass::kConstant
                                              : ComplexityClass::kLogStar;
  return result;
}

}  // namespace lclpath
