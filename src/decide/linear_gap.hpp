// The omega(log* n) -- o(n) gap decider (paper Section 4.2, Theorem 8).
//
// An LCL on cycles is solvable in O(log* n) rounds iff a "feasible
// function" f exists: f labels each well-spaced separator block S of 2r
// nodes, given the input words w1 (left context) and w2 (right context) of
// length ell_ctx or ell_ctx + 1, such that any two labeled blocks can
// always be glued by completing the unlabeled context between them
// (paper's requirement on wa..wd, S1, S2).
//
// Extendibility depends on contexts only through their monoid elements
// (Lemmas 10-11), so the search runs over *domain points*
//
//     p = (kind, left element, S = (s0, s1), right element)
//
// with elements drawn from the layers at lengths {ell_ctx, ell_ctx+1}.
// Candidate block values v = (va, vb) must pass the local filter
//
//     node(s0, va) & node(s1, vb) & edge(va, vb)
//
// plus endpoint filters on path topologies (left ends use prefix vectors,
// right ends use forward rows). The gluing constraint for an ordered pair
// (p1 -> p2) across the middle wb ◦ wc (wb = p1's right context, wc = p2's
// left context) is the reachability
//
//     [ e_{v1.b} * N(wb) * N(wc) * A(s0 of p2) ] (v2.a)  != 0.
//
// Feasibility = existence of one value per domain point satisfying every
// ordered pair constraint (including p1 == p2). The factorized engine
// solves this over aggregate symbol caps per context *class* (contexts
// quotiented by their (fwd, pvec) data), so both the search and — since
// this PR — the certificate cost O(|classes|^2), not O(points).
//
// Certificate contract
// --------------------
// A feasible LinearGapCertificate is the synthesized O(log* n)
// algorithm's lookup table (Lemma 17): value_at(p) returns the chosen
// block value of domain point p, and for_each_point enumerates the whole
// domain with its values in the canonical order (kInterior, then on paths
// kLeftEnd, kRightEnd; within a kind: left context ascending, s0, s1,
// right context — contexts in sorted element order). Two backends store
// the same function:
//
//   * kDense — explicit domain/choice tables plus a point hash index.
//     O(points) storage; what the pair-wise oracle emits, and the
//     factorized engine's choice for small domains.
//   * kLazy — the factorized engine's aggregate solution itself: the
//     element -> context-class maps, the per-class candidate filters and
//     endpoint filters. value_at maps the point's elements to their
//     classes and picks the first valid (va, vb) from the class solution,
//     memoized per class tuple (thread-safe; repeated simulator lookups
//     are O(1)). O(|classes|^2 * |Sigma_in|^2) storage — on the lifted
//     shift-input that is MBs instead of the dense GBs, and certificate
//     construction drops from ~30 s of table writes to milliseconds.
//
// Determinism: both backends (and both engines' shared domain layout)
// report the same feasibility, enumerate the same domain in the same
// order, and — for the factorized engine — resolve every point to the
// same first-valid (va, vb). value_at on a point outside the domain
// throws std::logic_error with the same message on both backends.
//
// Undirected topologies additionally quantify over the four
// orientation combinations of the paper's requirement; the reversal of a
// domain point is another domain point (the monoid tracks reversed
// matrices), and the search checks all placement combos.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "automata/monoid.hpp"

namespace lclpath {

/// Output labels of a separator block (2r = 2 nodes).
struct BlockValue {
  Label a = 0;
  Label b = 0;
  bool operator==(const BlockValue&) const = default;
};

/// Role of a separator block along a path; cycles only use kInterior.
enum class BlockKind : std::uint8_t { kInterior, kLeftEnd, kRightEnd };

struct BlockPoint {
  BlockKind kind = BlockKind::kInterior;
  std::size_t left = 0;   ///< monoid element of the left context (prefix for kLeftEnd)
  Label s0 = 0, s1 = 0;   ///< inputs of the block
  std::size_t right = 0;  ///< monoid element of the right context (suffix for kRightEnd)

  bool operator==(const BlockPoint&) const = default;

  /// The same physical block read in the opposite direction: contexts
  /// swap and reverse (via the monoid's reversal map), the block inputs
  /// swap, and end kinds trade places. The undirected synthesis
  /// strategies look up a block whose local orientation opposes the
  /// window presentation through this point — exactly the reversed
  /// placements the undirected deciders quantify over.
  BlockPoint reversed(const Monoid& monoid) const;
};

struct BlockPointHash {
  std::size_t operator()(const BlockPoint& p) const;
};

/// How a feasible certificate stores its function (see header comment).
enum class CertificateBackend : std::uint8_t { kDense, kLazy };

/// Which backend decide_linear_gap should emit. kAuto materializes dense
/// tables on small domains (cheap, and the point index makes repeated
/// lookups a single hash probe) and switches to the lazy class-indexed
/// representation beyond kCertificateAutoDenseLimit domain points. The
/// pair-wise oracle always emits kDense — its choices come from per-point
/// backtracking, not from a class solution.
enum class CertificateMode : std::uint8_t { kAuto, kDense, kLazy };

/// kAuto's dense/lazy switchover, in domain points.
inline constexpr std::size_t kCertificateAutoDenseLimit = 1u << 16;

/// The factorized engine's class-level solution; opaque outside
/// linear_gap.cpp (consume it through LinearGapCertificate).
class LazyFeasibleFunction;

class LinearGapCertificate {
 public:
  bool feasible = false;
  /// Context length used for the domain (monoid size + margin).
  std::size_t ell_ctx = 0;

  /// Which representation backs this certificate (meaningful only when
  /// feasible; an infeasible certificate stores nothing).
  CertificateBackend backend() const {
    return lazy_ != nullptr ? CertificateBackend::kLazy : CertificateBackend::kDense;
  }

  /// Number of domain points (0 if infeasible).
  std::size_t domain_size() const;

  /// True if the point is a domain point of this certificate.
  bool contains(const BlockPoint& point) const;

  /// Runtime lookup for the synthesized algorithm; throws std::logic_error
  /// (same message on both backends) if the point is not in the domain —
  /// that indicates a synthesis bug. Thread-safe on both backends.
  BlockValue value_at(const BlockPoint& point) const;

  /// Enumerates every (point, value) of the feasible function in the
  /// canonical domain order (identical across backends and engines).
  void for_each_point(
      const std::function<void(const BlockPoint&, const BlockValue&)>& fn) const;

  /// Engine-side installers (the deciders call these; the pair-wise
  /// oracle hands over the point index it already built for its reversal
  /// map instead of re-hashing the domain).
  void adopt_dense(std::vector<BlockPoint> domain, std::vector<BlockValue> choice,
                   std::unordered_map<BlockPoint, std::size_t, BlockPointHash> index);
  void adopt_lazy(std::shared_ptr<const LazyFeasibleFunction> function);

 private:
  std::vector<BlockPoint> domain_;
  std::vector<BlockValue> choice_;
  std::unordered_map<BlockPoint, std::size_t, BlockPointHash> index_;
  std::shared_ptr<const LazyFeasibleFunction> lazy_;
};

/// Which feasibility-search implementation decide_linear_gap runs.
///
/// The gluing constraint between two domain points reads p1 only through
/// (right-context element, b-symbol) and p2 only through (left-context
/// element, s0, a-symbol). kFactorized (the default) exploits that: it
/// searches over dense aggregate symbol tables indexed by those two
/// quotient spaces (plus the reversed-orientation combos on undirected
/// topologies), so its cost scales with |contexts|^2 * |Sigma_in| * beta
/// instead of with the square of the number of domain points. kPairwise is
/// the original point-pair gluing sweep, kept as a differential-test
/// oracle; it is asymptotically quadratic in domain points and effectively
/// non-terminating on lifted undirected problems (~10^5 points).
enum class LinearGapEngine : std::uint8_t { kFactorized, kPairwise };

/// Decides feasibility (hence the Theta(log* n) vs Theta(n) side of the
/// gap) for a solvable problem. The problem's topology decides endpoint
/// handling and orientation combos. Both engines decide the same predicate
/// and enumerate certificates in the same domain order; only the search
/// strategy (and the specific feasible function found) may differ. `mode`
/// picks the certificate backend (see CertificateMode; ignored by the
/// pair-wise oracle, which is dense by construction). A non-null `budget`
/// is checkpointed throughout both engines' propagation, sweep, and
/// branch loops, so a deadline or cancellation interrupts even the
/// quadratic pair-wise oracle with CancelledError.
LinearGapCertificate decide_linear_gap(
    const Monoid& monoid, LinearGapEngine engine = LinearGapEngine::kFactorized,
    CertificateMode mode = CertificateMode::kAuto,
    const ExecutionBudget* budget = nullptr);

/// Number of domain points decide_linear_gap enumerates for this monoid
/// (kinds * |contexts|^2 * |Sigma_in|^2, where contexts are the layers at
/// lengths ell_ctx and ell_ctx + 1); optionally also reports |contexts|.
/// Exposed so tests and benchmarks can budget the quadratic pair-wise
/// oracle without re-deriving the context-set construction.
std::size_t linear_gap_domain_size(const Monoid& monoid,
                                   std::size_t* num_contexts = nullptr);

}  // namespace lclpath
