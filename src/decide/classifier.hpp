// The top-level decision procedure (Theorems 8 + 9).
//
// classify() takes any pairwise LCL problem and returns its deterministic
// LOCAL complexity class on the problem's topology:
//
//   1. solvability: if some instance has no valid labeling, the problem
//      admits no algorithm at all (kUnsolvable);
//   2. Theorem 8 (Section 4.2): a feasible separator-block function exists
//      iff the problem is O(log* n); otherwise it is Theta(n);
//   3. Theorem 9 (Sections 4.4-4.5): a feasible periodic-pattern function
//      exists iff the problem is O(1).
//
// The result bundles the certificates, which are exactly the "description
// of an asymptotically optimal algorithm" the paper's theorems promise:
// synthesize() turns them into a runnable LocalAlgorithm on the problem's
// own topology — directed or undirected, path or cycle (the per-topology
// strategies live in decide/synthesized.hpp).
#pragma once

#include <memory>
#include <string>

#include "automata/monoid.hpp"
#include "automata/solvability.hpp"
#include "decide/const_gap.hpp"
#include "decide/linear_gap.hpp"
#include "decide/synthesized.hpp"
#include "lcl/catalog.hpp"

namespace lclpath {

/// Tunables of the decision procedure.
struct ClassifyOptions {
  /// Budget on the reachable type space, as in classify()'s throw contract.
  std::size_t max_monoid = 500000;
  /// Which decide_linear_gap implementation to run (the factorized default
  /// is the only one that terminates on lifted undirected problems; the
  /// pairwise oracle exists for differential testing).
  LinearGapEngine linear_engine = LinearGapEngine::kFactorized;
  /// Which backend the linear-gap certificate uses (see CertificateMode):
  /// kAuto materializes dense tables on small domains and keeps the
  /// factorized engine's lazy class-indexed solution on huge ones, so
  /// classification cost scales with the monoid's context classes instead
  /// of the |contexts|^2 * |Sigma_in|^2 point count (the lifted
  /// shift-input certificate is MBs instead of GBs, and end-to-end
  /// classification seconds instead of a minute). Ignored by the pairwise
  /// oracle, which is dense by construction.
  CertificateMode certificate_mode = CertificateMode::kAuto;
  /// Optional caller-owned monoid memo cache, keyed by the transition
  /// system's canonical_hash() (skeleton fingerprint). Problems sharing a
  /// skeleton — renamed copies, or repeat sweeps over the same family —
  /// then share one immutable Monoid instead of re-enumerating it per
  /// classify() call; classify_batch forwards this through
  /// BatchOptions::classify, so one cache deduplicates monoid construction
  /// across a whole parameter sweep (and across threads: the cache is
  /// thread-safe, and a const Monoid is safe to share). A cached monoid
  /// whose size exceeds max_monoid throws the same budget error
  /// enumeration would have thrown.
  MonoidCache* monoid_cache = nullptr;
  /// Optional cooperative cancellation/deadline budget (see
  /// core/cancel.hpp). When non-null, every unbounded hot loop in the
  /// pipeline — monoid BFS, both linear-gap engines, the const-gap
  /// search — checkpoints it and aborts with CancelledError when a limit
  /// trips. A cancelled classify() leaves monoid_cache consistent: a
  /// monoid this call inserted is erased again before the error
  /// propagates, so shared caches hold no entry for the abandoned
  /// problem. Null = run to completion (no overhead beyond a pointer
  /// test per checkpoint site).
  const ExecutionBudget* budget = nullptr;
};

/// Classification result; owns everything synthesis needs (the problem
/// copy, the transition system, the monoid and the certificates), so it
/// can outlive the inputs of classify().
class ClassifiedProblem {
 public:
  /// Rebuilds a result from a persisted catalog record (src/store/): the
  /// problem plus its complexity class, with no monoid or certificates —
  /// those are recomputable and deliberately not serialized. A restored
  /// result answers lookups (complexity(), problem(), summary()) exactly
  /// like a fresh one, which is what lets a store warm-start the
  /// BatchCache without re-running any decider; it cannot synthesize()
  /// the sub-linear algorithms (that throws std::logic_error directing
  /// the caller to re-classify) and has no monoid() — check restored()
  /// before touching certificate-level accessors.
  static ClassifiedProblem restore(PairwiseProblem problem, ComplexityClass complexity);

  /// True for results rebuilt by restore() (no monoid/certificates).
  bool restored() const { return monoid_ == nullptr; }

  ComplexityClass complexity() const { return complexity_; }
  const SolvabilityReport& solvability() const { return solvability_; }
  const LinearGapCertificate& linear_certificate() const { return linear_; }
  const ConstGapCertificate& const_certificate() const { return const_; }
  const Monoid& monoid() const { return *monoid_; }
  /// The shared monoid itself. With ClassifyOptions::monoid_cache, results
  /// of a parameter sweep alias one Monoid — callers can keep it alive
  /// past this ClassifiedProblem or compare pointers to observe sharing.
  const std::shared_ptr<const Monoid>& monoid_ptr() const { return monoid_; }
  const PairwiseProblem& problem() const { return *problem_; }
  /// 0 for restored() results (the monoid is not persisted).
  std::size_t monoid_size() const { return monoid_ ? monoid_->size() : 0; }
  std::size_t ell_pump() const { return monoid_ ? monoid_->ell_pump() : 0; }

  /// An asymptotically optimal executable algorithm for the class, on the
  /// problem's own topology (all four are synthesized):
  ///   kConstant  -> SynthesizedConstant
  ///   kLogStar   -> SynthesizedLogStar
  ///   kLinear    -> GatherAllAlgorithm
  /// Throws for kUnsolvable.
  std::unique_ptr<LocalAlgorithm> synthesize() const;

  /// One-line human-readable summary.
  std::string summary() const;

 private:
  friend ClassifiedProblem classify(const PairwiseProblem& problem,
                                    const ClassifyOptions& options);

  ComplexityClass complexity_ = ComplexityClass::kUnsolvable;
  SolvabilityReport solvability_;
  LinearGapCertificate linear_;
  ConstGapCertificate const_;
  std::unique_ptr<PairwiseProblem> problem_;
  std::shared_ptr<const Monoid> monoid_;
};

/// Runs the full decision procedure. Throws std::runtime_error if the
/// problem's reachable type space exceeds options.max_monoid elements (the
/// procedure is PSPACE-hard in general — Theorem 5 — so a budget is part
/// of the API).
ClassifiedProblem classify(const PairwiseProblem& problem,
                           const ClassifyOptions& options);

/// Convenience overload with the default engine and the given budget.
ClassifiedProblem classify(const PairwiseProblem& problem,
                           std::size_t max_monoid = 500000);

}  // namespace lclpath
