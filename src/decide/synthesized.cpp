#include "decide/synthesized.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <stdexcept>

#include "local/decomposition.hpp"

namespace lclpath {

namespace {

/// Canonical whole-cycle solve for small n: all nodes see everything and
/// agree on the rotation anchored at the minimum ID.
Label solve_full_cycle(const PairwiseProblem& problem, const View& view) {
  if (view.size() != view.n) {
    throw std::logic_error("synthesized: expected a full-cycle view");
  }
  const std::size_t anchor = static_cast<std::size_t>(
      std::min_element(view.ids.begin(), view.ids.end()) - view.ids.begin());
  Word canonical(view.n);
  for (std::size_t k = 0; k < view.n; ++k) canonical[k] = view.inputs[(anchor + k) % view.n];
  auto solution = solve_by_dp(problem, canonical);
  if (!solution) throw std::runtime_error("synthesized: unsolvable instance");
  return (*solution)[(view.n - anchor + view.center) % view.n];
}

PairwiseProblem as_path(const PairwiseProblem& problem) {
  PairwiseProblem p = problem;
  p.set_topology(Topology::kDirectedPath);
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// SynthesizedLogStar (Lemma 17)
// ---------------------------------------------------------------------------

SynthesizedLogStar::SynthesizedLogStar(const Monoid& monoid,
                                       const LinearGapCertificate& certificate)
    : monoid_(&monoid), cert_(&certificate) {
  if (!certificate.feasible) {
    throw std::invalid_argument("SynthesizedLogStar: certificate is infeasible");
  }
  const std::size_t min_gap = 2 * certificate.ell_ctx + 6;
  gap_ = ruling_min_gap(min_gap);
  radius_ = ruling_radius(min_gap) + 6 * gap_ + 16;
}

std::size_t SynthesizedLogStar::radius(std::size_t /*n*/) const { return radius_; }

Label SynthesizedLogStar::run(const View& view) const {
  const PairwiseProblem& problem = monoid_->transitions().problem();
  if (!is_cycle(view.topology) || !is_directed(view.topology)) {
    throw std::invalid_argument("SynthesizedLogStar: directed cycles only");
  }
  if (view.size() == view.n) return solve_full_cycle(problem, view);
  return run_large(view);
}

Label SynthesizedLogStar::run_large(const View& view) const {
  const PairwiseProblem& problem = monoid_->transitions().problem();
  const std::size_t min_gap = 2 * cert_->ell_ctx + 6;
  const std::vector<char> member = ruling_members_window(view.ids, min_gap);
  const std::size_t len = view.size();
  const std::size_t c = view.center;

  // Member positions around the center (trusted: margins sized in ctor).
  auto prev_member = [&](std::size_t from) -> std::size_t {
    for (std::size_t i = from;; --i) {
      if (member[i]) return i;
      if (i == 0) throw std::logic_error("logstar: no member to the left in window");
    }
  };
  auto next_member = [&](std::size_t from) -> std::size_t {
    for (std::size_t i = from; i < len; ++i) {
      if (member[i]) return i;
    }
    throw std::logic_error("logstar: no member to the right in window");
  };

  // The feasible-function value of the block anchored at member position v
  // (block nodes: v, v + 1), from the half-segment contexts.
  auto block_value = [&](std::size_t v) -> BlockValue {
    const std::size_t left_member = prev_member(v - 1);
    const std::size_t right_member = next_member(v + 2);
    // Left B-segment: (left_member + 2 .. v - 1]; its right half is w1.
    const std::size_t zb_left = v - left_member - 2;
    const std::size_t half_left = zb_left / 2;
    Word w1(view.inputs.begin() + static_cast<std::ptrdiff_t>(left_member + 2 + half_left),
            view.inputs.begin() + static_cast<std::ptrdiff_t>(v));
    // Right B-segment: [v + 2 .. right_member - 1]; its left half is w2.
    const std::size_t zb_right = right_member - v - 2;
    const std::size_t half_right = zb_right / 2;
    Word w2(view.inputs.begin() + static_cast<std::ptrdiff_t>(v + 2),
            view.inputs.begin() + static_cast<std::ptrdiff_t>(v + 2 + half_right));
    BlockPoint point;
    point.kind = BlockKind::kInterior;
    point.left = monoid_->of_word(w1);
    point.s0 = view.inputs[v];
    point.s1 = view.inputs[v + 1];
    point.right = monoid_->of_word(w2);
    return cert_->value_at(point);
  };

  // Which block/segment does the center belong to?
  if (member[c]) {
    return block_value(c).a;
  }
  if (c > 0 && member[c - 1]) {
    return block_value(c - 1).b;
  }
  // Center lies in a B-segment between the blocks at members u and w.
  const std::size_t u = prev_member(c);
  const std::size_t w = next_member(c);
  const BlockValue left_value = block_value(u);
  const BlockValue right_value = block_value(w);
  // Complete the sub-path [u .. w + 1] with the four block labels fixed.
  const Word sub(view.inputs.begin() + static_cast<std::ptrdiff_t>(u),
                 view.inputs.begin() + static_cast<std::ptrdiff_t>(w + 2));
  std::vector<std::optional<Label>> fixed(sub.size());
  fixed[0] = left_value.a;
  fixed[1] = left_value.b;
  fixed[sub.size() - 2] = right_value.a;
  fixed[sub.size() - 1] = right_value.b;
  const PairwiseProblem path_problem = as_path(problem);
  auto completion = complete_by_dp(path_problem, sub, fixed);
  if (!completion) {
    throw std::logic_error("logstar: segment completion failed (gluing violated)");
  }
  return (*completion)[c - u];
}

// ---------------------------------------------------------------------------
// SynthesizedConstant (Lemma 27)
// ---------------------------------------------------------------------------

SynthesizedConstant::SynthesizedConstant(const Monoid& monoid,
                                         const ConstGapCertificate& certificate)
    : monoid_(&monoid), cert_(&certificate) {
  if (!certificate.feasible) {
    throw std::invalid_argument("SynthesizedConstant: certificate is infeasible");
  }
  ell_ = certificate.ell_ctx;
  const std::size_t p0 = ell_ + 3;  // maximum claimed period
  scale_ = (2 * ell_ + 6) * p0;     // L0: periodic-run threshold at max period
  domin_ = (monoid.transitions().num_inputs() + 2) * scale_;  // seed domination D
  radius_ = 7 * domin_ + 10 * scale_ + 64;
}

Label SynthesizedConstant::run(const View& view) const {
  const PairwiseProblem& problem = monoid_->transitions().problem();
  if (!is_cycle(view.topology) || !is_directed(view.topology)) {
    throw std::invalid_argument("SynthesizedConstant: directed cycles only");
  }
  if (view.size() == view.n) return solve_full_cycle(problem, view);
  return run_large(view);
}

namespace {

/// Per-window analysis for the O(1) algorithm. All coordinates are
/// window-relative; structures are content-determined, hence identical
/// across the overlapping windows of nearby nodes.
struct ConstAnalysis {
  const Monoid& monoid;
  const TransitionSystem& ts;
  const PairwiseProblem& problem;
  const ConstGapCertificate& cert;
  const Word& in;
  std::size_t len;
  std::size_t ell, p0, buffer_blocks, pump_blocks, scale, domin;

  /// Periodic-region claims: period[i] = claimed primitive period (0 if
  /// none); run_begin/run_end[i] = maximal run extent (clipped at window).
  std::vector<std::size_t> period, run_begin, run_end;
  /// anchored[i]: inside a claimed region, at least buffer_blocks * q from
  /// both visible run ends.
  std::vector<char> anchored;
  std::vector<Label> anchor_label;

  /// Seed flags (chunk boundaries in irregular zones).
  std::vector<char> seed;

  ConstAnalysis(const Monoid& m, const ConstGapCertificate& c, const Word& inputs,
                std::size_t ell_pump, std::size_t scale_in, std::size_t domin_in)
      : monoid(m),
        ts(m.transitions()),
        problem(m.transitions().problem()),
        cert(c),
        in(inputs),
        len(inputs.size()),
        ell(ell_pump),
        p0(ell_pump + 3),
        buffer_blocks(ell_pump + 1),
        pump_blocks(2 * ell_pump + 8),
        scale(scale_in),
        domin(domin_in) {
    find_periodic_regions();
    find_anchors();
    find_seeds();
  }

  /// Lexicographically smallest valid periodic labeling of the pattern w
  /// whose first/last labels follow the certificate's choice for w's
  /// monoid element.
  Word periodic_labeling(const Word& w) const {
    const std::size_t e = monoid.of_word(w);
    const PeriodicChoice choice = cert.choice_for(e);
    PairwiseProblem cycle_problem = problem;
    cycle_problem.set_topology(Topology::kDirectedCycle);
    std::vector<std::optional<Label>> fixed(w.size());
    fixed[0] = choice.first;
    fixed[w.size() - 1] = choice.last;
    auto labeling = complete_by_dp(cycle_problem, w, fixed);
    if (!labeling) {
      throw std::logic_error("constant: certificate periodic labeling does not exist");
    }
    return *labeling;
  }

  void find_periodic_regions() {
    period.assign(len, 0);
    run_begin.assign(len, 0);
    run_end.assign(len, 0);
    for (std::size_t q = 1; q <= p0; ++q) {
      const std::size_t threshold = (2 * ell + 6) * q;
      std::size_t i = 0;
      while (i + q < len) {
        if (in[i] != in[i + q]) {
          ++i;
          continue;
        }
        // Maximal match run starting at i.
        std::size_t j = i;
        while (j + q < len && in[j] == in[j + q]) ++j;
        const std::size_t begin = i;
        const std::size_t end = j + q;  // exclusive: the periodic run
        if (end - begin >= threshold) {
          for (std::size_t k = begin; k < end; ++k) {
            if (period[k] == 0) {
              period[k] = q;
              run_begin[k] = begin;
              run_end[k] = end;
            }
          }
        }
        i = j + 1;
      }
    }
  }

  void find_anchors() {
    anchored.assign(len, 0);
    anchor_label.assign(len, 0);
    // Cache periodic labelings per canonical pattern.
    std::unordered_map<std::size_t, Word> labeling_cache;  // hash of word -> labeling
    std::unordered_map<std::size_t, Word> word_cache;
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t q = period[i];
      if (q == 0) continue;
      const std::size_t margin = buffer_blocks * q + q;
      if (i < run_begin[i] + margin || i + margin >= run_end[i]) continue;
      // Canonical rotation of the period and the phase of i within it.
      Word rotation(in.begin() + static_cast<std::ptrdiff_t>(i),
                    in.begin() + static_cast<std::ptrdiff_t>(i + q));
      Word canon = rotation;
      std::size_t phase = 0;
      for (std::size_t s = 1; s < q; ++s) {
        Word candidate;
        candidate.reserve(q);
        for (std::size_t k = 0; k < q; ++k) candidate.push_back(rotation[(s + k) % q]);
        if (candidate < canon) {
          canon = candidate;
          phase = (q - s) % q;
        }
      }
      // phase: index of i within canon. canon[k] = rotation[(s*+k) % q]
      // where s* minimizes; i corresponds to rotation[0] = canon[phase].
      std::size_t h = hash_mix(0xC0, q);
      for (Label l : canon) h = hash_mix(h, l);
      auto it = labeling_cache.find(h);
      if (it == labeling_cache.end() || word_cache[h] != canon) {
        labeling_cache[h] = periodic_labeling(canon);
        word_cache[h] = canon;
        it = labeling_cache.find(h);
      }
      anchored[i] = 1;
      anchor_label[i] = it->second[phase];
    }
  }

  /// Lexicographic comparison of the length-scale windows at a and b.
  int compare_windows(std::size_t a, std::size_t b) const {
    for (std::size_t k = 0; k < scale; ++k) {
      const Label x = in[a + k];
      const Label y = in[b + k];
      if (x != y) return x < y ? -1 : 1;
    }
    return 0;
  }

  void find_seeds() {
    seed.assign(len, 0);
    // Candidate positions: window fully inside the window and fully
    // unclaimed (irregular zone).
    std::vector<char> candidate(len, 0);
    {
      std::size_t unclaimed_run = 0;
      for (std::size_t i = 0; i < len; ++i) {
        unclaimed_run = period[i] == 0 ? unclaimed_run + 1 : 0;
        if (unclaimed_run >= scale && i + 1 >= scale) candidate[i + 1 - scale] = 1;
      }
    }
    // Sliding-window maximum over the candidate windows (monotonic deque:
    // O(len) amortized comparisons instead of O(len * domin)).
    std::deque<std::size_t> deque;
    std::size_t next_to_add = 0;
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t hi = std::min(len - 1, i + domin);
      while (next_to_add <= hi) {
        if (candidate[next_to_add]) {
          while (!deque.empty() && compare_windows(deque.back(), next_to_add) < 0) {
            deque.pop_back();
          }
          deque.push_back(next_to_add);
        }
        ++next_to_add;
      }
      const std::size_t lo = i >= domin ? i - domin : 0;
      while (!deque.empty() && deque.front() < lo) deque.pop_front();
      if (!candidate[i]) continue;
      // Seed iff no window in range is strictly larger.
      seed[i] = (!deque.empty() && compare_windows(deque.front(), i) > 0) ? 0 : 1;
    }
  }
};

/// Virtual sequence entry (Lemma 27's pumped graph G').
struct VirtualEntry {
  Label input = 0;
  std::optional<Label> fixed;
  std::ptrdiff_t real = -1;  ///< window position, or -1 for pumped inserts
};

}  // namespace

Label SynthesizedConstant::run_large(const View& view) const {
  const PairwiseProblem& problem = monoid_->transitions().problem();
  ConstAnalysis az(*monoid_, *cert_, view.inputs, ell_, scale_, domin_);
  const std::size_t len = view.size();
  const std::size_t c = view.center;

  if (az.anchored[c]) return az.anchor_label[c];

  // Chunks: [seed_j, seed_{j+1}) within irregular stretches; interiors
  // (chunk minus 2-node joints on each side) of length >= ell + 1 are
  // pumped and virtually anchored.
  // Identify the chunk interiors intersecting the window.
  struct Interior {
    std::size_t begin, end;          // real window positions [begin, end)
    PumpDecomposition pump;          // interior = x y z
    Word y_labeling;                 // chosen periodic labeling of y
  };
  std::vector<Interior> interiors;
  {
    std::vector<std::size_t> seeds;
    for (std::size_t i = 0; i < len; ++i) {
      if (az.seed[i]) seeds.push_back(i);
    }
    for (std::size_t j = 0; j + 1 < seeds.size(); ++j) {
      const std::size_t cb = seeds[j];
      const std::size_t ce = seeds[j + 1];
      if (ce - cb < ell_ + 5) continue;  // interior too short to pump
      Interior interior;
      interior.begin = cb + 2;
      interior.end = ce - 2;
      const Word word(view.inputs.begin() + static_cast<std::ptrdiff_t>(interior.begin),
                      view.inputs.begin() + static_cast<std::ptrdiff_t>(interior.end));
      auto pump = pump_decomposition(*monoid_, word);
      if (!pump) {
        throw std::logic_error("constant: chunk interior not pumpable");
      }
      interior.pump = *pump;
      interior.y_labeling = az.periodic_labeling(interior.pump.y);
      interiors.push_back(std::move(interior));
    }
  }
  auto interior_of = [&](std::size_t pos) -> const Interior* {
    for (const Interior& it : interiors) {
      if (pos >= it.begin && pos < it.end) return &it;
    }
    return nullptr;
  };

  // Build the virtual sequence over the whole window.
  std::vector<VirtualEntry> vseq;
  vseq.reserve(2 * len);
  std::vector<std::size_t> v_of_real(len, 0);
  {
    std::size_t i = 0;
    while (i < len) {
      const Interior* interior = interior_of(i);
      if (interior == nullptr) {
        VirtualEntry e;
        e.input = view.inputs[i];
        e.real = static_cast<std::ptrdiff_t>(i);
        if (az.anchored[i]) e.fixed = az.anchor_label[i];
        v_of_real[i] = vseq.size();
        vseq.push_back(e);
        ++i;
        continue;
      }
      // Emit the pumped interior: x, y^K (with the middle blocks fixed to
      // the periodic labeling), z. Real positions map to the x/z parts for
      // bookkeeping; inserted nodes carry real = -1.
      const std::size_t k_blocks = 2 * ell_ + 8;
      const Word& x = interior->pump.x;
      const Word& y = interior->pump.y;
      const Word& z = interior->pump.z;
      for (std::size_t t = 0; t < x.size(); ++t) {
        VirtualEntry e;
        e.input = x[t];
        e.real = static_cast<std::ptrdiff_t>(interior->begin + t);
        v_of_real[interior->begin + t] = vseq.size();
        vseq.push_back(e);
      }
      for (std::size_t b = 0; b < k_blocks; ++b) {
        const bool anchored_block = b >= ell_ + 2 && b + ell_ + 2 < k_blocks;
        for (std::size_t t = 0; t < y.size(); ++t) {
          VirtualEntry e;
          e.input = y[t];
          e.real = -1;
          if (anchored_block) e.fixed = interior->y_labeling[t];
          vseq.push_back(e);
        }
      }
      for (std::size_t t = 0; t < z.size(); ++t) {
        VirtualEntry e;
        e.input = z[t];
        e.real = static_cast<std::ptrdiff_t>(interior->end - z.size() + t);
        v_of_real[interior->end - z.size() + t] = vseq.size();
        vseq.push_back(e);
      }
      // Map the remaining interior positions (the pumped-away middle) to
      // their x-end; they are never queried directly.
      for (std::size_t t = interior->begin + x.size(); t < interior->end - z.size(); ++t) {
        v_of_real[t] = v_of_real[interior->begin];
      }
      i = interior->end;
    }
  }

  const PairwiseProblem path_problem = as_path(problem);

  // Deterministic completion of the maximal unlabeled virtual run that
  // contains virtual index vi, between the neighboring fixed anchors.
  auto complete_gap_at = [&](std::size_t vi) -> Label {
    if (vseq[vi].fixed) return *vseq[vi].fixed;
    std::size_t a = vi;
    while (a > 0 && !vseq[a - 1].fixed) --a;
    std::size_t b = vi;
    while (b + 1 < vseq.size() && !vseq[b + 1].fixed) ++b;
    if (a < 2 || b + 2 >= vseq.size()) {
      throw std::logic_error("constant: virtual gap not enclosed by anchors in window");
    }
    const std::size_t lo = a - 2;
    const std::size_t hi = b + 2;  // inclusive
    Word sub;
    std::vector<std::optional<Label>> fixed;
    for (std::size_t t = lo; t <= hi; ++t) {
      sub.push_back(vseq[t].input);
      fixed.push_back(vseq[t].fixed);
    }
    auto completion = complete_by_dp(path_problem, sub, fixed);
    if (!completion) {
      throw std::logic_error("constant: virtual gap completion failed (gluing violated)");
    }
    return (*completion)[vi - lo];
  };

  const Interior* home = interior_of(c);
  if (home == nullptr) {
    return complete_gap_at(v_of_real[c]);
  }
  // Pull-back: real labels of the interior from a DP fixing the 2 + 2
  // real boundary nodes to their virtual-gap labels (the forward matrix of
  // the pumped interior equals the real interior's, so a completion
  // exists; Lemmas 10-11).
  const std::size_t ib = home->begin;
  const std::size_t ie = home->end;
  Word sub(view.inputs.begin() + static_cast<std::ptrdiff_t>(ib - 2),
           view.inputs.begin() + static_cast<std::ptrdiff_t>(ie + 2));
  std::vector<std::optional<Label>> fixed(sub.size());
  fixed[0] = complete_gap_at(v_of_real[ib - 2]);
  fixed[1] = complete_gap_at(v_of_real[ib - 1]);
  fixed[sub.size() - 2] = complete_gap_at(v_of_real[ie]);
  fixed[sub.size() - 1] = complete_gap_at(v_of_real[ie + 1]);
  auto completion = complete_by_dp(path_problem, sub, fixed);
  if (!completion) {
    throw std::logic_error("constant: interior pull-back failed (type mismatch)");
  }
  return (*completion)[c - (ib - 2)];
}

}  // namespace lclpath
