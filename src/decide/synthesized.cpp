#include "decide/synthesized.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <stdexcept>

#include "local/decomposition.hpp"

namespace lclpath {

namespace {

/// Path-shaped problem copy with the endpoint rules selectively kept.
/// Interior completions must not fire the first/last rules; completions
/// that touch a true path end keep exactly the rule anchored there.
PairwiseProblem path_variant(const PairwiseProblem& problem, bool keep_first,
                             bool keep_last) {
  PairwiseProblem p = problem;
  p.set_topology(Topology::kDirectedPath);
  if (!keep_first) p.clear_first_constraint();
  if (!keep_last) p.clear_last_mask();
  return p;
}

/// complete_by_dp over the sub-word, optionally processed right-to-left.
/// The result is always aligned with the input order. Reversed processing
/// is only used on orientation-symmetric problems with the endpoint rules
/// stripped, where a labeling is valid independently of the direction.
std::optional<Word> complete_oriented(const PairwiseProblem& problem, Word sub,
                                      std::vector<std::optional<Label>> fixed,
                                      bool reverse) {
  if (!reverse) return complete_by_dp(problem, sub, fixed);
  std::reverse(sub.begin(), sub.end());
  std::reverse(fixed.begin(), fixed.end());
  auto completion = complete_by_dp(problem, sub, fixed);
  if (completion) std::reverse(completion->begin(), completion->end());
  return completion;
}

}  // namespace

// ---------------------------------------------------------------------------
// SynthesisStrategy
// ---------------------------------------------------------------------------

SynthesisStrategy::SynthesisStrategy(const PairwiseProblem& problem)
    : topology_(problem.topology()),
      interior_(path_variant(problem, false, false)),
      prefix_(path_variant(problem, true, false)),
      suffix_(path_variant(problem, false, true)),
      full_path_(path_variant(problem, true, true)) {}

const char* SynthesisStrategy::name() const {
  switch (topology_) {
    case Topology::kDirectedCycle: return "directed-cycle";
    case Topology::kDirectedPath: return "directed-path";
    case Topology::kUndirectedCycle: return "undirected-cycle";
    case Topology::kUndirectedPath: return "undirected-path";
  }
  return "?";
}

std::size_t SynthesisStrategy::orientation_margin(std::size_t orient_ell) const {
  return directed() ? 0 : orientation_window_margin(orient_ell);
}

std::vector<SynthesisStrategy::Segment> SynthesisStrategy::segments(
    const View& view, std::size_t orient_ell) const {
  const std::size_t len = view.size();
  std::vector<Segment> out;
  const bool left_end = !cycle() && view.sees_left_end;
  const bool right_end = !cycle() && view.sees_right_end;
  if (directed()) {
    out.push_back(Segment{0, len, Direction::kForward, left_end, right_end});
    return out;
  }
  const std::vector<Direction> dir = orientation_directions_window(view.ids, orient_ell);
  std::size_t start = 0;
  for (std::size_t i = 1; i <= len; ++i) {
    if (i < len && dir[i] == dir[start]) continue;
    Segment seg;
    seg.begin = start;
    seg.end = i;
    seg.dir = dir[start];
    seg.left_real = start > 0 || left_end;
    seg.right_real = i < len || right_end;
    out.push_back(seg);
    start = i;
  }
  return out;
}

bool SynthesisStrategy::dp_reversed(const View& view, std::size_t lo,
                                    std::size_t hi) const {
  if (directed()) return false;
  return view.ids[hi] < view.ids[lo];
}

// ---------------------------------------------------------------------------
// SynthesizedLogStar (Lemma 17, all four topologies)
// ---------------------------------------------------------------------------

SynthesizedLogStar::SynthesizedLogStar(const Monoid& monoid,
                                       const LinearGapCertificate& certificate)
    : monoid_(&monoid),
      cert_(&certificate),
      strategy_(monoid.transitions().problem()) {
  if (!certificate.feasible) {
    throw std::invalid_argument("SynthesizedLogStar: certificate is infeasible");
  }
  // Context length: the layer-stabilization point, not the worst-case
  // ell_ctx. Past it the layer sequence is (<= 2)-periodic, so every
  // context of length >= ell_ lands inside the certificate domain
  // layer(ell_ctx) ∪ layer(ell_ctx + 1) — the certificate checked exactly
  // the elements our shorter contexts produce. Clamped at ell_ctx (and by
  // SIZE_MAX when the layer cycle is longer than 2, where the fold does
  // not apply).
  ell_ = std::min(certificate.ell_ctx,
                  std::max<std::size_t>(monoid.layer_stabilization(), 1));
  // Inter-block segments split into two context shares of >= (m - 2) / 2
  // each; min_gap = 2 ell + 4 keeps every share at >= ell + 1.
  min_gap_ = 2 * ell_ + 4;
  gap_ = ruling_min_gap(min_gap_);
  radius_ = ruling_radius(min_gap_) + 6 * gap_ + 16;
  if (!strategy_.cycle()) radius_ += ell_ + 2 * gap_ + 16;
  if (!strategy_.directed()) {
    // Flips are >= orient_ell apart, so every uniformly-oriented segment
    // is long enough to keep a ruling member after the flip-margin drops.
    // Beyond the orientation's own margin, consecutive usable blocks sit
    // within 2 h_flip + 2 (2m) + 2 <= 8 gap of each other across a flip.
    orient_ell_ = 4 * gap_ + 3;
    radius_ += strategy_.orientation_margin(orient_ell_) + orient_ell_ + 8 * gap_;
  }
}

std::size_t SynthesizedLogStar::radius(std::size_t n) const {
  // Clamp to the full-view threshold: radius(n) <= n always, and at the
  // clamp run() answers with the canonical full-view solve — the
  // gather-all self-selection rule (see the header).
  const std::size_t full = strategy_.cycle() ? (n + 1) / 2 : (n == 0 ? 0 : n - 1);
  return std::min(radius_, full);
}

namespace {

/// A placed separator block: nodes (anchor, anchor + 1) in presentation
/// order, labeled through the feasible function read in `dir`.
struct PlacedBlock {
  std::size_t anchor = 0;
  BlockKind kind = BlockKind::kInterior;
  Direction dir = Direction::kForward;
};

/// The log* window layout: end blocks + per-segment ruling blocks, plus
/// the label extraction (certificate lookups and DP completions).
class LogStarLayout {
 public:
  LogStarLayout(const Monoid& monoid, const LinearGapCertificate& cert,
                const SynthesisStrategy& strategy, const View& view, std::size_t ell,
                std::size_t min_gap, std::size_t gap, std::size_t orient_ell)
      : monoid_(monoid), cert_(cert), strategy_(strategy), view_(view), ell_(ell) {
    const std::size_t len = view.size();
    const std::size_t h_flip = gap;           // keep blocks clear of flips
    const std::size_t h_end = ell + gap + 2;  // and of the end blocks' zone
    const bool path = !strategy.cycle();

    for (const SynthesisStrategy::Segment& seg : strategy.segments(view, orient_ell)) {
      const bool fwd = seg.dir == Direction::kForward;
      std::vector<NodeId> sub(view.ids.begin() + static_cast<std::ptrdiff_t>(seg.begin),
                              view.ids.begin() + static_cast<std::ptrdiff_t>(seg.end));
      if (!fwd) std::reverse(sub.begin(), sub.end());
      const bool sub_left_real = fwd ? seg.left_real : seg.right_real;
      const bool sub_right_real = fwd ? seg.right_real : seg.left_real;
      const std::vector<char> member =
          ruling_members_segment(sub, min_gap, sub_left_real, sub_right_real);
      const bool left_is_path_end = path && seg.begin == 0 && view.sees_left_end;
      const bool right_is_path_end = path && seg.end == len && view.sees_right_end;
      const std::size_t need_left =
          seg.left_real ? (left_is_path_end ? h_end : h_flip) : 0;
      const std::size_t need_right =
          seg.right_real ? (right_is_path_end ? h_end : h_flip) : 0;
      for (std::size_t i = 0; i < sub.size(); ++i) {
        if (!member[i]) continue;
        const std::size_t p = fwd ? seg.begin + i : seg.end - 1 - i;
        if (!fwd && p == 0) continue;
        const std::size_t anchor = fwd ? p : p - 1;
        if (anchor < seg.begin || anchor + 1 >= seg.end) continue;
        if (anchor - seg.begin < need_left) continue;
        if (seg.end - anchor - 2 < need_right) continue;
        blocks_.push_back(PlacedBlock{anchor, BlockKind::kInterior, seg.dir});
      }
    }
    if (path && view.sees_left_end) {
      blocks_.push_back(PlacedBlock{ell, BlockKind::kLeftEnd, Direction::kForward});
    }
    if (path && view.sees_right_end) {
      blocks_.push_back(
          PlacedBlock{len - ell - 2, BlockKind::kRightEnd, Direction::kForward});
    }
    std::sort(blocks_.begin(), blocks_.end(),
              [](const PlacedBlock& a, const PlacedBlock& b) { return a.anchor < b.anchor; });
  }

  Label label_at(std::size_t c) const {
    const std::size_t len = view_.size();
    const bool path = !strategy_.cycle();
    if (path && view_.sees_left_end && c < ell_) {
      return end_zone_word(true).first[c];
    }
    if (path && view_.sees_right_end && c >= len - ell_) {
      const auto [word, lo] = end_zone_word(false);
      return word[c - lo];
    }

    const std::size_t lo = first_block_at_or_after(c);
    if (lo < blocks_.size() && blocks_[lo].anchor <= c) {
      const auto [la, lb] = block_labels(lo);
      return c == blocks_[lo].anchor ? la : lb;
    }
    if (lo == 0 || lo == blocks_.size()) {
      throw std::logic_error("logstar: no enclosing blocks in window");
    }
    return gap_completion(lo)[c - blocks_[lo - 1].anchor];
  }

  /// Labels every window position in [begin, end) into out, computing each
  /// end-zone / inter-block completion word once and reading label runs off
  /// it — the chunk-sweep form of label_at, bit-identical by construction
  /// (every position routes through the same completion it would alone).
  void labels_span(std::size_t begin, std::size_t end, Label* out) const {
    const std::size_t len = view_.size();
    const bool path = !strategy_.cycle();
    std::size_t c = begin;
    while (c < end) {
      if (path && view_.sees_left_end && c < ell_) {
        const auto [word, lo] = end_zone_word(true);
        const std::size_t stop = std::min(end, ell_);
        for (; c < stop; ++c) out[c - begin] = word[c - lo];
        continue;
      }
      if (path && view_.sees_right_end && c >= len - ell_) {
        const auto [word, lo] = end_zone_word(false);
        for (; c < end; ++c) out[c - begin] = word[c - lo];
        continue;
      }
      const std::size_t lo = first_block_at_or_after(c);
      if (lo < blocks_.size() && blocks_[lo].anchor <= c) {
        const auto [la, lb] = block_labels(lo);
        if (c == blocks_[lo].anchor) {
          out[c - begin] = la;
          if (++c >= end) break;
        }
        if (c == blocks_[lo].anchor + 1) {
          out[c - begin] = lb;
          ++c;
        }
        continue;
      }
      if (lo == 0 || lo == blocks_.size()) {
        throw std::logic_error("logstar: no enclosing blocks in window");
      }
      const std::size_t u_anchor = blocks_[lo - 1].anchor;
      const Word word = gap_completion(lo);
      // Positions on block lo itself route through block_labels, exactly
      // as label_at does (the completion fixes the same values there).
      const std::size_t stop = std::min(end, blocks_[lo].anchor);
      for (; c < stop; ++c) out[c - begin] = word[c - u_anchor];
    }
  }

 private:
  const Monoid& monoid_;
  const LinearGapCertificate& cert_;
  const SynthesisStrategy& strategy_;
  const View& view_;
  std::size_t ell_;
  std::vector<PlacedBlock> blocks_;

  /// Index of the first block whose pair (anchor, anchor + 1) ends at or
  /// after c; blocks_.size() when none does.
  std::size_t first_block_at_or_after(std::size_t c) const {
    std::size_t hi = blocks_.size();
    std::size_t lo = 0;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (blocks_[mid].anchor + 1 < c) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Completion of the segment between blocks lo-1 and lo with the four
  /// block labels fixed, covering window positions
  /// [blocks_[lo-1].anchor, blocks_[lo].anchor + 2).
  Word gap_completion(std::size_t lo) const {
    const PlacedBlock& u = blocks_[lo - 1];
    const PlacedBlock& w = blocks_[lo];
    const auto [ua, ub] = block_labels(lo - 1);
    const auto [wa, wb] = block_labels(lo);
    Word sub(view_.inputs.begin() + static_cast<std::ptrdiff_t>(u.anchor),
             view_.inputs.begin() + static_cast<std::ptrdiff_t>(w.anchor + 2));
    std::vector<std::optional<Label>> fixed(sub.size());
    fixed[0] = ua;
    fixed[1] = ub;
    fixed[sub.size() - 2] = wa;
    fixed[sub.size() - 1] = wb;
    auto completion =
        complete_oriented(strategy_.interior(), std::move(sub), std::move(fixed),
                          strategy_.dp_reversed(view_, u.anchor, w.anchor + 1));
    if (!completion) {
      throw std::logic_error("logstar: segment completion failed (gluing violated)");
    }
    return *std::move(completion);
  }

  /// The left block's share of the inter-block segment of length z. The
  /// directed rule is positional (presentation-left takes floor(z/2)); the
  /// undirected rule breaks the tie by anchor IDs so that observers with
  /// opposite presentations split identically.
  std::size_t split_share(const PlacedBlock& left, const PlacedBlock& right,
                          std::size_t z) const {
    if (strategy_.directed()) return z / 2;
    return view_.ids[left.anchor] < view_.ids[right.anchor] ? z / 2 : z - z / 2;
  }

  std::pair<Label, Label> block_labels(std::size_t bi) const {
    const PlacedBlock& b = blocks_[bi];
    const Word& in = view_.inputs;
    Word rear;
    if (b.kind == BlockKind::kLeftEnd) {
      rear.assign(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(ell_));
    } else {
      if (bi == 0) throw std::logic_error("logstar: no block to the left in window");
      const PlacedBlock& prev = blocks_[bi - 1];
      const std::size_t z = b.anchor - prev.anchor - 2;
      const std::size_t share = split_share(prev, b, z);
      rear.assign(in.begin() + static_cast<std::ptrdiff_t>(prev.anchor + 2 + share),
                  in.begin() + static_cast<std::ptrdiff_t>(b.anchor));
    }
    Word front;
    if (b.kind == BlockKind::kRightEnd) {
      front.assign(in.begin() + static_cast<std::ptrdiff_t>(b.anchor + 2),
                   in.begin() + static_cast<std::ptrdiff_t>(b.anchor + 2 + ell_));
    } else {
      if (bi + 1 >= blocks_.size()) {
        throw std::logic_error("logstar: no block to the right in window");
      }
      const PlacedBlock& next = blocks_[bi + 1];
      const std::size_t z = next.anchor - b.anchor - 2;
      const std::size_t share = split_share(b, next, z);
      front.assign(in.begin() + static_cast<std::ptrdiff_t>(b.anchor + 2),
                   in.begin() + static_cast<std::ptrdiff_t>(b.anchor + 2 + share));
    }
    BlockPoint point;
    point.kind = b.kind;
    point.left = monoid_.of_word(rear);
    point.s0 = in[b.anchor];
    point.s1 = in[b.anchor + 1];
    point.right = monoid_.of_word(front);
    if (b.dir == Direction::kBackward) point = point.reversed(monoid_);
    const BlockValue value = cert_.value_at(point);
    if (b.dir == Direction::kBackward) return {value.b, value.a};
    return {value.a, value.b};
  }

  /// Prefix/suffix completion against the true path end, with the end
  /// block's labels fixed (existence is the certificate's endpoint
  /// filter on kLeftEnd/kRightEnd candidates). Returns the completion word
  /// together with the window position it starts at: left covers
  /// [0, ell + 2), right covers [len - ell - 2, len).
  std::pair<Word, std::size_t> end_zone_word(bool left) const {
    const std::size_t len = view_.size();
    const std::size_t anchor = left ? ell_ : len - ell_ - 2;
    std::size_t bi = blocks_.size();
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      if (blocks_[i].anchor == anchor &&
          blocks_[i].kind == (left ? BlockKind::kLeftEnd : BlockKind::kRightEnd)) {
        bi = i;
        break;
      }
    }
    if (bi == blocks_.size()) throw std::logic_error("logstar: end block missing");
    const auto [la, lb] = block_labels(bi);
    const std::size_t lo = left ? 0 : anchor;
    const std::size_t hi = left ? ell_ + 2 : len;  // exclusive
    Word sub(view_.inputs.begin() + static_cast<std::ptrdiff_t>(lo),
             view_.inputs.begin() + static_cast<std::ptrdiff_t>(hi));
    std::vector<std::optional<Label>> fixed(sub.size());
    fixed[anchor - lo] = la;
    fixed[anchor + 1 - lo] = lb;
    auto completion =
        complete_by_dp(left ? strategy_.prefix() : strategy_.suffix(), sub, fixed);
    if (!completion) {
      throw std::logic_error("logstar: end completion failed (endpoint filter violated)");
    }
    return {*std::move(completion), lo};
  }
};

}  // namespace

Label SynthesizedLogStar::run(const View& view) const {
  const PairwiseProblem& problem = monoid_->transitions().problem();
  if (view.topology != strategy_.topology()) {
    throw std::invalid_argument("SynthesizedLogStar: view topology mismatch");
  }
  const bool full = strategy_.cycle() ? view.size() == view.n : view.n <= radius_ + 1;
  if (full) return solve_full_view(problem, view);
  return run_large(view);
}

Label SynthesizedLogStar::run_large(const View& view) const {
  const LogStarLayout layout(*monoid_, *cert_, strategy_, view, ell_, min_gap_, gap_,
                             orient_ell_);
  return layout.label_at(view.center);
}

bool SynthesizedLogStar::run_span(const View& window, std::size_t begin,
                                  std::size_t end, Label* out) const {
  if (window.topology != strategy_.topology()) {
    throw std::invalid_argument("SynthesizedLogStar: view topology mismatch");
  }
  // Instance-covering windows route through the canonical full-view solve
  // (which the engine memoizes itself); the span path serves only the
  // structured regime.
  const bool full = strategy_.cycle() ? window.size() == window.n : window.n <= radius_ + 1;
  if (full) return false;
  const LogStarLayout layout(*monoid_, *cert_, strategy_, window, ell_, min_gap_, gap_,
                             orient_ell_);
  layout.labels_span(begin, end, out);
  return true;
}

const PairwiseProblem* SynthesizedLogStar::full_view_problem() const {
  return &monoid_->transitions().problem();
}

// ---------------------------------------------------------------------------
// SynthesizedConstant (Lemma 27, all four topologies)
// ---------------------------------------------------------------------------

SynthesizedConstant::SynthesizedConstant(const Monoid& monoid,
                                         const ConstGapCertificate& certificate)
    : monoid_(&monoid),
      cert_(&certificate),
      strategy_(monoid.transitions().problem()) {
  if (!certificate.feasible) {
    throw std::invalid_argument("SynthesizedConstant: certificate is infeasible");
  }
  // Lambda: the maximum over monoid elements of the pre-period of the
  // forward-matrix power sequence. A buffer of t pattern blocks has the
  // same matrix as one of t + k*period blocks for every k, so once t
  // reaches the pre-period it realizes a power the certificate verified at
  // its own block length L — the excess blocks fold into the middle
  // element the gluing checks quantify over. Per-run pre-periods (computed
  // from each claimed region's actual rotations) are bounded by this, so
  // it is what the global margins scale with — replacing the worst-case
  // ell_ctx ~ |monoid| factor.
  for (std::size_t e = 0; e < monoid.size(); ++e) {
    lam_ = std::max(lam_, static_cast<std::size_t>(
                              monoid.element(e).fwd.stabilize().first));
  }
  // Maximum claimed period: one past it every seed gap's chunk interior is
  // long enough that pump_decomposition is guaranteed (interior length
  // ce - cb - 4 >= ell_pump + 5), so no period falls between "claimed" and
  // "pumpable" — the band a periodic adversarial input could hide in.
  const std::size_t p0 = monoid.ell_pump() + 8;
  // L0: candidate-window length. Two candidate windows agreeing at shift
  // d <= p0 witness a periodic run of length >= scale + d >= (2 lam + 8) d
  // — long enough to be claimed, contradicting candidacy; so surviving
  // seeds are > p0 apart and their interiors pump.
  scale_ = (2 * lam_ + 8) * p0;
  const bool unary = monoid.transitions().num_inputs() < 2;
  // Unary-input problems have no irregular stretches at all: the whole
  // window is one claimed period-1 run, so the seed machinery is provably
  // idle and the domination radius drops out of every bound.
  domin_ = unary ? 0 : (monoid.transitions().num_inputs() + 2) * scale_;
  radius_ = unary ? 2 * scale_ + 64 : 3 * domin_ + 6 * scale_ + 64;
  if (!strategy_.cycle()) radius_ += unary ? scale_ + 64 : 2 * scale_ + 64;
  if (!strategy_.directed()) {
    // Runs must be long enough that each contains anchors (a periodic
    // region or a pumpable chunk shows up in every D + O(L0) stretch), so
    // consecutive anchors — also across flips — stay within the window.
    orient_ell_ = domin_ + (unary ? 2 : 4) * scale_ + 64;
    radius_ += strategy_.orientation_margin(orient_ell_) + 2 * scale_ + 64;
  }
}

std::size_t SynthesizedConstant::radius(std::size_t n) const {
  // Clamp to the full-view threshold: radius(n) <= n always, and at the
  // clamp run() answers with the canonical full-view solve — the
  // gather-all self-selection rule (see the header).
  const std::size_t full = strategy_.cycle() ? (n + 1) / 2 : (n == 0 ? 0 : n - 1);
  return std::min(radius_, full);
}

namespace {

/// Per-segment analysis for the O(1) algorithm, on the segment's input
/// word read in segment direction. All coordinates are sub-word-relative;
/// structures are content-determined, hence identical across the
/// overlapping windows of nearby nodes.
struct ConstAnalysis {
  const Monoid& monoid;
  const TransitionSystem& ts;
  const PairwiseProblem& problem;
  const ConstGapCertificate& cert;
  Word in;
  std::size_t len;
  std::size_t p0, scale, domin;

  /// Periodic-region claims: period[i] = claimed primitive period (0 if
  /// none); run_begin/run_end[i] = maximal run extent (clipped at the
  /// segment); run_margin[i] = the run's anchor margin, derived from the
  /// pre-period of its own rotations' forward matrices.
  std::vector<std::size_t> period, run_begin, run_end, run_margin;
  /// anchored[i]: inside a claimed region, at least run_margin from both
  /// visible run ends.
  std::vector<char> anchored;
  std::vector<Label> anchor_label;

  /// Seed flags (chunk boundaries in irregular zones).
  std::vector<char> seed;

  /// Pre-period of an element's forward-matrix power sequence (>= 1),
  /// memoized per element — the per-pattern buffer length.
  mutable std::vector<std::size_t> preperiod_cache;

  ConstAnalysis(const Monoid& m, const ConstGapCertificate& c, Word inputs,
                std::size_t scale_in, std::size_t domin_in)
      : monoid(m),
        ts(m.transitions()),
        problem(m.transitions().problem()),
        cert(c),
        in(std::move(inputs)),
        len(in.size()),
        p0(m.ell_pump() + 8),
        scale(scale_in),
        domin(domin_in),
        preperiod_cache(m.size(), kUnknown) {
    find_periodic_regions();
    find_anchors();
    find_seeds();
  }

  static constexpr std::size_t kUnknown = static_cast<std::size_t>(-1);

  std::size_t preperiod_of(std::size_t element) const {
    std::size_t& memo = preperiod_cache[element];
    if (memo == kUnknown) {
      memo = std::max<std::size_t>(
          1, static_cast<std::size_t>(monoid.element(element).fwd.stabilize().first));
    }
    return memo;
  }

  /// The claimed run's buffer pre-period: the maximum over the pattern's q
  /// rotations (all of which occur as subwords of the run), so the value
  /// is phase-invariant — observers whose windows clip the run at
  /// different phases still derive the same margin.
  std::size_t run_preperiod(std::size_t begin, std::size_t q) const {
    std::size_t worst = 1;
    for (std::size_t s = 0; s < q; ++s) {
      const Word rotation(in.begin() + static_cast<std::ptrdiff_t>(begin + s),
                          in.begin() + static_cast<std::ptrdiff_t>(begin + s + q));
      worst = std::max(worst, preperiod_of(monoid.of_word(rotation)));
    }
    return worst;
  }

  /// Lexicographically smallest valid periodic labeling of the pattern w
  /// whose first/last labels follow the certificate's choice for w's
  /// monoid element.
  Word periodic_labeling(const Word& w) const {
    const std::size_t e = monoid.of_word(w);
    const PeriodicChoice choice = cert.choice_for(e);
    PairwiseProblem cycle_problem = problem;
    cycle_problem.set_topology(Topology::kDirectedCycle);
    std::vector<std::optional<Label>> fixed(w.size());
    fixed[0] = choice.first;
    fixed[w.size() - 1] = choice.last;
    auto labeling = complete_by_dp(cycle_problem, w, fixed);
    if (!labeling) {
      throw std::logic_error("constant: certificate periodic labeling does not exist");
    }
    return *labeling;
  }

  void find_periodic_regions() {
    period.assign(len, 0);
    run_begin.assign(len, 0);
    run_end.assign(len, 0);
    run_margin.assign(len, 0);
    for (std::size_t q = 1; q <= p0; ++q) {
      std::size_t i = 0;
      while (i + q < len) {
        if (in[i] != in[i + q]) {
          ++i;
          continue;
        }
        // Maximal match run starting at i.
        std::size_t j = i;
        while (j + q < len && in[j] == in[j + q]) ++j;
        const std::size_t begin = i;
        const std::size_t end = j + q;  // exclusive: the periodic run
        // Claim threshold and anchor margin from this run's own rotations:
        // buffer_blocks = pre-period + 2 blocks on each side absorb into
        // the certificate's verified powers, and the threshold leaves an
        // anchored middle of >= 2 blocks beyond both margins.
        if (end - begin >= 2 * q) {
          const std::size_t a_run = run_preperiod(begin, q);
          const std::size_t margin = (a_run + 3) * q;
          const std::size_t threshold = 2 * margin + 2 * q;
          if (end - begin >= threshold) {
            for (std::size_t k = begin; k < end; ++k) {
              if (period[k] == 0) {
                period[k] = q;
                run_begin[k] = begin;
                run_end[k] = end;
                run_margin[k] = margin;
              }
            }
          }
        }
        i = j + 1;
      }
    }
  }

  void find_anchors() {
    anchored.assign(len, 0);
    anchor_label.assign(len, 0);
    // Cache periodic labelings per canonical pattern.
    std::unordered_map<std::size_t, Word> labeling_cache;  // hash of word -> labeling
    std::unordered_map<std::size_t, Word> word_cache;
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t q = period[i];
      if (q == 0) continue;
      const std::size_t margin = run_margin[i];
      if (i < run_begin[i] + margin || i + margin >= run_end[i]) continue;
      // Canonical rotation of the period and the phase of i within it.
      Word rotation(in.begin() + static_cast<std::ptrdiff_t>(i),
                    in.begin() + static_cast<std::ptrdiff_t>(i + q));
      Word canon = rotation;
      std::size_t phase = 0;
      for (std::size_t s = 1; s < q; ++s) {
        Word candidate;
        candidate.reserve(q);
        for (std::size_t k = 0; k < q; ++k) candidate.push_back(rotation[(s + k) % q]);
        if (candidate < canon) {
          canon = candidate;
          phase = (q - s) % q;
        }
      }
      // phase: index of i within canon. canon[k] = rotation[(s*+k) % q]
      // where s* minimizes; i corresponds to rotation[0] = canon[phase].
      std::size_t h = hash_mix(0xC0, q);
      for (Label l : canon) h = hash_mix(h, l);
      auto it = labeling_cache.find(h);
      if (it == labeling_cache.end() || word_cache[h] != canon) {
        labeling_cache[h] = periodic_labeling(canon);
        word_cache[h] = canon;
        it = labeling_cache.find(h);
      }
      anchored[i] = 1;
      anchor_label[i] = it->second[phase];
    }
  }

  /// Lexicographic comparison of the length-scale windows at a and b.
  int compare_windows(std::size_t a, std::size_t b) const {
    for (std::size_t k = 0; k < scale; ++k) {
      const Label x = in[a + k];
      const Label y = in[b + k];
      if (x != y) return x < y ? -1 : 1;
    }
    return 0;
  }

  void find_seeds() {
    seed.assign(len, 0);
    // Candidate positions: window fully inside the segment and fully
    // unclaimed (irregular zone).
    std::vector<char> candidate(len, 0);
    {
      std::size_t unclaimed_run = 0;
      for (std::size_t i = 0; i < len; ++i) {
        unclaimed_run = period[i] == 0 ? unclaimed_run + 1 : 0;
        if (unclaimed_run >= scale && i + 1 >= scale) candidate[i + 1 - scale] = 1;
      }
    }
    // Sliding-window maximum over the candidate windows (monotonic deque:
    // O(len) amortized comparisons instead of O(len * domin)).
    std::deque<std::size_t> deque;
    std::size_t next_to_add = 0;
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t hi = std::min(len - 1, i + domin);
      while (next_to_add <= hi) {
        if (candidate[next_to_add]) {
          while (!deque.empty() && compare_windows(deque.back(), next_to_add) < 0) {
            deque.pop_back();
          }
          deque.push_back(next_to_add);
        }
        ++next_to_add;
      }
      const std::size_t lo = i >= domin ? i - domin : 0;
      while (!deque.empty() && deque.front() < lo) deque.pop_front();
      if (!candidate[i]) continue;
      // Seed iff no window in range is strictly larger.
      seed[i] = (!deque.empty() && compare_windows(deque.front(), i) > 0) ? 0 : 1;
    }
  }
};

/// Virtual sequence entry (Lemma 27's pumped graph G').
struct VirtualEntry {
  Label input = 0;
  std::optional<Label> fixed;
  std::ptrdiff_t real = -1;  ///< presentation position, or -1 for pumped inserts
};

constexpr std::size_t kUnmapped = static_cast<std::size_t>(-1);

/// The whole-window O(1) layout: per-segment analyses stitched into one
/// presentation-ordered virtual sequence, plus the completions.
class ConstLayout {
 public:
  ConstLayout(const Monoid& monoid, const ConstGapCertificate& cert,
              const SynthesisStrategy& strategy, const View& view, std::size_t scale,
              std::size_t domin, std::size_t orient_ell)
      : monoid_(monoid), cert_(cert), strategy_(strategy), view_(view) {
    const std::size_t len = view.size();
    v_of_real_.assign(len, kUnmapped);

    for (const SynthesisStrategy::Segment& seg : strategy.segments(view, orient_ell)) {
      const bool fwd = seg.dir == Direction::kForward;
      Word sub(view.inputs.begin() + static_cast<std::ptrdiff_t>(seg.begin),
               view.inputs.begin() + static_cast<std::ptrdiff_t>(seg.end));
      if (!fwd) std::reverse(sub.begin(), sub.end());
      const ConstAnalysis az(monoid, cert, std::move(sub), scale, domin);
      append_segment(seg, az);
    }
    for (std::size_t vi = 0; vi < vseq_.size(); ++vi) {
      if (vseq_[vi].real >= 0) v_of_real_[static_cast<std::size_t>(vseq_[vi].real)] = vi;
    }
  }

  Label label_at(std::size_t c) const {
    for (const Interior& interior : interiors_) {
      if (c >= interior.begin && c < interior.end) {
        return interior_word(interior)[c - (interior.begin - 2)];
      }
    }
    const std::size_t vi = v_of_real_[c];
    if (vi == kUnmapped) {
      throw std::logic_error("constant: center position missing from the virtual sequence");
    }
    return complete_gap_at(vi);
  }

  /// Labels every window position in [begin, end) into out — the
  /// chunk-sweep form of label_at. Each virtual-gap completion and each
  /// interior pull-back is computed once and read for every position it
  /// covers; routing per position is identical to label_at, so the labels
  /// are bit-identical by construction.
  void labels_span(std::size_t begin, std::size_t end, Label* out) const {
    GapWord gap;
    const Interior* cached_interior = nullptr;
    Word cached_pull_back;
    for (std::size_t c = begin; c < end; ++c) {
      const Interior* hit = nullptr;
      for (const Interior& interior : interiors_) {
        if (c >= interior.begin && c < interior.end) {
          hit = &interior;
          break;
        }
      }
      if (hit != nullptr) {
        if (hit != cached_interior) {
          cached_pull_back = interior_word(*hit);
          cached_interior = hit;
        }
        out[c - begin] = cached_pull_back[c - (hit->begin - 2)];
        continue;
      }
      const std::size_t vi = v_of_real_[c];
      if (vi == kUnmapped) {
        throw std::logic_error(
            "constant: center position missing from the virtual sequence");
      }
      if (vseq_[vi].fixed) {
        out[c - begin] = *vseq_[vi].fixed;
        continue;
      }
      if (gap.word.empty() || vi < gap.lo || vi > gap.hi) gap = gap_word_at(vi);
      out[c - begin] = gap.word[vi - gap.lo];
    }
  }

 private:
  struct Interior {
    std::size_t begin = 0, end = 0;  // presentation positions [begin, end)
    Direction dir = Direction::kForward;
  };

  /// A materialized virtual-gap completion: virtual indices [lo, hi]
  /// inclusive and the completed labels over them.
  struct GapWord {
    std::size_t lo = 0, hi = 0;
    Word word;
  };

  const Monoid& monoid_;
  const ConstGapCertificate& cert_;
  const SynthesisStrategy& strategy_;
  const View& view_;
  std::vector<VirtualEntry> vseq_;
  std::vector<std::size_t> v_of_real_;
  std::vector<Interior> interiors_;

  void append_segment(const SynthesisStrategy::Segment& seg, const ConstAnalysis& az) {
    const bool fwd = seg.dir == Direction::kForward;
    auto present = [&](std::size_t sub_pos) {
      return fwd ? seg.begin + sub_pos : seg.end - 1 - sub_pos;
    };

    // Chunk interiors: [seed_j + 2, seed_{j+1} - 2) within irregular
    // stretches, pumped and virtually anchored when long enough.
    struct SubInterior {
      std::size_t begin, end;  // sub coordinates
      PumpDecomposition pump;
      Word y_labeling;
    };
    std::vector<SubInterior> interiors;
    {
      std::vector<std::size_t> seeds;
      for (std::size_t i = 0; i < az.len; ++i) {
        if (az.seed[i]) seeds.push_back(i);
      }
      for (std::size_t j = 0; j + 1 < seeds.size(); ++j) {
        const std::size_t cb = seeds[j];
        const std::size_t ce = seeds[j + 1];
        // Seeds closer than p0 cannot coexist (equal windows at shift
        // d <= p0 witness a claimable run; unequal ones dominate), so the
        // interior is >= ell_pump + 5 long and always pumps. Defensive.
        if (ce - cb <= az.p0) continue;
        // Chunks live in irregular stretches only: a seed pair straddling
        // a claimed periodic run must not be pumped (it would swallow the
        // run's anchors and leave everything beyond the pumped middle
        // unanchored). The run's own anchors bound those gaps instead.
        bool irregular = true;
        for (std::size_t k = cb; k < ce && irregular; ++k) irregular = az.period[k] == 0;
        if (!irregular) continue;
        SubInterior interior;
        interior.begin = cb + 2;
        interior.end = ce - 2;
        const Word word(az.in.begin() + static_cast<std::ptrdiff_t>(interior.begin),
                        az.in.begin() + static_cast<std::ptrdiff_t>(interior.end));
        auto pump = pump_decomposition(monoid_, word);
        if (!pump) {
          throw std::logic_error("constant: chunk interior not pumpable");
        }
        interior.pump = *pump;
        interior.y_labeling = az.periodic_labeling(interior.pump.y);
        interiors.push_back(std::move(interior));
      }
    }
    auto interior_of = [&](std::size_t pos) -> const SubInterior* {
      for (const SubInterior& it : interiors) {
        if (pos >= it.begin && pos < it.end) return &it;
      }
      return nullptr;
    };

    // Build the segment's virtual entries in segment order, then flip them
    // into presentation order for backward segments.
    std::vector<VirtualEntry> entries;
    entries.reserve(2 * az.len);
    std::size_t i = 0;
    while (i < az.len) {
      const SubInterior* interior = interior_of(i);
      if (interior == nullptr) {
        VirtualEntry e;
        e.input = az.in[i];
        e.real = static_cast<std::ptrdiff_t>(present(i));
        if (az.anchored[i]) e.fixed = az.anchor_label[i];
        entries.push_back(e);
        ++i;
        continue;
      }
      // Emit the pumped interior: x, y^K (with the middle blocks fixed to
      // the periodic labeling), z. Real positions map to the x/z parts;
      // inserted nodes carry real = -1; the pumped-away middle stays
      // unmapped (it is never queried directly — pull-back covers it).
      // The buffer on each side of the anchored middle is a_y + 2 blocks,
      // where a_y is the pre-period of y's forward-matrix powers: past it
      // the buffer realizes a certificate-verified power (excess folds
      // into the quantified middle element), so the worst-case ell-sized
      // buffers are unnecessary.
      const std::size_t a_y = az.preperiod_of(monoid_.of_word(interior->pump.y));
      const std::size_t k_blocks = 2 * a_y + 8;
      const Word& x = interior->pump.x;
      const Word& y = interior->pump.y;
      const Word& z = interior->pump.z;
      for (std::size_t t = 0; t < x.size(); ++t) {
        VirtualEntry e;
        e.input = x[t];
        e.real = static_cast<std::ptrdiff_t>(present(interior->begin + t));
        entries.push_back(e);
      }
      for (std::size_t b = 0; b < k_blocks; ++b) {
        const bool anchored_block = b >= a_y + 2 && b + a_y + 2 < k_blocks;
        for (std::size_t t = 0; t < y.size(); ++t) {
          VirtualEntry e;
          e.input = y[t];
          e.real = -1;
          if (anchored_block) e.fixed = interior->y_labeling[t];
          entries.push_back(e);
        }
      }
      for (std::size_t t = 0; t < z.size(); ++t) {
        VirtualEntry e;
        e.input = z[t];
        e.real = static_cast<std::ptrdiff_t>(present(interior->end - z.size() + t));
        entries.push_back(e);
      }
      i = interior->end;
    }
    if (!fwd) std::reverse(entries.begin(), entries.end());
    vseq_.insert(vseq_.end(), entries.begin(), entries.end());

    for (const SubInterior& interior : interiors) {
      Interior out;
      out.dir = seg.dir;
      if (fwd) {
        out.begin = seg.begin + interior.begin;
        out.end = seg.begin + interior.end;
      } else {
        out.begin = seg.end - interior.end;
        out.end = seg.end - interior.begin;
      }
      interiors_.push_back(out);
    }
  }

  /// Deterministic completion of the maximal unlabeled virtual run that
  /// contains virtual index vi, between the neighboring fixed anchors (or
  /// a true path end, where the endpoint rules take over).
  Label complete_gap_at(std::size_t vi) const {
    if (vseq_[vi].fixed) return *vseq_[vi].fixed;
    const GapWord gap = gap_word_at(vi);
    return gap.word[vi - gap.lo];
  }

  /// The materialized completion of vi's maximal unlabeled run (vi must be
  /// unlabeled): the run plus its enclosing anchors, completed by one DP.
  GapWord gap_word_at(std::size_t vi) const {
    std::size_t a = vi;
    while (a > 0 && !vseq_[a - 1].fixed) --a;
    std::size_t b = vi;
    while (b + 1 < vseq_.size() && !vseq_[b + 1].fixed) ++b;
    const bool path = !strategy_.cycle();
    const bool left_end_gap = path && view_.sees_left_end && a == 0;
    const bool right_end_gap = path && view_.sees_right_end && b + 1 == vseq_.size();
    if ((!left_end_gap && a < 2) || (!right_end_gap && b + 2 >= vseq_.size())) {
      throw std::logic_error("constant: virtual gap not enclosed by anchors in window");
    }
    GapWord gap;
    gap.lo = left_end_gap ? 0 : a - 2;
    gap.hi = right_end_gap ? vseq_.size() - 1 : b + 2;  // inclusive
    Word sub;
    std::vector<std::optional<Label>> fixed;
    for (std::size_t t = gap.lo; t <= gap.hi; ++t) {
      sub.push_back(vseq_[t].input);
      fixed.push_back(vseq_[t].fixed);
    }
    const PairwiseProblem& problem =
        left_end_gap ? (right_end_gap ? strategy_.full_path() : strategy_.prefix())
                     : (right_end_gap ? strategy_.suffix() : strategy_.interior());
    const bool reverse =
        (left_end_gap || right_end_gap) ? false : gap_reversed(gap.lo, gap.hi);
    auto completion = complete_oriented(problem, std::move(sub), std::move(fixed), reverse);
    if (!completion) {
      throw std::logic_error("constant: virtual gap completion failed (gluing violated)");
    }
    gap.word = *std::move(completion);
    return gap;
  }

  /// Direction rule for an interior virtual-gap DP: compare the IDs of the
  /// real positions nearest to the gap's two ends (virtual pumped inserts
  /// carry no ID; the nearest real node is a bounded scan away).
  bool gap_reversed(std::size_t lo, std::size_t hi) const {
    if (strategy_.directed()) return false;
    std::size_t l = lo;
    while (l < hi && vseq_[l].real < 0) ++l;
    std::size_t r = hi;
    while (r > l && vseq_[r].real < 0) --r;
    if (l >= r) return false;
    return view_.ids[static_cast<std::size_t>(vseq_[r].real)] <
           view_.ids[static_cast<std::size_t>(vseq_[l].real)];
  }

  /// Pull-back: real labels of a chunk interior from a DP fixing the 2 + 2
  /// real boundary nodes to their virtual-gap labels (the forward matrix
  /// of the pumped interior equals the real interior's, so a completion
  /// exists; Lemmas 10-11). The DP runs in the owning segment's direction.
  /// Returns the completion word covering positions [begin - 2, end + 2).
  Word interior_word(const Interior& interior) const {
    const std::size_t ib = interior.begin;
    const std::size_t ie = interior.end;
    Word sub(view_.inputs.begin() + static_cast<std::ptrdiff_t>(ib - 2),
             view_.inputs.begin() + static_cast<std::ptrdiff_t>(ie + 2));
    std::vector<std::optional<Label>> fixed(sub.size());
    fixed[0] = complete_gap_at(mapped(ib - 2));
    fixed[1] = complete_gap_at(mapped(ib - 1));
    fixed[sub.size() - 2] = complete_gap_at(mapped(ie));
    fixed[sub.size() - 1] = complete_gap_at(mapped(ie + 1));
    auto completion =
        complete_oriented(strategy_.interior(), std::move(sub), std::move(fixed),
                          interior.dir == Direction::kBackward);
    if (!completion) {
      throw std::logic_error("constant: interior pull-back failed (type mismatch)");
    }
    return *std::move(completion);
  }

  std::size_t mapped(std::size_t real_pos) const {
    const std::size_t vi = v_of_real_[real_pos];
    if (vi == kUnmapped) {
      throw std::logic_error("constant: queried a pumped-away virtual position");
    }
    return vi;
  }
};

}  // namespace

Label SynthesizedConstant::run(const View& view) const {
  const PairwiseProblem& problem = monoid_->transitions().problem();
  if (view.topology != strategy_.topology()) {
    throw std::invalid_argument("SynthesizedConstant: view topology mismatch");
  }
  const bool full = strategy_.cycle() ? view.size() == view.n : view.n <= radius_ + 1;
  if (full) return solve_full_view(problem, view);
  return run_large(view);
}

Label SynthesizedConstant::run_large(const View& view) const {
  const ConstLayout layout(*monoid_, *cert_, strategy_, view, scale_, domin_,
                           orient_ell_);
  return layout.label_at(view.center);
}

bool SynthesizedConstant::run_span(const View& window, std::size_t begin,
                                   std::size_t end, Label* out) const {
  if (window.topology != strategy_.topology()) {
    throw std::invalid_argument("SynthesizedConstant: view topology mismatch");
  }
  const bool full = strategy_.cycle() ? window.size() == window.n : window.n <= radius_ + 1;
  if (full) return false;
  const ConstLayout layout(*monoid_, *cert_, strategy_, window, scale_, domin_,
                           orient_ell_);
  layout.labels_span(begin, end, out);
  return true;
}

const PairwiseProblem* SynthesizedConstant::full_view_problem() const {
  return &monoid_->transitions().problem();
}

}  // namespace lclpath
