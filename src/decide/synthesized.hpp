// Executable synthesized algorithms for the three complexity classes
// (directed cycles; the classifier itself supports all four topologies).
//
//  * SynthesizedLinear — Theta(n): gather everything, canonical DP
//    (GatherAllAlgorithm; the paper's Section 3.3 upper-bound baseline).
//
//  * SynthesizedLogStar — Theta(log* n), Lemma 17: a ruling set with gaps
//    in [m, 2m] places 2r-node separator blocks; each block labels itself
//    with the feasible function of the linear-gap certificate applied to
//    its half-segment contexts; segments between blocks complete by
//    deterministic DP (existence guaranteed by the gluing requirement).
//
//  * SynthesizedConstant — O(1), Lemma 27: partition the cycle into long
//    periodic regions (anchored by the const-gap certificate's periodic
//    labelings) and irregular chunks (anchored by *virtually pumping* the
//    chunk and labeling the pumped middle periodically); complete virtual
//    gaps by DP and pull chunk labels back through the type-preserving
//    replacement (Lemmas 10-11). Symmetry inside irregular stretches is
//    broken by input irregularity alone — window-lexicographic local
//    maxima — never by IDs, which is what makes the algorithm O(1).
#pragma once

#include <memory>

#include "automata/monoid.hpp"
#include "automata/pumping.hpp"
#include "decide/const_gap.hpp"
#include "decide/linear_gap.hpp"
#include "local/simulator.hpp"

namespace lclpath {

class SynthesizedLogStar final : public LocalAlgorithm {
 public:
  SynthesizedLogStar(const Monoid& monoid, const LinearGapCertificate& certificate);

  std::string name() const override { return "synthesized-logstar"; }
  std::size_t radius(std::size_t n) const override;
  Label run(const View& view) const override;

  std::size_t block_gap() const { return gap_; }

 private:
  const Monoid* monoid_;
  const LinearGapCertificate* cert_;
  std::size_t gap_ = 0;     ///< ruling-set minimum gap m (power of two)
  std::size_t radius_ = 0;  ///< constant part of the view radius

  Label run_large(const View& view) const;
};

class SynthesizedConstant final : public LocalAlgorithm {
 public:
  SynthesizedConstant(const Monoid& monoid, const ConstGapCertificate& certificate);

  std::string name() const override { return "synthesized-constant"; }
  std::size_t radius(std::size_t /*n*/) const override { return radius_; }
  Label run(const View& view) const override;

  std::size_t ell_pump() const { return ell_; }

 private:
  const Monoid* monoid_;
  const ConstGapCertificate* cert_;
  std::size_t ell_ = 0;      ///< pump threshold (monoid size + margin)
  std::size_t scale_ = 0;    ///< L0: periodic-region length threshold
  std::size_t domin_ = 0;    ///< D: seed domination radius
  std::size_t radius_ = 0;

  Label run_large(const View& view) const;
};

}  // namespace lclpath
