// Executable synthesized algorithms for the three complexity classes, on
// all four topologies (Theorems 8-9 promise a "description of an
// asymptotically optimal algorithm" for every pairwise LCL on directed and
// undirected paths and cycles; these classes make the descriptions run).
//
//  * SynthesizedLinear — Theta(n): gather everything, canonical DP
//    (GatherAllAlgorithm; the paper's Section 3.3 upper-bound baseline).
//
//  * SynthesizedLogStar — Theta(log* n), Lemma 17: a ruling set with gaps
//    in [m, 2m] places 2r-node separator blocks; each block labels itself
//    with the feasible function of the linear-gap certificate applied to
//    its half-segment contexts; segments between blocks complete by
//    deterministic DP (existence guaranteed by the gluing requirement).
//
//  * SynthesizedConstant — O(1), Lemma 27: partition the cycle into long
//    periodic regions (anchored by the const-gap certificate's periodic
//    labelings) and irregular chunks (anchored by *virtually pumping* the
//    chunk and labeling the pumped middle periodically); complete virtual
//    gaps by DP and pull chunk labels back through the type-preserving
//    replacement (Lemmas 10-11). Symmetry inside irregular stretches is
//    broken by input irregularity alone — window-lexicographic local
//    maxima — never by IDs, which is what makes the algorithm O(1).
//
// Radii are derived per problem, not from worst-case composition. The log*
// context length is the monoid's layer-stabilization point (every context
// of at least that length lands inside the certificate domain), and the
// constant-class margins scale with the pre-period of the forward-matrix
// power sequences (a buffer of t pattern blocks has the same matrix as a
// certificate-length buffer once t reaches the pre-period — extra blocks
// fold into the quantified-over middle element), with per-run pre-periods
// recomputed from each claimed region's actual rotations. Unary-input
// problems drop the seed-domination term entirely: every window is one
// claimed period-1 run, so the chunk machinery is provably idle.
//
// Gather-all self-selection: radius(n) clamps to the full-view threshold
// ((n + 1) / 2 on cycles, n - 1 on paths), and run() answers full views
// with the canonical solve — so whenever the derived radius exceeds the
// instance regime the synthesized algorithm *is* gather-all by
// construction, never a nominally-constant algorithm that sees more than
// the instance and loses to the Theta(n) baseline.
//
// The topology axis is factored into a SynthesisStrategy shared by both
// algorithms:
//
//  * paths add endpoint structure — a kLeftEnd/kRightEnd separator block
//    at a fixed offset from each visible end (its prefix/suffix context is
//    exactly what the certificate's endpoint filters quantified over), and
//    prefix/suffix DP completions that keep the first/last rules only at
//    the true ends;
//
//  * undirected topologies add a local orientation — the Lemma 19
//    ell-orientation (an O(ell)-round, ID-derived direction whose uniform
//    runs span >= ell nodes) splits the window into oriented segments;
//    the directed machinery runs inside each segment, orientation flips
//    act as real boundaries (the ruling set anchors there, the const
//    partition ends its regions there), and blocks/regions of opposite
//    orientations glue because the undirected deciders checked exactly
//    those reversed placements (BlockPoint::reversed, reversed periodic
//    signatures). All tie-breaks (context splits, DP direction) compare
//    IDs, so every observer derives the same physical structure no matter
//    which way its canonicalized window happens to point.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "automata/monoid.hpp"
#include "automata/pumping.hpp"
#include "decide/const_gap.hpp"
#include "decide/linear_gap.hpp"
#include "local/orientation.hpp"
#include "local/simulator.hpp"

namespace lclpath {

/// The per-topology seam of the synthesized algorithms: everything that
/// varies across the four topologies — endpoint handling, local
/// orientation, the problem variants interior completions run against —
/// lives here; the algorithm cores are topology-agnostic against it.
class SynthesisStrategy {
 public:
  explicit SynthesisStrategy(const PairwiseProblem& problem);

  Topology topology() const { return topology_; }
  bool cycle() const { return is_cycle(topology_); }
  bool directed() const { return is_directed(topology_); }
  /// Strategy tag for display: "directed-cycle", "undirected-path", ...
  const char* name() const;

  /// Problem variants for DP completions: `interior` strips the first/last
  /// rules entirely (sub-words away from the true ends), `prefix` keeps
  /// only the first-node rule, `suffix` only the last-node mask. All are
  /// path-shaped so the DP never applies a wrap edge.
  const PairwiseProblem& interior() const { return interior_; }
  const PairwiseProblem& prefix() const { return prefix_; }
  const PairwiseProblem& suffix() const { return suffix_; }
  /// Both endpoint rules kept (a completion spanning the whole path).
  const PairwiseProblem& full_path() const { return full_path_; }

  /// A maximal uniformly-oriented stretch of the window ([begin, end) in
  /// presentation coordinates). A boundary is *real* when it is an
  /// orientation flip or a true path end — the per-segment machinery may
  /// anchor there; window-clipped boundaries are not real and keep their
  /// margins.
  struct Segment {
    std::size_t begin = 0;
    std::size_t end = 0;
    Direction dir = Direction::kForward;
    bool left_real = false;
    bool right_real = false;
  };

  /// Splits the window into oriented segments. Directed topologies return
  /// one forward segment; undirected ones run the window ell-orientation
  /// (O(len) sliding-window form) with the given ell.
  std::vector<Segment> segments(const View& view, std::size_t orient_ell) const;

  /// Window margin the orientation layer consumes (0 when directed).
  std::size_t orientation_margin(std::size_t orient_ell) const;

  /// Direction for a DP completion over window positions [lo, hi]: global
  /// forward on directed topologies; on undirected ones, from the smaller
  /// boundary ID toward the larger — an ID comparison both endpoints'
  /// observers resolve identically, whichever way their presentations
  /// point. Returns true when the DP must process the sub-word reversed.
  bool dp_reversed(const View& view, std::size_t lo, std::size_t hi) const;

 private:
  Topology topology_;
  PairwiseProblem interior_;
  PairwiseProblem prefix_;
  PairwiseProblem suffix_;
  PairwiseProblem full_path_;
};

class SynthesizedLogStar final : public LocalAlgorithm {
 public:
  SynthesizedLogStar(const Monoid& monoid, const LinearGapCertificate& certificate);

  std::string name() const override {
    return "synthesized-logstar[" + std::string(strategy_.name()) + "]";
  }
  std::size_t radius(std::size_t n) const override;
  Label run(const View& view) const override;
  /// run() answers instance-covering views with solve_full_view on the
  /// transition system's problem (gather-all self-selection, see radius()),
  /// so the engine may memoize the canonical solve across nodes.
  const PairwiseProblem* full_view_problem() const override;
  /// Chunk-sweep form: one LogStarLayout over the whole chunk-plus-halo
  /// window answers every spanned node, computing each inter-block / end
  /// completion once (ruling and block decisions are content-determined
  /// with engineered margins, so the wide window derives the same physical
  /// structure every per-node window does — bit-identical labels).
  bool run_span(const View& window, std::size_t begin, std::size_t end,
                Label* out) const override;

  std::size_t block_gap() const { return gap_; }
  const SynthesisStrategy& strategy() const { return strategy_; }

 private:
  const Monoid* monoid_;
  const LinearGapCertificate* cert_;
  SynthesisStrategy strategy_;
  std::size_t ell_ = 0;        ///< context length (layer stabilization point)
  std::size_t min_gap_ = 0;    ///< requested ruling-set gap lower bound
  std::size_t gap_ = 0;        ///< ruling-set minimum gap m (power of two)
  std::size_t orient_ell_ = 0; ///< ell-orientation scale (undirected only)
  std::size_t radius_ = 0;     ///< structured-regime view radius

  Label run_large(const View& view) const;
};

class SynthesizedConstant final : public LocalAlgorithm {
 public:
  SynthesizedConstant(const Monoid& monoid, const ConstGapCertificate& certificate);

  std::string name() const override {
    return "synthesized-constant[" + std::string(strategy_.name()) + "]";
  }
  std::size_t radius(std::size_t n) const override;
  Label run(const View& view) const override;
  /// Same gather-all self-selection contract as SynthesizedLogStar.
  const PairwiseProblem* full_view_problem() const override;
  /// Chunk-sweep form: one ConstLayout (periodic regions, seeds, pumped
  /// chunks) over the whole chunk-plus-halo window answers every spanned
  /// node, computing each virtual-gap completion and interior pull-back
  /// once — same content-determined-structure argument as the log* span.
  bool run_span(const View& window, std::size_t begin, std::size_t end,
                Label* out) const override;

  const SynthesisStrategy& strategy() const { return strategy_; }

 private:
  const Monoid* monoid_;
  const ConstGapCertificate* cert_;
  SynthesisStrategy strategy_;
  std::size_t lam_ = 1;        ///< max forward-matrix power pre-period
  std::size_t scale_ = 0;      ///< L0: candidate-window / claim-margin scale
  std::size_t domin_ = 0;      ///< D: seed domination radius (0 when unary)
  std::size_t orient_ell_ = 0; ///< ell-orientation scale (undirected only)
  std::size_t radius_ = 0;     ///< structured-regime view radius

  Label run_large(const View& view) const;
};

}  // namespace lclpath
