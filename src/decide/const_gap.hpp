// The omega(1) -- o(log* n) gap decider (paper Sections 4.4-4.5, Theorem 9).
//
// An LCL on cycles is solvable in O(1) rounds iff a feasible function f in
// the Section 4.4 sense exists: f assigns to every pattern word w (period
// of a repetitive region) a *periodic* output labeling c = f(w) such that
//
//  (i)  labeling w^infinity by c^infinity is locally consistent everywhere
//       (the completely labeled graphs G_{w,z}); and
//  (ii) for any two patterns w1, w2 and any middle string S, the partially
//       labeled graph G_{w1,w2,S} = w1^{L+2r} ◦ S ◦ w2^{L+2r} with the
//       outer 2r blocks fixed to c1^{2r} / c2^{2r} admits a completion
//       consistent on its middle.
//
// Both conditions depend on the pair (w, c) only through a bounded
// signature:
//
//   sig(w, c) = ( row:  e_{c.last} * N(w)^L,
//                 col:  column c.first of N(w)^L * A(w[0]) )
//
// and (ii) becomes: row(sig1) * N(S) * col(sig2) != 0 for every reachable
// middle element N(S) and the identity (empty S). The achievable signature
// set per pattern is a function of the pattern's monoid element — the
// anchored matrix B(w) gives the valid periodic (first, last) label pairs
// {(x, y) : B(w)[x][y] & edge(y, x)} — so feasibility reduces to choosing
// one signature per reachable element such that all ordered pairs glue:
// a finite search (deduplicated by availability sets, solved by
// backtracking).
//
// For undirected topologies the physical placement of a pattern's labeling
// may be reversed relative to a neighbor; choices are made per
// {element, reversed element} orbit with the reversed labeling fixed to
// the reverse of the forward one, and all four placement combos are
// checked. The synthesized O(1) algorithm realizes exactly those combos:
// it reads each pattern in the direction of its Lemma 19 ell-orientation
// run, so regions of opposite local orientation meet through the reversed
// signatures this decider verified (see decide/synthesized.hpp).
//
// Path topologies additionally require end-segment completability:
// row(sig) * N(S_end) nonempty for every reachable suffix element, and
// prefix vectors reaching col(sig) for every reachable prefix element.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "automata/monoid.hpp"

namespace lclpath {

/// Chosen periodic labeling boundary for a pattern element: the (first,
/// last) output labels of the period; the synthesized algorithm rebuilds
/// the full periodic labeling for the concrete pattern at run time.
struct PeriodicChoice {
  Label first = 0;
  Label last = 0;
  bool operator==(const PeriodicChoice&) const = default;
};

struct ConstGapCertificate {
  bool feasible = false;
  std::size_t ell_ctx = 0;  ///< the exponent L used for pumped powers

  /// For each monoid element index (pattern class), the chosen periodic
  /// boundary pair, if the element is a possible pattern (all are).
  /// Empty when !feasible.
  std::vector<PeriodicChoice> choice_per_element;

  PeriodicChoice choice_for(std::size_t element) const {
    return choice_per_element.at(element);
  }
};

/// A non-null `budget` is checkpointed through the pumped-power build,
/// the endpoint/compatibility sweeps, and the backtracking search, so a
/// deadline or cancellation interrupts the decider with CancelledError.
ConstGapCertificate decide_const_gap(const Monoid& monoid,
                                     const ExecutionBudget* budget = nullptr);

}  // namespace lclpath
