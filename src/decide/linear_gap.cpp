#include "decide/linear_gap.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace lclpath {

namespace {

/// One throw site so both certificate backends report an out-of-domain
/// lookup with the identical message (the contract tests pin it).
[[noreturn]] void throw_point_not_in_domain() {
  throw std::logic_error("LinearGapCertificate::value_at: point not in domain");
}

}  // namespace

std::size_t BlockPointHash::operator()(const BlockPoint& p) const {
  std::size_t h = hash_mix(static_cast<std::size_t>(p.kind), p.left);
  h = hash_mix(h, p.s0);
  h = hash_mix(h, p.s1);
  h = hash_mix(h, p.right);
  return h;
}

BlockPoint BlockPoint::reversed(const Monoid& monoid) const {
  BlockKind k = kind;
  if (k == BlockKind::kLeftEnd) {
    k = BlockKind::kRightEnd;
  } else if (k == BlockKind::kRightEnd) {
    k = BlockKind::kLeftEnd;
  }
  return BlockPoint{k, monoid.reversed_index(right), s1, s0, monoid.reversed_index(left)};
}

// ---------------------------------------------------------------------------
// LazyFeasibleFunction — the factorized engine's class-level solution,
// resolved per point on demand.
// ---------------------------------------------------------------------------

class LazyFeasibleFunction {
 public:
  /// Problem shape.
  bool cycle = true;
  std::size_t alpha = 0;  ///< |Sigma_in|
  std::size_t beta = 0;   ///< |Sigma_out|

  /// Sorted context element list and the element -> position index.
  std::vector<std::size_t> contexts;
  std::unordered_map<std::size_t, std::size_t> ctx_pos;
  /// Context quotient (see FactorizedSearch::build_classes).
  std::vector<std::size_t> ctx_class;  ///< [position] -> class
  std::vector<std::size_t> ctx_pair;   ///< [position] -> (class, rev class) pair

  /// Final per-(pair, input) candidate filters derived from the solved
  /// caps: p[pair][s0] = valid va set, q[pair][s1] = valid vb set.
  std::vector<std::vector<BitVector>> p;
  std::vector<std::vector<BitVector>> q;
  /// Endpoint filters (paths only): prefix_ok[class][s0] = va set of a
  /// kLeftEnd block, suffix_ok[class] = vb set of a kRightEnd block.
  std::vector<std::vector<BitVector>> prefix_ok;
  std::vector<BitVector> suffix_ok;
  /// cand[s0][s1] = local candidate filter node(s0,va) & node(s1,vb) &
  /// edge(va,vb).
  std::vector<std::vector<BitMatrix>> cand;

  std::size_t domain_size() const {
    const std::size_t kinds = cycle ? 1 : 3;
    return kinds * contexts.size() * contexts.size() * alpha * alpha;
  }

  bool contains(const BlockPoint& point) const {
    if (cycle && point.kind != BlockKind::kInterior) return false;
    if (point.s0 >= alpha || point.s1 >= alpha) return false;
    return ctx_pos.contains(point.left) && ctx_pos.contains(point.right);
  }

  BlockValue value_at(const BlockPoint& point) const {
    if ((cycle && point.kind != BlockKind::kInterior) || point.s0 >= alpha ||
        point.s1 >= alpha) {
      throw_point_not_in_domain();
    }
    const auto left = ctx_pos.find(point.left);
    const auto right = ctx_pos.find(point.right);
    if (left == ctx_pos.end() || right == ctx_pos.end()) throw_point_not_in_domain();
    return value_for(point.kind, left->second, point.s0, point.s1, right->second);
  }

  /// The chosen value of the domain point (kind, contexts[l], s0, s1,
  /// contexts[r]). Depends on the contexts only through their class (end
  /// filters) or pair (interior filters), so the first-valid scan runs
  /// once per class tuple and is memoized; lookups are O(1) afterwards.
  /// Thread-safe: the memo is the only mutable state; hits take a shared
  /// lock (concurrent simulator lookups in the batch pool don't serialize)
  /// and first resolution scans the immutable tables outside any lock —
  /// racing resolvers compute the same value, and the loser's emplace is a
  /// no-op.
  BlockValue value_for(BlockKind kind, std::size_t l, Label s0, Label s1,
                       std::size_t r) const {
    const std::size_t key_l =
        kind == BlockKind::kLeftEnd ? ctx_class[l] : ctx_pair[l];
    const std::size_t key_r =
        kind == BlockKind::kRightEnd ? ctx_class[r] : ctx_pair[r];
    const std::size_t stride = std::max(p.size(), prefix_ok.size()) + 1;
    const std::uint64_t key =
        (((static_cast<std::uint64_t>(kind) * stride + key_l) * alpha + s0) * alpha +
         s1) *
            stride +
        key_r;
    {
      std::shared_lock<std::shared_mutex> lock(memo_mutex_);
      auto it = memo_.find(key);
      if (it != memo_.end()) return it->second;
    }
    const BitVector& va_set =
        kind == BlockKind::kLeftEnd ? prefix_ok[key_l][s0] : p[key_l][s0];
    const BitVector& vb_set =
        kind == BlockKind::kRightEnd ? suffix_ok[key_r] : q[key_r][s1];
    const BitMatrix& pairs = cand[s0][s1];
    for (Label va = 0; va < beta; ++va) {
      if (!va_set.get(va)) continue;
      for (Label vb = 0; vb < beta; ++vb) {
        if (!pairs.get(va, vb) || !vb_set.get(vb)) continue;
        const BlockValue value{va, vb};
        std::lock_guard<std::shared_mutex> write(memo_mutex_);
        memo_.emplace(key, value);
        return value;
      }
    }
    throw std::logic_error("decide_linear_gap: factorized certificate extraction failed");
  }

  void for_each_point(
      const std::function<void(const BlockPoint&, const BlockValue&)>& fn) const {
    auto emit_kind = [&](BlockKind kind) {
      for (std::size_t l = 0; l < contexts.size(); ++l) {
        for (Label s0 = 0; s0 < alpha; ++s0) {
          for (Label s1 = 0; s1 < alpha; ++s1) {
            for (std::size_t r = 0; r < contexts.size(); ++r) {
              const BlockPoint point{kind, contexts[l], s0, s1, contexts[r]};
              fn(point, value_for(kind, l, s0, s1, r));
            }
          }
        }
      }
    };
    emit_kind(BlockKind::kInterior);
    if (!cycle) {
      emit_kind(BlockKind::kLeftEnd);
      emit_kind(BlockKind::kRightEnd);
    }
  }

 private:
  mutable std::shared_mutex memo_mutex_;
  mutable std::unordered_map<std::uint64_t, BlockValue> memo_;
};

// ---------------------------------------------------------------------------
// LinearGapCertificate — backend dispatch.
// ---------------------------------------------------------------------------

std::size_t LinearGapCertificate::domain_size() const {
  if (lazy_ != nullptr) return lazy_->domain_size();
  return domain_.size();
}

bool LinearGapCertificate::contains(const BlockPoint& point) const {
  if (lazy_ != nullptr) return lazy_->contains(point);
  return index_.contains(point);
}

BlockValue LinearGapCertificate::value_at(const BlockPoint& point) const {
  if (lazy_ != nullptr) return lazy_->value_at(point);
  auto it = index_.find(point);
  if (it == index_.end()) throw_point_not_in_domain();
  return choice_[it->second];
}

void LinearGapCertificate::for_each_point(
    const std::function<void(const BlockPoint&, const BlockValue&)>& fn) const {
  if (lazy_ != nullptr) {
    lazy_->for_each_point(fn);
    return;
  }
  for (std::size_t i = 0; i < domain_.size(); ++i) fn(domain_[i], choice_[i]);
}

void LinearGapCertificate::adopt_dense(
    std::vector<BlockPoint> domain, std::vector<BlockValue> choice,
    std::unordered_map<BlockPoint, std::size_t, BlockPointHash> index) {
  domain_ = std::move(domain);
  choice_ = std::move(choice);
  index_ = std::move(index);
  if (index_.empty() && !domain_.empty()) {
    index_.reserve(domain_.size());
    for (std::size_t i = 0; i < domain_.size(); ++i) index_.emplace(domain_[i], i);
  }
  lazy_ = nullptr;
}

void LinearGapCertificate::adopt_lazy(
    std::shared_ptr<const LazyFeasibleFunction> function) {
  domain_.clear();
  choice_.clear();
  index_.clear();
  lazy_ = std::move(function);
}

namespace {

/// Context length both engines search at (and both certificates record as
/// ell_ctx); linear_gap_domain_size must stay in lockstep with it.
std::size_t context_length(const Monoid& monoid) { return monoid.size() + 5; }

/// Context element set shared by both engines: the monoid layers at word
/// lengths ell_ctx and ell_ctx + 1, sorted and deduplicated.
std::vector<std::size_t> context_elements(const Monoid& monoid, std::size_t ell_ctx) {
  std::vector<std::size_t> contexts = monoid.layer_at(ell_ctx);
  std::vector<std::size_t> next = monoid.layer_at(ell_ctx + 1);
  contexts.insert(contexts.end(), next.begin(), next.end());
  std::sort(contexts.begin(), contexts.end());
  contexts.erase(std::unique(contexts.begin(), contexts.end()), contexts.end());
  return contexts;
}

// =====================================================================
// Factorized engine (LinearGapEngine::kFactorized)
//
// The pair constraint between p1 (left role, value v1) and p2 (right role,
// value v2) is G(p1.right, p2.left, p2.s0)[sym1][sym2] for every symbol
// sym1 the p1 side can present rightwards and every sym2 the p2 side can
// present leftwards, where G(e1, e2, s0) = fwd(e1) * fwd(e2) * A(s0). On
// directed topologies sym1 = v1.b and sym2 = v2.a; on undirected ones the
// reversed placements add sym1 = value(rho(p1)).a and sym2 =
// value(rho(p2)).b through the *same* G (rho = point reversal).
//
// So an assignment is consistent iff its *realized aggregate sets*
//
//   emit(e)       = all right-facing symbols presented at right-context e
//   accept(e, s0) = all left-facing symbols presented at (left-context e,
//                   first block input s0)
//
// are pairwise glued: forall e1, (e2, s0): emit(e1) x accept(e2, s0)
// subset G(e1, e2, s0). A point's value feeds these sets only through its
// own classes and (undirected) its reversed point's classes:
//
//   left role:  v.b -> emit(p.right)   and  v.b -> accept(rev(p.right), p.s1)
//   right role: v.a -> accept(p.left, p.s0)  and  v.a -> emit(rev(p.left))
//
// (the second member of each line only on undirected topologies). Since
// every (context, s0) combination is realized by some interior point, a
// solution's realized sets are nonempty everywhere; and since the glued
// property is inherited by subsets, feasibility is equivalent to the
// existence of *cap* tables — one symbol set per aggregate class — that
// are pairwise glued and under which every domain point keeps at least one
// candidate value. The search below runs entirely over caps:
//
//   1. start from all-ones caps;
//   2. shrink: recompute each cap as the union of the projections of the
//      candidate values still valid under the caps (arc consistency over
//      the quotient spaces), failing if any point class loses all
//      candidates;
//   3. support pruning: drop an emitted symbol with an empty glue row
//      against some accept cap, and an accepted symbol no emitted symbol
//      of some context glues with (dense support counting);
//   4. at the fixpoint, any remaining violation emit(e1) !subset-glued
//      accept(e2, s0) is a two-way branch: forbid the emitted symbol or
//      the accepted one. Each branch removes one cap bit, so the search
//      tree is finite and in practice shallow.
//
// Everything is O(|classes|^2 * |Sigma_in| * beta) bit-vector work per
// pass — independent of the number of domain points (|contexts|^2 *
// |Sigma_in|^2 * 3), which is what makes lifted undirected problems
// classifiable at all. |classes| <= |contexts|: the search only reads a
// context through its fwd matrix, its prefix vector (paths) and the class
// of its reversal, so contexts equal on those are quotiented into one
// class (their caps stay equal through every pass, and a conflict branch
// that removes a symbol removes it class-wide — complete, because a
// symbol surviving at any member re-creates the same conflict).
// =====================================================================

/// A gluing violation surviving the propagation fixpoint: emitted symbol
/// sym1 at contexts[c1] does not glue with accepted symbol sym2 at
/// (contexts[c2], s0). Exactly one of the two symbols must go.
struct GlueConflict {
  std::size_t c1 = 0;
  std::size_t c2 = 0;
  Label s0 = 0;
  Label sym1 = 0;
  Label sym2 = 0;
};

/// The search state: symbol caps per aggregate class. Indices are
/// positions into the sorted context-element list, not monoid elements.
struct AggregateCaps {
  std::vector<BitVector> emit;                 ///< [context] -> b-side caps
  std::vector<std::vector<BitVector>> accept;  ///< [context][s0] -> a-side caps
};

class FactorizedSearch {
 public:
  explicit FactorizedSearch(const Monoid& monoid,
                            const ExecutionBudget* budget = nullptr)
      : budget_(budget),
        monoid_(monoid),
        ts_(monoid.transitions()),
        problem_(ts_.problem()),
        cycle_(is_cycle(problem_.topology())),
        directed_(is_directed(problem_.topology())),
        beta_(ts_.num_outputs()),
        alpha_(ts_.num_inputs()),
        ell_ctx_(context_length(monoid)),
        contexts_(context_elements(monoid, ell_ctx_)),
        n_ctx_(contexts_.size()) {
    build_classes();
    build_tables();
  }

  LinearGapCertificate run(CertificateMode mode) {
    LinearGapCertificate cert;
    cert.ell_ctx = ell_ctx_;

    AggregateCaps caps;
    caps.emit.assign(n_cls_, BitVector::ones(beta_));
    caps.accept.assign(n_cls_, std::vector<BitVector>(alpha_, BitVector::ones(beta_)));

    // Depth-first over conflict branches, iterative (PR-1 lesson: one
    // stack frame per decision can get deep on lifted problems).
    struct BranchFrame {
      AggregateCaps saved;
      GlueConflict conflict;
      bool tried_accept = false;
    };
    std::vector<BranchFrame> stack;
    while (true) {
      budget_checkpoint(budget_);
      bool alive = propagate(caps);
      GlueConflict conflict;
      bool conflicted = false;
      if (alive) conflicted = first_conflict(caps, conflict);
      if (alive && !conflicted) {
        const std::size_t points =
            (cycle_ ? 1 : 3) * n_ctx_ * n_ctx_ * alpha_ * alpha_;
        const bool dense = mode == CertificateMode::kDense ||
                           (mode == CertificateMode::kAuto &&
                            points <= kCertificateAutoDenseLimit);
        if (dense) {
          fill_certificate(caps, cert);
        } else {
          fill_lazy(caps, cert);
        }
        return cert;
      }
      if (alive) {
        stack.push_back(BranchFrame{caps, conflict, false});
        caps.emit[conflict.c1].set(conflict.sym1, false);
        continue;
      }
      // Dead end: take the deepest branch whose accept side is untried.
      while (!stack.empty() && stack.back().tried_accept) stack.pop_back();
      if (stack.empty()) return cert;  // infeasible
      BranchFrame& frame = stack.back();
      frame.tried_accept = true;
      caps = frame.saved;
      caps.accept[frame.conflict.c2][frame.conflict.s0].set(frame.conflict.sym2, false);
    }
  }

 private:
  const ExecutionBudget* budget_;
  const Monoid& monoid_;
  const TransitionSystem& ts_;
  const PairwiseProblem& problem_;
  const bool cycle_;
  const bool directed_;
  const std::size_t beta_;
  const std::size_t alpha_;
  const std::size_t ell_ctx_;
  const std::vector<std::size_t> contexts_;
  const std::size_t n_ctx_;

  /// Context quotient, two levels. Caps and glue tables live on *classes*
  /// (equal fwd matrix + equal prefix vector on paths); the per-point
  /// value filters additionally depend on the class of the reversed
  /// context, so they live on the distinct (class, reversed class) *pairs*
  /// actually realized by some context.
  std::vector<std::size_t> ctx_class_;  ///< [context] -> class
  std::vector<std::size_t> cls_rep_;    ///< [class] -> a representative context
  std::size_t n_cls_ = 0;
  std::vector<std::size_t> ctx_pair_;   ///< [context] -> pair id
  std::vector<std::pair<std::size_t, std::size_t>> pairs_;  ///< (class, rev class)
  std::vector<std::size_t> rev_pair_;   ///< [pair (k, k')] -> pair (k', k)
  std::size_t n_pairs_ = 0;

  /// row_[k][sym] = e_sym * fwd(class k).
  std::vector<std::vector<BitVector>> row_;
  /// head_[k][s0] = fwd(class k) * A(s0); a glue row is then
  /// row_[k1][sym1] * head_[k2][s0] — no per-(k1,k2,s0) matrix is stored.
  std::vector<std::vector<BitMatrix>> head_;
  /// cand_[s0][s1][va][vb] = candidate filter node(s0,va) & node(s1,vb) &
  /// edge(va,vb); cand_t_ is its transpose.
  std::vector<std::vector<BitMatrix>> cand_;
  std::vector<std::vector<BitMatrix>> cand_t_;
  /// Endpoint filters (paths only): va sets passing the prefix check per
  /// (left class, s0); vb sets passing the suffix check per right class.
  std::vector<std::vector<BitVector>> prefix_ok_;
  std::vector<BitVector> suffix_ok_;
  /// Cap-independent endpoint projections: lend_b_[l][s0][s1] = b-symbols
  /// of candidates whose va passes the prefix filter; rend_a_[r][s0][s1] =
  /// a-symbols of candidates whose vb passes the suffix filter.
  std::vector<std::vector<std::vector<BitVector>>> lend_b_;
  std::vector<std::vector<std::vector<BitVector>>> rend_a_;

  // Per-pass scratch (allocated once; recomputed from caps each pass).
  std::vector<std::vector<BitVector>> p_;   ///< [pair][s0]: va filter
  std::vector<std::vector<BitVector>> q_;   ///< [pair][s1]: vb filter
  std::vector<std::vector<std::vector<BitVector>>> xb_;  ///< [pair][s0][s1]
  std::vector<std::vector<std::vector<BitVector>>> ya_;  ///< [pair][s0][s1]
  std::vector<BitVector> new_emit_;                      ///< [class]
  std::vector<std::vector<BitVector>> new_accept_;       ///< [class][s0]
  std::vector<BitVector> all_b_;                         ///< [s1]
  std::vector<BitVector> all_a_;                         ///< [s0]
  BitVector row_scratch_;
  BitVector mask_scratch_;

  void build_classes() {
    // Classes: equal fwd matrix (and, on paths, equal prefix vector — the
    // only other per-context data any table reads).
    ctx_class_.assign(n_ctx_, 0);
    cls_rep_.clear();
    {
      std::unordered_map<std::size_t, std::vector<std::size_t>> buckets;
      for (std::size_t c = 0; c < n_ctx_; ++c) {
        const MonoidElement& elem = monoid_.element(contexts_[c]);
        std::size_t h = elem.fwd.hash();
        if (!cycle_) h = hash_mix(h, elem.pvec.hash());
        auto& bucket = buckets[h];
        bool found = false;
        for (std::size_t k : bucket) {
          const MonoidElement& rep = monoid_.element(contexts_[cls_rep_[k]]);
          if (rep.fwd == elem.fwd && (cycle_ || rep.pvec == elem.pvec)) {
            ctx_class_[c] = k;
            found = true;
            break;
          }
        }
        if (!found) {
          ctx_class_[c] = cls_rep_.size();
          bucket.push_back(cls_rep_.size());
          cls_rep_.push_back(c);
        }
      }
    }
    n_cls_ = cls_rep_.size();

    // Pairs: (class, class of the reversed context). Directed problems
    // never read the reversal, so every class is its own pair.
    ctx_pair_.assign(n_ctx_, 0);
    pairs_.clear();
    if (directed_) {
      for (std::size_t k = 0; k < n_cls_; ++k) pairs_.emplace_back(k, k);
      for (std::size_t c = 0; c < n_ctx_; ++c) ctx_pair_[c] = ctx_class_[c];
      n_pairs_ = n_cls_;
      rev_pair_.resize(n_pairs_);
      for (std::size_t i = 0; i < n_pairs_; ++i) rev_pair_[i] = i;
      return;
    }
    std::unordered_map<std::size_t, std::size_t> ctx_pos;
    for (std::size_t c = 0; c < n_ctx_; ++c) ctx_pos.emplace(contexts_[c], c);
    std::map<std::pair<std::size_t, std::size_t>, std::size_t> pair_index;
    for (std::size_t c = 0; c < n_ctx_; ++c) {
      auto it = ctx_pos.find(monoid_.reversed_index(contexts_[c]));
      if (it == ctx_pos.end()) {
        throw std::logic_error("decide_linear_gap: reversed context missing");
      }
      const auto key = std::pair(ctx_class_[c], ctx_class_[it->second]);
      auto [pit, inserted] = pair_index.emplace(key, pairs_.size());
      if (inserted) pairs_.push_back(key);
      ctx_pair_[c] = pit->second;
    }
    n_pairs_ = pairs_.size();
    rev_pair_.resize(n_pairs_);
    for (std::size_t i = 0; i < n_pairs_; ++i) {
      // (k', k) is realized by the reversal of any context realizing (k, k').
      auto it = pair_index.find(std::pair(pairs_[i].second, pairs_[i].first));
      if (it == pair_index.end()) {
        throw std::logic_error("decide_linear_gap: reversed pair missing");
      }
      rev_pair_[i] = it->second;
    }
  }

  void build_tables() {
    row_.resize(n_cls_);
    head_.resize(n_cls_);
    for (std::size_t k = 0; k < n_cls_; ++k) {
      const BitMatrix& fwd = monoid_.element(contexts_[cls_rep_[k]]).fwd;
      row_[k].reserve(beta_);
      for (Label sym = 0; sym < beta_; ++sym) {
        row_[k].push_back(BitVector::unit(beta_, sym).multiplied(fwd));
      }
      head_[k].reserve(alpha_);
      for (Label s0 = 0; s0 < alpha_; ++s0) head_[k].push_back(fwd * ts_.step(s0));
    }

    cand_.assign(alpha_, std::vector<BitMatrix>(alpha_));
    cand_t_.assign(alpha_, std::vector<BitMatrix>(alpha_));
    for (Label s0 = 0; s0 < alpha_; ++s0) {
      for (Label s1 = 0; s1 < alpha_; ++s1) {
        BitMatrix m(beta_);
        for (Label va = 0; va < beta_; ++va) {
          if (!problem_.node_ok(s0, va)) continue;
          for (Label vb = 0; vb < beta_; ++vb) {
            if (!problem_.node_ok(s1, vb)) continue;
            if (!problem_.edge_ok(va, vb)) continue;
            m.set(va, vb, true);
          }
        }
        cand_t_[s0][s1] = m.transposed();
        cand_[s0][s1] = std::move(m);
      }
    }

    if (!cycle_) {
      prefix_ok_.assign(n_cls_, std::vector<BitVector>(alpha_));
      suffix_ok_.assign(n_cls_, BitVector(beta_));
      lend_b_.assign(n_cls_, std::vector<std::vector<BitVector>>(
                                 alpha_, std::vector<BitVector>(alpha_)));
      rend_a_ = lend_b_;
      for (std::size_t k = 0; k < n_cls_; ++k) {
        const MonoidElement& elem = monoid_.element(contexts_[cls_rep_[k]]);
        for (Label vb = 0; vb < beta_; ++vb) {
          if (row_[k][vb].intersects(ts_.last_mask())) suffix_ok_[k].set(vb, true);
        }
        for (Label s0 = 0; s0 < alpha_; ++s0) {
          prefix_ok_[k][s0] = elem.pvec.multiplied(ts_.step(s0));
          for (Label s1 = 0; s1 < alpha_; ++s1) {
            lend_b_[k][s0][s1] = prefix_ok_[k][s0].multiplied(cand_[s0][s1]);
            rend_a_[k][s0][s1] = suffix_ok_[k].multiplied(cand_t_[s0][s1]);
          }
        }
      }
    }

    p_.assign(n_pairs_, std::vector<BitVector>(alpha_, BitVector(beta_)));
    q_ = p_;
    xb_.assign(n_pairs_, std::vector<std::vector<BitVector>>(
                             alpha_, std::vector<BitVector>(alpha_, BitVector(beta_))));
    ya_ = xb_;
    new_emit_.assign(n_cls_, BitVector(beta_));
    new_accept_.assign(n_cls_, std::vector<BitVector>(alpha_, BitVector(beta_)));
    all_b_.assign(alpha_, BitVector(beta_));
    all_a_.assign(alpha_, BitVector(beta_));
    row_scratch_ = BitVector(beta_);
    mask_scratch_ = BitVector(beta_);
  }

  /// Per-point value filters implied by the caps: a candidate (va, vb) of
  /// an interior point (l, s0, s1, r) is valid iff va in p_[pair(l)][s0]
  /// and vb in q_[pair(r)][s1] (end blocks drop the side that faces the
  /// path end).
  void derive_filters(const AggregateCaps& caps) {
    for (std::size_t i = 0; i < n_pairs_; ++i) {
      const auto [k, krev] = pairs_[i];
      for (Label s = 0; s < alpha_; ++s) {
        p_[i][s] = caps.accept[k][s];
        q_[i][s] = caps.emit[k];
        if (!directed_) {
          p_[i][s] &= caps.emit[krev];
          q_[i][s] &= caps.accept[krev][s];
        }
      }
    }
  }

  /// One arc-consistency pass over the quotient spaces: checks that every
  /// point class keeps a candidate under the caps, then shrinks each cap
  /// to the union of the surviving candidates' projections. Returns false
  /// on a dead point class or an emptied cap; sets `changed` if any cap
  /// lost a bit.
  bool shrink_pass(AggregateCaps& caps, bool& changed) {
    derive_filters(caps);
    for (std::size_t i = 0; i < n_pairs_; ++i) {
      budget_checkpoint(budget_);
      for (Label s0 = 0; s0 < alpha_; ++s0) {
        for (Label s1 = 0; s1 < alpha_; ++s1) {
          p_[i][s0].multiply_into(cand_[s0][s1], xb_[i][s0][s1]);
          q_[i][s1].multiply_into(cand_t_[s0][s1], ya_[i][s0][s1]);
        }
      }
    }

    // Realizability: every (l, s0, s1, r) combination is a domain point of
    // every applicable kind, so every pair-class combination must keep a
    // candidate.
    for (Label s0 = 0; s0 < alpha_; ++s0) {
      for (Label s1 = 0; s1 < alpha_; ++s1) {
        for (std::size_t l = 0; l < n_pairs_; ++l) {
          budget_checkpoint(budget_);
          const BitVector& xb = xb_[l][s0][s1];
          for (std::size_t r = 0; r < n_pairs_; ++r) {
            if (!xb.intersects(q_[r][s1])) return false;  // interior died
          }
        }
        if (cycle_) continue;
        for (std::size_t l = 0; l < n_cls_; ++l) {
          const BitVector& lb = lend_b_[l][s0][s1];
          for (std::size_t r = 0; r < n_pairs_; ++r) {
            if (!lb.intersects(q_[r][s1])) return false;  // left end died
          }
        }
        for (std::size_t r = 0; r < n_cls_; ++r) {
          const BitVector& ra = rend_a_[r][s0][s1];
          for (std::size_t l = 0; l < n_pairs_; ++l) {
            if (!ra.intersects(p_[l][s0])) return false;  // right end died
          }
        }
      }
    }

    // Aggregate unions of valid projections across all partner classes.
    for (Label s = 0; s < alpha_; ++s) {
      all_b_[s].clear();
      all_a_[s].clear();
    }
    for (Label s0 = 0; s0 < alpha_; ++s0) {
      for (Label s1 = 0; s1 < alpha_; ++s1) {
        for (std::size_t i = 0; i < n_pairs_; ++i) {
          all_b_[s1] |= xb_[i][s0][s1];
          all_a_[s0] |= ya_[i][s0][s1];
        }
        if (!cycle_) {
          for (std::size_t k = 0; k < n_cls_; ++k) {
            all_b_[s1] |= lend_b_[k][s0][s1];
            all_a_[s0] |= rend_a_[k][s0][s1];
          }
        }
      }
    }

    // New caps = union of valid contributions over every context of a
    // class, grouped by (class, rev class) pairs; always a subset of the
    // old caps.
    for (std::size_t k = 0; k < n_cls_; ++k) {
      new_emit_[k].clear();
      for (Label s0 = 0; s0 < alpha_; ++s0) new_accept_[k][s0].clear();
    }
    for (std::size_t i = 0; i < n_pairs_; ++i) {
      const std::size_t k = pairs_[i].first;
      for (Label s1 = 0; s1 < alpha_; ++s1) new_emit_[k] |= q_[i][s1] & all_b_[s1];
      for (Label s0 = 0; s0 < alpha_; ++s0) {
        new_accept_[k][s0] |= p_[i][s0] & all_a_[s0];
        if (!directed_) {
          // Contributions routed through reversed points: the a-symbol of
          // a right-role point lands in emit(rev(left)), the b-symbol of a
          // left-role point in accept(rev(right), s1); seen from class k
          // these are the reversed pair's filters.
          new_emit_[k] |= p_[rev_pair_[i]][s0] & all_a_[s0];
          new_accept_[k][s0] |= q_[rev_pair_[i]][s0] & all_b_[s0];
        }
      }
    }
    for (std::size_t k = 0; k < n_cls_; ++k) {
      if (!(new_emit_[k] == caps.emit[k])) {
        changed = true;
        caps.emit[k] = new_emit_[k];
      }
      if (!new_emit_[k].any()) return false;
      for (Label s0 = 0; s0 < alpha_; ++s0) {
        if (!(new_accept_[k][s0] == caps.accept[k][s0])) {
          changed = true;
          caps.accept[k][s0] = new_accept_[k][s0];
        }
        if (!new_accept_[k][s0].any()) return false;
      }
    }
    return true;
  }

  /// Dense support pruning over the glue tables: an emitted symbol whose
  /// glue row misses an accept cap entirely can never be used (some
  /// accepting point would die), and an accepted symbol no emitted symbol
  /// of some context glues with is equally dead. Returns false when a cap
  /// empties; sets `changed` on any prune.
  bool glue_prune_pass(AggregateCaps& caps, bool& changed) {
    BitVector& row = row_scratch_;
    BitVector& support = mask_scratch_;
    for (std::size_t c1 = 0; c1 < n_cls_; ++c1) {
      for (std::size_t c2 = 0; c2 < n_cls_; ++c2) {
        for (Label s0 = 0; s0 < alpha_; ++s0) {
          budget_checkpoint(budget_);
          BitVector& acc = caps.accept[c2][s0];
          support.clear();
          for (Label sym1 = 0; sym1 < beta_; ++sym1) {
            if (!caps.emit[c1].get(sym1)) continue;
            row_[c1][sym1].multiply_into(head_[c2][s0], row);
            if (!row.intersects(acc)) {
              caps.emit[c1].set(sym1, false);
              changed = true;
              if (!caps.emit[c1].any()) return false;
              continue;
            }
            support |= row;
          }
          if (!acc.subset_of(support)) {
            acc &= support;
            changed = true;
            if (!acc.any()) return false;
          }
        }
      }
    }
    return true;
  }

  /// Runs shrink and glue passes to a joint fixpoint. False = dead end.
  bool propagate(AggregateCaps& caps) {
    while (true) {
      bool changed = false;
      if (!shrink_pass(caps, changed)) return false;
      if (changed) continue;  // the cheap pass first, to its own fixpoint
      if (!glue_prune_pass(caps, changed)) return false;
      if (!changed) return true;
    }
  }

  /// Scans for the first gluing violation left at the fixpoint, in
  /// deterministic (c1, c2, s0, sym2, sym1) order.
  bool first_conflict(const AggregateCaps& caps, GlueConflict& out) {
    BitVector& row = row_scratch_;
    BitVector& glued_by_all = mask_scratch_;
    for (std::size_t c1 = 0; c1 < n_cls_; ++c1) {
      for (std::size_t c2 = 0; c2 < n_cls_; ++c2) {
        for (Label s0 = 0; s0 < alpha_; ++s0) {
          budget_checkpoint(budget_);
          const BitVector& acc = caps.accept[c2][s0];
          glued_by_all = BitVector::ones(beta_);
          for (Label sym1 = 0; sym1 < beta_; ++sym1) {
            if (!caps.emit[c1].get(sym1)) continue;
            row_[c1][sym1].multiply_into(head_[c2][s0], row);
            glued_by_all &= row;
          }
          if (acc.subset_of(glued_by_all)) continue;
          BitVector bad = acc;
          bad.remove(glued_by_all);
          const Label sym2 = static_cast<Label>(bad.first_set());
          for (Label sym1 = 0; sym1 < beta_; ++sym1) {
            if (!caps.emit[c1].get(sym1)) continue;
            row_[c1][sym1].multiply_into(head_[c2][s0], row);
            if (!row.get(sym2)) {
              out = GlueConflict{c1, c2, s0, sym1, sym2};
              return true;
            }
          }
        }
      }
    }
    return false;
  }

  /// Builds the class-level solution both fill paths read: a
  /// LazyFeasibleFunction holding the final per-pair candidate filters
  /// (derive_filters of the solved caps), the endpoint filters, the local
  /// candidate matrices and the context quotient maps. This is the whole
  /// feasible function in O(|classes|^2 * |Sigma_in|^2) storage. Consumes
  /// the search state (run() returns right after the fill), so the filter
  /// tables move instead of copying; only the const context list (n_ctx
  /// words) is copied.
  std::shared_ptr<LazyFeasibleFunction> solution(const AggregateCaps& caps) {
    derive_filters(caps);
    auto fn = std::make_shared<LazyFeasibleFunction>();
    fn->cycle = cycle_;
    fn->alpha = alpha_;
    fn->beta = beta_;
    fn->contexts = contexts_;
    fn->ctx_pos.reserve(n_ctx_);
    for (std::size_t c = 0; c < n_ctx_; ++c) fn->ctx_pos.emplace(fn->contexts[c], c);
    fn->ctx_class = std::move(ctx_class_);
    fn->ctx_pair = std::move(ctx_pair_);
    fn->p = std::move(p_);
    fn->q = std::move(q_);
    fn->prefix_ok = std::move(prefix_ok_);
    fn->suffix_ok = std::move(suffix_ok_);
    fn->cand = std::move(cand_);
    return fn;
  }

  /// Lazy backend: the certificate *is* the class-level solution;
  /// value_at resolves points on demand.
  void fill_lazy(const AggregateCaps& caps, LinearGapCertificate& cert) {
    cert.feasible = true;
    cert.adopt_lazy(solution(caps));
  }

  /// Dense backend: materializes the feasible function point by point, in
  /// the same order as the pairwise engine, each point assigned its first
  /// (va, vb) candidate valid under the final caps — by construction the
  /// same value the lazy backend resolves. Validity within glued caps
  /// implies every ordered pair of points (and every orientation combo)
  /// glues.
  void fill_certificate(const AggregateCaps& caps, LinearGapCertificate& cert) {
    const std::shared_ptr<LazyFeasibleFunction> fn = solution(caps);
    std::vector<BlockPoint> domain;
    std::vector<BlockValue> choice;
    domain.reserve(fn->domain_size());
    choice.reserve(fn->domain_size());
    fn->for_each_point([&](const BlockPoint& point, const BlockValue& value) {
      domain.push_back(point);
      choice.push_back(value);
    });
    cert.feasible = true;
    cert.adopt_dense(std::move(domain), std::move(choice), {});
  }
};

LinearGapCertificate decide_factorized(const Monoid& monoid, CertificateMode mode,
                                       const ExecutionBudget* budget) {
  return FactorizedSearch(monoid, budget).run(mode);
}

// =====================================================================
// Pairwise engine (LinearGapEngine::kPairwise) — the original point-pair
// gluing sweep, kept as the differential-test oracle.
// =====================================================================

/// Shared search context.
struct Search {
  const Monoid& monoid;
  const TransitionSystem& ts;
  const ExecutionBudget* budget = nullptr;
  bool cycle;
  bool directed;

  std::vector<BlockPoint> domain;
  std::vector<std::size_t> rho;  ///< reversed point per point (undirected)
  std::vector<std::vector<BlockValue>> candidates;

  /// row_cache[element][label] = e_label * fwd(element)
  std::vector<std::vector<BitVector>> row_cache;

  /// glue_cache[(right, left, s0)] = fwd(right) * fwd(left) * A(s0); the
  /// glue check is then a single bit lookup. Keyed by the actual triple —
  /// a hashed key could silently alias two triples on collision.
  std::map<std::tuple<std::size_t, std::size_t, Label>, BitMatrix> glue_cache;

  explicit Search(const Monoid& m)
      : monoid(m),
        ts(m.transitions()),
        cycle(is_cycle(m.transitions().problem().topology())),
        directed(is_directed(m.transitions().problem().topology())) {}

  const BitVector& row_of(std::size_t element, Label label) {
    auto& rows = row_cache[element];
    if (rows.empty()) {
      rows.reserve(ts.num_outputs());
      for (Label l = 0; l < ts.num_outputs(); ++l) {
        rows.push_back(BitVector::unit(ts.num_outputs(), l)
                           .multiplied(monoid.element(element).fwd));
      }
    }
    return rows[label];
  }

  /// Gluing across middle = fwd(right_elem) * fwd(left_elem) * A(s0).
  const BitMatrix& glue_matrix(std::size_t right_elem, std::size_t left_elem, Label s0) {
    const auto key = std::tuple(right_elem, left_elem, s0);
    auto it = glue_cache.find(key);
    if (it == glue_cache.end()) {
      // A miss is two dense BitMatrix multiplies — heavy enough that the
      // amortized tick counter would hide the clock for seconds on large
      // lifted alphabets, so read it directly.
      budget_check(budget);
      BitMatrix g = monoid.element(right_elem).fwd * monoid.element(left_elem).fwd *
                    ts.step(s0);
      it = glue_cache.emplace(key, std::move(g)).first;
    }
    return it->second;
  }

  bool glue(std::size_t right_elem, Label sym1, std::size_t left_elem, Label s0,
            Label sym2) {
    return glue_matrix(right_elem, left_elem, s0).get(sym1, sym2);
  }

  bool left_role(std::size_t p) const {
    return domain[p].kind != BlockKind::kRightEnd;
  }
  bool right_role(std::size_t p) const {
    return domain[p].kind != BlockKind::kLeftEnd;
  }

  /// Full orientation-combo pair check: with points p1 (left role) and p2
  /// (right role) assigned values v1, v2 — and, when undirected, their
  /// reversed points assigned rv1, rv2 — do all placements glue?
  /// For directed problems only the (F, F) combo applies.
  bool pair_ok(std::size_t p1, const BlockValue& v1, const BlockValue& rv1,
               std::size_t p2, const BlockValue& v2, const BlockValue& rv2) {
    const BlockPoint& a = domain[p1];
    const BlockPoint& b = domain[p2];
    // Right-facing symbol of block 1 / left-facing symbol of block 2 per
    // orientation choice.
    const Label sym1_f = v1.b;
    const Label sym2_f = v2.a;
    if (!glue(a.right, sym1_f, b.left, b.s0, sym2_f)) return false;
    if (directed) return true;
    const Label sym1_r = rv1.a;  // reversed placement: value of rho(p1), .a faces right
    const Label sym2_r = rv2.b;
    if (!glue(a.right, sym1_r, b.left, b.s0, sym2_f)) return false;
    if (!glue(a.right, sym1_f, b.left, b.s0, sym2_r)) return false;
    if (!glue(a.right, sym1_r, b.left, b.s0, sym2_r)) return false;
    return true;
  }
};

LinearGapCertificate decide_pairwise(const Monoid& monoid,
                                     const ExecutionBudget* budget) {
  LinearGapCertificate cert;
  const TransitionSystem& ts = monoid.transitions();
  const PairwiseProblem& problem = ts.problem();
  const bool cycle = is_cycle(problem.topology());
  const bool directed = is_directed(problem.topology());
  const std::size_t beta = ts.num_outputs();

  cert.ell_ctx = context_length(monoid);

  // Context element set: layers at lengths ell_ctx and ell_ctx + 1.
  const std::vector<std::size_t> contexts = context_elements(monoid, cert.ell_ctx);

  Search search(monoid);
  search.budget = budget;
  search.row_cache.resize(monoid.size());

  // Build the domain. The point count is cubic-ish in practice (kinds x
  // |contexts|^2 x alpha^2) and lifted problems reach tens of millions of
  // points, so the build itself — and the index/reversal/candidate passes
  // below — must checkpoint and charge the budget: on such domains they
  // dominate the wall clock before any constraint is ever probed.
  auto add_points = [&](BlockKind kind) {
    for (std::size_t left : contexts) {
      for (Label s0 = 0; s0 < ts.num_inputs(); ++s0) {
        for (Label s1 = 0; s1 < ts.num_inputs(); ++s1) {
          for (std::size_t right : contexts) {
            budget_checkpoint(budget);
            search.domain.push_back(BlockPoint{kind, left, s0, s1, right});
          }
        }
      }
    }
  };
  budget_charge_memory(budget, linear_gap_domain_size(monoid, nullptr) *
                                   (sizeof(BlockPoint) + sizeof(std::size_t) +
                                    sizeof(std::vector<BlockValue>)));
  add_points(BlockKind::kInterior);
  if (!cycle) {
    add_points(BlockKind::kLeftEnd);
    add_points(BlockKind::kRightEnd);
  }

  const std::size_t n_points = search.domain.size();

  // Point index: reversal map now (undirected), certificate index later —
  // built once and moved into the dense certificate at the end.
  std::unordered_map<BlockPoint, std::size_t, BlockPointHash> point_index;
  point_index.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    budget_checkpoint(budget);
    point_index.emplace(search.domain[i], i);
  }
  search.rho.resize(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    budget_checkpoint(budget);
    if (directed) {
      search.rho[i] = i;
      continue;
    }
    const BlockPoint r = search.domain[i].reversed(monoid);
    auto it = point_index.find(r);
    if (it == point_index.end()) {
      throw std::logic_error("decide_linear_gap: reversed point missing from domain");
    }
    search.rho[i] = it->second;
  }

  // Candidate filters.
  search.candidates.resize(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    const BlockPoint& p = search.domain[i];
    for (Label va = 0; va < beta; ++va) {
      budget_checkpoint(budget);
      if (!problem.node_ok(p.s0, va)) continue;
      for (Label vb = 0; vb < beta; ++vb) {
        if (!problem.node_ok(p.s1, vb)) continue;
        if (!problem.edge_ok(va, vb)) continue;
        if (p.kind == BlockKind::kLeftEnd) {
          // Prefix completability: (pvec(left) * A(s0)) [va].
          BitVector v = monoid.element(p.left).pvec.multiplied(ts.step(p.s0));
          if (!v.get(va)) continue;
        }
        if (p.kind == BlockKind::kRightEnd) {
          // Suffix completability: the chain from vb through the suffix
          // must reach an output allowed at the path's last node.
          if (!(search.row_of(p.right, vb) & ts.last_mask()).any()) continue;
        }
        search.candidates[i].push_back(BlockValue{va, vb});
      }
    }
    if (search.candidates[i].empty()) {
      return cert;  // some block can never be labeled: infeasible
    }
  }

  // Arc-consistency pruning on the forward/forward combo (a necessary
  // condition for any placement): a value v1 at a left-role point p1 needs,
  // for *every* right-role p2, some partner v2 with
  // G(p1.right, p2.left, p2.s0)[v1.b][v2.a] — and symmetrically. Because
  // the condition only reads (p1.right, v1.b) on one side and
  // (p2.left, p2.s0, v2.a) on the other, supports can be aggregated per
  // context element; iterate to a fixpoint.
  {
    bool changed = true;
    while (changed) {
      changed = false;
      // allowed_b[elemR] = symbols sym1 such that for every right-role p2
      // some v2 in cand(p2) glues from sym1.
      std::unordered_map<std::size_t, BitVector> allowed_b;
      for (std::size_t elemR : contexts) {
        BitVector all = BitVector::ones(beta);
        for (std::size_t p2 = 0; p2 < n_points; ++p2) {
          budget_checkpoint(budget);
          if (!search.right_role(p2)) continue;
          const BlockPoint& b = search.domain[p2];
          BitVector a_set(beta);
          for (const BlockValue& v2 : search.candidates[p2]) a_set.set(v2.a, true);
          const BitMatrix& g = search.glue_matrix(elemR, b.left, b.s0);
          BitVector supported(beta);
          for (Label sym1 = 0; sym1 < beta; ++sym1) {
            budget_checkpoint(budget);
            BitVector row(beta);
            for (Label sym2 = 0; sym2 < beta; ++sym2) row.set(sym2, g.get(sym1, sym2));
            if (row.intersects(a_set)) supported.set(sym1, true);
          }
          all = all & supported;
          if (!all.any()) break;
        }
        allowed_b.emplace(elemR, std::move(all));
      }
      for (std::size_t p1 = 0; p1 < n_points; ++p1) {
        if (!search.left_role(p1)) continue;
        auto& cand = search.candidates[p1];
        const BitVector& ok = allowed_b.at(search.domain[p1].right);
        const std::size_t before = cand.size();
        std::erase_if(cand, [&](const BlockValue& v) { return !ok.get(v.b); });
        if (cand.size() != before) changed = true;
        if (cand.empty()) return cert;
      }
      // Mirror direction: allowed_a[(elemL, s0)].
      std::map<std::pair<std::size_t, Label>, BitVector> allowed_a;
      for (std::size_t elemL : contexts) {
        for (Label s0 = 0; s0 < ts.num_inputs(); ++s0) {
          BitVector all = BitVector::ones(beta);
          for (std::size_t p1 = 0; p1 < n_points; ++p1) {
            budget_checkpoint(budget);
            if (!search.left_role(p1)) continue;
            const BlockPoint& a = search.domain[p1];
            BitVector b_set(beta);
            for (const BlockValue& v1 : search.candidates[p1]) b_set.set(v1.b, true);
            const BitMatrix& g = search.glue_matrix(a.right, elemL, s0);
            BitVector supported = b_set.multiplied(g);
            all = all & supported;
            if (!all.any()) break;
          }
          allowed_a.emplace(std::pair(elemL, s0), std::move(all));
        }
      }
      for (std::size_t p2 = 0; p2 < n_points; ++p2) {
        if (!search.right_role(p2)) continue;
        auto& cand = search.candidates[p2];
        const BitVector& ok =
            allowed_a.at(std::pair(search.domain[p2].left, search.domain[p2].s0));
        const std::size_t before = cand.size();
        std::erase_if(cand, [&](const BlockValue& v) { return !ok.get(v.a); });
        if (cand.size() != before) changed = true;
        if (cand.empty()) return cert;
      }
    }
  }

  // The search couples each point with its reversed point; assign values
  // jointly to the orbit {p, rho(p)}. Representatives: min index of orbit.
  std::vector<std::size_t> rep_of(n_points);
  std::vector<std::size_t> orbit_reps;
  for (std::size_t i = 0; i < n_points; ++i) {
    const std::size_t r = std::min(i, search.rho[i]);
    rep_of[i] = r;
    if (r == i) orbit_reps.push_back(i);
  }

  // Assignment: value per point (both orbit members assigned together,
  // independently chosen — the orbit grouping only orders the search).
  std::vector<int> chosen(n_points, -1);

  // Check a tentative full-pair constraint between two *assigned* points.
  auto assigned_pair_ok = [&](std::size_t p1, std::size_t p2) {
    if (!search.left_role(p1) || !search.right_role(p2)) return true;
    const BlockValue v1 = search.candidates[p1][static_cast<std::size_t>(chosen[p1])];
    const BlockValue v2 = search.candidates[p2][static_cast<std::size_t>(chosen[p2])];
    const std::size_t r1 = search.rho[p1];
    const std::size_t r2 = search.rho[p2];
    if (chosen[r1] < 0 || chosen[r2] < 0) return true;  // rechecked when assigned
    const BlockValue rv1 = search.candidates[r1][static_cast<std::size_t>(chosen[r1])];
    const BlockValue rv2 = search.candidates[r2][static_cast<std::size_t>(chosen[r2])];
    return search.pair_ok(p1, v1, rv1, p2, v2, rv2);
  };

  // Backtracking over orbit representatives in order; for each, try all
  // value pairs for (rep, rho(rep)). Iterative — the search is one level
  // deep per orbit and large domains (e.g. lifted problems) would blow the
  // call stack with a recursive formulation.
  const std::size_t n_orbits = orbit_reps.size();
  std::vector<std::size_t> vi_at(n_orbits, 0);
  std::vector<std::size_t> qi_at(n_orbits, 0);
  std::size_t pos = 0;
  bool entering = true;  // fresh entry at pos vs resuming after a backtrack
  bool found = false;
  while (true) {
    if (pos == n_orbits) {
      found = true;
      break;
    }
    const std::size_t p = orbit_reps[pos];
    const std::size_t q = search.rho[p];
    const std::size_t np = search.candidates[p].size();
    const std::size_t nq = (q == p) ? 1 : search.candidates[q].size();
    if (entering) {
      vi_at[pos] = 0;
      qi_at[pos] = 0;
    } else {
      chosen[p] = -1;
      if (q != p) chosen[q] = -1;
      if (++qi_at[pos] >= nq) {
        qi_at[pos] = 0;
        ++vi_at[pos];
      }
    }
    bool placed = false;
    while (vi_at[pos] < np && !placed) {
      for (; qi_at[pos] < nq; ++qi_at[pos]) {
        budget_checkpoint(budget);
        chosen[p] = static_cast<int>(vi_at[pos]);
        if (q != p) chosen[q] = static_cast<int>(qi_at[pos]);
        // Check all constraints among assigned points that involve p or q.
        // Tick per pair-check, not per placement: a placement sweeps every
        // assigned point, so on large lifted domains one tick per placement
        // would put thousands of glue probes between clock reads.
        bool ok = true;
        for (std::size_t other = 0; other < n_points && ok; ++other) {
          budget_checkpoint(budget);
          if (chosen[other] < 0) continue;
          ok = assigned_pair_ok(p, other) && assigned_pair_ok(other, p);
          if (ok && q != p) ok = assigned_pair_ok(q, other) && assigned_pair_ok(other, q);
        }
        if (ok) {
          placed = true;
          break;
        }
        chosen[p] = -1;
        if (q != p) chosen[q] = -1;
      }
      if (!placed) {
        ++vi_at[pos];
        qi_at[pos] = 0;
      }
    }
    if (placed) {
      ++pos;
      entering = true;
    } else {
      if (pos == 0) break;
      --pos;
      entering = false;
    }
  }
  if (!found) return cert;

  cert.feasible = true;
  std::vector<BlockValue> choice;
  choice.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    choice.push_back(search.candidates[i][static_cast<std::size_t>(chosen[i])]);
  }
  cert.adopt_dense(std::move(search.domain), std::move(choice), std::move(point_index));
  return cert;
}

}  // namespace

LinearGapCertificate decide_linear_gap(const Monoid& monoid, LinearGapEngine engine,
                                       CertificateMode mode,
                                       const ExecutionBudget* budget) {
  // The pair-wise oracle's choices come from per-point backtracking, not a
  // class-level solution — it is dense by construction.
  return engine == LinearGapEngine::kPairwise
             ? decide_pairwise(monoid, budget)
             : decide_factorized(monoid, mode, budget);
}

std::size_t linear_gap_domain_size(const Monoid& monoid, std::size_t* num_contexts) {
  const std::vector<std::size_t> contexts =
      context_elements(monoid, context_length(monoid));
  if (num_contexts != nullptr) *num_contexts = contexts.size();
  const std::size_t alpha = monoid.transitions().num_inputs();
  const std::size_t kinds = is_cycle(monoid.transitions().problem().topology()) ? 1 : 3;
  return kinds * contexts.size() * contexts.size() * alpha * alpha;
}

}  // namespace lclpath
