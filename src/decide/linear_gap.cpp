#include "decide/linear_gap.hpp"

#include <algorithm>
#include <stdexcept>

namespace lclpath {

std::size_t BlockPointHash::operator()(const BlockPoint& p) const {
  std::size_t h = hash_mix(static_cast<std::size_t>(p.kind), p.left);
  h = hash_mix(h, p.s0);
  h = hash_mix(h, p.s1);
  h = hash_mix(h, p.right);
  return h;
}

BlockValue LinearGapCertificate::value_at(const BlockPoint& point) const {
  auto it = index.find(point);
  if (it == index.end()) {
    throw std::logic_error("LinearGapCertificate::value_at: point not in domain");
  }
  return choice[it->second];
}

namespace {

/// Shared search context.
struct Search {
  const Monoid& monoid;
  const TransitionSystem& ts;
  bool cycle;
  bool directed;

  std::vector<BlockPoint> domain;
  std::vector<std::size_t> rho;  ///< reversed point per point (undirected)
  std::vector<std::vector<BlockValue>> candidates;

  /// row_cache[element][label] = e_label * fwd(element)
  std::vector<std::vector<BitVector>> row_cache;

  /// glue_cache[(right, left, s0)] = fwd(right) * fwd(left) * A(s0); the
  /// glue check is then a single bit lookup.
  std::unordered_map<std::size_t, BitMatrix> glue_cache;

  explicit Search(const Monoid& m)
      : monoid(m),
        ts(m.transitions()),
        cycle(is_cycle(m.transitions().problem().topology())),
        directed(is_directed(m.transitions().problem().topology())) {}

  const BitVector& row_of(std::size_t element, Label label) {
    auto& rows = row_cache[element];
    if (rows.empty()) {
      rows.reserve(ts.num_outputs());
      for (Label l = 0; l < ts.num_outputs(); ++l) {
        rows.push_back(BitVector::unit(ts.num_outputs(), l)
                           .multiplied(monoid.element(element).fwd));
      }
    }
    return rows[label];
  }

  /// Gluing across middle = fwd(right_elem) * fwd(left_elem) * A(s0).
  const BitMatrix& glue_matrix(std::size_t right_elem, std::size_t left_elem, Label s0) {
    std::size_t key = hash_mix(right_elem, left_elem);
    key = hash_mix(key, s0);
    auto it = glue_cache.find(key);
    if (it == glue_cache.end()) {
      BitMatrix g = monoid.element(right_elem).fwd * monoid.element(left_elem).fwd *
                    ts.step(s0);
      it = glue_cache.emplace(key, std::move(g)).first;
    }
    return it->second;
  }

  bool glue(std::size_t right_elem, Label sym1, std::size_t left_elem, Label s0,
            Label sym2) {
    return glue_matrix(right_elem, left_elem, s0).get(sym1, sym2);
  }

  bool left_role(std::size_t p) const {
    return domain[p].kind != BlockKind::kRightEnd;
  }
  bool right_role(std::size_t p) const {
    return domain[p].kind != BlockKind::kLeftEnd;
  }

  /// Full orientation-combo pair check: with points p1 (left role) and p2
  /// (right role) assigned values v1, v2 — and, when undirected, their
  /// reversed points assigned rv1, rv2 — do all placements glue?
  /// For directed problems only the (F, F) combo applies.
  bool pair_ok(std::size_t p1, const BlockValue& v1, const BlockValue& rv1,
               std::size_t p2, const BlockValue& v2, const BlockValue& rv2) {
    const BlockPoint& a = domain[p1];
    const BlockPoint& b = domain[p2];
    // Right-facing symbol of block 1 / left-facing symbol of block 2 per
    // orientation choice.
    const Label sym1_f = v1.b;
    const Label sym2_f = v2.a;
    if (!glue(a.right, sym1_f, b.left, b.s0, sym2_f)) return false;
    if (directed) return true;
    const Label sym1_r = rv1.a;  // reversed placement: value of rho(p1), .a faces right
    const Label sym2_r = rv2.b;
    if (!glue(a.right, sym1_r, b.left, b.s0, sym2_f)) return false;
    if (!glue(a.right, sym1_f, b.left, b.s0, sym2_r)) return false;
    if (!glue(a.right, sym1_r, b.left, b.s0, sym2_r)) return false;
    return true;
  }
};

}  // namespace

LinearGapCertificate decide_linear_gap(const Monoid& monoid) {
  LinearGapCertificate cert;
  const TransitionSystem& ts = monoid.transitions();
  const PairwiseProblem& problem = ts.problem();
  const bool cycle = is_cycle(problem.topology());
  const bool directed = is_directed(problem.topology());
  const std::size_t beta = ts.num_outputs();

  cert.ell_ctx = monoid.size() + 5;

  // Context element set: layers at lengths ell_ctx and ell_ctx + 1.
  std::vector<std::size_t> contexts = monoid.layer_at(cert.ell_ctx);
  {
    std::vector<std::size_t> next = monoid.layer_at(cert.ell_ctx + 1);
    contexts.insert(contexts.end(), next.begin(), next.end());
    std::sort(contexts.begin(), contexts.end());
    contexts.erase(std::unique(contexts.begin(), contexts.end()), contexts.end());
  }

  Search search(monoid);
  search.row_cache.resize(monoid.size());

  // Build the domain.
  auto add_points = [&](BlockKind kind) {
    for (std::size_t left : contexts) {
      for (Label s0 = 0; s0 < ts.num_inputs(); ++s0) {
        for (Label s1 = 0; s1 < ts.num_inputs(); ++s1) {
          for (std::size_t right : contexts) {
            search.domain.push_back(BlockPoint{kind, left, s0, s1, right});
          }
        }
      }
    }
  };
  add_points(BlockKind::kInterior);
  if (!cycle) {
    add_points(BlockKind::kLeftEnd);
    add_points(BlockKind::kRightEnd);
  }

  const std::size_t n_points = search.domain.size();

  // Reversal map over points (undirected only; identity otherwise).
  std::unordered_map<BlockPoint, std::size_t, BlockPointHash> point_index;
  for (std::size_t i = 0; i < n_points; ++i) point_index.emplace(search.domain[i], i);
  search.rho.resize(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    if (directed) {
      search.rho[i] = i;
      continue;
    }
    const BlockPoint& p = search.domain[i];
    BlockKind kind = p.kind;
    if (kind == BlockKind::kLeftEnd) kind = BlockKind::kRightEnd;
    else if (kind == BlockKind::kRightEnd) kind = BlockKind::kLeftEnd;
    BlockPoint r{kind, monoid.reversed_index(p.right), p.s1, p.s0,
                 monoid.reversed_index(p.left)};
    auto it = point_index.find(r);
    if (it == point_index.end()) {
      throw std::logic_error("decide_linear_gap: reversed point missing from domain");
    }
    search.rho[i] = it->second;
  }

  // Candidate filters.
  search.candidates.resize(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    const BlockPoint& p = search.domain[i];
    for (Label va = 0; va < beta; ++va) {
      if (!problem.node_ok(p.s0, va)) continue;
      for (Label vb = 0; vb < beta; ++vb) {
        if (!problem.node_ok(p.s1, vb)) continue;
        if (!problem.edge_ok(va, vb)) continue;
        if (p.kind == BlockKind::kLeftEnd) {
          // Prefix completability: (pvec(left) * A(s0)) [va].
          BitVector v = monoid.element(p.left).pvec.multiplied(ts.step(p.s0));
          if (!v.get(va)) continue;
        }
        if (p.kind == BlockKind::kRightEnd) {
          // Suffix completability: the chain from vb through the suffix
          // must reach an output allowed at the path's last node.
          if (!(search.row_of(p.right, vb) & ts.last_mask()).any()) continue;
        }
        search.candidates[i].push_back(BlockValue{va, vb});
      }
    }
    if (search.candidates[i].empty()) {
      return cert;  // some block can never be labeled: infeasible
    }
  }

  // Arc-consistency pruning on the forward/forward combo (a necessary
  // condition for any placement): a value v1 at a left-role point p1 needs,
  // for *every* right-role p2, some partner v2 with
  // G(p1.right, p2.left, p2.s0)[v1.b][v2.a] — and symmetrically. Because
  // the condition only reads (p1.right, v1.b) on one side and
  // (p2.left, p2.s0, v2.a) on the other, supports can be aggregated per
  // context element; iterate to a fixpoint.
  {
    bool changed = true;
    while (changed) {
      changed = false;
      // allowed_b[elemR] = symbols sym1 such that for every right-role p2
      // some v2 in cand(p2) glues from sym1.
      std::unordered_map<std::size_t, BitVector> allowed_b;
      for (std::size_t elemR : contexts) {
        BitVector all = BitVector::ones(beta);
        for (std::size_t p2 = 0; p2 < n_points; ++p2) {
          if (!search.right_role(p2)) continue;
          const BlockPoint& b = search.domain[p2];
          BitVector a_set(beta);
          for (const BlockValue& v2 : search.candidates[p2]) a_set.set(v2.a, true);
          const BitMatrix& g = search.glue_matrix(elemR, b.left, b.s0);
          BitVector supported(beta);
          for (Label sym1 = 0; sym1 < beta; ++sym1) {
            BitVector row(beta);
            for (Label sym2 = 0; sym2 < beta; ++sym2) row.set(sym2, g.get(sym1, sym2));
            if (row.intersects(a_set)) supported.set(sym1, true);
          }
          all = all & supported;
          if (!all.any()) break;
        }
        allowed_b.emplace(elemR, std::move(all));
      }
      for (std::size_t p1 = 0; p1 < n_points; ++p1) {
        if (!search.left_role(p1)) continue;
        auto& cand = search.candidates[p1];
        const BitVector& ok = allowed_b.at(search.domain[p1].right);
        const std::size_t before = cand.size();
        std::erase_if(cand, [&](const BlockValue& v) { return !ok.get(v.b); });
        if (cand.size() != before) changed = true;
        if (cand.empty()) return cert;
      }
      // Mirror direction: allowed_a[(elemL, s0)].
      std::unordered_map<std::size_t, BitVector> allowed_a;
      for (std::size_t elemL : contexts) {
        for (Label s0 = 0; s0 < ts.num_inputs(); ++s0) {
          BitVector all = BitVector::ones(beta);
          for (std::size_t p1 = 0; p1 < n_points; ++p1) {
            if (!search.left_role(p1)) continue;
            const BlockPoint& a = search.domain[p1];
            BitVector b_set(beta);
            for (const BlockValue& v1 : search.candidates[p1]) b_set.set(v1.b, true);
            const BitMatrix& g = search.glue_matrix(a.right, elemL, s0);
            BitVector supported = b_set.multiplied(g);
            all = all & supported;
            if (!all.any()) break;
          }
          allowed_a.emplace(hash_mix(elemL, s0), std::move(all));
        }
      }
      for (std::size_t p2 = 0; p2 < n_points; ++p2) {
        if (!search.right_role(p2)) continue;
        auto& cand = search.candidates[p2];
        const BitVector& ok =
            allowed_a.at(hash_mix(search.domain[p2].left, search.domain[p2].s0));
        const std::size_t before = cand.size();
        std::erase_if(cand, [&](const BlockValue& v) { return !ok.get(v.a); });
        if (cand.size() != before) changed = true;
        if (cand.empty()) return cert;
      }
    }
  }

  // The search couples each point with its reversed point; assign values
  // jointly to the orbit {p, rho(p)}. Representatives: min index of orbit.
  std::vector<std::size_t> rep_of(n_points);
  std::vector<std::size_t> orbit_reps;
  for (std::size_t i = 0; i < n_points; ++i) {
    const std::size_t r = std::min(i, search.rho[i]);
    rep_of[i] = r;
    if (r == i) orbit_reps.push_back(i);
  }

  // Assignment: value per point (both orbit members assigned together,
  // independently chosen — the orbit grouping only orders the search).
  std::vector<int> chosen(n_points, -1);

  // Check a tentative full-pair constraint between two *assigned* points.
  auto assigned_pair_ok = [&](std::size_t p1, std::size_t p2) {
    if (!search.left_role(p1) || !search.right_role(p2)) return true;
    const BlockValue v1 = search.candidates[p1][static_cast<std::size_t>(chosen[p1])];
    const BlockValue v2 = search.candidates[p2][static_cast<std::size_t>(chosen[p2])];
    const std::size_t r1 = search.rho[p1];
    const std::size_t r2 = search.rho[p2];
    if (chosen[r1] < 0 || chosen[r2] < 0) return true;  // rechecked when assigned
    const BlockValue rv1 = search.candidates[r1][static_cast<std::size_t>(chosen[r1])];
    const BlockValue rv2 = search.candidates[r2][static_cast<std::size_t>(chosen[r2])];
    return search.pair_ok(p1, v1, rv1, p2, v2, rv2);
  };

  // Backtracking over orbit representatives in order; for each, try all
  // value pairs for (rep, rho(rep)). Iterative — the search is one level
  // deep per orbit and large domains (e.g. lifted problems) would blow the
  // call stack with a recursive formulation.
  const std::size_t n_orbits = orbit_reps.size();
  std::vector<std::size_t> vi_at(n_orbits, 0);
  std::vector<std::size_t> qi_at(n_orbits, 0);
  std::size_t pos = 0;
  bool entering = true;  // fresh entry at pos vs resuming after a backtrack
  bool found = false;
  while (true) {
    if (pos == n_orbits) {
      found = true;
      break;
    }
    const std::size_t p = orbit_reps[pos];
    const std::size_t q = search.rho[p];
    const std::size_t np = search.candidates[p].size();
    const std::size_t nq = (q == p) ? 1 : search.candidates[q].size();
    if (entering) {
      vi_at[pos] = 0;
      qi_at[pos] = 0;
    } else {
      chosen[p] = -1;
      if (q != p) chosen[q] = -1;
      if (++qi_at[pos] >= nq) {
        qi_at[pos] = 0;
        ++vi_at[pos];
      }
    }
    bool placed = false;
    while (vi_at[pos] < np && !placed) {
      for (; qi_at[pos] < nq; ++qi_at[pos]) {
        chosen[p] = static_cast<int>(vi_at[pos]);
        if (q != p) chosen[q] = static_cast<int>(qi_at[pos]);
        // Check all constraints among assigned points that involve p or q.
        bool ok = true;
        for (std::size_t other = 0; other < n_points && ok; ++other) {
          if (chosen[other] < 0) continue;
          ok = assigned_pair_ok(p, other) && assigned_pair_ok(other, p);
          if (ok && q != p) ok = assigned_pair_ok(q, other) && assigned_pair_ok(other, q);
        }
        if (ok) {
          placed = true;
          break;
        }
        chosen[p] = -1;
        if (q != p) chosen[q] = -1;
      }
      if (!placed) {
        ++vi_at[pos];
        qi_at[pos] = 0;
      }
    }
    if (placed) {
      ++pos;
      entering = true;
    } else {
      if (pos == 0) break;
      --pos;
      entering = false;
    }
  }
  if (!found) return cert;

  cert.feasible = true;
  cert.domain = search.domain;
  cert.choice.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    cert.choice.push_back(search.candidates[i][static_cast<std::size_t>(chosen[i])]);
    cert.index.emplace(search.domain[i], i);
  }
  return cert;
}

}  // namespace lclpath
