#include "decide/const_gap.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace lclpath {

namespace {

/// A deduplicated signature: the row/column reachability vectors that
/// fully determine a periodic labeling's gluing behavior.
struct Signature {
  BitVector row;  ///< e_{c.last} * N(w)^L
  BitVector col;  ///< (N(w)^L * A(w0)) restricted to column c.first

  bool operator==(const Signature&) const = default;
};

struct SignatureHash {
  std::size_t operator()(const Signature& s) const {
    return hash_mix(s.row.hash(), s.col.hash());
  }
};

}  // namespace

ConstGapCertificate decide_const_gap(const Monoid& monoid,
                                     const ExecutionBudget* budget) {
  ConstGapCertificate cert;
  const TransitionSystem& ts = monoid.transitions();
  const PairwiseProblem& problem = ts.problem();
  const bool cycle = is_cycle(problem.topology());
  const bool directed = is_directed(problem.topology());
  const std::size_t beta = ts.num_outputs();
  const std::size_t n_elems = monoid.size();

  cert.ell_ctx = monoid.size() + 5;
  const std::uint64_t L = cert.ell_ctx;

  // Pumped-power matrices per element.
  std::vector<BitMatrix> pow_l(n_elems);
  std::vector<BitMatrix> pow_l_a(n_elems);  // N^L * A(first)
  for (std::size_t e = 0; e < n_elems; ++e) {
    budget_checkpoint(budget);
    pow_l[e] = monoid.element(e).fwd.power(L);
    pow_l_a[e] = pow_l[e] * ts.step(monoid.element(e).first);
  }

  // Path-endpoint aggregates (only used for path topologies).
  // allowed_left[e][x] = for every gap element u (and the empty gap), a
  // path prefix can reach the label x at the start of the fixed region of
  // a pattern-e component; computed as an AND of reachability vectors.
  std::vector<BitVector> allowed_left;
  // right_ok[e][y] = from last label y, the pumped buffer and every
  // possible end gap (including the empty one) can be completed.
  std::vector<std::vector<char>> right_ok;
  // row vectors per (element, last label): e_y * N^L.
  std::vector<std::vector<BitVector>> row_of(n_elems);
  for (std::size_t e = 0; e < n_elems; ++e) {
    row_of[e].reserve(beta);
    for (Label y = 0; y < beta; ++y) {
      row_of[e].push_back(BitVector::unit(beta, y).multiplied(pow_l[e]));
    }
  }

  if (!cycle) {
    allowed_left.resize(n_elems);
    right_ok.assign(n_elems, std::vector<char>(beta, 1));
    for (std::size_t e = 0; e < n_elems; ++e) {
      budget_checkpoint(budget);
      BitVector allowed = BitVector::ones(beta);
      for (std::size_t u = 0; u < n_elems; ++u) {
        allowed = allowed & monoid.element(u).pvec.multiplied(pow_l_a[e]);
        if (!allowed.any()) break;
      }
      // Empty gap: the component's buffer starts at the path's first node.
      BitVector empty_gap = monoid.element(e).pvec;  // prefix vector of one period
      if (L >= 2) empty_gap = empty_gap.multiplied(monoid.element(e).fwd.power(L - 1));
      empty_gap = empty_gap.multiplied(ts.step(monoid.element(e).first));
      allowed_left[e] = allowed & empty_gap;

      for (Label y = 0; y < beta; ++y) {
        const BitVector& row = row_of[e][y];
        const BitVector& last = ts.last_mask();
        bool ok = (row & last).any();  // empty end gap
        for (std::size_t u = 0; u < n_elems && ok; ++u) {
          ok = (row.multiplied(monoid.element(u).fwd) & last).any();
        }
        right_ok[e][y] = ok ? 1 : 0;
      }
    }
  }

  // Candidate periodic boundaries and their signatures per element.
  struct Candidate {
    PeriodicChoice pair;
    std::size_t sig = 0;      ///< forward signature id
    std::size_t sig_rev = 0;  ///< signature of the reversed placement (undirected)
  };
  std::vector<Signature> signatures;
  std::unordered_map<Signature, std::size_t, SignatureHash> sig_index;
  auto intern_sig = [&](Signature&& s) {
    auto it = sig_index.find(s);
    if (it != sig_index.end()) return it->second;
    const std::size_t id = signatures.size();
    sig_index.emplace(s, id);
    signatures.push_back(std::move(s));
    return id;
  };

  auto make_sig = [&](std::size_t e, Label first, Label last) {
    Signature s;
    s.row = row_of[e][last];
    BitVector col(beta);
    for (Label x = 0; x < beta; ++x) col.set(x, pow_l_a[e].get(x, first));
    s.col = std::move(col);
    return intern_sig(std::move(s));
  };

  std::vector<std::vector<Candidate>> candidates(n_elems);
  for (std::size_t e = 0; e < n_elems; ++e) {
    budget_checkpoint(budget);
    const MonoidElement& elem = monoid.element(e);
    const std::size_t erev = monoid.reversed_index(e);
    for (Label x = 0; x < beta; ++x) {
      for (Label y = 0; y < beta; ++y) {
        // Valid periodic labeling boundary: anchored chain x -> y plus the
        // wrap edge (y, x).
        if (!elem.anchored.get(x, y)) continue;
        if (!problem.edge_ok(y, x)) continue;
        if (!cycle) {
          if (!allowed_left[e].get(x)) continue;
          if (!right_ok[e][y]) continue;
          // The reversed placement faces the path ends too.
          if (!directed) {
            if (!allowed_left[erev].get(y)) continue;
            if (!right_ok[erev][x]) continue;
          }
        }
        Candidate c;
        c.pair = PeriodicChoice{x, y};
        c.sig = make_sig(e, x, y);
        c.sig_rev = directed ? c.sig : make_sig(erev, y, x);
        candidates[e].push_back(c);
      }
    }
    if (candidates[e].empty()) return cert;  // no periodic labeling: infeasible
  }

  // Signature compatibility: sig1 placed left, sig2 placed right, across
  // every reachable middle element and the empty middle.
  const std::size_t n_sigs = signatures.size();
  // reach[s][u] = row(s) * fwd(u), cached.
  std::vector<std::vector<BitVector>> reach(n_sigs);
  for (std::size_t s = 0; s < n_sigs; ++s) {
    reach[s].reserve(n_elems);
    for (std::size_t u = 0; u < n_elems; ++u) {
      reach[s].push_back(signatures[s].row.multiplied(monoid.element(u).fwd));
    }
  }
  std::vector<std::vector<char>> compat(n_sigs, std::vector<char>(n_sigs, 0));
  for (std::size_t s1 = 0; s1 < n_sigs; ++s1) {
    for (std::size_t s2 = 0; s2 < n_sigs; ++s2) {
      budget_checkpoint(budget);
      bool ok = signatures[s1].row.intersects(signatures[s2].col);  // empty middle
      for (std::size_t u = 0; u < n_elems && ok; ++u) {
        ok = reach[s1][u].intersects(signatures[s2].col);
      }
      compat[s1][s2] = ok ? 1 : 0;
    }
  }

  // Variables: orbits {e, rev(e)} (directed problems: orbits are
  // singletons in effect since sig_rev == sig). Each candidate contributes
  // the oriented signature set {sig, sig_rev}; a selection is feasible iff
  // the union of chosen oriented signatures is pairwise compatible
  // (ordered, including self-pairs).
  // Directed problems have no reversed placements: every element is its
  // own variable. Undirected problems choose per {e, rev(e)} orbit with
  // the reversed labeling tied to the forward one.
  std::vector<std::size_t> orbit_reps;
  for (std::size_t e = 0; e < n_elems; ++e) {
    if (directed || monoid.reversed_index(e) >= e) orbit_reps.push_back(e);
  }
  // Deduplicate orbits by their candidate signature-set profile.
  struct Profile {
    std::vector<std::pair<std::size_t, std::size_t>> options;  // (sig, sig_rev)
    std::vector<std::size_t> members;                          // orbit reps sharing it
    std::vector<PeriodicChoice> pairs;                         // parallel to options
  };
  std::vector<Profile> profiles;
  {
    std::unordered_map<std::size_t, std::vector<std::size_t>> by_hash;
    for (std::size_t rep : orbit_reps) {
      std::vector<std::pair<std::size_t, std::size_t>> options;
      std::vector<PeriodicChoice> pairs;
      for (const Candidate& c : candidates[rep]) {
        options.emplace_back(c.sig, c.sig_rev);
        pairs.push_back(c.pair);
      }
      std::size_t h = hash_mix(0x9A, options.size());
      for (auto& [a, b] : options) h = hash_mix(hash_mix(h, a), b);
      bool merged = false;
      for (std::size_t idx : by_hash[h]) {
        if (profiles[idx].options == options) {
          profiles[idx].members.push_back(rep);
          merged = true;
          break;
        }
      }
      if (!merged) {
        by_hash[h].push_back(profiles.size());
        profiles.push_back(Profile{std::move(options), {rep}, std::move(pairs)});
      }
    }
  }

  // Backtracking over profiles: maintain the set of chosen signature ids;
  // a new candidate is admissible if its oriented signatures are
  // compatible with themselves and with everything chosen.
  std::vector<int> profile_choice(profiles.size(), -1);
  std::vector<std::size_t> chosen_sigs;
  auto sig_fits = [&](std::size_t s) {
    if (!compat[s][s]) return false;
    for (std::size_t t : chosen_sigs) {
      if (!compat[s][t] || !compat[t][s]) return false;
    }
    return true;
  };
  const auto try_profiles = [&](auto&& self, std::size_t i) -> bool {
    if (i == profiles.size()) return true;
    for (std::size_t k = 0; k < profiles[i].options.size(); ++k) {
      budget_checkpoint(budget);
      const auto [sf, sr] = profiles[i].options[k];
      if (!sig_fits(sf)) continue;
      const std::size_t saved = chosen_sigs.size();
      chosen_sigs.push_back(sf);
      bool ok = sr == sf || (sig_fits(sr) && compat[sf][sr] && compat[sr][sf]);
      if (ok && sr != sf) chosen_sigs.push_back(sr);
      if (ok && self(self, i + 1)) {
        profile_choice[i] = static_cast<int>(k);
        return true;
      }
      chosen_sigs.resize(saved);
    }
    return false;
  };
  if (!try_profiles(try_profiles, 0)) return cert;

  // Materialize the per-element choices. Profile members share the chosen
  // *signature*, but each element realizes it with its own boundary pair.
  cert.feasible = true;
  cert.choice_per_element.assign(n_elems, PeriodicChoice{});
  std::vector<char> assigned(n_elems, 0);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto chosen_sig = profiles[i].options[static_cast<std::size_t>(profile_choice[i])];
    for (std::size_t rep : profiles[i].members) {
      PeriodicChoice pair{};
      bool found = false;
      for (const Candidate& c : candidates[rep]) {
        if (std::pair(c.sig, c.sig_rev) == chosen_sig) {
          pair = c.pair;
          found = true;
          break;
        }
      }
      if (!found) {
        throw std::logic_error("decide_const_gap: profile member lacks the chosen sig");
      }
      cert.choice_per_element[rep] = pair;
      assigned[rep] = 1;
      if (!directed) {
        const std::size_t rev = monoid.reversed_index(rep);
        if (!assigned[rev]) {
          cert.choice_per_element[rev] = PeriodicChoice{pair.last, pair.first};
          assigned[rev] = 1;
        }
      }
    }
  }
  return cert;
}

}  // namespace lclpath
