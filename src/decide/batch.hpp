// Batch classification: run the decision procedure (Theorems 8 + 9) over
// many pairwise problems at once on a thread pool.
//
// Each classify() call is independent — it builds its own transition
// system and monoid — so a catalog of problems parallelizes across
// problems with no shared state. classify_batch():
//
//   * preserves input order: result[i] always describes problems[i];
//   * captures per-problem failures (a monoid-budget overflow or any other
//     exception thrown while classifying one problem is recorded in that
//     entry; the rest of the batch is unaffected — note that an
//     *unsolvable* problem is a successful classification, kUnsolvable);
//   * deduplicates: semantically identical problems (same canonical_key
//     from lcl/serialize.hpp, which ignores cosmetic names) are classified
//     once and share one outcome;
//   * optionally memoizes across calls via a caller-owned BatchCache;
//   * optionally shares monoids across distinct problems with equal
//     transition-system skeletons via a caller-owned MonoidCache
//     (options.classify.monoid_cache): the cache is thread-safe and the
//     shared Monoid is immutable, so workers reuse it concurrently.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "decide/classifier.hpp"

namespace lclpath {

/// The outcome of classifying one problem: a ClassifiedProblem, or the
/// message of the exception classify() threw. Shared (immutable once
/// published) between duplicate batch entries and cache hits.
struct BatchOutcome {
  std::optional<ClassifiedProblem> classified;
  std::string error;

  bool ok() const { return classified.has_value(); }
};

/// One slot of a batch result, aligned with the input problem span.
struct BatchEntry {
  std::shared_ptr<const BatchOutcome> outcome;
  /// True when the outcome came from the caller's BatchCache.
  bool from_cache = false;
  /// True when this slot shares the outcome of an earlier identical
  /// problem in the same batch instead of having been classified itself.
  bool deduplicated = false;

  bool ok() const { return outcome != nullptr && outcome->ok(); }
  const std::string& error() const;
  /// Throws std::runtime_error carrying error() if the problem failed.
  const ClassifiedProblem& classified() const;
};

/// Thread-safe memo cache keyed by canonical_hash/canonical_key. Hash
/// collisions are resolved by comparing full keys, so a hit is always a
/// semantically identical problem. Only successful classifications are
/// stored (failures may depend on the per-call monoid budget). Caller-
/// owned so its lifetime (one CLI invocation, one server, ...) is an
/// explicit policy decision.
class BatchCache {
 public:
  std::shared_ptr<const BatchOutcome> find(std::uint64_t hash,
                                           const std::string& key) const;
  void insert(std::uint64_t hash, std::string key,
              std::shared_ptr<const BatchOutcome> outcome);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_multimap<std::uint64_t,
                          std::pair<std::string, std::shared_ptr<const BatchOutcome>>>
      entries_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  std::size_t num_threads = 0;
  /// Forwarded to every classify() call (monoid budget, linear-gap
  /// engine, certificate mode, and whatever the decision procedure grows
  /// next — one struct so batch callers can never drift out of sync with
  /// classify()). Note the certificate mode matters to batch memory: with
  /// the kAuto/kLazy backends a ClassifiedProblem of a huge feasible
  /// domain holds the class-level solution (MBs), not the materialized
  /// point tables (GBs), and its lazy value_at lookups are thread-safe —
  /// workers may share one cached outcome's certificate concurrently.
  ClassifyOptions classify;
  /// Optional cross-call memo cache (may be shared by concurrent batches).
  BatchCache* cache = nullptr;
  /// Classify identical problems once per batch. Disable to force every
  /// slot through classify() (useful for benchmarking).
  bool dedup = true;
};

/// Classifies every problem on a thread pool. result.size() ==
/// problems.size() and result[i] corresponds to problems[i] regardless of
/// completion order. Never throws on a per-problem failure.
std::vector<BatchEntry> classify_batch(std::span<const PairwiseProblem> problems,
                                       const BatchOptions& options = {});

/// Roll-up of one batch result: how many entries classified, failed (a
/// budget overflow is a *recorded* failure, the observable of Theorem 5's
/// PSPACE-hardness studies), were deduplicated in-batch or served from the
/// caller's cache, and the successful per-class census (indexed by
/// static_cast<std::size_t>(ComplexityClass)).
struct BatchSummary {
  std::size_t total = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t deduplicated = 0;
  std::size_t from_cache = 0;
  std::array<std::size_t, 4> by_class{};
};

BatchSummary summarize_batch(std::span<const BatchEntry> entries);

}  // namespace lclpath
