// Batch classification: run the decision procedure (Theorems 8 + 9) over
// many pairwise problems at once on a thread pool.
//
// Each classify() call is independent — it builds its own transition
// system and monoid — so a catalog of problems parallelizes across
// problems with no shared state. classify_batch():
//
//   * preserves input order: result[i] always describes problems[i];
//   * captures per-problem failures (a monoid-budget overflow or any other
//     exception thrown while classifying one problem is recorded in that
//     entry; the rest of the batch is unaffected — note that an
//     *unsolvable* problem is a successful classification, kUnsolvable);
//   * deduplicates: semantically identical problems (same canonical_key
//     from lcl/serialize.hpp, which ignores cosmetic names) are classified
//     once and share one outcome;
//   * optionally memoizes across calls via a caller-owned BatchCache;
//   * optionally shares monoids across distinct problems with equal
//     transition-system skeletons via a caller-owned MonoidCache
//     (options.classify.monoid_cache): the cache is thread-safe and the
//     shared Monoid is immutable, so workers reuse it concurrently.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "decide/classifier.hpp"

namespace lclpath {

/// How a per-problem classification failed. The taxonomy the catalog
/// service's persistent result store will serialize (see ROADMAP), so the
/// kinds are a stable contract, not incidental exception types:
///
///   kTimeout   — a deadline expired (per-problem or batch-level;
///                CancelledError{kDeadline});
///   kBudget    — a resource ceiling: monoid budget overflow
///                (MonoidBudgetError, the Theorem 5 observable), a memory
///                ceiling (CancelledError{kMemory}), or allocation failure;
///   kMalformed — the problem itself is invalid (std::invalid_argument,
///                e.g. an orientation-asymmetric undirected problem, or a
///                parse error routed through a batch);
///   kCancelled — an explicit ExecutionBudget::cancel()
///                (CancelledError{kCancelled});
///   kInternal  — anything else (a bug, not an input property).
enum class BatchErrorKind : std::uint8_t {
  kTimeout,
  kBudget,
  kMalformed,
  kCancelled,
  kInternal,
};
inline constexpr std::size_t kNumBatchErrorKinds = 5;

std::string to_string(BatchErrorKind kind);

/// A structured per-problem failure: the kind plus the human-readable
/// message of the underlying exception.
struct BatchError {
  BatchErrorKind kind = BatchErrorKind::kInternal;
  std::string message;
};

/// The configuration suffix appended to canonical_key() to form a cache
/// identity: every (engine, certificate mode) configuration agrees on the
/// complexity class, but a caller sharing one cache (or one persistent
/// store — src/store/ serializes exactly this identity) across
/// configurations must not be served the other engine's certificates.
/// classify_batch and the result store both build their keys through this
/// one function, so the two can never drift apart.
std::string cache_identity_suffix(LinearGapEngine engine, CertificateMode mode);

/// The outcome of classifying one problem: a ClassifiedProblem, or the
/// structured error classify() failed with. Shared (immutable once
/// published) between duplicate batch entries and cache hits.
struct BatchOutcome {
  std::optional<ClassifiedProblem> classified;
  std::optional<BatchError> error;

  bool ok() const { return classified.has_value(); }
};

/// One slot of a batch result, aligned with the input problem span.
struct BatchEntry {
  std::shared_ptr<const BatchOutcome> outcome;
  /// True when the outcome came from the caller's BatchCache.
  bool from_cache = false;
  /// True when this slot shares the outcome of an earlier identical
  /// problem in the same batch instead of having been classified itself.
  bool deduplicated = false;

  bool ok() const { return outcome != nullptr && outcome->ok(); }
  /// The failure message (empty for successful entries).
  const std::string& error() const;
  /// The failure kind; nullopt for successful entries.
  std::optional<BatchErrorKind> error_kind() const;
  /// Throws std::runtime_error carrying error() if the problem failed.
  const ClassifiedProblem& classified() const;
};

/// Thread-safe memo cache keyed by canonical_hash/canonical_key. Hash
/// collisions are resolved by comparing full keys, so a hit is always a
/// semantically identical problem. Only successful classifications are
/// stored (failures may depend on the per-call monoid budget, deadline, or
/// cancellation — a timed-out problem must not poison future lookups).
/// Caller-owned so its lifetime (one CLI invocation, one server, ...) is
/// an explicit policy decision.
///
/// A non-zero max_entries caps the cache: once full, each insert evicts
/// the oldest entry in insertion (FIFO) order. Outcomes are shared_ptrs,
/// so eviction never invalidates an outcome a batch already holds.
class BatchCache {
 public:
  /// max_entries == 0 means unbounded (the historical behavior).
  explicit BatchCache(std::size_t max_entries = 0);

  std::shared_ptr<const BatchOutcome> find(std::uint64_t hash,
                                           const std::string& key) const;
  void insert(std::uint64_t hash, std::string key,
              std::shared_ptr<const BatchOutcome> outcome);

  std::size_t size() const;
  std::size_t max_entries() const { return max_entries_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// Number of entries evicted to honor max_entries.
  std::uint64_t evictions() const;

 private:
  std::size_t max_entries_ = 0;
  mutable std::mutex mutex_;
  std::unordered_multimap<std::uint64_t,
                          std::pair<std::string, std::shared_ptr<const BatchOutcome>>>
      entries_;
  /// Insertion order of live entries (hash + key identifies the multimap
  /// slot to drop); front() is the eviction victim.
  std::deque<std::pair<std::uint64_t, std::string>> order_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  std::size_t num_threads = 0;
  /// Forwarded to every classify() call (monoid budget, linear-gap
  /// engine, certificate mode, and whatever the decision procedure grows
  /// next — one struct so batch callers can never drift out of sync with
  /// classify()). Note the certificate mode matters to batch memory: with
  /// the kAuto/kLazy backends a ClassifiedProblem of a huge feasible
  /// domain holds the class-level solution (MBs), not the materialized
  /// point tables (GBs), and its lazy value_at lookups are thread-safe —
  /// workers may share one cached outcome's certificate concurrently.
  ClassifyOptions classify;
  /// Optional cross-call memo cache (may be shared by concurrent batches).
  BatchCache* cache = nullptr;
  /// Classify identical problems once per batch. Disable to force every
  /// slot through classify() (useful for benchmarking).
  bool dedup = true;
  /// Per-problem deadline in milliseconds, measured from the moment the
  /// problem's worker task starts (not from batch submission, so queueing
  /// behind a full pool does not eat a problem's budget). 0 = none. A
  /// tripped deadline records a kTimeout error in that entry only; the
  /// rest of the batch is untouched and bit-identical to a deadline-free
  /// run.
  std::uint64_t problem_deadline_ms = 0;
  /// Batch-level deadline in milliseconds, measured from classify_batch()
  /// entry. 0 = none. Acts as a cooperative watchdog: when it expires,
  /// running workers trip at their next budget checkpoint and queued
  /// workers fail fast at their entry check, each recording kTimeout. The
  /// batch still returns deterministic partial results — every entry is
  /// either a completed classification or a structured error, never
  /// missing.
  std::uint64_t batch_deadline_ms = 0;
};

/// Classifies every problem on a thread pool. result.size() ==
/// problems.size() and result[i] corresponds to problems[i] regardless of
/// completion order. Never throws on a per-problem failure.
std::vector<BatchEntry> classify_batch(std::span<const PairwiseProblem> problems,
                                       const BatchOptions& options = {});

/// Roll-up of one batch result: how many entries classified, failed (a
/// budget overflow is a *recorded* failure, the observable of Theorem 5's
/// PSPACE-hardness studies), were deduplicated in-batch or served from the
/// caller's cache, the successful per-class census (indexed by
/// static_cast<std::size_t>(ComplexityClass)), and the failure census by
/// error kind (indexed by static_cast<std::size_t>(BatchErrorKind) —
/// timeouts are first-class observables, not anonymous failures).
struct BatchSummary {
  std::size_t total = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t deduplicated = 0;
  std::size_t from_cache = 0;
  std::array<std::size_t, 4> by_class{};
  std::array<std::size_t, kNumBatchErrorKinds> by_error{};
};

BatchSummary summarize_batch(std::span<const BatchEntry> entries);

}  // namespace lclpath
