#include "decide/batch.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <new>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

#include "automata/monoid.hpp"
#include "core/cancel.hpp"
#include "core/thread_pool.hpp"
#include "lcl/serialize.hpp"

namespace lclpath {

std::string to_string(BatchErrorKind kind) {
  switch (kind) {
    case BatchErrorKind::kTimeout: return "timeout";
    case BatchErrorKind::kBudget: return "budget";
    case BatchErrorKind::kMalformed: return "malformed";
    case BatchErrorKind::kCancelled: return "cancelled";
    case BatchErrorKind::kInternal: return "internal";
  }
  return "internal";
}

namespace {

BatchErrorKind kind_of(const CancelledError& e) {
  switch (e.reason()) {
    case CancelReason::kDeadline: return BatchErrorKind::kTimeout;
    case CancelReason::kCancelled: return BatchErrorKind::kCancelled;
    case CancelReason::kMemory: return BatchErrorKind::kBudget;
  }
  return BatchErrorKind::kInternal;
}

}  // namespace

std::string cache_identity_suffix(LinearGapEngine engine, CertificateMode mode) {
  std::string suffix = engine == LinearGapEngine::kPairwise
                           ? "\nlinear-engine pairwise"
                           : "\nlinear-engine factorized";
  switch (mode) {
    case CertificateMode::kAuto: suffix += "\ncertificate auto"; break;
    case CertificateMode::kDense: suffix += "\ncertificate dense"; break;
    case CertificateMode::kLazy: suffix += "\ncertificate lazy"; break;
  }
  return suffix;
}

const std::string& BatchEntry::error() const {
  static const std::string kEmpty;
  return outcome && outcome->error ? outcome->error->message : kEmpty;
}

std::optional<BatchErrorKind> BatchEntry::error_kind() const {
  if (ok()) return std::nullopt;
  // A failed entry with no recorded error (a null outcome) is a bug in the
  // batch pipeline itself, which is exactly what kInternal means.
  if (outcome == nullptr || !outcome->error) return BatchErrorKind::kInternal;
  return outcome->error->kind;
}

const ClassifiedProblem& BatchEntry::classified() const {
  if (!ok()) {
    throw std::runtime_error("BatchEntry: problem failed to classify: " + error());
  }
  return *outcome->classified;
}

BatchCache::BatchCache(std::size_t max_entries) : max_entries_(max_entries) {}

std::shared_ptr<const BatchOutcome> BatchCache::find(std::uint64_t hash,
                                                     const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [begin, end] = entries_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second.first == key) {
      ++hits_;
      return it->second.second;
    }
  }
  ++misses_;
  return nullptr;
}

void BatchCache::insert(std::uint64_t hash, std::string key,
                        std::shared_ptr<const BatchOutcome> outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [begin, end] = entries_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second.first == key) return;  // first writer wins
  }
  if (max_entries_ > 0 && entries_.size() >= max_entries_) {
    const auto& [old_hash, old_key] = order_.front();
    auto [ob, oe] = entries_.equal_range(old_hash);
    for (auto it = ob; it != oe; ++it) {
      if (it->second.first == old_key) {
        entries_.erase(it);
        break;
      }
    }
    order_.pop_front();
    ++evictions_;
  }
  if (max_entries_ > 0) order_.emplace_back(hash, key);
  entries_.emplace(hash, std::make_pair(std::move(key), std::move(outcome)));
}

std::size_t BatchCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t BatchCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t BatchCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t BatchCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::vector<BatchEntry> classify_batch(std::span<const PairwiseProblem> problems,
                                       const BatchOptions& options) {
  const std::size_t n = problems.size();
  std::vector<BatchEntry> results(n);
  if (n == 0) return results;

  // Identity pass: canonical keys are cheap (text serialization of small
  // constraint tables) next to classification, but both they and the
  // hashes are pure waste when nothing consumes them. Cache identities
  // additionally carry the linear-gap engine and the certificate mode:
  // every configuration agrees on the complexity class, but a caller
  // sharing one cache across configurations must not be served the other
  // engine's certificates — nor a dense GB-scale certificate when it
  // asked for the lazy backend (or vice versa).
  const bool need_keys = options.dedup || options.cache != nullptr;
  const std::string engine_tag = cache_identity_suffix(
      options.classify.linear_engine, options.classify.certificate_mode);
  std::vector<std::string> keys(need_keys ? n : 0);
  std::vector<std::uint64_t> hashes(options.cache != nullptr ? n : 0);
  for (std::size_t i = 0; i < n && need_keys; ++i) {
    keys[i] = canonical_key(problems[i]);
    if (options.cache != nullptr) {
      keys[i] += engine_tag;
      hashes[i] = canonical_hash(keys[i]);
    }
  }

  // rep_of[i]: index of the first batch slot with the same key as slot i.
  std::vector<std::size_t> rep_of(n);
  if (options.dedup) {
    std::unordered_map<std::string_view, std::size_t> first_seen;
    for (std::size_t i = 0; i < n; ++i) {
      auto [it, inserted] = first_seen.emplace(keys[i], i);
      rep_of[i] = it->second;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) rep_of[i] = i;
  }

  // Resolve representatives from the cache first, so the pool is sized to
  // the problems that actually need classifying.
  std::vector<std::size_t> to_run;
  to_run.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rep_of[i] != i) continue;
    if (options.cache != nullptr) {
      if (auto cached = options.cache->find(hashes[i], keys[i])) {
        results[i].outcome = std::move(cached);
        results[i].from_cache = true;
        continue;
      }
    }
    to_run.push_back(i);
  }

  // Classify the misses on the pool. Futures are collected per slot, so
  // input order is preserved no matter which worker finishes first.
  if (!to_run.empty()) {
    std::size_t pool_size = options.num_threads;
    if (pool_size == 0) {
      pool_size = std::thread::hardware_concurrency();
      if (pool_size == 0) pool_size = 1;
    }
    // Batch-level watchdog: a cooperative deadline chained above every
    // per-problem budget. There is no watchdog thread — once the deadline
    // passes, running workers trip at their next checkpoint and queued
    // workers fail fast at their entry check() below.
    std::optional<ExecutionBudget> batch_budget;
    if (options.batch_deadline_ms > 0) {
      batch_budget.emplace();
      batch_budget->set_timeout(std::chrono::milliseconds(options.batch_deadline_ms));
      if (options.classify.budget != nullptr) {
        batch_budget->set_parent(options.classify.budget);
      }
    }
    const ExecutionBudget* parent =
        batch_budget ? &*batch_budget : options.classify.budget;
    const std::uint64_t deadline_ms = options.problem_deadline_ms;
    ThreadPool pool(std::min(pool_size, to_run.size()));
    std::vector<std::pair<std::size_t, std::future<std::shared_ptr<const BatchOutcome>>>>
        pending;
    pending.reserve(to_run.size());
    for (const std::size_t i : to_run) {
      pending.emplace_back(i, pool.submit([&problems, &options, parent, deadline_ms,
                                           i]() {
        auto outcome = std::make_shared<BatchOutcome>();
        try {
          // The per-problem clock starts when the worker does, so queueing
          // behind a full pool never eats a problem's own budget — but the
          // batch deadline (the parent) is checked first, failing
          // post-expiry tasks before they burn a core.
          budget_check(parent);
          ExecutionBudget own;
          const ExecutionBudget* budget = parent;
          if (deadline_ms > 0) {
            own.set_timeout(std::chrono::milliseconds(deadline_ms));
            own.set_parent(parent);
            budget = &own;
          }
          ClassifyOptions classify_options = options.classify;
          classify_options.budget = budget;
          outcome->classified = classify(problems[i], classify_options);
        } catch (const CancelledError& e) {
          outcome->error = BatchError{kind_of(e), e.what()};
        } catch (const MonoidBudgetError& e) {
          outcome->error = BatchError{BatchErrorKind::kBudget, e.what()};
        } catch (const std::bad_alloc&) {
          outcome->error = BatchError{BatchErrorKind::kBudget, "allocation failure"};
        } catch (const std::invalid_argument& e) {
          outcome->error = BatchError{BatchErrorKind::kMalformed, e.what()};
        } catch (const std::exception& e) {
          outcome->error = BatchError{BatchErrorKind::kInternal, e.what()};
        } catch (...) {
          outcome->error = BatchError{BatchErrorKind::kInternal, "unknown exception"};
        }
        return std::shared_ptr<const BatchOutcome>(std::move(outcome));
      }));
    }
    for (auto& [i, future] : pending) {
      results[i].outcome = future.get();
      // Failures are not memoized: a monoid-budget overflow depends on the
      // per-call max_monoid, a timeout on the per-call deadline and the
      // machine's load, and a cancellation on the caller — a retry must
      // recompute, so no error kind is ever cached.
      if (options.cache != nullptr && results[i].outcome->ok()) {
        options.cache->insert(hashes[i], std::move(keys[i]), results[i].outcome);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (rep_of[i] == i) continue;
    const BatchEntry& rep = results[rep_of[i]];
    results[i].outcome = rep.outcome;
    results[i].from_cache = rep.from_cache;
    results[i].deduplicated = true;
  }
  return results;
}

BatchSummary summarize_batch(std::span<const BatchEntry> entries) {
  BatchSummary summary;
  summary.total = entries.size();
  for (const BatchEntry& entry : entries) {
    if (entry.deduplicated) ++summary.deduplicated;
    if (entry.from_cache) ++summary.from_cache;
    if (entry.ok()) {
      ++summary.ok;
      ++summary.by_class[static_cast<std::size_t>(entry.classified().complexity())];
    } else {
      ++summary.failed;
      ++summary.by_error[static_cast<std::size_t>(
          entry.error_kind().value_or(BatchErrorKind::kInternal))];
    }
  }
  return summary;
}

}  // namespace lclpath
