#include "decide/batch.hpp"

#include <algorithm>
#include <future>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

#include "core/thread_pool.hpp"
#include "lcl/serialize.hpp"

namespace lclpath {

const std::string& BatchEntry::error() const {
  static const std::string kEmpty;
  return outcome ? outcome->error : kEmpty;
}

const ClassifiedProblem& BatchEntry::classified() const {
  if (!ok()) {
    throw std::runtime_error("BatchEntry: problem failed to classify: " + error());
  }
  return *outcome->classified;
}

std::shared_ptr<const BatchOutcome> BatchCache::find(std::uint64_t hash,
                                                     const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [begin, end] = entries_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second.first == key) {
      ++hits_;
      return it->second.second;
    }
  }
  ++misses_;
  return nullptr;
}

void BatchCache::insert(std::uint64_t hash, std::string key,
                        std::shared_ptr<const BatchOutcome> outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [begin, end] = entries_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second.first == key) return;  // first writer wins
  }
  entries_.emplace(hash, std::make_pair(std::move(key), std::move(outcome)));
}

std::size_t BatchCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t BatchCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t BatchCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::vector<BatchEntry> classify_batch(std::span<const PairwiseProblem> problems,
                                       const BatchOptions& options) {
  const std::size_t n = problems.size();
  std::vector<BatchEntry> results(n);
  if (n == 0) return results;

  // Identity pass: canonical keys are cheap (text serialization of small
  // constraint tables) next to classification, but both they and the
  // hashes are pure waste when nothing consumes them. Cache identities
  // additionally carry the linear-gap engine and the certificate mode:
  // every configuration agrees on the complexity class, but a caller
  // sharing one cache across configurations must not be served the other
  // engine's certificates — nor a dense GB-scale certificate when it
  // asked for the lazy backend (or vice versa).
  const bool need_keys = options.dedup || options.cache != nullptr;
  std::string engine_tag =
      options.classify.linear_engine == LinearGapEngine::kPairwise
          ? "\nlinear-engine pairwise"
          : "\nlinear-engine factorized";
  switch (options.classify.certificate_mode) {
    case CertificateMode::kAuto: engine_tag += "\ncertificate auto"; break;
    case CertificateMode::kDense: engine_tag += "\ncertificate dense"; break;
    case CertificateMode::kLazy: engine_tag += "\ncertificate lazy"; break;
  }
  std::vector<std::string> keys(need_keys ? n : 0);
  std::vector<std::uint64_t> hashes(options.cache != nullptr ? n : 0);
  for (std::size_t i = 0; i < n && need_keys; ++i) {
    keys[i] = canonical_key(problems[i]);
    if (options.cache != nullptr) {
      keys[i] += engine_tag;
      hashes[i] = canonical_hash(keys[i]);
    }
  }

  // rep_of[i]: index of the first batch slot with the same key as slot i.
  std::vector<std::size_t> rep_of(n);
  if (options.dedup) {
    std::unordered_map<std::string_view, std::size_t> first_seen;
    for (std::size_t i = 0; i < n; ++i) {
      auto [it, inserted] = first_seen.emplace(keys[i], i);
      rep_of[i] = it->second;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) rep_of[i] = i;
  }

  // Resolve representatives from the cache first, so the pool is sized to
  // the problems that actually need classifying.
  std::vector<std::size_t> to_run;
  to_run.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rep_of[i] != i) continue;
    if (options.cache != nullptr) {
      if (auto cached = options.cache->find(hashes[i], keys[i])) {
        results[i].outcome = std::move(cached);
        results[i].from_cache = true;
        continue;
      }
    }
    to_run.push_back(i);
  }

  // Classify the misses on the pool. Futures are collected per slot, so
  // input order is preserved no matter which worker finishes first.
  if (!to_run.empty()) {
    std::size_t pool_size = options.num_threads;
    if (pool_size == 0) {
      pool_size = std::thread::hardware_concurrency();
      if (pool_size == 0) pool_size = 1;
    }
    ThreadPool pool(std::min(pool_size, to_run.size()));
    std::vector<std::pair<std::size_t, std::future<std::shared_ptr<const BatchOutcome>>>>
        pending;
    pending.reserve(to_run.size());
    for (const std::size_t i : to_run) {
      pending.emplace_back(i, pool.submit([&problems, &options, i]() {
        auto outcome = std::make_shared<BatchOutcome>();
        try {
          outcome->classified = classify(problems[i], options.classify);
        } catch (const std::exception& e) {
          outcome->error = e.what();
        } catch (...) {
          outcome->error = "unknown exception";
        }
        return std::shared_ptr<const BatchOutcome>(std::move(outcome));
      }));
    }
    for (auto& [i, future] : pending) {
      results[i].outcome = future.get();
      // Failures are not memoized: a monoid-budget overflow depends on the
      // per-call max_monoid, so a retry with a bigger budget must recompute.
      if (options.cache != nullptr && results[i].outcome->ok()) {
        options.cache->insert(hashes[i], std::move(keys[i]), results[i].outcome);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (rep_of[i] == i) continue;
    const BatchEntry& rep = results[rep_of[i]];
    results[i].outcome = rep.outcome;
    results[i].from_cache = rep.from_cache;
    results[i].deduplicated = true;
  }
  return results;
}

BatchSummary summarize_batch(std::span<const BatchEntry> entries) {
  BatchSummary summary;
  summary.total = entries.size();
  for (const BatchEntry& entry : entries) {
    if (entry.deduplicated) ++summary.deduplicated;
    if (entry.from_cache) ++summary.from_cache;
    if (entry.ok()) {
      ++summary.ok;
      ++summary.by_class[static_cast<std::size_t>(entry.classified().complexity())];
    } else {
      ++summary.failed;
    }
  }
  return summary;
}

}  // namespace lclpath
