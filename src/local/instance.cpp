#include "local/instance.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <stdexcept>

namespace lclpath {

namespace {

/// Bitmap scratch for validate()'s compact-ID fast path, reused across
/// calls so repeated engine runs do not reallocate.
thread_local std::vector<std::uint64_t> validate_scratch;

[[noreturn]] void throw_duplicate(NodeId id) {
  throw std::invalid_argument("Instance: duplicate node ID " + std::to_string(id));
}

std::uint64_t bit_reverse64(std::uint64_t x) {
  x = ((x & 0x5555555555555555ull) << 1) | ((x >> 1) & 0x5555555555555555ull);
  x = ((x & 0x3333333333333333ull) << 2) | ((x >> 2) & 0x3333333333333333ull);
  x = ((x & 0x0f0f0f0f0f0f0f0full) << 4) | ((x >> 4) & 0x0f0f0f0f0f0f0f0full);
  x = ((x & 0x00ff00ff00ff00ffull) << 8) | ((x >> 8) & 0x00ff00ff00ff00ffull);
  x = ((x & 0x0000ffff0000ffffull) << 16) | ((x >> 16) & 0x0000ffff0000ffffull);
  return (x << 32) | (x >> 32);
}

}  // namespace

std::size_t Instance::succ(std::size_t v) const {
  assert(v < size());
  if (v + 1 < size()) return v + 1;
  assert(cycle());
  return 0;
}

std::size_t Instance::pred(std::size_t v) const {
  assert(v < size());
  if (v > 0) return v - 1;
  assert(cycle());
  return size() - 1;
}

void Instance::validate() const {
  if (inputs.empty()) throw std::invalid_argument("Instance: empty");
  if (inputs.size() != ids.size()) {
    throw std::invalid_argument("Instance: inputs/ids size mismatch");
  }
  const std::size_t n = ids.size();
  // Compact-ID fast path: one pass marking a bitmap. Sequential and
  // permutation IDs (every generator except the adversarial one) land
  // here; the 4n bound keeps the scratch proportional to the instance.
  const NodeId bound = static_cast<NodeId>(4) * static_cast<NodeId>(n);
  validate_scratch.assign((static_cast<std::size_t>(bound) + 63) / 64, 0);
  bool sparse = false;
  for (NodeId id : ids) {
    if (id >= bound) {
      sparse = true;
      break;
    }
    std::uint64_t& word = validate_scratch[static_cast<std::size_t>(id >> 6)];
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    if (word & bit) throw_duplicate(id);
    word |= bit;
  }
  if (!sparse) return;
  // Sparse IDs (adversarial bit-reversed assignments): sort a copy and
  // look for an adjacent repeat.
  std::vector<NodeId> sorted(ids);
  std::sort(sorted.begin(), sorted.end());
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  if (dup != sorted.end()) throw_duplicate(*dup);
}

Instance make_instance(Topology topology, Word inputs) {
  Instance instance;
  instance.topology = topology;
  instance.inputs = std::move(inputs);
  instance.ids.resize(instance.inputs.size());
  for (std::size_t v = 0; v < instance.ids.size(); ++v) instance.ids[v] = v;
  return instance;
}

Instance random_instance(Topology topology, std::size_t n, std::size_t num_inputs,
                         Rng& rng) {
  Instance instance;
  instance.topology = topology;
  instance.inputs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    instance.inputs.push_back(static_cast<Label>(rng.next_below(num_inputs)));
  }
  for (std::size_t id : rng.permutation(n)) instance.ids.push_back(id);
  return instance;
}

std::vector<NodeId> adversarial_ids(std::size_t n, NodeId salt) {
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    ids.push_back(bit_reverse64(static_cast<std::uint64_t>(v)) ^ salt);
  }
  return ids;
}

Instance adversarial_instance(Topology topology, std::size_t n, std::size_t num_inputs,
                              Rng& rng) {
  Instance instance;
  instance.topology = topology;
  instance.inputs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    instance.inputs.push_back(static_cast<Label>(rng.next_below(num_inputs)));
  }
  instance.ids = adversarial_ids(n, static_cast<NodeId>(rng.next_u64()));
  return instance;
}

Instance periodic_instance(Topology topology, std::size_t n, const Word& pattern, Rng& rng) {
  if (pattern.empty()) throw std::invalid_argument("periodic_instance: empty pattern");
  Instance instance;
  instance.topology = topology;
  instance.inputs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) instance.inputs.push_back(pattern[v % pattern.size()]);
  for (std::size_t id : rng.permutation(n)) instance.ids.push_back(id);
  return instance;
}

}  // namespace lclpath
