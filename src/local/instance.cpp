#include "local/instance.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_set>

namespace lclpath {

std::size_t Instance::succ(std::size_t v) const {
  assert(v < size());
  if (v + 1 < size()) return v + 1;
  assert(cycle());
  return 0;
}

std::size_t Instance::pred(std::size_t v) const {
  assert(v < size());
  if (v > 0) return v - 1;
  assert(cycle());
  return size() - 1;
}

void Instance::validate() const {
  if (inputs.empty()) throw std::invalid_argument("Instance: empty");
  if (inputs.size() != ids.size()) {
    throw std::invalid_argument("Instance: inputs/ids size mismatch");
  }
  std::unordered_set<NodeId> seen;
  for (NodeId id : ids) {
    if (!seen.insert(id).second) {
      throw std::invalid_argument("Instance: duplicate node ID " + std::to_string(id));
    }
  }
}

Instance make_instance(Topology topology, Word inputs) {
  Instance instance;
  instance.topology = topology;
  instance.inputs = std::move(inputs);
  instance.ids.resize(instance.inputs.size());
  for (std::size_t v = 0; v < instance.ids.size(); ++v) instance.ids[v] = v;
  return instance;
}

Instance random_instance(Topology topology, std::size_t n, std::size_t num_inputs,
                         Rng& rng) {
  Instance instance;
  instance.topology = topology;
  instance.inputs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    instance.inputs.push_back(static_cast<Label>(rng.next_below(num_inputs)));
  }
  for (std::size_t id : rng.permutation(n)) instance.ids.push_back(id);
  return instance;
}

Instance periodic_instance(Topology topology, std::size_t n, const Word& pattern, Rng& rng) {
  if (pattern.empty()) throw std::invalid_argument("periodic_instance: empty pattern");
  Instance instance;
  instance.topology = topology;
  instance.inputs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) instance.inputs.push_back(pattern[v % pattern.size()]);
  for (std::size_t id : rng.permutation(n)) instance.ids.push_back(id);
  return instance;
}

}  // namespace lclpath
