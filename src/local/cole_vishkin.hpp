// Cole-Vishkin color reduction and derived symmetry breaking
// on directed cycles and paths [8, 16, 20 in the paper's references].
//
// These are the O(log* n) building blocks behind Lemma 16 (the
// decomposition used by the synthesized Theta(log* n) algorithm) and the
// lower-bound benchmarks. Everything is phrased in view form: the
// functions compute, from a node's radius-T window, exactly what the
// message-passing algorithm would know after T rounds.
#pragma once

#include <cstddef>
#include <vector>

#include "local/simulator.hpp"

namespace lclpath {

/// Number of Cole-Vishkin halving steps needed to bring 64-bit IDs down to
/// the 6-color fixed point.
std::size_t cv_steps_for_ids();

/// View radius required by three_coloring (CV steps + 3 shrink rounds).
std::size_t cv_radius();

/// One Cole-Vishkin step: the new color of a node with color `mine` whose
/// successor has color `next` (colors must differ).
std::uint64_t cv_step(std::uint64_t mine, std::uint64_t next);

/// The full Cole-Vishkin pipeline (halvings + three shrink rounds) over a
/// window of IDs, returning colors in {0, 1, 2}. Colors are trusted within
/// cv_radius() of each window edge — except at a *real* boundary
/// (`left_end` / `right_end`: a path end, or an orientation flip treated
/// as one by the undirected synthesis strategies), where the recursion
/// anchors and colors are trusted all the way to that side.
std::vector<std::uint64_t> cv_colors_window(const std::vector<NodeId>& ids,
                                            bool left_end, bool right_end);

/// Computes the 3-coloring color of the view's center node on a directed
/// cycle or path. Total radius used: cv_radius(). On paths the last node
/// (no successor) anchors the recursion with color 0 or 1.
/// The result is in {0, 1, 2} and adjacent nodes get distinct colors.
std::size_t cv_three_color(const View& view);

/// Distance-k independent-set flag for the center node, derived from the
/// 3-coloring: greedy by color class, a node joins if no already-joined
/// node lies within distance k. Maximality: every node has a joined node
/// within distance k. Radius: cv_radius() + 3k.
bool cv_spaced_mis(const View& view, std::size_t k);

/// Radius needed by cv_spaced_mis.
std::size_t cv_spaced_mis_radius(std::size_t k);

}  // namespace lclpath
