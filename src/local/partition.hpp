// The (l_width, l_count, l_pattern)-partition machinery of Section 4.3
// (Lemmas 20, 21, 22).
//
// partition() decomposes a labeled cycle (or path) into
//   * long components: maximal stretches whose inputs repeat a primitive
//     pattern w with |w| <= l_pattern at least l_count times (after
//     trimming l_width * |w| - 1 nodes from open ends), every member
//     knowing w and its phase; and
//   * short components: the remaining "irregular" stretches, chopped into
//     pieces of bounded size using the Lemma 20 independent set, every
//     member knowing its rank within its piece.
//
// Lemma 20's O(1)-round independent set exploits input irregularity: in a
// region with no period-<= gamma run of length >= l, length-l input
// windows are distinct within distance gamma, so window-lexicographic
// local maxima break symmetry without IDs.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "local/instance.hpp"

namespace lclpath {

struct PartitionParams {
  std::size_t l_width = 4;
  std::size_t l_count = 4;
  std::size_t l_pattern = 4;  ///< must be >= l_width
};

struct PartitionComponent {
  bool long_component = false;
  std::size_t begin = 0;  ///< first node (cycle positions mod n)
  std::size_t size = 0;
  /// Long components: the primitive pattern and each node's phase offset
  /// (node begin+i has phase (phase0 + i) mod |pattern|).
  Word pattern;
  std::size_t phase0 = 0;
};

struct Partition {
  std::vector<PartitionComponent> components;
  /// component index per node.
  std::vector<std::size_t> component_of;
  /// True when the entire cycle is a single periodic long component.
  bool whole_cycle_periodic = false;
};

/// Lemma 20: a (gamma, 2gamma(+slack))-independent set of a directed path
/// segment with no period-<=gamma run of length >= l. Returns member
/// flags. Deterministic, O(1)-round local (window-lexicographic maxima).
std::vector<char> irregular_independent_set(const Word& inputs, std::size_t gamma,
                                            std::size_t l);

/// Lemmas 21-22: computes the partition of an instance. Works on directed
/// cycles/paths; undirected inputs are first ordered by the instance's
/// global order (Lemma 19's l-orientation is exercised separately in
/// local/orientation.hpp and its tests).
Partition partition(const Instance& instance, const PartitionParams& params);

/// Validates the partition invariants (component sizes, pattern
/// periodicity, coverage); returns an explanation on failure.
std::optional<std::string> check_partition(const Instance& instance,
                                           const PartitionParams& params,
                                           const Partition& partition);

}  // namespace lclpath
