#include "local/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace lclpath {

std::vector<char> irregular_independent_set(const Word& inputs, std::size_t gamma,
                                            std::size_t l) {
  const std::size_t n = inputs.size();
  std::vector<char> member(n, 0);
  if (n < l) return member;
  // Window-lexicographic local maxima among positions with a full window.
  auto compare = [&](std::size_t a, std::size_t b) {
    for (std::size_t k = 0; k < l; ++k) {
      if (inputs[a + k] != inputs[b + k]) return inputs[a + k] < inputs[b + k] ? -1 : 1;
    }
    return 0;
  };
  const std::size_t last = n - l;  // last valid window start
  for (std::size_t i = 0; i <= last; ++i) {
    bool best = true;
    const std::size_t lo = i >= gamma ? i - gamma : 0;
    const std::size_t hi = std::min(last, i + gamma);
    for (std::size_t j = lo; j <= hi && best; ++j) {
      if (j != i && compare(j, i) > 0) best = false;
    }
    member[i] = best ? 1 : 0;
  }
  return member;
}

namespace {

struct Claim {
  std::size_t period = 0;
  std::size_t begin = 0, end = 0;
};

/// Finds maximal periodic runs (smallest period first) along a linear
/// index space; `wrap` adds cyclic comparisons.
std::vector<Claim> claim_runs(const Word& in, bool wrap, const PartitionParams& p) {
  const std::size_t n = in.size();
  std::vector<Claim> claim(n);
  auto at = [&](std::size_t i) { return in[i % n]; };
  for (std::size_t q = 1; q <= p.l_pattern; ++q) {
    const std::size_t threshold = (p.l_count + 2 * p.l_width) * q;
    const std::size_t limit = wrap ? 2 * n : n;  // scan doubled for wraps
    std::size_t i = 0;
    while (i + q < limit) {
      if (at(i) != at(i + q)) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j + q < limit && at(j) == at(j + q)) ++j;
      const std::size_t begin = i;
      const std::size_t end = std::min(j + q, limit);  // exclusive
      if (end - begin >= threshold) {
        for (std::size_t k = begin; k < end && k < begin + n; ++k) {
          Claim& c = claim[k % n];
          if (c.period == 0) c = Claim{q, begin, end};
        }
      }
      i = j + 1;
      if (begin == 0 && end == limit && wrap) break;  // fully periodic cycle
    }
  }
  return claim;
}

Word canonical_rotation(const Word& w, std::size_t* phase0) {
  Word canon = w;
  std::size_t best_shift = 0;
  const std::size_t q = w.size();
  for (std::size_t s = 1; s < q; ++s) {
    Word candidate;
    candidate.reserve(q);
    for (std::size_t k = 0; k < q; ++k) candidate.push_back(w[(s + k) % q]);
    if (candidate < canon) {
      canon = candidate;
      best_shift = s;
    }
  }
  // w[0] = canon[(q - best_shift) % q].
  *phase0 = (q - best_shift) % q;
  return canon;
}

}  // namespace

Partition partition(const Instance& instance, const PartitionParams& params) {
  if (params.l_pattern < params.l_width) {
    throw std::invalid_argument("partition: l_pattern must be >= l_width");
  }
  const std::size_t n = instance.size();
  const bool wrap = instance.cycle();
  Partition out;
  out.component_of.assign(n, 0);

  const std::vector<Claim> claim = claim_runs(instance.inputs, wrap, params);

  // Whole-cycle periodic special case.
  if (wrap) {
    bool all = true;
    for (std::size_t v = 0; v < n && all; ++v) all = claim[v].period != 0;
    if (all) {
      // One long component spanning the cycle if a single run covers it.
      const Claim& c0 = claim[0];
      if (c0.end - c0.begin >= n) {
        PartitionComponent comp;
        comp.long_component = true;
        comp.begin = 0;
        comp.size = n;
        Word w(instance.inputs.begin(),
               instance.inputs.begin() + static_cast<std::ptrdiff_t>(c0.period));
        comp.pattern = canonical_rotation(w, &comp.phase0);
        out.components.push_back(comp);
        out.whole_cycle_periodic = true;
        return out;
      }
    }
  }

  // Long components: contiguous nodes sharing a claim run, trimmed by
  // l_width * period - 1 at each open end.
  std::vector<long> long_of(n, -1);
  std::vector<PartitionComponent> longs;
  for (std::size_t v = 0; v < n; ++v) {
    if (claim[v].period == 0 || long_of[v] >= 0) continue;
    const Claim& c = claim[v];
    const std::size_t trim = params.l_width * c.period - 1;
    const std::size_t begin = c.begin + trim;
    const std::size_t end = c.end > trim ? c.end - trim : 0;
    if (end <= begin) continue;
    PartitionComponent comp;
    comp.long_component = true;
    comp.begin = begin % n;
    comp.size = end - begin;
    Word w;
    for (std::size_t k = 0; k < c.period; ++k) w.push_back(instance.inputs[(begin + k) % n]);
    comp.pattern = canonical_rotation(w, &comp.phase0);
    const std::size_t index = longs.size();
    longs.push_back(comp);
    for (std::size_t k = begin; k < end; ++k) {
      if (long_of[k % n] < 0) long_of[k % n] = static_cast<long>(index);
    }
  }

  // Short stretches: chop with the irregularity-based independent set.
  const std::size_t gamma = params.l_pattern;
  const std::size_t l = (params.l_count + 2 * params.l_width) * params.l_pattern;
  std::vector<long> comp_of(n, -1);
  for (std::size_t i = 0; i < longs.size(); ++i) {
    const PartitionComponent& c = longs[i];
    out.components.push_back(c);
    for (std::size_t k = 0; k < c.size; ++k) {
      comp_of[(c.begin + k) % n] = static_cast<long>(out.components.size() - 1);
    }
  }
  std::size_t v0 = 0;
  if (wrap) {
    while (v0 < n && comp_of[v0] < 0) ++v0;
    if (v0 == n) v0 = 0;  // fully short cycle: start anywhere (position 0)
  }
  std::size_t scanned = 0;
  std::size_t v = v0;
  while (scanned < n) {
    if (comp_of[v] >= 0) {
      v = (v + 1) % n;
      ++scanned;
      continue;
    }
    // Maximal short stretch starting at v.
    std::size_t length = 0;
    while (length < n && comp_of[(v + length) % n] < 0) ++length;
    Word stretch;
    stretch.reserve(length);
    for (std::size_t k = 0; k < length; ++k) stretch.push_back(instance.inputs[(v + k) % n]);
    // Chop at independent-set members (plus a fallback grid when the
    // stretch is regular enough that no member exists — bounded anyway).
    std::vector<char> cut = irregular_independent_set(stretch, gamma, l);
    std::vector<std::size_t> cuts;
    for (std::size_t k = 0; k < length; ++k) {
      if (cut[k]) cuts.push_back(k);
    }
    std::vector<std::pair<std::size_t, std::size_t>> pieces;  // (offset, size)
    std::size_t start = 0;
    for (std::size_t cpos : cuts) {
      if (cpos > start) pieces.emplace_back(start, cpos - start);
      start = cpos;
    }
    pieces.emplace_back(start, length - start);
    for (auto [offset, size] : pieces) {
      PartitionComponent comp;
      comp.long_component = false;
      comp.begin = (v + offset) % n;
      comp.size = size;
      out.components.push_back(comp);
      for (std::size_t k = 0; k < size; ++k) {
        comp_of[(v + offset + k) % n] = static_cast<long>(out.components.size() - 1);
      }
    }
    v = (v + length) % n;
    scanned += length;
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.component_of[i] = static_cast<std::size_t>(comp_of[i]);
  }
  return out;
}

std::optional<std::string> check_partition(const Instance& instance,
                                           const PartitionParams& params,
                                           const Partition& partition) {
  const std::size_t n = instance.size();
  if (partition.component_of.size() != n && !partition.whole_cycle_periodic) {
    return "component_of size mismatch";
  }
  std::vector<char> covered(n, 0);
  for (const PartitionComponent& c : partition.components) {
    if (c.size == 0) return "empty component";
    for (std::size_t k = 0; k < c.size; ++k) {
      std::size_t v = (c.begin + k) % n;
      if (covered[v]) return "node " + std::to_string(v) + " covered twice";
      covered[v] = 1;
    }
    if (c.long_component) {
      if (c.pattern.empty() || c.pattern.size() > params.l_pattern) {
        return "long component pattern size out of range";
      }
      if (!is_primitive(c.pattern)) return "long component pattern not primitive";
      if (c.size < params.l_count * c.pattern.size()) {
        return "long component too short: " + std::to_string(c.size);
      }
      for (std::size_t k = 0; k < c.size; ++k) {
        const Label expect = c.pattern[(c.phase0 + k) % c.pattern.size()];
        if (instance.inputs[(c.begin + k) % n] != expect) {
          return "long component input does not match pattern at offset " +
                 std::to_string(k);
        }
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!covered[v]) return "node " + std::to_string(v) + " uncovered";
  }
  return std::nullopt;
}

}  // namespace lclpath
