// ell-orientation of a cycle in O(ell) rounds (Lemma 19, cited by the
// paper from [6] = Chang & Pettie 2017).
//
// Construction (ours; the paper does not spell one out). With the
// internal scale L = 2*ell + 2:
//   * a node is a *peak* if its ID is the maximum in its radius-L ball;
//   * a node within distance L of a peak orients toward its nearest peak
//     (equidistant ties toward the larger peak ID); peaks orient toward
//     their larger neighbor (pure convergence points);
//   * other nodes orient toward the maximum-ID node of their radius-L ball.
//
// Invariant (argued in orientation.cpp, property-tested on adversarial
// monotone/zigzag/random ID patterns): every maximal uniformly-oriented
// run has at least ell nodes — peak watersheds sit >= (L+1)/2 > ell from
// both peaks, and ball-max divergences force >= L dominated, uniformly
// oriented nodes on each side. If the whole cycle is visible, a canonical
// global orientation is chosen instead.
#pragma once

#include <cstddef>
#include <vector>

#include "local/simulator.hpp"

namespace lclpath {

enum class Direction : std::uint8_t { kForward, kBackward };

/// Window radius used by orient().
std::size_t orientation_radius(std::size_t ell);

/// Direction of the view's center node for an ell-orientation.
/// kForward = toward the successor in the global path order.
Direction orient(const View& view, std::size_t ell);

/// Convenience: orientation of every node of an instance (via views).
std::vector<Direction> orient_all(const Instance& instance, std::size_t ell);

/// Window margin consumed by orientation_directions_window: directions at
/// positions within this margin of a non-real window edge are not
/// meaningful.
std::size_t orientation_window_margin(std::size_t ell);

/// Per-position directions over a whole window of IDs, computed with the
/// same peak / nearest-peak / ball-max rule as orient() but in O(len)
/// total via sliding-window maxima (orient() costs O(ell^2) per call —
/// prohibitive when the synthesized undirected algorithms need every
/// position of a large window). Directions are relative to the window's
/// presentation order and the rule is equivariant under reversing it, so
/// two observers with opposite presentations of the same cycle segment
/// derive the same physical orientation. Balls are truncated at the
/// array edges; that is exact where the edge is a real path end (there
/// simply are no nodes beyond it) and it is why directions within
/// orientation_window_margin() of a mere window edge are untrusted.
std::vector<Direction> orientation_directions_window(const std::vector<NodeId>& ids,
                                                     std::size_t ell);

}  // namespace lclpath
