#include "local/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace lclpath {

namespace {

/// Lexicographic comparison of the reversed ID sequence against the
/// forward one. IDs are distinct, so the comparison never ties for
/// windows of length >= 2.
bool reversed_ids_smaller(const std::vector<NodeId>& ids) {
  const std::size_t len = ids.size();
  for (std::size_t k = 0; k < len; ++k) {
    const NodeId fwd = ids[k];
    const NodeId rev = ids[len - 1 - k];
    if (fwd != rev) return rev < fwd;
  }
  return false;
}

}  // namespace

View extract_view(const Instance& instance, std::size_t v, std::size_t radius) {
  const std::size_t n = instance.size();
  const bool undirected = !is_directed(instance.topology);
  View view;
  view.n = n;
  view.topology = instance.topology;
  if (instance.cycle()) {
    if (2 * radius + 1 >= n) {
      // The node sees the entire cycle; present it as the rotation
      // starting at v (center 0). The algorithm can tell because
      // size() == n. On undirected cycles the storage direction must not
      // leak: present the rotation in whichever direction reads the
      // lexicographically smaller ID sequence.
      std::ptrdiff_t step = 1;
      if (undirected && n >= 2) {
        for (std::size_t k = 1; k < n; ++k) {
          const NodeId fwd = instance.ids[(v + k) % n];
          const NodeId bwd = instance.ids[(v + n - k) % n];
          if (fwd != bwd) {
            step = bwd < fwd ? -1 : 1;
            break;
          }
        }
      }
      view.center = 0;
      view.inputs.reserve(n);
      view.ids.reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t idx = step > 0 ? (v + k) % n : (v + n - k) % n;
        view.inputs.push_back(instance.inputs[idx]);
        view.ids.push_back(instance.ids[idx]);
      }
      return view;
    }
    view.center = radius;
    view.inputs.reserve(2 * radius + 1);
    view.ids.reserve(2 * radius + 1);
    for (std::size_t k = 0; k < 2 * radius + 1; ++k) {
      const std::size_t idx = (v + n + k - radius) % n;
      view.inputs.push_back(instance.inputs[idx]);
      view.ids.push_back(instance.ids[idx]);
    }
    // Undirected canonicalization: the window is symmetric around the
    // center, so reversing it is the other legal presentation; pick the
    // one whose ID sequence is lexicographically smaller. This erases the
    // storage orientation from what the algorithm can observe (locality /
    // orientation-independence by construction).
    if (undirected && reversed_ids_smaller(view.ids)) {
      std::reverse(view.inputs.begin(), view.inputs.end());
      std::reverse(view.ids.begin(), view.ids.end());
    }
    return view;
  }
  const std::size_t lo = v >= radius ? v - radius : 0;
  const std::size_t hi = std::min(n - 1, v + radius);
  view.center = v - lo;
  view.sees_left_end = v <= radius;
  view.sees_right_end = v + radius >= n - 1;
  for (std::size_t idx = lo; idx <= hi; ++idx) {
    view.inputs.push_back(instance.inputs[idx]);
    view.ids.push_back(instance.ids[idx]);
  }
  // Undirected paths: a window that sees an end is oriented by it (the
  // two physical ends are distinguishable — the first/last constraints
  // are anchored there — so end identity is content, not leaked storage
  // order). End-free middle windows are canonicalized like cycle windows.
  if (undirected && !view.sees_left_end && !view.sees_right_end &&
      reversed_ids_smaller(view.ids)) {
    std::reverse(view.inputs.begin(), view.inputs.end());
    std::reverse(view.ids.begin(), view.ids.end());
    view.center = view.size() - 1 - view.center;
  }
  return view;
}

SimulationResult simulate(const LocalAlgorithm& algorithm, const PairwiseProblem& problem,
                          const Instance& instance) {
  instance.validate();
  SimulationResult result;
  const std::size_t n = instance.size();
  result.radius = algorithm.radius(n);
  result.outputs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    const View view = extract_view(instance, v, result.radius);
    result.outputs.push_back(algorithm.run(view));
  }
  result.verdict = verify_pairwise(problem, instance.inputs, result.outputs);
  return result;
}

Label solve_full_view(const PairwiseProblem& problem, const View& view) {
  if (is_cycle(view.topology)) {
    if (view.size() != view.n) {
      throw std::logic_error("solve_full_view: radius did not cover the whole cycle");
    }
    // All nodes must agree on one labeling although each sees a different
    // rotation (and, undirected, a possibly reversed one): canonicalize by
    // rotating so the minimum ID comes first, and on undirected cycles
    // additionally read in the direction whose next ID after the anchor is
    // smaller. Both rules are content-determined, so every node solves the
    // same word.
    const std::size_t n = view.n;
    const std::size_t anchor = static_cast<std::size_t>(
        std::min_element(view.ids.begin(), view.ids.end()) - view.ids.begin());
    bool forward = true;
    if (!is_directed(view.topology) && n >= 3) {
      forward = view.ids[(anchor + 1) % n] < view.ids[(anchor + n - 1) % n];
    }
    Word canonical(n);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = forward ? (anchor + k) % n : (anchor + n - k) % n;
      canonical[k] = view.inputs[idx];
    }
    auto solution = solve_by_dp(problem, canonical);
    if (!solution) {
      throw std::runtime_error("solve_full_view: instance has no valid labeling");
    }
    // The observing node sits at presentation position center; its index
    // in the canonical word inverts the rotation (and the direction).
    const std::size_t my_pos = forward ? (n - anchor + view.center) % n
                                       : (anchor + n - view.center) % n;
    return (*solution)[my_pos];
  }
  if (!view.sees_left_end || !view.sees_right_end) {
    throw std::logic_error("solve_full_view: radius did not cover the whole path");
  }
  // Paths present end-anchored windows in global order (both for directed
  // topologies and for undirected ones, where the ends are
  // distinguishable), so the presentation is already canonical.
  auto solution = solve_by_dp(problem, view.inputs);
  if (!solution) {
    throw std::runtime_error("solve_full_view: instance has no valid labeling");
  }
  return (*solution)[view.center];
}

Label GatherAllAlgorithm::run(const View& view) const {
  return solve_full_view(*problem_, view);
}

}  // namespace lclpath
