#include "local/simulator.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

#include "core/thread_pool.hpp"

namespace lclpath {

namespace {

/// Lexicographic comparison of the reversed ID sequence against the
/// forward one. IDs are distinct, so the comparison never ties for
/// windows of length >= 2.
bool reversed_ids_smaller(const std::vector<NodeId>& ids) {
  const std::size_t len = ids.size();
  for (std::size_t k = 0; k < len; ++k) {
    const NodeId fwd = ids[k];
    const NodeId rev = ids[len - 1 - k];
    if (fwd != rev) return rev < fwd;
  }
  return false;
}

}  // namespace

View extract_view(const Instance& instance, std::size_t v, std::size_t radius) {
  const std::size_t n = instance.size();
  const bool undirected = !is_directed(instance.topology);
  View view;
  view.n = n;
  view.topology = instance.topology;
  if (instance.cycle()) {
    if (2 * radius + 1 >= n) {
      // The node sees the entire cycle; present it as the rotation
      // starting at v (center 0). The algorithm can tell because
      // size() == n. On undirected cycles the storage direction must not
      // leak: present the rotation in whichever direction reads the
      // lexicographically smaller ID sequence.
      std::ptrdiff_t step = 1;
      if (undirected && n >= 2) {
        for (std::size_t k = 1; k < n; ++k) {
          const NodeId fwd = instance.ids[(v + k) % n];
          const NodeId bwd = instance.ids[(v + n - k) % n];
          if (fwd != bwd) {
            step = bwd < fwd ? -1 : 1;
            break;
          }
        }
      }
      view.center = 0;
      view.inputs.reserve(n);
      view.ids.reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t idx = step > 0 ? (v + k) % n : (v + n - k) % n;
        view.inputs.push_back(instance.inputs[idx]);
        view.ids.push_back(instance.ids[idx]);
      }
      return view;
    }
    view.center = radius;
    view.inputs.reserve(2 * radius + 1);
    view.ids.reserve(2 * radius + 1);
    for (std::size_t k = 0; k < 2 * radius + 1; ++k) {
      const std::size_t idx = (v + n + k - radius) % n;
      view.inputs.push_back(instance.inputs[idx]);
      view.ids.push_back(instance.ids[idx]);
    }
    // Undirected canonicalization: the window is symmetric around the
    // center, so reversing it is the other legal presentation; pick the
    // one whose ID sequence is lexicographically smaller. This erases the
    // storage orientation from what the algorithm can observe (locality /
    // orientation-independence by construction).
    if (undirected && reversed_ids_smaller(view.ids)) {
      std::reverse(view.inputs.begin(), view.inputs.end());
      std::reverse(view.ids.begin(), view.ids.end());
    }
    return view;
  }
  const std::size_t lo = v >= radius ? v - radius : 0;
  const std::size_t hi = std::min(n - 1, v + radius);
  view.center = v - lo;
  view.sees_left_end = v <= radius;
  view.sees_right_end = v + radius >= n - 1;
  for (std::size_t idx = lo; idx <= hi; ++idx) {
    view.inputs.push_back(instance.inputs[idx]);
    view.ids.push_back(instance.ids[idx]);
  }
  // Undirected paths: a window that sees an end is oriented by it (the
  // two physical ends are distinguishable — the first/last constraints
  // are anchored there — so end identity is content, not leaked storage
  // order). End-free middle windows are canonicalized like cycle windows.
  if (undirected && !view.sees_left_end && !view.sees_right_end &&
      reversed_ids_smaller(view.ids)) {
    std::reverse(view.inputs.begin(), view.inputs.end());
    std::reverse(view.ids.begin(), view.ids.end());
    view.center = view.size() - 1 - view.center;
  }
  return view;
}

namespace {

/// Auto-threading: roughly one worker per this many nodes, so small
/// instances (unit tests, CLI toys) stay inline and serial.
constexpr std::size_t kAutoNodesPerThread = 4096;
/// Auto chunk sizes never drop below this (per-chunk setup is O(radius)).
constexpr std::size_t kMinAutoChunk = 1024;

struct EnginePlan {
  std::size_t threads = 1;
  std::size_t chunk = 1;
  std::size_t num_chunks = 1;
};

EnginePlan plan_run(std::size_t n, const SimulationOptions& options) {
  EnginePlan plan;
  std::size_t threads = options.threads;
  if (threads == 0) {
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    threads = std::clamp<std::size_t>(n / kAutoNodesPerThread, 1, hw);
  }
  threads = std::clamp<std::size_t>(threads, 1, std::max<std::size_t>(n, 1));
  std::size_t chunk = options.chunk_size;
  if (chunk == 0) {
    // About four chunks per worker keeps the pool busy when chunks run
    // unevenly (e.g. path ends with clipped windows).
    chunk = std::max((n + 4 * threads - 1) / (4 * threads), kMinAutoChunk);
  }
  plan.chunk = std::clamp<std::size_t>(chunk, 1, std::max<std::size_t>(n, 1));
  plan.num_chunks = n == 0 ? 1 : (n + plan.chunk - 1) / plan.chunk;
  plan.threads = std::min(threads, plan.num_chunks);
  return plan;
}

/// Per-chunk execution: run nodes [begin, end) through `algorithm` with a
/// reusable sliding-window View and stream every (input, output) pair into
/// a chunk verifier. Outputs are written into `out` (disjoint ranges per
/// chunk) when non-null.
class ChunkRunner {
 public:
  ChunkRunner(const LocalAlgorithm& algorithm, const PairwiseProblem& problem,
              const Instance& instance, std::size_t radius, Label* out,
              const ExecutionBudget* budget = nullptr)
      : algorithm_(algorithm),
        problem_(problem),
        instance_(instance),
        radius_(radius),
        out_(out),
        budget_(budget) {}

  ChunkVerdict run(std::size_t begin, std::size_t end) const {
    const std::size_t n = instance_.size();
    PairwiseChunkVerifier verifier(problem_, n, begin, end);
    const bool cycle = instance_.cycle();
    if (cycle && 2 * radius_ + 1 >= n) {
      run_full_rotation(begin, end, verifier);
    } else if (!try_span(begin, end, verifier)) {
      if (cycle) {
        run_cycle_window(begin, end, verifier);
      } else {
        run_path_window(begin, end, verifier);
      }
    }
    return verifier.verdict();
  }

 private:
  // One checkpoint per simulated node: every execution path (span sweep,
  // rotation, sliding windows) funnels through emit, so deadlines and
  // cancellation interrupt chunk workers wherever the work happens.
  void emit(std::size_t v, Label label, PairwiseChunkVerifier& verifier) const {
    budget_checkpoint(budget_);
    verifier.push(instance_.inputs[v], label);
    if (out_ != nullptr) out_[v] = label;
  }

  /// Run the view in its canonical undirected presentation: reverse in
  /// place when the reversed ID sequence is smaller, and flip the center
  /// for path windows (cycle windows are center-symmetric). The buffer is
  /// restored before returning, so the sliding advance stays in storage
  /// order.
  Label run_canonicalized(View& view, bool flip_center) const {
    if (!is_directed(instance_.topology) && reversed_ids_smaller(view.ids)) {
      std::reverse(view.inputs.begin(), view.inputs.end());
      std::reverse(view.ids.begin(), view.ids.end());
      const std::size_t center = view.center;
      if (flip_center) view.center = view.size() - 1 - center;
      const Label label = algorithm_.run(view);
      std::reverse(view.inputs.begin(), view.inputs.end());
      std::reverse(view.ids.begin(), view.ids.end());
      view.center = center;
      return label;
    }
    return algorithm_.run(view);
  }

  /// The chunk-sweep fast path: build one chunk-plus-halo window in
  /// storage order and let the algorithm label the whole span in a single
  /// run_span call (layout amortized across the chunk). Cycle sub-spans
  /// are capped so a window never covers the full cycle (span windows are
  /// arcs, not rotations); the first run_span call happens before anything
  /// is pushed into the verifier, so a false return falls back cleanly to
  /// the node-by-node path.
  bool try_span(std::size_t begin, std::size_t end,
                PairwiseChunkVerifier& verifier) const {
    const std::size_t n = instance_.size();
    const bool cycle = instance_.cycle();
    const std::size_t cap =
        cycle ? (n > 2 * radius_ + 1 ? n - 2 * radius_ - 1 : 0) : end - begin;
    if (cap == 0) return false;
    View window;
    window.n = n;
    window.topology = instance_.topology;
    std::vector<Label> labels;
    for (std::size_t s = begin; s < end;) {
      const std::size_t e = std::min(end, s + cap);
      std::size_t wlo = 0;
      std::size_t wlen = 0;
      std::size_t offset = 0;
      if (cycle) {
        wlo = (s + n - radius_) % n;
        wlen = (e - s) + 2 * radius_;
        offset = radius_;
      } else {
        wlo = s >= radius_ ? s - radius_ : 0;
        const std::size_t whi = std::min(n - 1, e - 1 + radius_);  // inclusive
        wlen = whi - wlo + 1;
        offset = s - wlo;
        window.sees_left_end = wlo == 0;
        window.sees_right_end = whi == n - 1;
      }
      window.inputs.resize(wlen);
      window.ids.resize(wlen);
      for (std::size_t k = 0; k < wlen; ++k) {
        const std::size_t idx = cycle ? (wlo + k) % n : wlo + k;
        window.inputs[k] = instance_.inputs[idx];
        window.ids[k] = instance_.ids[idx];
      }
      window.center = offset;
      labels.resize(e - s);
      if (!algorithm_.run_span(window, offset, offset + (e - s), labels.data())) {
        if (s == begin) return false;
        throw std::logic_error("simulate: run_span support must be uniform");
      }
      for (std::size_t v = s; v < e; ++v) emit(v, labels[v - s], verifier);
      s = e;
    }
    return true;
  }

  /// Full-view cycle regime without memoization (the honest gather
  /// baseline): every node's view is its own whole-cycle rotation, so
  /// there is nothing to slide — build it per node.
  void run_full_rotation(std::size_t begin, std::size_t end,
                         PairwiseChunkVerifier& verifier) const {
    for (std::size_t v = begin; v < end; ++v) {
      const View view = extract_view(instance_, v, radius_);
      emit(v, algorithm_.run(view), verifier);
    }
  }

  /// Structured cycle regime (2r + 1 < n): fixed-length window, center
  /// pinned at r. Advance = pop front, push (v + r) mod n.
  void run_cycle_window(std::size_t begin, std::size_t end,
                        PairwiseChunkVerifier& verifier) const {
    const std::size_t n = instance_.size();
    const std::size_t len = 2 * radius_ + 1;
    View view;
    view.n = n;
    view.topology = instance_.topology;
    view.center = radius_;
    view.inputs.reserve(len);
    view.ids.reserve(len);
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t idx = (begin + n + k - radius_) % n;
      view.inputs.push_back(instance_.inputs[idx]);
      view.ids.push_back(instance_.ids[idx]);
    }
    for (std::size_t v = begin; v < end; ++v) {
      if (v > begin) {
        view.inputs.erase(view.inputs.begin());
        view.ids.erase(view.ids.begin());
        const std::size_t idx = (v + radius_) % n;
        view.inputs.push_back(instance_.inputs[idx]);
        view.ids.push_back(instance_.ids[idx]);
      }
      emit(v, run_canonicalized(view, /*flip_center=*/false), verifier);
    }
  }

  /// Path regime: variable-length window clipped at the ends. Pops start
  /// once v > r, pushes stop once v + r passes the last node; covers the
  /// whole-path window (r >= n - 1) as the degenerate no-op slide.
  void run_path_window(std::size_t begin, std::size_t end,
                       PairwiseChunkVerifier& verifier) const {
    const std::size_t n = instance_.size();
    View view;
    view.n = n;
    view.topology = instance_.topology;
    const std::size_t cap = std::min(n, 2 * radius_ + 1);
    view.inputs.reserve(cap);
    view.ids.reserve(cap);
    const std::size_t lo = begin >= radius_ ? begin - radius_ : 0;
    const std::size_t hi = std::min(n - 1, begin + radius_);
    for (std::size_t idx = lo; idx <= hi; ++idx) {
      view.inputs.push_back(instance_.inputs[idx]);
      view.ids.push_back(instance_.ids[idx]);
    }
    for (std::size_t v = begin; v < end; ++v) {
      if (v > begin) {
        if (v > radius_) {
          view.inputs.erase(view.inputs.begin());
          view.ids.erase(view.ids.begin());
        }
        if (v + radius_ <= n - 1) {
          view.inputs.push_back(instance_.inputs[v + radius_]);
          view.ids.push_back(instance_.ids[v + radius_]);
        }
      }
      view.center = std::min(v, radius_);
      view.sees_left_end = v <= radius_;
      view.sees_right_end = v + radius_ >= n - 1;
      const bool canonicalize = !view.sees_left_end && !view.sees_right_end;
      Label label;
      if (canonicalize) {
        label = run_canonicalized(view, /*flip_center=*/true);
      } else {
        label = algorithm_.run(view);
      }
      emit(v, label, verifier);
    }
  }

  const LocalAlgorithm& algorithm_;
  const PairwiseProblem& problem_;
  const Instance& instance_;
  std::size_t radius_;
  Label* out_;
  const ExecutionBudget* budget_;
};

/// Memoized full-view regime: derive the content-determined canonical word
/// once (exactly as solve_full_view does per node), solve it once, and
/// read every node's label off the shared solution. Streams the labels
/// through one chunk verifier so keep_outputs = false still never
/// materializes the Word.
SimulationResult simulate_full_view_memo(const PairwiseProblem& fvp,
                                         const PairwiseProblem& problem,
                                         const Instance& instance, std::size_t radius,
                                         bool keep_outputs,
                                         const ExecutionBudget* budget) {
  const std::size_t n = instance.size();
  SimulationResult result;
  result.radius = radius;
  std::optional<Word> solution;
  // my_index(v) = position of node v in the canonical word.
  std::size_t anchor = 0;
  bool forward = true;
  if (instance.cycle()) {
    anchor = static_cast<std::size_t>(
        std::min_element(instance.ids.begin(), instance.ids.end()) -
        instance.ids.begin());
    if (!is_directed(instance.topology) && n >= 3) {
      forward = instance.ids[(anchor + 1) % n] < instance.ids[(anchor + n - 1) % n];
    }
    Word canonical(n);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = forward ? (anchor + k) % n : (anchor + n - k) % n;
      canonical[k] = instance.inputs[idx];
    }
    solution = solve_by_dp(fvp, canonical);
  } else {
    // Path windows seeing both ends are presented in global order, so the
    // instance word itself is the canonical word.
    solution = solve_by_dp(fvp, instance.inputs);
  }
  if (!solution) {
    throw std::runtime_error("solve_full_view: instance has no valid labeling");
  }
  if (keep_outputs) result.outputs.resize(n);
  PairwiseChunkVerifier verifier(problem, n, 0, n);
  for (std::size_t v = 0; v < n; ++v) {
    budget_checkpoint(budget);
    std::size_t k = v;
    if (instance.cycle()) {
      k = forward ? (v + n - anchor) % n : (anchor + n - v) % n;
    }
    const Label label = (*solution)[k];
    verifier.push(instance.inputs[v], label);
    if (keep_outputs) result.outputs[v] = label;
  }
  result.verdict = finish_chunked_verify(problem, {verifier.verdict()});
  return result;
}

}  // namespace

SimulationResult simulate(const LocalAlgorithm& algorithm, const PairwiseProblem& problem,
                          const Instance& instance, const SimulationOptions& options) {
  instance.validate();
  const std::size_t n = instance.size();
  const std::size_t radius = algorithm.radius(n);
  if (n == 0) {
    SimulationResult result;
    result.radius = radius;
    result.verdict = verify_pairwise(problem, instance.inputs, result.outputs);
    return result;
  }

  const bool cycle = instance.cycle();
  const bool full_regime = cycle ? 2 * radius + 1 >= n : radius >= n - 1;
  const PairwiseProblem* fvp = algorithm.full_view_problem();
  if (fvp != nullptr && options.full_view_memo && full_regime) {
    return simulate_full_view_memo(*fvp, problem, instance, radius,
                                   options.keep_outputs, options.budget);
  }

  const EnginePlan plan = plan_run(n, options);
  SimulationResult result;
  result.radius = radius;
  result.threads_used = plan.threads;
  result.chunks = plan.num_chunks;
  if (options.keep_outputs) result.outputs.resize(n);
  Label* out = options.keep_outputs ? result.outputs.data() : nullptr;
  const ChunkRunner runner(algorithm, problem, instance, radius, out,
                           options.budget);

  std::vector<ChunkVerdict> verdicts;
  verdicts.reserve(plan.num_chunks);
  if (plan.threads <= 1) {
    for (std::size_t begin = 0; begin < n; begin += plan.chunk) {
      verdicts.push_back(runner.run(begin, std::min(n, begin + plan.chunk)));
    }
  } else {
    ThreadPool pool(plan.threads);
    std::vector<std::future<ChunkVerdict>> futures;
    futures.reserve(plan.num_chunks);
    for (std::size_t begin = 0; begin < n; begin += plan.chunk) {
      const std::size_t end = std::min(n, begin + plan.chunk);
      futures.push_back(pool.submit([&runner, begin, end] {
        return runner.run(begin, end);
      }));
    }
    // Collect every chunk before rethrowing so the pool drains cleanly and
    // the reported exception is the earliest chunk's (matching the serial
    // reference, which throws at the first failing node).
    std::exception_ptr first_error;
    for (auto& future : futures) {
      try {
        verdicts.push_back(future.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  result.verdict = finish_chunked_verify(problem, verdicts);
  return result;
}

SimulationResult simulate(const LocalAlgorithm& algorithm, const PairwiseProblem& problem,
                          const Instance& instance) {
  return simulate(algorithm, problem, instance, SimulationOptions{});
}

SimulationResult simulate_reference(const LocalAlgorithm& algorithm,
                                    const PairwiseProblem& problem,
                                    const Instance& instance) {
  instance.validate();
  SimulationResult result;
  const std::size_t n = instance.size();
  result.radius = algorithm.radius(n);
  result.outputs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    const View view = extract_view(instance, v, result.radius);
    result.outputs.push_back(algorithm.run(view));
  }
  result.verdict = verify_pairwise(problem, instance.inputs, result.outputs);
  return result;
}

Label solve_full_view(const PairwiseProblem& problem, const View& view) {
  if (is_cycle(view.topology)) {
    if (view.size() != view.n) {
      throw std::logic_error("solve_full_view: radius did not cover the whole cycle");
    }
    // All nodes must agree on one labeling although each sees a different
    // rotation (and, undirected, a possibly reversed one): canonicalize by
    // rotating so the minimum ID comes first, and on undirected cycles
    // additionally read in the direction whose next ID after the anchor is
    // smaller. Both rules are content-determined, so every node solves the
    // same word.
    const std::size_t n = view.n;
    const std::size_t anchor = static_cast<std::size_t>(
        std::min_element(view.ids.begin(), view.ids.end()) - view.ids.begin());
    bool forward = true;
    if (!is_directed(view.topology) && n >= 3) {
      forward = view.ids[(anchor + 1) % n] < view.ids[(anchor + n - 1) % n];
    }
    Word canonical(n);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = forward ? (anchor + k) % n : (anchor + n - k) % n;
      canonical[k] = view.inputs[idx];
    }
    auto solution = solve_by_dp(problem, canonical);
    if (!solution) {
      throw std::runtime_error("solve_full_view: instance has no valid labeling");
    }
    // The observing node sits at presentation position center; its index
    // in the canonical word inverts the rotation (and the direction).
    const std::size_t my_pos = forward ? (n - anchor + view.center) % n
                                       : (anchor + n - view.center) % n;
    return (*solution)[my_pos];
  }
  if (!view.sees_left_end || !view.sees_right_end) {
    throw std::logic_error("solve_full_view: radius did not cover the whole path");
  }
  // Paths present end-anchored windows in global order (both for directed
  // topologies and for undirected ones, where the ends are
  // distinguishable), so the presentation is already canonical.
  auto solution = solve_by_dp(problem, view.inputs);
  if (!solution) {
    throw std::runtime_error("solve_full_view: instance has no valid labeling");
  }
  return (*solution)[view.center];
}

Label GatherAllAlgorithm::run(const View& view) const {
  return solve_full_view(*problem_, view);
}

}  // namespace lclpath
