#include "local/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace lclpath {

View extract_view(const Instance& instance, std::size_t v, std::size_t radius) {
  const std::size_t n = instance.size();
  View view;
  view.n = n;
  view.topology = instance.topology;
  if (instance.cycle()) {
    if (2 * radius + 1 >= n) {
      // The node sees the entire cycle; present it as the rotation
      // starting at v (center 0). The algorithm can tell because
      // size() == n.
      view.center = 0;
      view.inputs.reserve(n);
      view.ids.reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t idx = (v + k) % n;
        view.inputs.push_back(instance.inputs[idx]);
        view.ids.push_back(instance.ids[idx]);
      }
      return view;
    }
    view.center = radius;
    view.inputs.reserve(2 * radius + 1);
    view.ids.reserve(2 * radius + 1);
    for (std::size_t k = 0; k < 2 * radius + 1; ++k) {
      const std::size_t idx = (v + n + k - radius) % n;
      view.inputs.push_back(instance.inputs[idx]);
      view.ids.push_back(instance.ids[idx]);
    }
    return view;
  }
  const std::size_t lo = v >= radius ? v - radius : 0;
  const std::size_t hi = std::min(n - 1, v + radius);
  view.center = v - lo;
  view.sees_left_end = v <= radius;
  view.sees_right_end = v + radius >= n - 1;
  for (std::size_t idx = lo; idx <= hi; ++idx) {
    view.inputs.push_back(instance.inputs[idx]);
    view.ids.push_back(instance.ids[idx]);
  }
  return view;
}

SimulationResult simulate(const LocalAlgorithm& algorithm, const PairwiseProblem& problem,
                          const Instance& instance) {
  instance.validate();
  SimulationResult result;
  const std::size_t n = instance.size();
  result.radius = algorithm.radius(n);
  result.outputs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    const View view = extract_view(instance, v, result.radius);
    result.outputs.push_back(algorithm.run(view));
  }
  result.verdict = verify_pairwise(problem, instance.inputs, result.outputs);
  return result;
}

Label GatherAllAlgorithm::run(const View& view) const {
  if (is_cycle(view.topology)) {
    if (view.size() != view.n) {
      throw std::logic_error("gather-all: radius did not cover the whole cycle");
    }
    // All nodes must agree on one labeling although each sees a different
    // rotation: canonicalize by rotating so the minimum ID comes first.
    const std::size_t anchor = static_cast<std::size_t>(
        std::min_element(view.ids.begin(), view.ids.end()) - view.ids.begin());
    Word canonical(view.n);
    for (std::size_t k = 0; k < view.n; ++k) {
      canonical[k] = view.inputs[(anchor + k) % view.n];
    }
    auto solution = solve_by_dp(*problem_, canonical);
    if (!solution) {
      throw std::runtime_error("gather-all: instance has no valid labeling");
    }
    // The observing node sits at window position center (= 0); its index
    // in the canonical rotation is (n - anchor) mod n.
    const std::size_t my_pos = (view.n - anchor + view.center) % view.n;
    return (*solution)[my_pos];
  }
  if (!view.sees_left_end || !view.sees_right_end) {
    throw std::logic_error("gather-all: radius did not cover the whole path");
  }
  auto solution = solve_by_dp(*problem_, view.inputs);
  if (!solution) {
    throw std::runtime_error("gather-all: instance has no valid labeling");
  }
  return (*solution)[view.center];
}

}  // namespace lclpath
