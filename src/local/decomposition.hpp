// Ruling sets and the Lemma 16 decomposition.
//
// The synthesized Theta(log* n) algorithms (Lemma 17) need separator
// blocks of 2r nodes whose gaps are Theta(ell_pump) with both bounds
// controlled. We build a *ruling set* with consecutive-member distances in
// [m, 2m] for a power-of-two m:
//
//   level 0: Cole-Vishkin 3-coloring + greedy MIS -> gaps in [2, 3];
//   level j: MIS on the subcycle of level-(j-1) members (Cole-Vishkin on
//            the member subsequence: 64-bit IDs need only 4 halvings),
//            doubling the minimum gap, followed by a local *repair* pass
//            that splits any gap longer than 2m_j by inserting synthetic
//            members at multiples of m_j from the left anchor — keeping
//            the maximum gap below 2x the minimum at every level.
//
// Everything is computed inside a node's window, so locality holds by
// construction; validity margins are tracked conservatively and
// ruling_radius() reports the window radius that guarantees the center's
// membership is stable (window-agreement property-tested).
#pragma once

#include <cstddef>
#include <vector>

#include "local/simulator.hpp"

namespace lclpath {

/// Number of doubling levels needed for a minimum gap >= min_gap.
std::size_t ruling_levels(std::size_t min_gap);

/// Final guaranteed gap bounds [m, 2m] with m = 2^levels.
std::size_t ruling_min_gap(std::size_t min_gap);

/// Window radius required to decide center membership.
std::size_t ruling_radius(std::size_t min_gap);

/// Membership of the view's center node in the ruling set with gap bounds
/// [ruling_min_gap(min_gap), 2 * ruling_min_gap(min_gap)].
/// Directed cycles only (the synthesized algorithms' substrate).
bool ruling_member(const View& view, std::size_t min_gap);

/// Whole-window membership flags (window-relative), trusted only within
/// [margin, len - 1 - margin] where margin = ruling_radius(min_gap) is the
/// caller's responsibility; exposed for the decomposition and tests.
std::vector<char> ruling_members_window(const std::vector<NodeId>& ids,
                                        std::size_t min_gap);

/// Like ruling_members_window, but either array edge may be a *real*
/// boundary (a path end, or an orientation flip that the undirected
/// synthesis strategies treat as one): on a real side the Cole-Vishkin
/// recursion anchors at the edge and the repair pass measures gaps from
/// it, so member flags are trusted all the way to that side and the
/// distance from the boundary to the nearest member stays below 2m.
std::vector<char> ruling_members_segment(const std::vector<NodeId>& ids,
                                         std::size_t min_gap, bool left_real,
                                         bool right_real);

}  // namespace lclpath
