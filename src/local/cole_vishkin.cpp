#include "local/cole_vishkin.hpp"

#include <bit>
#include <stdexcept>

namespace lclpath {

std::size_t cv_steps_for_ids() {
  // 64-bit IDs: value space 2^64 -> 128 -> 14 -> 8 -> 6; four halvings
  // reach the 6-color fixed point.
  return 4;
}

std::size_t cv_radius() { return cv_steps_for_ids() + 3; }

std::uint64_t cv_step(std::uint64_t mine, std::uint64_t next) {
  if (mine == next) {
    throw std::logic_error("cv_step: adjacent colors equal (invariant broken)");
  }
  const std::uint64_t diff = mine ^ next;
  const std::uint64_t i = static_cast<std::uint64_t>(std::countr_zero(diff));
  return 2 * i + ((mine >> i) & 1u);
}

std::vector<std::uint64_t> cv_colors_window(const std::vector<NodeId>& ids, bool left_end,
                                            bool right_end) {
  const std::size_t len = ids.size();
  std::vector<std::uint64_t> color(ids.begin(), ids.end());
  // Halving steps: each consumes one node of lookahead on the right,
  // unless the right boundary is a real path end (the last node anchors
  // with color' = bit0(color)).
  std::size_t right_margin = 0;
  for (std::size_t step = 0; step < cv_steps_for_ids(); ++step) {
    std::vector<std::uint64_t> next = color;
    const std::size_t last_valid = len - 1 - right_margin;
    for (std::size_t i = 0; i < last_valid; ++i) next[i] = cv_step(color[i], color[i + 1]);
    if (right_end) {
      next[last_valid] = color[last_valid] & 1u;
    } else if (right_margin + 1 < len) {
      ++right_margin;
    }
    color = std::move(next);
  }
  // Colors now in {0..5}; three shrink rounds remove 5, 4, 3. Each round
  // consumes one node of margin on non-end sides.
  std::size_t left_margin = 0;
  for (std::uint64_t kill = 5; kill >= 3; --kill) {
    std::vector<std::uint64_t> next = color;
    const std::size_t lo = left_end ? 0 : left_margin + 1;
    const std::size_t hi = right_end ? len - 1 : len - 2 - right_margin;
    for (std::size_t i = lo; i <= hi && i < len; ++i) {
      if (color[i] != kill) continue;
      const std::uint64_t left = i > 0 ? color[i - 1] : 6;
      const std::uint64_t right = i + 1 < len ? color[i + 1] : 6;
      for (std::uint64_t c = 0; c < 3; ++c) {
        if (c != left && c != right) {
          next[i] = c;
          break;
        }
      }
    }
    if (!left_end) ++left_margin;
    if (!right_end && right_margin + 1 < len) ++right_margin;
    color = std::move(next);
  }
  return color;
}

std::size_t cv_three_color(const View& view) {
  const auto colors =
      cv_colors_window(view.ids, view.sees_left_end, view.sees_right_end);
  const std::uint64_t c = colors[view.center];
  if (c > 2) throw std::logic_error("cv_three_color: center color not reduced");
  return static_cast<std::size_t>(c);
}

std::size_t cv_spaced_mis_radius(std::size_t k) { return cv_radius() + 3 * k + 3; }

bool cv_spaced_mis(const View& view, std::size_t k) {
  // Greedy by color class over the distance-k conflict graph. Correct for
  // k = 1 (colors make same-class nodes non-conflicting); used by the
  // level-0 ruling set. For k > 1 use the ruling set in decomposition.hpp.
  if (k != 1) {
    throw std::invalid_argument("cv_spaced_mis: only k = 1 is supported; use ruling sets");
  }
  const auto colors =
      cv_colors_window(view.ids, view.sees_left_end, view.sees_right_end);
  const std::size_t len = colors.size();
  std::vector<char> in_set(len, 0);
  for (std::uint64_t phase = 0; phase < 3; ++phase) {
    for (std::size_t i = 0; i < len; ++i) {
      if (colors[i] != phase || in_set[i]) continue;
      const bool left_blocked = i > 0 && in_set[i - 1];
      const bool right_blocked = i + 1 < len && in_set[i + 1];
      if (!left_blocked && !right_blocked) in_set[i] = 1;
    }
  }
  return in_set[view.center] != 0;
}

}  // namespace lclpath
