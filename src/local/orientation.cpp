#include "local/orientation.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace lclpath {

namespace {
/// Internal scale: peaks are radius-L ID maxima with L = 2*ell + 2, so
/// that nearest-peak watersheds between two peaks (distance >= L+1) are
/// at least (L+1)/2 > ell from both.
std::size_t internal_scale(std::size_t ell) { return 2 * ell + 2; }
}  // namespace

std::size_t orientation_radius(std::size_t ell) {
  // A node must evaluate is-peak for every node within distance L, which
  // needs IDs within 2L; plus the ball-max fallback (L).
  return 2 * internal_scale(ell) + 1;
}

// Construction (validated by the adversarial property tests):
//  * peak: maximum ID within radius L;
//  * a node within distance L of a peak orients toward its *nearest* peak
//    (ties between equidistant peaks broken toward the larger ID); peaks
//    themselves orient toward their larger neighbor;
//  * other nodes orient toward the maximum-ID node of their radius-L ball.
// Direction flips then happen only at peak watersheds (>= (L+1)/2 > ell
// from each peak) or at ball-max divergences whose dominating endpoint
// forces >= L uniformly oriented nodes on each side.
Direction orient(const View& view, std::size_t ell) {
  if (!is_cycle(view.topology)) {
    throw std::invalid_argument("orient: cycles only");
  }
  const std::size_t len = view.size();
  const std::size_t scale = internal_scale(ell);

  if (len == view.n && view.n <= 2 * orientation_radius(ell) + 1) {
    // Whole cycle visible: canonical global orientation.
    std::size_t max_pos = 0;
    for (std::size_t i = 1; i < len; ++i) {
      if (view.ids[i] > view.ids[max_pos]) max_pos = i;
    }
    const NodeId succ = view.ids[(max_pos + 1) % len];
    const NodeId pred = view.ids[(max_pos + len - 1) % len];
    return succ > pred ? Direction::kForward : Direction::kBackward;
  }

  const std::size_t c = view.center;
  if (c < 2 * scale || c + 2 * scale >= len) {
    throw std::invalid_argument("orient: window too small for the requested ell");
  }
  auto is_peak = [&](std::size_t pos) {
    for (std::size_t i = pos - scale; i <= pos + scale; ++i) {
      if (i != pos && view.ids[i] >= view.ids[pos]) return false;
    }
    return true;
  };
  // Nearest peak within distance `scale` (larger ID wins ties).
  std::optional<std::ptrdiff_t> toward_peak;
  for (std::size_t d = 0; d <= scale && !toward_peak; ++d) {
    NodeId best_id = 0;
    std::ptrdiff_t best_dir = 0;
    bool found = false;
    if (is_peak(c + d) && (!found || view.ids[c + d] > best_id)) {
      best_id = view.ids[c + d];
      best_dir = static_cast<std::ptrdiff_t>(d);
      found = true;
    }
    if (d > 0 && is_peak(c - d) && (!found || view.ids[c - d] > best_id)) {
      best_id = view.ids[c - d];
      best_dir = -static_cast<std::ptrdiff_t>(d);
      found = true;
    }
    if (found) toward_peak = best_dir;
  }
  if (toward_peak) {
    if (*toward_peak == 0) {
      // A peak orients toward its larger neighbor (pure convergence point).
      return view.ids[c + 1] > view.ids[c - 1] ? Direction::kForward
                                               : Direction::kBackward;
    }
    return *toward_peak > 0 ? Direction::kForward : Direction::kBackward;
  }
  // Peakless zone: toward the ball maximum.
  std::size_t best = c - scale;
  for (std::size_t i = c - scale; i <= c + scale; ++i) {
    if (view.ids[i] > view.ids[best]) best = i;
  }
  return best > c ? Direction::kForward : Direction::kBackward;
}

std::vector<Direction> orient_all(const Instance& instance, std::size_t ell) {
  std::vector<Direction> out;
  out.reserve(instance.size());
  const std::size_t radius = orientation_radius(ell);
  for (std::size_t v = 0; v < instance.size(); ++v) {
    out.push_back(orient(extract_view(instance, v, radius), ell));
  }
  return out;
}

}  // namespace lclpath
