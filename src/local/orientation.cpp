#include "local/orientation.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace lclpath {

namespace {
/// Internal scale: peaks are radius-L ID maxima with L = 2*ell + 2, so
/// that nearest-peak watersheds between two peaks (distance >= L+1) are
/// at least (L+1)/2 > ell from both.
std::size_t internal_scale(std::size_t ell) { return 2 * ell + 2; }
}  // namespace

std::size_t orientation_radius(std::size_t ell) {
  // A node must evaluate is-peak for every node within distance L, which
  // needs IDs within 2L; plus the ball-max fallback (L).
  return 2 * internal_scale(ell) + 1;
}

// Construction (validated by the adversarial property tests):
//  * peak: maximum ID within radius L;
//  * a node within distance L of a peak orients toward its *nearest* peak
//    (ties between equidistant peaks broken toward the larger ID); peaks
//    themselves orient toward their larger neighbor;
//  * other nodes orient toward the maximum-ID node of their radius-L ball.
// Direction flips then happen only at peak watersheds (>= (L+1)/2 > ell
// from each peak) or at ball-max divergences whose dominating endpoint
// forces >= L uniformly oriented nodes on each side.
Direction orient(const View& view, std::size_t ell) {
  if (!is_cycle(view.topology)) {
    throw std::invalid_argument("orient: cycles only");
  }
  const std::size_t len = view.size();
  const std::size_t scale = internal_scale(ell);

  if (len == view.n && view.n <= 2 * orientation_radius(ell) + 1) {
    // Whole cycle visible: canonical global orientation.
    std::size_t max_pos = 0;
    for (std::size_t i = 1; i < len; ++i) {
      if (view.ids[i] > view.ids[max_pos]) max_pos = i;
    }
    const NodeId succ = view.ids[(max_pos + 1) % len];
    const NodeId pred = view.ids[(max_pos + len - 1) % len];
    return succ > pred ? Direction::kForward : Direction::kBackward;
  }

  const std::size_t c = view.center;
  if (c < 2 * scale || c + 2 * scale >= len) {
    throw std::invalid_argument("orient: window too small for the requested ell");
  }
  auto is_peak = [&](std::size_t pos) {
    for (std::size_t i = pos - scale; i <= pos + scale; ++i) {
      if (i != pos && view.ids[i] >= view.ids[pos]) return false;
    }
    return true;
  };
  // Nearest peak within distance `scale` (larger ID wins ties).
  std::optional<std::ptrdiff_t> toward_peak;
  for (std::size_t d = 0; d <= scale && !toward_peak; ++d) {
    NodeId best_id = 0;
    std::ptrdiff_t best_dir = 0;
    bool found = false;
    if (is_peak(c + d) && (!found || view.ids[c + d] > best_id)) {
      best_id = view.ids[c + d];
      best_dir = static_cast<std::ptrdiff_t>(d);
      found = true;
    }
    if (d > 0 && is_peak(c - d) && (!found || view.ids[c - d] > best_id)) {
      best_id = view.ids[c - d];
      best_dir = -static_cast<std::ptrdiff_t>(d);
      found = true;
    }
    if (found) toward_peak = best_dir;
  }
  if (toward_peak) {
    if (*toward_peak == 0) {
      // A peak orients toward its larger neighbor (pure convergence point).
      return view.ids[c + 1] > view.ids[c - 1] ? Direction::kForward
                                               : Direction::kBackward;
    }
    return *toward_peak > 0 ? Direction::kForward : Direction::kBackward;
  }
  // Peakless zone: toward the ball maximum.
  std::size_t best = c - scale;
  for (std::size_t i = c - scale; i <= c + scale; ++i) {
    if (view.ids[i] > view.ids[best]) best = i;
  }
  return best > c ? Direction::kForward : Direction::kBackward;
}

std::size_t orientation_window_margin(std::size_t ell) {
  return 2 * internal_scale(ell) + 1;
}

std::vector<Direction> orientation_directions_window(const std::vector<NodeId>& ids,
                                                     std::size_t ell) {
  const std::size_t len = ids.size();
  const std::size_t scale = internal_scale(ell);
  std::vector<Direction> out(len, Direction::kForward);
  if (len == 0) return out;

  // Sliding-window maxima: ball_max[p] = position of the maximum ID in
  // [p - scale, p + scale] (clamped at array edges). O(len) amortized via
  // a monotonic deque; IDs are distinct, so the maximum is unique.
  std::vector<std::size_t> ball_max(len, 0);
  {
    std::vector<std::size_t> deque(len);
    std::size_t head = 0, tail = 0;  // [head, tail)
    std::size_t next_to_add = 0;
    for (std::size_t p = 0; p < len; ++p) {
      const std::size_t hi = std::min(len - 1, p + scale);
      while (next_to_add <= hi) {
        while (tail > head && ids[deque[tail - 1]] < ids[next_to_add]) --tail;
        deque[tail++] = next_to_add;
        ++next_to_add;
      }
      const std::size_t lo = p >= scale ? p - scale : 0;
      while (tail > head && deque[head] < lo) ++head;
      ball_max[p] = deque[head];
    }
  }

  // Peaks: radius-scale ball maxima. Balls truncate at the array edges —
  // exact at a real path end (no nodes exist beyond it), untrusted within
  // orientation_window_margin() of a mere window edge (the caller's
  // radius accounts for that).
  std::vector<char> peak(len, 0);
  for (std::size_t p = 0; p < len; ++p) peak[p] = ball_max[p] == p ? 1 : 0;

  // Nearest peak at or before / after each position (single sweeps).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> peak_before(len, kNone);
  std::vector<std::size_t> peak_after(len, kNone);
  for (std::size_t p = 0; p < len; ++p) {
    if (peak[p]) {
      peak_before[p] = p;
    } else if (p > 0) {
      peak_before[p] = peak_before[p - 1];
    }
  }
  for (std::size_t p = len; p-- > 0;) {
    if (peak[p]) {
      peak_after[p] = p;
    } else if (p + 1 < len) {
      peak_after[p] = peak_after[p + 1];
    }
  }

  for (std::size_t p = 0; p < len; ++p) {
    if (peak[p]) {
      // A peak orients toward its larger neighbor (missing neighbors at a
      // clamped path end count as smaller than everything).
      const bool fwd = p + 1 < len && (p == 0 || ids[p + 1] > ids[p - 1]);
      out[p] = fwd ? Direction::kForward : Direction::kBackward;
      continue;
    }
    const std::size_t dl =
        peak_before[p] != kNone ? p - peak_before[p] : static_cast<std::size_t>(-1);
    const std::size_t dr =
        peak_after[p] != kNone ? peak_after[p] - p : static_cast<std::size_t>(-1);
    const bool left_ok = dl <= scale;
    const bool right_ok = dr <= scale;
    if (left_ok || right_ok) {
      bool fwd;
      if (left_ok && right_ok && dl == dr) {
        fwd = ids[peak_after[p]] > ids[peak_before[p]];  // tie: larger peak ID
      } else if (!left_ok || (right_ok && dr < dl)) {
        fwd = true;
      } else {
        fwd = false;
      }
      out[p] = fwd ? Direction::kForward : Direction::kBackward;
      continue;
    }
    // Peakless zone: toward the ball maximum.
    out[p] = ball_max[p] > p ? Direction::kForward : Direction::kBackward;
  }
  return out;
}

std::vector<Direction> orient_all(const Instance& instance, std::size_t ell) {
  std::vector<Direction> out;
  out.reserve(instance.size());
  const std::size_t radius = orientation_radius(ell);
  for (std::size_t v = 0; v < instance.size(); ++v) {
    out.push_back(orient(extract_view(instance, v, radius), ell));
  }
  return out;
}

}  // namespace lclpath
