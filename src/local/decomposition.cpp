#include "local/decomposition.hpp"

#include <stdexcept>

#include "local/cole_vishkin.hpp"

namespace lclpath {

namespace {

/// Level-0 member flags: 3-coloring + greedy MIS; gaps in [2, 3]. Flags
/// are trusted within cv_radius()-ish of window edges, all the way to a
/// *real* boundary (cv_colors_window anchors its recursion there).
std::vector<char> level0_members(const std::vector<NodeId>& ids, bool left_real,
                                 bool right_real) {
  std::vector<char> member(ids.size(), 0);
  const std::vector<std::uint64_t> color = cv_colors_window(ids, left_real, right_real);
  for (std::uint64_t phase = 0; phase < 3; ++phase) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (color[i] != phase || member[i]) continue;
      const bool lb = i > 0 && member[i - 1];
      const bool rb = i + 1 < ids.size() && member[i + 1];
      if (!lb && !rb) member[i] = 1;
    }
  }
  return member;
}

/// One doubling level: MIS on the member subsequence, then repair so the
/// gaps lie in [new_min, 2 * new_min]. Real boundaries act as virtual
/// anchors: the repair measures from them, so the distance from a real
/// end to the nearest member stays below 2 * new_min too.
std::vector<char> double_level(const std::vector<NodeId>& ids,
                               const std::vector<char>& member, std::size_t new_min,
                               bool left_real, bool right_real) {
  const std::size_t len = ids.size();
  // Collect member positions.
  std::vector<std::size_t> pos;
  for (std::size_t i = 0; i < len; ++i) {
    if (member[i]) pos.push_back(i);
  }
  if (pos.size() < 2 && !left_real && !right_real) {
    return member;  // window too small; margins cover this
  }

  // MIS over the subsequence (Cole-Vishkin on the member IDs; real window
  // boundaries anchor the color recursion exactly like path ends).
  std::vector<char> sub_member(pos.size(), pos.size() == 1 ? 1 : 0);
  if (pos.size() >= 2) {
    std::vector<NodeId> sub_ids;
    sub_ids.reserve(pos.size());
    for (std::size_t p : pos) sub_ids.push_back(ids[p]);
    const std::vector<std::uint64_t> color =
        cv_colors_window(sub_ids, left_real, right_real);
    for (std::uint64_t phase = 0; phase < 3; ++phase) {
      for (std::size_t i = 0; i < pos.size(); ++i) {
        if (color[i] != phase || sub_member[i]) continue;
        const bool lb = i > 0 && sub_member[i - 1];
        const bool rb = i + 1 < pos.size() && sub_member[i + 1];
        if (!lb && !rb) sub_member[i] = 1;
      }
    }
  }
  // Keep selected members; repair long gaps by inserting synthetic members
  // at multiples of new_min after the left anchor. Real boundaries join
  // the anchor sequence as virtual members just outside the window.
  std::vector<char> out(len, 0);
  std::vector<std::ptrdiff_t> anchors;
  if (left_real) anchors.push_back(-1);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (sub_member[i]) {
      out[pos[i]] = 1;
      anchors.push_back(static_cast<std::ptrdiff_t>(pos[i]));
    }
  }
  if (right_real) anchors.push_back(static_cast<std::ptrdiff_t>(len));
  for (std::size_t i = 0; i + 1 < anchors.size(); ++i) {
    const std::ptrdiff_t u = anchors[i];
    const std::ptrdiff_t v = anchors[i + 1];
    const std::ptrdiff_t step = static_cast<std::ptrdiff_t>(new_min);
    for (std::ptrdiff_t p = u + step; p + step <= v; p += step) {
      if (p >= 0 && p < static_cast<std::ptrdiff_t>(len)) out[static_cast<std::size_t>(p)] = 1;
    }
  }
  return out;
}

}  // namespace

std::size_t ruling_levels(std::size_t min_gap) {
  std::size_t levels = 0;
  std::size_t m = 2;
  while (m < min_gap) {
    m *= 2;
    ++levels;
  }
  return levels;
}

std::size_t ruling_min_gap(std::size_t min_gap) {
  return std::size_t{2} << ruling_levels(min_gap);
}

std::size_t ruling_radius(std::size_t min_gap) {
  // Level 0 consumes 11 window positions per side; level j operates on a
  // subsequence with gaps <= 2 m_{j-1}: 10 sub-steps of Cole-Vishkin/MIS
  // plus the repair's anchor lookback (<= 2 m_j) — bounded by 14 m_j
  // window positions per side, with m_j = 2^{j+1}.
  std::size_t radius = 11;
  std::size_t m = 2;
  for (std::size_t level = 0; level < ruling_levels(min_gap); ++level) {
    m *= 2;
    radius += 14 * m;
  }
  return radius + 4;
}

std::vector<char> ruling_members_segment(const std::vector<NodeId>& ids,
                                         std::size_t min_gap, bool left_real,
                                         bool right_real) {
  std::vector<char> member = level0_members(ids, left_real, right_real);
  std::size_t m = 2;
  for (std::size_t level = 0; level < ruling_levels(min_gap); ++level) {
    m *= 2;
    member = double_level(ids, member, m, left_real, right_real);
  }
  return member;
}

std::vector<char> ruling_members_window(const std::vector<NodeId>& ids,
                                        std::size_t min_gap) {
  return ruling_members_segment(ids, min_gap, false, false);
}

bool ruling_member(const View& view, std::size_t min_gap) {
  if (!is_cycle(view.topology)) {
    throw std::invalid_argument("ruling_member: directed cycles only");
  }
  const std::vector<char> member = ruling_members_window(view.ids, min_gap);
  return member[view.center] != 0;
}

}  // namespace lclpath
