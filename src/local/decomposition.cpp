#include "local/decomposition.hpp"

#include <stdexcept>

#include "local/cole_vishkin.hpp"

namespace lclpath {

namespace {

/// Level-0 member flags: 3-coloring + greedy MIS; gaps in [2, 3].
/// Flags are trusted within [10, len - 11].
std::vector<char> level0_members(const std::vector<NodeId>& ids) {
  std::vector<char> member(ids.size(), 0);
  std::vector<std::uint64_t> color(ids.begin(), ids.end());
  std::size_t rm = 0;
  for (std::size_t step = 0; step < cv_steps_for_ids(); ++step) {
    std::vector<std::uint64_t> next = color;
    for (std::size_t i = 0; i + 1 + rm < color.size(); ++i) {
      next[i] = cv_step(color[i], color[i + 1]);
    }
    if (rm + 1 < color.size()) ++rm;
    color = std::move(next);
  }
  std::size_t lm = 0;
  for (std::uint64_t kill = 5; kill >= 3; --kill) {
    std::vector<std::uint64_t> next = color;
    for (std::size_t i = lm + 1; i + 2 + rm < color.size() + 1; ++i) {
      if (color[i] != kill) continue;
      const std::uint64_t left = color[i - 1];
      const std::uint64_t right = i + 1 < color.size() ? color[i + 1] : 6;
      for (std::uint64_t c = 0; c < 3; ++c) {
        if (c != left && c != right) {
          next[i] = c;
          break;
        }
      }
    }
    ++lm;
    if (rm + 1 < color.size()) ++rm;
    color = std::move(next);
  }
  for (std::uint64_t phase = 0; phase < 3; ++phase) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (color[i] != phase || member[i]) continue;
      const bool lb = i > 0 && member[i - 1];
      const bool rb = i + 1 < ids.size() && member[i + 1];
      if (!lb && !rb) member[i] = 1;
    }
  }
  return member;
}

/// One doubling level: MIS on the member subsequence, then repair so the
/// gaps lie in [new_min, 2 * new_min].
std::vector<char> double_level(const std::vector<NodeId>& ids,
                               const std::vector<char>& member, std::size_t new_min) {
  const std::size_t len = ids.size();
  // Collect member positions.
  std::vector<std::size_t> pos;
  for (std::size_t i = 0; i < len; ++i) {
    if (member[i]) pos.push_back(i);
  }
  if (pos.size() < 2) return member;  // window too small; margins cover this

  // Cole-Vishkin on the subsequence (IDs of members).
  std::vector<std::uint64_t> color;
  color.reserve(pos.size());
  for (std::size_t p : pos) color.push_back(ids[p]);
  std::size_t rm = 0;
  for (std::size_t step = 0; step < cv_steps_for_ids(); ++step) {
    std::vector<std::uint64_t> next = color;
    for (std::size_t i = 0; i + 1 + rm < color.size(); ++i) {
      next[i] = cv_step(color[i], color[i + 1]);
    }
    if (rm + 1 < color.size()) ++rm;
    color = std::move(next);
  }
  std::size_t lm = 0;
  for (std::uint64_t kill = 5; kill >= 3; --kill) {
    std::vector<std::uint64_t> next = color;
    for (std::size_t i = lm + 1; i + 2 + rm < color.size() + 1; ++i) {
      if (color[i] != kill) continue;
      const std::uint64_t left = color[i - 1];
      const std::uint64_t right = i + 1 < color.size() ? color[i + 1] : 6;
      for (std::uint64_t c = 0; c < 3; ++c) {
        if (c != left && c != right) {
          next[i] = c;
          break;
        }
      }
    }
    ++lm;
    if (rm + 1 < color.size()) ++rm;
    color = std::move(next);
  }
  // Greedy MIS over the subsequence.
  std::vector<char> sub_member(pos.size(), 0);
  for (std::uint64_t phase = 0; phase < 3; ++phase) {
    for (std::size_t i = 0; i < pos.size(); ++i) {
      if (color[i] != phase || sub_member[i]) continue;
      const bool lb = i > 0 && sub_member[i - 1];
      const bool rb = i + 1 < pos.size() && sub_member[i + 1];
      if (!lb && !rb) sub_member[i] = 1;
    }
  }
  // Keep selected members; repair long gaps by inserting synthetic members
  // at multiples of new_min after the left anchor.
  std::vector<char> out(len, 0);
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (sub_member[i]) {
      out[pos[i]] = 1;
      kept.push_back(pos[i]);
    }
  }
  for (std::size_t i = 0; i + 1 < kept.size(); ++i) {
    const std::size_t u = kept[i];
    const std::size_t v = kept[i + 1];
    for (std::size_t p = u + new_min; p + new_min <= v; p += new_min) out[p] = 1;
  }
  return out;
}

}  // namespace

std::size_t ruling_levels(std::size_t min_gap) {
  std::size_t levels = 0;
  std::size_t m = 2;
  while (m < min_gap) {
    m *= 2;
    ++levels;
  }
  return levels;
}

std::size_t ruling_min_gap(std::size_t min_gap) {
  return std::size_t{2} << ruling_levels(min_gap);
}

std::size_t ruling_radius(std::size_t min_gap) {
  // Level 0 consumes 11 window positions per side; level j operates on a
  // subsequence with gaps <= 2 m_{j-1}: 10 sub-steps of Cole-Vishkin/MIS
  // plus the repair's anchor lookback (<= 2 m_j) — bounded by 14 m_j
  // window positions per side, with m_j = 2^{j+1}.
  std::size_t radius = 11;
  std::size_t m = 2;
  for (std::size_t level = 0; level < ruling_levels(min_gap); ++level) {
    m *= 2;
    radius += 14 * m;
  }
  return radius + 4;
}

std::vector<char> ruling_members_window(const std::vector<NodeId>& ids,
                                        std::size_t min_gap) {
  std::vector<char> member = level0_members(ids);
  std::size_t m = 2;
  for (std::size_t level = 0; level < ruling_levels(min_gap); ++level) {
    m *= 2;
    member = double_level(ids, member, m);
  }
  return member;
}

bool ruling_member(const View& view, std::size_t min_gap) {
  if (!is_cycle(view.topology)) {
    throw std::invalid_argument("ruling_member: directed cycles only");
  }
  const std::vector<char> member = ruling_members_window(view.ids, min_gap);
  return member[view.center] != 0;
}

}  // namespace lclpath
