// The LOCAL model simulator.
//
// The paper's Section 2 observation: an algorithm with running time T(n)
// is equivalent to a function from radius-T(n) neighborhoods to outputs.
// We simulate exactly that: each node receives its *view* — the inputs,
// IDs and boundary shape of its radius-T window — and must return an
// output label. The simulator enforces locality by construction: a node's
// output can only depend on what is in its view.
//
// Locality validation beyond construction: tests also run the
// view-agreement property (two instances whose windows around v coincide
// must produce the same output at v), which guards against algorithms
// smuggling global information through the `n` parameter.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lcl/verifier.hpp"
#include "local/instance.hpp"

namespace lclpath {

/// What a node sees after T rounds: the window of the graph within
/// distance T, clipped at path endpoints.
struct View {
  /// Inputs/IDs in path order within the window.
  Word inputs;
  std::vector<NodeId> ids;
  /// Position of the observing node within the window.
  std::size_t center = 0;
  /// True if the window is clipped on that side by a path endpoint.
  bool sees_left_end = false;
  bool sees_right_end = false;
  /// Number of nodes of the instance (known to all nodes in LOCAL).
  std::size_t n = 0;
  /// Whether the underlying topology is directed / a cycle.
  Topology topology = Topology::kDirectedCycle;

  std::size_t size() const { return inputs.size(); }
};

/// Extracts the radius-T view of node v. On cycles the window wraps; if
/// 2T + 1 >= n the node sees the whole cycle (window size capped at n and
/// the node knows it, because it knows n).
///
/// Undirected topologies are canonicalized so the storage orientation
/// cannot leak: end-free windows are presented in whichever direction
/// reads the lexicographically smaller ID sequence (IDs are distinct, so
/// this is well defined), and full-cycle views pick the rotation direction
/// the same way. Path windows that see an end keep global order — the two
/// physical ends of a path are distinguishable (the first/last constraints
/// anchor there), so end identity is content.
View extract_view(const Instance& instance, std::size_t v, std::size_t radius);

/// A deterministic LOCAL algorithm in view form.
class LocalAlgorithm {
 public:
  virtual ~LocalAlgorithm() = default;

  virtual std::string name() const = 0;
  /// The running time on n-node instances (view radius).
  virtual std::size_t radius(std::size_t n) const = 0;
  /// The output of a node given its radius(n) view.
  virtual Label run(const View& view) const = 0;
};

/// Result of simulating an algorithm over an instance.
struct SimulationResult {
  Word outputs;
  std::size_t radius = 0;  ///< rounds used
  VerifyResult verdict;    ///< verification against the problem
};

/// Runs the algorithm on every node and verifies the global output.
SimulationResult simulate(const LocalAlgorithm& algorithm, const PairwiseProblem& problem,
                          const Instance& instance);

/// Canonical whole-instance solve for a view that covers everything (a
/// full cycle, or a path window seeing both ends): every node derives the
/// same content-determined anchor/direction, solves the same word by DP
/// and reads off its own label. Shared by GatherAllAlgorithm and by the
/// synthesized algorithms' small-n regime; throws if the view does not
/// cover the instance or the instance has no valid labeling.
Label solve_full_view(const PairwiseProblem& problem, const View& view);

/// The Theta(n) baseline: gather everything, solve by DP, output your own
/// label. This is the paper's "any solvable problem is O(n)" algorithm
/// and the ground-truth oracle for the synthesized algorithms.
class GatherAllAlgorithm final : public LocalAlgorithm {
 public:
  explicit GatherAllAlgorithm(const PairwiseProblem& problem) : problem_(&problem) {}
  std::string name() const override { return "gather-all"; }
  std::size_t radius(std::size_t n) const override { return n; }
  Label run(const View& view) const override;

 private:
  const PairwiseProblem* problem_;
};

}  // namespace lclpath
