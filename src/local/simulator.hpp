// The LOCAL model simulator — chunked, thread-pooled, streaming.
//
// The paper's Section 2 observation: an algorithm with running time T(n)
// is equivalent to a function from radius-T(n) neighborhoods to outputs.
// We simulate exactly that: each node receives its *view* — the inputs,
// IDs and boundary shape of its radius-T window — and must return an
// output label. The simulator enforces locality by construction: a node's
// output can only depend on what is in its view.
//
// Execution model (million-node engine). simulate() splits the path /
// cycle into contiguous chunks of nodes and runs each chunk on the shared
// ThreadPool. Workers never copy a halo: a chunk's node windows are read
// straight from the instance arrays (the radius-r halo is the index range
// [begin - r, end + r), wrapping on cycles), so chunking at any
// granularity — including chunk_size < radius — is safe by construction.
// Within a chunk the worker reuses one sliding-window View buffer:
// advancing from node v to v+1 pops the front element, pushes the next
// halo element, and shifts the center, so the hot loop performs zero
// allocations. Undirected windows are re-canonicalized in place (reverse
// if the reversed ID sequence is lexicographically smaller, run, reverse
// back), which keeps the presentation bit-identical to extract_view.
//
// Verification is streaming: each chunk feeds its (input, output) pairs
// into a PairwiseChunkVerifier as they are produced, and the per-chunk
// verdicts are merged with the seam edges and the cycle wrap edge
// (lcl/verifier.hpp) into the exact whole-word verify_pairwise verdict.
// With SimulationOptions::keep_outputs = false the engine never
// materializes the output Word at all — verification state per chunk is
// O(1) — which is what makes 10^7–10^8-node runs affordable.
//
// Full-view regime. When the radius covers the whole instance (cycles:
// 2r + 1 >= n; paths: r >= n - 1) and the algorithm declares (via
// full_view_problem()) that it answers such views with solve_full_view,
// the engine solves the canonical word once and reads every node's label
// off the shared solution — O(n) instead of the O(n^2) of n per-node
// re-solves. SimulationOptions::full_view_memo = false disables the
// memoization and restores the honest per-node gather baseline.
//
// Bit-identity: for every thread count and chunk size, simulate() produces
// the same outputs, the same verdict (including failed_at and reason), and
// the same exceptions as simulate_reference(), the preserved serial loop.
// The simulation_engine_test suite sweeps exactly that equivalence.
//
// Locality validation beyond construction: tests also run the
// view-agreement property (two instances whose windows around v coincide
// must produce the same output at v), which guards against algorithms
// smuggling global information through the `n` parameter.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "lcl/verifier.hpp"
#include "local/instance.hpp"

namespace lclpath {

/// What a node sees after T rounds: the window of the graph within
/// distance T, clipped at path endpoints.
struct View {
  /// Inputs/IDs in path order within the window.
  Word inputs;
  std::vector<NodeId> ids;
  /// Position of the observing node within the window.
  std::size_t center = 0;
  /// True if the window is clipped on that side by a path endpoint.
  bool sees_left_end = false;
  bool sees_right_end = false;
  /// Number of nodes of the instance (known to all nodes in LOCAL).
  std::size_t n = 0;
  /// Whether the underlying topology is directed / a cycle.
  Topology topology = Topology::kDirectedCycle;

  std::size_t size() const { return inputs.size(); }
};

/// Extracts the radius-T view of node v. On cycles the window wraps; if
/// 2T + 1 >= n the node sees the whole cycle (window size capped at n and
/// the node knows it, because it knows n).
///
/// Undirected topologies are canonicalized so the storage orientation
/// cannot leak: end-free windows are presented in whichever direction
/// reads the lexicographically smaller ID sequence (IDs are distinct, so
/// this is well defined), and full-cycle views pick the rotation direction
/// the same way. Path windows that see an end keep global order — the two
/// physical ends of a path are distinguishable (the first/last constraints
/// anchor there), so end identity is content.
View extract_view(const Instance& instance, std::size_t v, std::size_t radius);

/// A deterministic LOCAL algorithm in view form.
class LocalAlgorithm {
 public:
  virtual ~LocalAlgorithm() = default;

  virtual std::string name() const = 0;
  /// The running time on n-node instances (view radius).
  virtual std::size_t radius(std::size_t n) const = 0;
  /// The output of a node given its radius(n) view.
  virtual Label run(const View& view) const = 0;

  /// Non-null iff run() answers every *instance-covering* view (a full
  /// cycle rotation, or a path window seeing both ends, on instances where
  /// radius(n) covers everything) by solve_full_view against the returned
  /// problem. Declaring this lets the engine memoize the canonical solve
  /// once per run instead of re-solving the same n-sized word n times.
  /// The default (nullptr) promises nothing and keeps per-node execution.
  virtual const PairwiseProblem* full_view_problem() const { return nullptr; }

  /// Batched span form (the chunk-sweep fast path). `window` is one
  /// contiguous stretch of the instance — a chunk plus its radius(n) halo
  /// on each side, clipped at path ends (sees_* flags set accordingly) and
  /// never longer than n on cycles — presented in storage order, NOT
  /// per-node canonicalized. Implementations must write, for each window
  /// position p in [begin, end), the label of the node sitting at p into
  /// out[p - begin], and must return false (without touching `out`) when
  /// they have no batched implementation, leaving the engine on its
  /// node-by-node path.
  ///
  /// Contract: out[p - begin] must equal run(extract_view(...)) of that
  /// node exactly — amortizing layout work across the span (and being
  /// presentation-equivariant on undirected topologies) must not change a
  /// single label. The engine guarantees begin >= radius(n) from the left
  /// window edge and end <= size() - radius(n) from the right, except
  /// where the window is clipped by a real path end. Support must be
  /// uniform: an implementation may not return true for some windows of an
  /// instance and false for others.
  virtual bool run_span(const View& window, std::size_t begin, std::size_t end,
                        Label* out) const {
    (void)window;
    (void)begin;
    (void)end;
    (void)out;
    return false;
  }
};

/// Knobs for the chunked engine. The defaults reproduce the historical
/// simulate() behavior (outputs materialized, memoized full-view regime)
/// while auto-scaling worker count with instance size.
struct SimulationOptions {
  /// Worker threads. 0 = auto: about one worker per 4096 nodes, capped at
  /// hardware concurrency, so small instances run inline and serial.
  std::size_t threads = 0;
  /// Nodes per chunk. 0 = auto (about four chunks per worker). Any value
  /// >= 1 is legal, including chunk_size < radius and chunk_size >= n.
  std::size_t chunk_size = 0;
  /// When false, the engine streams outputs into the verifier and never
  /// materializes the output Word (SimulationResult::outputs stays empty).
  bool keep_outputs = true;
  /// When false, full-view-regime algorithms run node-by-node even if they
  /// declare full_view_problem() — the honest Theta(n^2) gather baseline.
  bool full_view_memo = true;
  /// Optional cooperative cancellation/deadline budget (core/cancel.hpp),
  /// checkpointed once per simulated node in every chunk worker. A tripped
  /// limit aborts the run with CancelledError (the earliest chunk's, under
  /// the engine's deterministic error-collection order). Null = unbounded.
  const ExecutionBudget* budget = nullptr;
};

/// Result of simulating an algorithm over an instance.
struct SimulationResult {
  Word outputs;            ///< empty when SimulationOptions::keep_outputs is false
  std::size_t radius = 0;  ///< rounds used
  VerifyResult verdict;    ///< verification against the problem
  std::size_t threads_used = 1;  ///< pool workers the engine ran with
  std::size_t chunks = 1;        ///< chunks the instance was split into
};

/// Runs the algorithm on every node and verifies the global output with
/// the chunked streaming engine described above.
SimulationResult simulate(const LocalAlgorithm& algorithm, const PairwiseProblem& problem,
                          const Instance& instance, const SimulationOptions& options);

/// Default-options overload (kept so historical call sites read unchanged).
SimulationResult simulate(const LocalAlgorithm& algorithm, const PairwiseProblem& problem,
                          const Instance& instance);

/// The preserved serial reference: per-node extract_view + run, then one
/// whole-word verify_pairwise. This is the differential oracle the chunked
/// engine is tested bit-identical against; it is also the only path that
/// exercises extract_view itself for every node.
SimulationResult simulate_reference(const LocalAlgorithm& algorithm,
                                    const PairwiseProblem& problem,
                                    const Instance& instance);

/// Canonical whole-instance solve for a view that covers everything (a
/// full cycle, or a path window seeing both ends): every node derives the
/// same content-determined anchor/direction, solves the same word by DP
/// and reads off its own label. Shared by GatherAllAlgorithm and by the
/// synthesized algorithms' small-n regime; throws if the view does not
/// cover the instance or the instance has no valid labeling.
Label solve_full_view(const PairwiseProblem& problem, const View& view);

/// The Theta(n) baseline: gather everything, solve by DP, output your own
/// label. This is the paper's "any solvable problem is O(n)" algorithm
/// and the ground-truth oracle for the synthesized algorithms. Declares
/// full_view_problem(), so the engine's memoized path makes the baseline
/// itself O(n) per instance instead of O(n^2).
class GatherAllAlgorithm final : public LocalAlgorithm {
 public:
  explicit GatherAllAlgorithm(const PairwiseProblem& problem) : problem_(&problem) {}
  std::string name() const override { return "gather-all"; }
  std::size_t radius(std::size_t n) const override { return n; }
  Label run(const View& view) const override;
  const PairwiseProblem* full_view_problem() const override { return problem_; }

 private:
  const PairwiseProblem* problem_;
};

}  // namespace lclpath
