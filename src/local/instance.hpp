// Concrete path/cycle instances for the LOCAL model simulator.
//
// An instance is a topology, a word of input labels, and a vector of
// globally unique identifiers (the paper's O(log n)-bit IDs). Generators
// produce the workloads used by the tests and benchmarks: uniform random
// inputs, periodic inputs, adversarial ID assignments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/alphabet.hpp"
#include "core/rng.hpp"
#include "lcl/problem.hpp"

namespace lclpath {

using NodeId = std::uint64_t;

struct Instance {
  Topology topology = Topology::kDirectedCycle;
  Word inputs;
  std::vector<NodeId> ids;

  std::size_t size() const { return inputs.size(); }
  bool cycle() const { return is_cycle(topology); }

  /// Successor/predecessor index with wraparound on cycles; on paths the
  /// caller must respect the ends (checked in debug builds).
  std::size_t succ(std::size_t v) const;
  std::size_t pred(std::size_t v) const;

  /// Throws std::invalid_argument when sizes mismatch, IDs collide, or the
  /// instance is empty. Single pass over a reusable bitmap scratch for
  /// compact IDs (the sequential / permutation generators); falls back to
  /// a sort for sparse assignments (e.g. adversarial bit-reversed IDs).
  /// The engine calls this once per simulate() run, never per chunk.
  void validate() const;
};

/// Instance with sequential IDs 0..n-1 and the given inputs.
Instance make_instance(Topology topology, Word inputs);

/// Uniform random inputs over an alphabet of the given size; IDs are a
/// random permutation of 0..n-1 (so adversarial-ish but compact).
Instance random_instance(Topology topology, std::size_t n, std::size_t num_inputs, Rng& rng);

/// Inputs = pattern repeated to length n (truncated); random IDs.
Instance periodic_instance(Topology topology, std::size_t n, const Word& pattern, Rng& rng);

/// Worst-case Cole–Vishkin ID assignment: ids[v] = bitreverse64(v) XOR salt.
/// Consecutive nodes v, v+1 differ exactly in bits 63 - k for k = 0 ..
/// trailing_ones(v), so the lowest differing bit consecutive IDs disagree
/// on follows the ruler sequence *from the top of the word*: a CV halving
/// step sees near-maximal colors (about 2*63) instead of the O(log n)
/// colors sequential or permutation IDs give it. XOR-ing the salt
/// preserves every pairwise difference, so the CV trajectory is unchanged
/// while the raw ID values vary per instance. The map is a bijection on
/// 64-bit words, so IDs stay globally unique (but sparse: validate() takes
/// its sort path on these).
std::vector<NodeId> adversarial_ids(std::size_t n, NodeId salt = 0);

/// Uniform random inputs over an alphabet of the given size; IDs are an
/// adversarial_ids assignment salted from the RNG. The worst-case
/// counterpart of random_instance for benchmarking ID-sensitive
/// (Cole–Vishkin-based) algorithms.
Instance adversarial_instance(Topology topology, std::size_t n, std::size_t num_inputs,
                              Rng& rng);

}  // namespace lclpath
