// Concrete path/cycle instances for the LOCAL model simulator.
//
// An instance is a topology, a word of input labels, and a vector of
// globally unique identifiers (the paper's O(log n)-bit IDs). Generators
// produce the workloads used by the tests and benchmarks: uniform random
// inputs, periodic inputs, adversarial ID assignments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/alphabet.hpp"
#include "core/rng.hpp"
#include "lcl/problem.hpp"

namespace lclpath {

using NodeId = std::uint64_t;

struct Instance {
  Topology topology = Topology::kDirectedCycle;
  Word inputs;
  std::vector<NodeId> ids;

  std::size_t size() const { return inputs.size(); }
  bool cycle() const { return is_cycle(topology); }

  /// Successor/predecessor index with wraparound on cycles; on paths the
  /// caller must respect the ends (checked in debug builds).
  std::size_t succ(std::size_t v) const;
  std::size_t pred(std::size_t v) const;

  /// Throws std::invalid_argument when sizes mismatch, IDs collide, or the
  /// instance is empty.
  void validate() const;
};

/// Instance with sequential IDs 0..n-1 and the given inputs.
Instance make_instance(Topology topology, Word inputs);

/// Uniform random inputs over an alphabet of the given size; IDs are a
/// random permutation of 0..n-1 (so adversarial-ish but compact).
Instance random_instance(Topology topology, std::size_t n, std::size_t num_inputs, Rng& rng);

/// Inputs = pattern repeated to length n (truncated); random IDs.
Instance periodic_instance(Topology topology, std::size_t n, const Word& pattern, Rng& rng);

}  // namespace lclpath
