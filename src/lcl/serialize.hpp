// Plain-text (de)serialization of pairwise LCL problems.
//
// The paper's premise is that an LCL has a finite description which can be
// handed to a decision procedure; this is that description, as a
// line-oriented format:
//
//   lcl 3-coloring
//   topology directed-cycle
//   inputs _
//   outputs c0 c1 c2
//   node _ c0
//   node _ c1
//   node _ c2
//   edge c0 c1
//   ...
//   end
//
// Lines starting with '#' are comments. Used by the examples and by the
// golden-file tests.
#pragma once

#include <iosfwd>
#include <string>

#include "lcl/problem.hpp"

namespace lclpath {

std::string serialize(const PairwiseProblem& problem);
void serialize(const PairwiseProblem& problem, std::ostream& out);

/// Parses the format above; throws std::invalid_argument with a line
/// number on malformed input.
PairwiseProblem parse_problem(const std::string& text);
PairwiseProblem parse_problem(std::istream& in);

}  // namespace lclpath
