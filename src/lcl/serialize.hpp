// Plain-text (de)serialization of pairwise LCL problems.
//
// The paper's premise is that an LCL has a finite description which can be
// handed to a decision procedure; this is that description, as a
// line-oriented format:
//
//   lcl 3-coloring
//   topology directed-cycle
//   inputs _
//   outputs c0 c1 c2
//   node _ c0
//   node _ c1
//   node _ c2
//   edge c0 c1
//   ...
//   end
//
// Path problems may additionally carry `first <in> <out>` lines (the
// distinct node constraint for the path start) and a single
// `last <out> ...` line (the allowed-output mask for the path end); both
// are omitted when they equal the defaults, so problems without endpoint
// constraints serialize exactly as before.
//
// Lines starting with '#' are comments. Used by the examples and by the
// golden-file tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "lcl/problem.hpp"

namespace lclpath {

std::string serialize(const PairwiseProblem& problem);
void serialize(const PairwiseProblem& problem, std::ostream& out);

/// Parses the format above; throws std::invalid_argument with a line
/// number on malformed input and never crashes on hostile bytes. Malformed
/// includes truncated blocks (no 'end'), unknown keywords or labels,
/// duplicate 'lcl'/'topology'/'inputs'/'outputs' declarations, duplicate
/// labels within an alphabet, and alphabets beyond an internal size cap
/// (absurd declarations would otherwise be allocation bombs downstream).
/// Batch pipelines surface these as BatchErrorKind::kMalformed.
PairwiseProblem parse_problem(const std::string& text);
PairwiseProblem parse_problem(std::istream& in);

/// Parses a stream of concatenated problem blocks (each terminated by
/// `end`) until EOF. Blank lines and comments between blocks are skipped.
std::vector<PairwiseProblem> parse_problems(std::istream& in);
std::vector<PairwiseProblem> parse_problems(const std::string& text);

/// The serialized form minus the name line: two problems have the same key
/// iff they are operator==-equal (names are cosmetic there too). Used as
/// the memo-cache identity for batch classification.
std::string canonical_key(const PairwiseProblem& problem);

/// FNV-1a of canonical_key(); cheap fingerprint for hash maps. Callers
/// that cannot tolerate collisions must compare keys on hash hits. The
/// string overload hashes an already-computed canonical key without
/// re-serializing the problem.
std::uint64_t canonical_hash(const PairwiseProblem& problem);
std::uint64_t canonical_hash(std::string_view canonical_key);

}  // namespace lclpath
