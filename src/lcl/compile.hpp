// Compilation of radius-r LCLs to the pairwise (r = 1) canonical form.
//
// The paper's decidability machinery (Section 4) is stated for general
// LCLs but all of its bookkeeping happens on boundary regions of width
// O(r); our decider instead takes the beta-normalized shape (Section 2)
// generalized to arbitrary alphabets. This file provides the standard
// window construction that makes the two views interchangeable:
//
//   * each node's new output is its radius-r window of (input, output)
//     pairs in the original problem;
//   * the new node constraint checks that the window's center input matches
//     the node's real input and that the window is an acceptable
//     neighborhood of the original problem;
//   * the new edge constraint checks that consecutive windows are
//     consistent overlapping shifts of one another.
//
// A labeling of the compiled problem exists iff one of the original
// problem exists, and any T-round algorithm for one yields a (T +- r)-round
// algorithm for the other, so the complexity class is preserved.
#pragma once

#include "lcl/problem.hpp"

namespace lclpath {

/// Result of compiling: the pairwise problem plus codecs between original
/// and compiled labelings.
struct CompiledProblem {
  PairwiseProblem pairwise;
  /// Window shape metadata for decoding: windows are full (2r+1 wide) on
  /// cycles; on paths, truncated windows near the endpoints carry their
  /// center offset.
  std::size_t radius = 1;

  /// Maps a compiled output label back to the original center output.
  Label decode_center(Label compiled_output) const;
  /// Encodes an original labeling as the compiled one (for tests).
  Word encode(const GeneralProblem& original, const Word& inputs, const Word& outputs) const;
  /// Decodes a compiled labeling to the original one.
  Word decode(const Word& compiled_outputs) const;

  /// center output per compiled label (decode table).
  std::vector<Label> center_outputs;
  /// full window content per compiled label (for encode / tests).
  std::vector<WindowConstraint> windows;
};

/// Compiles a general radius-r problem into pairwise form. Only windows
/// acceptable for the original problem become output labels, which keeps
/// the compiled alphabet as small as the problem allows.
CompiledProblem compile_to_pairwise(const GeneralProblem& problem);

}  // namespace lclpath
