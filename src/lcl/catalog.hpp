// A catalog of classic LCL problems on paths/cycles with known LOCAL
// complexities. These are the ground truth used to validate the classifier
// (Theorems 8/9) and the benchmark workloads for experiments E7/E8/E9.
//
// Known classes (deterministic LOCAL):
//   * k-coloring, k >= 3, on cycles ............... Theta(log* n)
//   * 2-coloring on directed paths ................ Theta(n)
//   * 2-coloring on cycles ........................ unsolvable (odd cycles)
//   * maximal independent set on cycles ........... Theta(log* n)
//   * constant output / copy input / shift input .. O(1)
//   * secret agreement (paper's Start(phi) idea) ... Theta(n), always solvable
//   * input-gated coloring ........................ Theta(log* n)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lcl/problem.hpp"

namespace lclpath {

/// Complexity classes an LCL on a path/cycle can have (paper Section 1:
/// the landscape on Delta = 2 collapses to these three), plus the
/// degenerate case that some instance admits no valid labeling at all.
enum class ComplexityClass : std::uint8_t {
  kUnsolvable,  ///< some instance has no valid labeling
  kConstant,    ///< O(1)
  kLogStar,     ///< Theta(log* n)
  kLinear,      ///< Theta(n)
};

std::string to_string(ComplexityClass c);

/// A catalog entry: a problem plus its textbook complexity.
struct CatalogEntry {
  PairwiseProblem problem;
  ComplexityClass expected;
  std::string note;
};

namespace catalog {

/// Proper k-coloring (outputs c0..c_{k-1}, adjacent outputs differ).
/// Single dummy input label. Theta(log* n) for k >= 3 on cycles;
/// k = 2 is Theta(n) on paths and unsolvable on cycles.
PairwiseProblem coloring(std::size_t k, Topology topology = Topology::kDirectedCycle);

/// Maximal independent set on a directed cycle, phrased pairwise:
/// outputs {I, A, B}; I nodes form the set; A = "predecessor is in I",
/// B = "successor is in I"; gaps between I nodes have length 1 or 2.
/// Theta(log* n).
PairwiseProblem maximal_independent_set();

/// All nodes must output the single label "x" — O(1), zero rounds.
PairwiseProblem constant_output(Topology topology = Topology::kDirectedCycle);

/// Output must equal the binary input — O(1), zero rounds.
PairwiseProblem copy_input(Topology topology = Topology::kDirectedCycle);

/// Proper 2-coloring (alias coloring(2)).
PairwiseProblem two_coloring(Topology topology = Topology::kDirectedCycle);

/// out(v) = out(pred(v)) XOR in(v): forces every output to be the prefix
/// parity of the inputs, up to the free choice at the path start.
/// Theta(n) on directed paths; on cycles odd-parity instances are
/// unsolvable.
PairwiseProblem prefix_parity(Topology topology = Topology::kDirectedPath);

/// A problem with no valid labeling on any instance (empty C_node).
PairwiseProblem empty_problem(Topology topology = Topology::kDirectedCycle);

/// Secret agreement — a miniature of the paper's Start(phi) construction
/// (Section 3.2): inputs {sa, sb, 0}. A node with input sa outputs the
/// marker Sa (resp. sb -> Sb); plain nodes must repeat the secret letter
/// (A after Sa, B after Sb) until the next marker; on marker-free
/// instances everybody may output the escape letter E. Always solvable,
/// Theta(n): far-from-marker nodes cannot learn the secret locally.
PairwiseProblem agreement(Topology topology = Topology::kDirectedCycle);

/// out(v) must equal in(succ(v)), carried as output pairs (my input, my
/// guess). O(1) — exactly one round.
PairwiseProblem shift_input(Topology topology = Topology::kDirectedCycle);

/// Outputs are (color in {0,1,2}, flag); flag must equal the node's input
/// bit; where the flag is 1 the color must differ from the predecessor's.
/// All-ones instances embed 3-coloring: Theta(log* n).
PairwiseProblem input_gated_coloring(Topology topology = Topology::kDirectedCycle);

/// Two outputs, every pair allowed everywhere — trivial O(1) with a
/// nontrivial alphabet.
PairwiseProblem always_accept(Topology topology = Topology::kDirectedCycle);

/// The full validation catalog with expected classes.
std::vector<CatalogEntry> validation_catalog();

}  // namespace catalog
}  // namespace lclpath
