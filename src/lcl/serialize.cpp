#include "lcl/serialize.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace lclpath {

namespace {

const std::map<std::string, Topology>& topology_names() {
  static const std::map<std::string, Topology> names = {
      {"directed-path", Topology::kDirectedPath},
      {"directed-cycle", Topology::kDirectedCycle},
      {"undirected-path", Topology::kUndirectedPath},
      {"undirected-cycle", Topology::kUndirectedCycle},
  };
  return names;
}

std::string topology_keyword(Topology t) {
  for (const auto& [name, topo] : topology_names()) {
    if (topo == t) return name;
  }
  return "directed-cycle";
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

/// Blank, or a comment — '#' as the first non-whitespace character.
bool is_blank_or_comment(const std::string& line) {
  const std::size_t first = line.find_first_not_of(" \t\r");
  return first == std::string::npos || line[first] == '#';
}

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::invalid_argument("parse_problem: line " + std::to_string(line_no) + ": " + why);
}

/// Alphabets beyond this are rejected as malformed rather than honored:
/// every downstream structure is at least quadratic in alphabet size (the
/// transition system alone is |Sigma_out|^2 bits per element), so a hostile
/// "inputs" line with millions of labels would turn the parser's caller
/// into an allocation bomb before any budget checkpoint runs.
constexpr std::size_t kMaxAlphabetSize = 4096;

}  // namespace

std::string serialize(const PairwiseProblem& problem) {
  std::ostringstream out;
  serialize(problem, out);
  return out.str();
}

void serialize(const PairwiseProblem& problem, std::ostream& out) {
  out << "lcl " << problem.name() << "\n";
  out << "topology " << topology_keyword(problem.topology()) << "\n";
  out << "inputs";
  for (const std::string& name : problem.inputs().names()) out << " " << name;
  out << "\noutputs";
  for (const std::string& name : problem.outputs().names()) out << " " << name;
  out << "\n";
  for (Label in = 0; in < problem.num_inputs(); ++in) {
    for (Label o = 0; o < problem.num_outputs(); ++o) {
      if (problem.node_ok(in, o)) {
        out << "node " << problem.inputs().name(in) << " " << problem.outputs().name(o)
            << "\n";
      }
    }
  }
  for (Label a = 0; a < problem.num_outputs(); ++a) {
    for (Label b = 0; b < problem.num_outputs(); ++b) {
      if (problem.edge_ok(a, b)) {
        out << "edge " << problem.outputs().name(a) << " " << problem.outputs().name(b)
            << "\n";
      }
    }
  }
  if (problem.has_first_constraint()) {
    for (Label in = 0; in < problem.num_inputs(); ++in) {
      for (Label o = 0; o < problem.num_outputs(); ++o) {
        if (problem.node_first_ok(in, o)) {
          out << "first " << problem.inputs().name(in) << " "
              << problem.outputs().name(o) << "\n";
        }
      }
    }
  }
  if (problem.last_mask().dim() != 0) {
    out << "last";
    for (Label o = 0; o < problem.num_outputs(); ++o) {
      if (problem.last_ok(o)) out << " " << problem.outputs().name(o);
    }
    out << "\n";
  }
  out << "end\n";
}

PairwiseProblem parse_problem(const std::string& text) {
  std::istringstream stream(text);
  return parse_problem(stream);
}

PairwiseProblem parse_problem(std::istream& in) {
  std::string name = "unnamed";
  Topology topology = Topology::kDirectedCycle;
  bool saw_name = false;
  bool saw_topology = false;
  std::optional<Alphabet> inputs;
  std::optional<Alphabet> outputs;
  struct Pair {
    std::string a, b;
    std::size_t line;
  };
  std::vector<Pair> node_pairs;
  std::vector<Pair> edge_pairs;
  std::vector<Pair> first_pairs;
  std::optional<std::vector<std::string>> last_labels;
  std::size_t last_line = 0;
  bool saw_end = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_blank_or_comment(line)) continue;
    const std::vector<std::string> tokens = tokens_of(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];
    if (keyword == "lcl") {
      if (tokens.size() < 2) fail(line_no, "'lcl' needs a name");
      if (saw_name) fail(line_no, "duplicate 'lcl' line");
      saw_name = true;
      name = tokens[1];
      for (std::size_t i = 2; i < tokens.size(); ++i) name += " " + tokens[i];
    } else if (keyword == "topology") {
      if (tokens.size() != 2) fail(line_no, "'topology' needs one keyword");
      if (saw_topology) fail(line_no, "duplicate 'topology' line");
      saw_topology = true;
      auto it = topology_names().find(tokens[1]);
      if (it == topology_names().end()) fail(line_no, "unknown topology '" + tokens[1] + "'");
      topology = it->second;
    } else if (keyword == "inputs" || keyword == "outputs") {
      if (tokens.size() < 2) fail(line_no, "'" + keyword + "' needs at least one label");
      if (keyword == "inputs" ? inputs.has_value() : outputs.has_value()) {
        fail(line_no, "duplicate '" + keyword + "' line");
      }
      if (tokens.size() - 1 > kMaxAlphabetSize) {
        fail(line_no, "'" + keyword + "' declares " + std::to_string(tokens.size() - 1) +
                          " labels; the limit is " + std::to_string(kMaxAlphabetSize));
      }
      Alphabet alphabet;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (alphabet.contains(tokens[i])) fail(line_no, "duplicate label '" + tokens[i] + "'");
        alphabet.add(tokens[i]);
      }
      (keyword == "inputs" ? inputs : outputs) = std::move(alphabet);
    } else if (keyword == "node" || keyword == "edge" || keyword == "first") {
      if (tokens.size() != 3) fail(line_no, "'" + keyword + "' needs two labels");
      auto& pairs = keyword == "node" ? node_pairs
                    : keyword == "edge" ? edge_pairs
                                        : first_pairs;
      pairs.push_back({tokens[1], tokens[2], line_no});
    } else if (keyword == "last") {
      // Multiple `last` lines accumulate (union), like node/edge/first.
      if (!last_labels) last_labels.emplace();
      last_labels->insert(last_labels->end(), tokens.begin() + 1, tokens.end());
      last_line = line_no;
    } else if (keyword == "end") {
      saw_end = true;
      break;
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (!saw_end) fail(line_no, "missing 'end'");
  if (!inputs) fail(line_no, "missing 'inputs'");
  if (!outputs) fail(line_no, "missing 'outputs'");

  PairwiseProblem problem(name, *inputs, *outputs, topology);
  for (const Pair& p : node_pairs) {
    if (!inputs->contains(p.a)) fail(p.line, "unknown input label '" + p.a + "'");
    if (!outputs->contains(p.b)) fail(p.line, "unknown output label '" + p.b + "'");
    problem.allow_node(p.a, p.b);
  }
  for (const Pair& p : edge_pairs) {
    if (!outputs->contains(p.a)) fail(p.line, "unknown output label '" + p.a + "'");
    if (!outputs->contains(p.b)) fail(p.line, "unknown output label '" + p.b + "'");
    problem.allow_edge(p.a, p.b);
  }
  for (const Pair& p : first_pairs) {
    if (!inputs->contains(p.a)) fail(p.line, "unknown input label '" + p.a + "'");
    if (!outputs->contains(p.b)) fail(p.line, "unknown output label '" + p.b + "'");
    problem.allow_node_first(p.a, p.b);
  }
  if (last_labels) {
    BitVector allowed(outputs->size());
    for (const std::string& label : *last_labels) {
      if (!outputs->contains(label)) {
        fail(last_line, "unknown output label '" + label + "'");
      }
      allowed.set(outputs->at(label), true);
    }
    problem.restrict_last(allowed);
  }
  return problem;
}

std::vector<PairwiseProblem> parse_problems(std::istream& in) {
  std::vector<PairwiseProblem> problems;
  std::string block;
  bool block_has_content = false;
  std::string line;
  while (std::getline(in, line)) {
    block += line;
    block += '\n';
    if (is_blank_or_comment(line)) continue;
    const std::vector<std::string> tokens = tokens_of(line);
    if (tokens.empty()) continue;
    block_has_content = true;
    if (tokens[0] == "end") {
      problems.push_back(parse_problem(block));
      block.clear();
      block_has_content = false;
    }
  }
  // Trailing lines after the final `end` must form a complete block.
  if (block_has_content) problems.push_back(parse_problem(block));
  return problems;
}

std::vector<PairwiseProblem> parse_problems(const std::string& text) {
  std::istringstream stream(text);
  return parse_problems(stream);
}

std::string canonical_key(const PairwiseProblem& problem) {
  std::string text = serialize(problem);
  // Drop the leading "lcl <name>" line: names don't affect semantics
  // (operator== ignores them) and must not split the memo cache.
  const std::size_t newline = text.find('\n');
  return newline == std::string::npos ? std::string() : text.substr(newline + 1);
}

std::uint64_t canonical_hash(std::string_view canonical_key) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a 64-bit offset basis
  for (const char c : canonical_key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV-1a 64-bit prime
  }
  return hash;
}

std::uint64_t canonical_hash(const PairwiseProblem& problem) {
  return canonical_hash(canonical_key(problem));
}

}  // namespace lclpath
