#include "lcl/catalog.hpp"

namespace lclpath {

std::string to_string(ComplexityClass c) {
  switch (c) {
    case ComplexityClass::kUnsolvable: return "UNSOLVABLE";
    case ComplexityClass::kConstant: return "O(1)";
    case ComplexityClass::kLogStar: return "Theta(log* n)";
    case ComplexityClass::kLinear: return "Theta(n)";
  }
  return "?";
}

namespace catalog {

PairwiseProblem coloring(std::size_t k, Topology topology) {
  Alphabet in({"_"});
  Alphabet out;
  for (std::size_t i = 0; i < k; ++i) out.add("c" + std::to_string(i));
  PairwiseProblem p(std::to_string(k) + "-coloring", in, out, topology);
  for (Label c = 0; c < k; ++c) p.allow_node(Label{0}, c);
  for (Label a = 0; a < k; ++a)
    for (Label b = 0; b < k; ++b)
      if (a != b) p.allow_edge(a, b);
  return p;
}

PairwiseProblem maximal_independent_set() {
  Alphabet in({"_"});
  Alphabet out({"I", "A", "B"});
  PairwiseProblem p("maximal-independent-set", in, out, Topology::kDirectedCycle);
  for (Label o = 0; o < 3; ++o) p.allow_node(Label{0}, o);
  // Allowed successor patterns: I A, I B (then I), A I, A B, B I.
  p.allow_edge("I", "A");
  p.allow_edge("I", "B");
  p.allow_edge("A", "I");
  p.allow_edge("A", "B");
  p.allow_edge("B", "I");
  return p;
}

PairwiseProblem constant_output(Topology topology) {
  Alphabet in({"_"});
  Alphabet out({"x"});
  PairwiseProblem p("constant-output", in, out, topology);
  p.allow_node("_", "x");
  p.allow_edge("x", "x");
  return p;
}

PairwiseProblem copy_input(Topology topology) {
  Alphabet in({"0", "1"});
  Alphabet out({"o0", "o1"});
  PairwiseProblem p("copy-input", in, out, topology);
  p.allow_node("0", "o0");
  p.allow_node("1", "o1");
  for (Label a = 0; a < 2; ++a)
    for (Label b = 0; b < 2; ++b) p.allow_edge(a, b);
  return p;
}

PairwiseProblem two_coloring(Topology topology) {
  PairwiseProblem p = coloring(2, topology);
  p.set_name("2-coloring");
  return p;
}

PairwiseProblem prefix_parity(Topology topology) {
  Alphabet in({"0", "1"});
  // An edge constraint cannot read the successor's input directly, so
  // outputs carry (parity, my input bit) and the edge rule reads the bit
  // from the successor's output label.
  Alphabet out4({"e0", "e1", "o0", "o1"});  // (parity, input bit)
  PairwiseProblem q("prefix-parity", in, out4, topology);
  q.allow_node("0", "e0");
  q.allow_node("0", "o0");
  q.allow_node("1", "e1");
  q.allow_node("1", "o1");
  // parity(v) = parity(pred) XOR input(v); the input bit is readable from
  // the successor's output label.
  auto parity_of = [](std::string_view name) { return name[0]; };
  auto bit_of = [](std::string_view name) { return name[1]; };
  for (const char* from : {"e0", "e1", "o0", "o1"}) {
    for (const char* to : {"e0", "e1", "o0", "o1"}) {
      const bool flip = bit_of(to) == '1';
      const bool parity_matches =
          flip ? parity_of(from) != parity_of(to) : parity_of(from) == parity_of(to);
      if (parity_matches) q.allow_edge(from, to);
    }
  }
  return q;
}

PairwiseProblem empty_problem(Topology topology) {
  Alphabet in({"_"});
  Alphabet out({"x"});
  PairwiseProblem p("empty-problem", in, out, topology);
  // No node constraint allowed: nothing is ever valid.
  p.allow_edge("x", "x");
  return p;
}

PairwiseProblem agreement(Topology topology) {
  Alphabet in({"sa", "sb", "0"});
  Alphabet out({"Sa", "Sb", "A", "B", "E"});
  PairwiseProblem p("secret-agreement", in, out, topology);
  p.allow_node("sa", "Sa");
  p.allow_node("sb", "Sb");
  p.allow_node("0", "A");
  p.allow_node("0", "B");
  p.allow_node("0", "E");
  // A marker starts its secret; the secret letter repeats until the next
  // marker; E forms unanchored all-E labelings (only possible with no
  // markers anywhere, since E has no edge to or from any other label).
  p.allow_edge("Sa", "A");
  p.allow_edge("Sb", "B");
  p.allow_edge("A", "A");
  p.allow_edge("B", "B");
  p.allow_edge("A", "Sa");
  p.allow_edge("A", "Sb");
  p.allow_edge("B", "Sa");
  p.allow_edge("B", "Sb");
  // Adjacent markers (no plain node between them) must chain too.
  p.allow_edge("Sa", "Sa");
  p.allow_edge("Sa", "Sb");
  p.allow_edge("Sb", "Sa");
  p.allow_edge("Sb", "Sb");
  p.allow_edge("E", "E");
  return p;
}

PairwiseProblem shift_input(Topology topology) {
  Alphabet in({"0", "1"});
  Alphabet out({"i0g0", "i0g1", "i1g0", "i1g1"});  // (my input, my guess)
  PairwiseProblem p("shift-input", in, out, topology);
  p.allow_node("0", "i0g0");
  p.allow_node("0", "i0g1");
  p.allow_node("1", "i1g0");
  p.allow_node("1", "i1g1");
  // Predecessor's guess must equal my input (first character after 'i').
  auto guess_of = [](std::string_view name) { return name[3]; };
  auto input_of = [](std::string_view name) { return name[1]; };
  for (const char* from : {"i0g0", "i0g1", "i1g0", "i1g1"}) {
    for (const char* to : {"i0g0", "i0g1", "i1g0", "i1g1"}) {
      if (guess_of(from) == input_of(to)) p.allow_edge(from, to);
    }
  }
  return p;
}

PairwiseProblem input_gated_coloring(Topology topology) {
  Alphabet in({"0", "1"});
  Alphabet out;
  for (int c = 0; c < 3; ++c)
    for (int f = 0; f < 2; ++f) out.add("c" + std::to_string(c) + "f" + std::to_string(f));
  PairwiseProblem p("input-gated-coloring", in, out, topology);
  auto color_of = [](std::string_view name) { return name[1]; };
  auto flag_of = [](std::string_view name) { return name[3]; };
  for (const std::string& o : p.outputs().names()) {
    // flag must equal the input bit
    p.allow_node(flag_of(o) == '0' ? "0" : "1", o);
  }
  for (const std::string& a : p.outputs().names()) {
    for (const std::string& b : p.outputs().names()) {
      const bool strict = flag_of(b) == '1';
      if (!strict || color_of(a) != color_of(b)) p.allow_edge(a, b);
    }
  }
  return p;
}

PairwiseProblem always_accept(Topology topology) {
  Alphabet in({"_"});
  Alphabet out({"x", "y"});
  PairwiseProblem p("always-accept", in, out, topology);
  p.allow_node("_", "x");
  p.allow_node("_", "y");
  for (Label a = 0; a < 2; ++a)
    for (Label b = 0; b < 2; ++b) p.allow_edge(a, b);
  return p;
}

std::vector<CatalogEntry> validation_catalog() {
  std::vector<CatalogEntry> entries;
  entries.push_back({coloring(3), ComplexityClass::kLogStar, "classic 3-coloring"});
  entries.push_back({coloring(4), ComplexityClass::kLogStar, "4-coloring"});
  entries.push_back({maximal_independent_set(), ComplexityClass::kLogStar, "MIS"});
  entries.push_back({constant_output(), ComplexityClass::kConstant, "trivial"});
  entries.push_back({copy_input(), ComplexityClass::kConstant, "0 rounds, inputs"});
  entries.push_back({shift_input(), ComplexityClass::kConstant, "1 round, inputs"});
  entries.push_back({always_accept(), ComplexityClass::kConstant, "everything allowed"});
  entries.push_back(
      {two_coloring(), ComplexityClass::kUnsolvable, "odd cycles have no 2-coloring"});
  entries.push_back({two_coloring(Topology::kDirectedPath), ComplexityClass::kLinear,
                     "2-coloring a path needs parity of the position"});
  entries.push_back({empty_problem(), ComplexityClass::kUnsolvable, "empty constraints"});
  entries.push_back({prefix_parity(Topology::kDirectedPath), ComplexityClass::kLinear,
                     "global parity propagation"});
  entries.push_back({prefix_parity(Topology::kDirectedCycle), ComplexityClass::kUnsolvable,
                     "odd-parity cycles unsolvable"});
  entries.push_back({agreement(), ComplexityClass::kLinear,
                     "paper Section 3.2 Start(phi) secret, miniature"});
  entries.push_back({agreement(Topology::kDirectedPath), ComplexityClass::kLinear,
                     "secret agreement on paths"});
  entries.push_back(
      {input_gated_coloring(), ComplexityClass::kLogStar, "inputs gate the coloring"});
  return entries;
}

}  // namespace catalog
}  // namespace lclpath
