#include "lcl/compile.hpp"

#include <map>
#include <stdexcept>

namespace lclpath {

namespace {

/// Window overlap check: w2 must equal w1 shifted left by one, on both
/// inputs and outputs, over the full overlap range.
bool consistent_shift(const WindowConstraint& w1, const WindowConstraint& w2) {
  // Full windows on a cycle all have the same width and center.
  const std::size_t width = w1.inputs.size();
  if (w2.inputs.size() != width) return false;
  for (std::size_t i = 0; i + 1 < width; ++i) {
    if (w1.inputs[i + 1] != w2.inputs[i]) return false;
    if (w1.outputs[i + 1] != w2.outputs[i]) return false;
  }
  return true;
}

std::string window_name(const GeneralProblem& p, const WindowConstraint& w) {
  std::string name = "[";
  for (std::size_t i = 0; i < w.inputs.size(); ++i) {
    if (i > 0) name += "|";
    name += p.inputs().name(w.inputs[i]) + "/" + p.outputs().name(w.outputs[i]);
  }
  name += "]";
  return name;
}

}  // namespace

Label CompiledProblem::decode_center(Label compiled_output) const {
  if (compiled_output >= center_outputs.size()) {
    throw std::out_of_range("CompiledProblem::decode_center: bad label");
  }
  return center_outputs[compiled_output];
}

Word CompiledProblem::encode(const GeneralProblem& original, const Word& inputs,
                             const Word& outputs) const {
  const std::size_t n = inputs.size();
  const std::size_t r = radius;
  Word compiled(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    WindowConstraint w;
    w.center = r;
    for (std::size_t k = 0; k < 2 * r + 1; ++k) {
      const std::size_t idx = (v + n + k - r) % n;
      w.inputs.push_back(inputs[idx]);
      w.outputs.push_back(outputs[idx]);
    }
    bool found = false;
    for (std::size_t label = 0; label < windows.size(); ++label) {
      if (windows[label] == w) {
        compiled[v] = static_cast<Label>(label);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument(
          "CompiledProblem::encode: original labeling uses a non-acceptable window "
          "(node " +
          std::to_string(v) + " of '" + original.name() + "')");
    }
  }
  return compiled;
}

Word CompiledProblem::decode(const Word& compiled_outputs) const {
  Word out;
  out.reserve(compiled_outputs.size());
  for (Label label : compiled_outputs) out.push_back(decode_center(label));
  return out;
}

CompiledProblem compile_to_pairwise(const GeneralProblem& problem) {
  if (!is_cycle(problem.topology())) {
    throw std::invalid_argument(
        "compile_to_pairwise: only cycle topologies are supported; author path "
        "problems directly in pairwise form (the paper's beta-normalized shape) so "
        "that endpoint behavior is explicit");
  }
  const std::size_t r = problem.radius();
  const std::size_t full = 2 * r + 1;

  // Deduplicate acceptable full windows; each becomes an output label.
  std::vector<WindowConstraint> windows;
  for (const WindowConstraint& w : problem.windows()) {
    if (w.inputs.size() != full || w.center != r) continue;  // paths-only shapes
    bool seen = false;
    for (const WindowConstraint& existing : windows) {
      if (existing == w) {
        seen = true;
        break;
      }
    }
    if (!seen) windows.push_back(w);
  }

  Alphabet out_alpha;
  for (const WindowConstraint& w : windows) out_alpha.add(window_name(problem, w));

  CompiledProblem compiled{
      PairwiseProblem(problem.name() + " (compiled r=" + std::to_string(r) + ")",
                      problem.inputs(), out_alpha, problem.topology()),
      r,
      {},
      {}};
  compiled.windows = windows;
  for (const WindowConstraint& w : windows) compiled.center_outputs.push_back(w.outputs[r]);

  // Node constraint: the window's center input must match the node's input.
  for (std::size_t label = 0; label < windows.size(); ++label) {
    compiled.pairwise.allow_node(windows[label].inputs[r], static_cast<Label>(label));
  }
  // Edge constraint: consecutive windows are one-step shifts of each other.
  for (std::size_t a = 0; a < windows.size(); ++a) {
    for (std::size_t b = 0; b < windows.size(); ++b) {
      if (consistent_shift(windows[a], windows[b])) {
        compiled.pairwise.allow_edge(static_cast<Label>(a), static_cast<Label>(b));
      }
    }
  }
  return compiled;
}

}  // namespace lclpath
