#include "lcl/verifier.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lclpath {

namespace {

std::string node_fail(const PairwiseProblem& p, const Word& in, const Word& out,
                      std::size_t v) {
  return "node " + std::to_string(v) + ": (" + p.inputs().name(in[v]) + ", " +
         p.outputs().name(out[v]) + ") not in C_node";
}

std::string edge_fail(const PairwiseProblem& p, const Word& out, std::size_t u,
                      std::size_t v) {
  return "edge " + std::to_string(u) + "->" + std::to_string(v) + ": (" +
         p.outputs().name(out[u]) + ", " + p.outputs().name(out[v]) + ") not in C_edge";
}

}  // namespace

VerifyResult verify_pairwise(const PairwiseProblem& problem, const Word& inputs,
                             const Word& outputs) {
  if (inputs.size() != outputs.size() || inputs.empty()) {
    return VerifyResult::failure(0, "input/output size mismatch or empty instance");
  }
  if (!is_directed(problem.topology()) && !problem.is_orientation_symmetric()) {
    throw std::logic_error(
        "verify_pairwise: undirected topology requires an orientation-symmetric edge "
        "constraint");
  }
  const std::size_t n = inputs.size();
  const bool path = !is_cycle(problem.topology());
  for (std::size_t v = 0; v < n; ++v) {
    const bool ok = (path && v == 0) ? problem.node_first_ok(inputs[v], outputs[v])
                                     : problem.node_ok(inputs[v], outputs[v]);
    if (!ok) {
      return VerifyResult::failure(v, node_fail(problem, inputs, outputs, v));
    }
  }
  if (path && !problem.last_ok(outputs[n - 1])) {
    return VerifyResult::failure(n - 1, "last node output '" +
                                            problem.outputs().name(outputs[n - 1]) +
                                            "' not allowed at a path end");
  }
  for (std::size_t v = 1; v < n; ++v) {
    if (!problem.edge_ok(outputs[v - 1], outputs[v])) {
      return VerifyResult::failure(v, edge_fail(problem, outputs, v - 1, v));
    }
  }
  if (is_cycle(problem.topology())) {
    if (n == 1) {
      // Degenerate self-loop cycle: the wrap edge is (v, v).
      if (!problem.edge_ok(outputs[0], outputs[0])) {
        return VerifyResult::failure(0, edge_fail(problem, outputs, 0, 0));
      }
    } else if (!problem.edge_ok(outputs[n - 1], outputs[0])) {
      return VerifyResult::failure(0, edge_fail(problem, outputs, n - 1, 0));
    }
  }
  return VerifyResult::success();
}

bool locally_consistent_at(const PairwiseProblem& problem, const Word& inputs,
                           const Word& outputs, std::size_t v, bool cycle) {
  assert(v < inputs.size() && inputs.size() == outputs.size());
  const bool first_of_path = !cycle && v == 0;
  const bool node_ok = first_of_path ? problem.node_first_ok(inputs[v], outputs[v])
                                     : problem.node_ok(inputs[v], outputs[v]);
  if (!node_ok) return false;
  if (v > 0) return problem.edge_ok(outputs[v - 1], outputs[v]);
  if (cycle) return problem.edge_ok(outputs[outputs.size() - 1], outputs[0]);
  return true;  // first node of a path has no predecessor check
}

VerifyResult verify_general(const GeneralProblem& problem, const Word& inputs,
                            const Word& outputs) {
  if (inputs.size() != outputs.size() || inputs.empty()) {
    return VerifyResult::failure(0, "input/output size mismatch or empty instance");
  }
  const std::size_t n = inputs.size();
  const std::size_t r = problem.radius();
  const bool cycle = is_cycle(problem.topology());
  for (std::size_t v = 0; v < n; ++v) {
    WindowConstraint window;
    if (cycle) {
      // Full window with wraparound. (For tiny cycles the window may see a
      // node more than once; that matches the universal-cover view the
      // LOCAL model gives an algorithm.)
      window.center = r;
      for (std::size_t k = 0; k < 2 * r + 1; ++k) {
        const std::size_t idx = (v + n + k - r) % n;
        window.inputs.push_back(inputs[idx]);
        window.outputs.push_back(outputs[idx]);
      }
    } else {
      const std::size_t lo = v >= r ? v - r : 0;
      const std::size_t hi = std::min(n - 1, v + r);
      window.center = v - lo;
      for (std::size_t idx = lo; idx <= hi; ++idx) {
        window.inputs.push_back(inputs[idx]);
        window.outputs.push_back(outputs[idx]);
      }
    }
    if (!problem.accepts(window)) {
      return VerifyResult::failure(v, "node " + std::to_string(v) +
                                          ": radius-" + std::to_string(r) +
                                          " window not acceptable");
    }
  }
  return VerifyResult::success();
}

std::optional<Word> solve_by_dp(const PairwiseProblem& problem, const Word& inputs) {
  std::vector<std::optional<Label>> fixed(inputs.size());
  return complete_by_dp(problem, inputs, fixed);
}

std::optional<Word> complete_by_dp(const PairwiseProblem& problem, const Word& inputs,
                                   const std::vector<std::optional<Label>>& fixed) {
  const std::size_t n = inputs.size();
  if (n == 0 || fixed.size() != n) return std::nullopt;
  const std::size_t beta = problem.num_outputs();
  const bool cycle = is_cycle(problem.topology());

  // candidates[v] = outputs allowed at v by C_node and the pre-assignment.
  std::vector<BitVector> candidates(n);
  for (std::size_t v = 0; v < n; ++v) {
    BitVector c = (!cycle && v == 0) ? problem.outputs_for_first(inputs[v])
                                     : problem.outputs_for(inputs[v]);
    if (!cycle && v == n - 1 && problem.last_mask().dim() != 0) {
      c = c & problem.last_mask();
    }
    if (fixed[v].has_value()) {
      BitVector only(beta);
      only.set(*fixed[v], true);
      c = c & only;
    }
    if (!c.any()) return std::nullopt;
    candidates[v] = c;
  }

  const BitMatrix& edge = problem.edge_matrix();

  // For a path: forward reachability with per-position candidate masks,
  // then backward greedy extraction (lexicographically smallest).
  // For a cycle: additionally condition on the first node's label so the
  // wrap edge can be enforced; try first labels in increasing order.
  auto solve_linear = [&](std::optional<Label> forced_first,
                          std::optional<Label> wrap_back_to) -> std::optional<Word> {
    // reach[v] = labels achievable at v extending some valid prefix.
    std::vector<BitVector> reach(n);
    reach[0] = candidates[0];
    if (forced_first.has_value()) {
      BitVector only(beta);
      only.set(*forced_first, true);
      reach[0] = reach[0] & only;
    }
    if (!reach[0].any()) return std::nullopt;
    for (std::size_t v = 1; v < n; ++v) {
      reach[v] = reach[v - 1].multiplied(edge) & candidates[v];
      if (!reach[v].any()) return std::nullopt;
    }
    // Filter the last node by the wrap edge, if requested.
    if (wrap_back_to.has_value()) {
      BitVector can_close(beta);
      for (Label a = 0; a < beta; ++a) {
        if (reach[n - 1].get(a) && edge.get(a, *wrap_back_to)) can_close.set(a, true);
      }
      reach[n - 1] = can_close;
      if (!reach[n - 1].any()) return std::nullopt;
    }
    // Backward extraction: choose the smallest label at each position that
    // still admits a completion. Compute feasible sets right-to-left.
    std::vector<BitVector> feas(n);
    feas[n - 1] = reach[n - 1];
    const BitMatrix edge_t = edge.transposed();
    for (std::size_t v = n - 1; v > 0; --v) {
      feas[v - 1] = feas[v].multiplied(edge_t) & reach[v - 1];
    }
    Word out(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      BitVector allowed = feas[v];
      if (v > 0) {
        // restrict to successors of the already-chosen out[v-1]
        BitVector next(beta);
        for (Label b = 0; b < beta; ++b) {
          if (allowed.get(b) && edge.get(out[v - 1], b)) next.set(b, true);
        }
        allowed = next;
      }
      bool found = false;
      for (Label b = 0; b < beta; ++b) {
        if (allowed.get(b)) {
          out[v] = b;
          found = true;
          break;
        }
      }
      if (!found) return std::nullopt;  // defensive; should not happen
    }
    return out;
  };

  if (!cycle) return solve_linear(std::nullopt, std::nullopt);

  if (n == 1) {
    for (Label b = 0; b < beta; ++b) {
      if (candidates[0].get(b) && edge.get(b, b)) return Word{b};
    }
    return std::nullopt;
  }
  for (Label first = 0; first < beta; ++first) {
    if (!candidates[0].get(first)) continue;
    if (auto out = solve_linear(first, first)) return out;
  }
  return std::nullopt;
}

}  // namespace lclpath
