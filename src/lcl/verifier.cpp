#include "lcl/verifier.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lclpath {

namespace {

// Failure-string builders shared by the whole-word verifier and the
// streaming chunk verifier, so the two report byte-identical reasons.
std::string node_fail(const PairwiseProblem& p, Label in, Label out, std::size_t v) {
  return "node " + std::to_string(v) + ": (" + p.inputs().name(in) + ", " +
         p.outputs().name(out) + ") not in C_node";
}

std::string edge_fail(const PairwiseProblem& p, Label out_u, Label out_v,
                      std::size_t u, std::size_t v) {
  return "edge " + std::to_string(u) + "->" + std::to_string(v) + ": (" +
         p.outputs().name(out_u) + ", " + p.outputs().name(out_v) + ") not in C_edge";
}

std::string last_fail(const PairwiseProblem& p, Label out) {
  return "last node output '" + p.outputs().name(out) +
         "' not allowed at a path end";
}

void require_symmetric_if_undirected(const PairwiseProblem& problem) {
  if (!is_directed(problem.topology()) && !problem.is_orientation_symmetric()) {
    throw std::logic_error(
        "verify_pairwise: undirected topology requires an orientation-symmetric edge "
        "constraint");
  }
}

}  // namespace

VerifyResult verify_pairwise(const PairwiseProblem& problem, const Word& inputs,
                             const Word& outputs) {
  if (inputs.size() != outputs.size() || inputs.empty()) {
    return VerifyResult::failure(0, "input/output size mismatch or empty instance");
  }
  require_symmetric_if_undirected(problem);
  const std::size_t n = inputs.size();
  const bool path = !is_cycle(problem.topology());
  for (std::size_t v = 0; v < n; ++v) {
    const bool ok = (path && v == 0) ? problem.node_first_ok(inputs[v], outputs[v])
                                     : problem.node_ok(inputs[v], outputs[v]);
    if (!ok) {
      return VerifyResult::failure(v, node_fail(problem, inputs[v], outputs[v], v));
    }
  }
  if (path && !problem.last_ok(outputs[n - 1])) {
    return VerifyResult::failure(n - 1, last_fail(problem, outputs[n - 1]));
  }
  for (std::size_t v = 1; v < n; ++v) {
    if (!problem.edge_ok(outputs[v - 1], outputs[v])) {
      return VerifyResult::failure(v, edge_fail(problem, outputs[v - 1], outputs[v],
                                                v - 1, v));
    }
  }
  if (is_cycle(problem.topology())) {
    if (n == 1) {
      // Degenerate self-loop cycle: the wrap edge is (v, v).
      if (!problem.edge_ok(outputs[0], outputs[0])) {
        return VerifyResult::failure(0, edge_fail(problem, outputs[0], outputs[0], 0, 0));
      }
    } else if (!problem.edge_ok(outputs[n - 1], outputs[0])) {
      return VerifyResult::failure(0, edge_fail(problem, outputs[n - 1], outputs[0],
                                                n - 1, 0));
    }
  }
  return VerifyResult::success();
}

PairwiseChunkVerifier::PairwiseChunkVerifier(const PairwiseProblem& problem,
                                             std::size_t n, std::size_t begin,
                                             std::size_t end)
    : problem_(problem), n_(n), begin_(begin), end_(end) {
  require_symmetric_if_undirected(problem);
  if (begin >= end || end > n) {
    throw std::logic_error("PairwiseChunkVerifier: empty or out-of-range chunk");
  }
}

void PairwiseChunkVerifier::push(Label input, Label output) {
  const std::size_t v = begin_ + count_;
  assert(v < end_);
  const bool path = !is_cycle(problem_.topology());
  // Phase 0: per-node check. Node failures arrive in ascending order, so the
  // first one seen is the chunk's phase-0 minimum.
  if (!node_failed_) {
    const bool ok = (path && v == 0) ? problem_.node_first_ok(input, output)
                                     : problem_.node_ok(input, output);
    if (!ok) {
      node_failed_ = true;
      PairwiseFailure f{0, v, node_fail(problem_, input, output, v)};
      if (!best_ || f < *best_) best_ = std::move(f);
    }
  }
  // Phase 1: path-end check, only when this chunk owns node n-1.
  if (path && v == n_ - 1 && !problem_.last_ok(output)) {
    PairwiseFailure f{1, v, last_fail(problem_, output)};
    if (!best_ || f < *best_) best_ = std::move(f);
  }
  // Phase 2: the edge internal to the chunk arriving at v.
  if (count_ > 0 && !edge_failed_ && !problem_.edge_ok(prev_output_, output)) {
    edge_failed_ = true;
    PairwiseFailure f{2, v, edge_fail(problem_, prev_output_, output, v - 1, v)};
    if (!best_ || f < *best_) best_ = std::move(f);
  }
  if (count_ == 0) first_output_ = output;
  prev_output_ = output;
  ++count_;
}

ChunkVerdict PairwiseChunkVerifier::verdict() const {
  assert(count_ == end_ - begin_);
  return ChunkVerdict{begin_, end_, first_output_, prev_output_, best_};
}

VerifyResult finish_chunked_verify(const PairwiseProblem& problem,
                                   const std::vector<ChunkVerdict>& verdicts) {
  if (verdicts.empty() || verdicts.front().begin != 0) {
    throw std::logic_error("finish_chunked_verify: chunks do not cover the instance");
  }
  std::optional<PairwiseFailure> best;
  auto consider = [&best](PairwiseFailure f) {
    if (!best || f < *best) best = std::move(f);
  };
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const ChunkVerdict& c = verdicts[i];
    if (i > 0) {
      const ChunkVerdict& prev = verdicts[i - 1];
      if (c.begin != prev.end) {
        throw std::logic_error("finish_chunked_verify: non-contiguous chunks");
      }
      // Phase 2 seam edge (prev's last node -> this chunk's first node).
      if (!problem.edge_ok(prev.last_output, c.first_output)) {
        consider({2, c.begin,
                  edge_fail(problem, prev.last_output, c.first_output, c.begin - 1,
                            c.begin)});
      }
    }
    if (c.failure) consider(*c.failure);
  }
  const std::size_t n = verdicts.back().end;
  if (is_cycle(problem.topology())) {
    // Phase 3 wrap edge; for n == 1 the wrap degenerates to a self-loop.
    const Label tail = verdicts.back().last_output;
    const Label head = verdicts.front().first_output;
    if (!problem.edge_ok(tail, head)) {
      consider({3, 0, edge_fail(problem, tail, head, n == 1 ? 0 : n - 1, 0)});
    }
  }
  if (!best) return VerifyResult::success();
  return VerifyResult::failure(best->at, std::move(best->reason));
}

VerifyResult verify_pairwise_chunked(const PairwiseProblem& problem,
                                     const Word& inputs, const Word& outputs,
                                     std::size_t chunk_size) {
  if (inputs.size() != outputs.size() || inputs.empty()) {
    return VerifyResult::failure(0, "input/output size mismatch or empty instance");
  }
  require_symmetric_if_undirected(problem);
  const std::size_t n = inputs.size();
  const std::size_t step = std::max<std::size_t>(chunk_size, 1);
  std::vector<ChunkVerdict> verdicts;
  verdicts.reserve((n + step - 1) / step);
  for (std::size_t begin = 0; begin < n; begin += step) {
    const std::size_t end = std::min(n, begin + step);
    PairwiseChunkVerifier chunk(problem, n, begin, end);
    for (std::size_t v = begin; v < end; ++v) chunk.push(inputs[v], outputs[v]);
    verdicts.push_back(chunk.verdict());
  }
  return finish_chunked_verify(problem, verdicts);
}

bool locally_consistent_at(const PairwiseProblem& problem, const Word& inputs,
                           const Word& outputs, std::size_t v, bool cycle) {
  assert(v < inputs.size() && inputs.size() == outputs.size());
  const bool first_of_path = !cycle && v == 0;
  const bool node_ok = first_of_path ? problem.node_first_ok(inputs[v], outputs[v])
                                     : problem.node_ok(inputs[v], outputs[v]);
  if (!node_ok) return false;
  if (v > 0) return problem.edge_ok(outputs[v - 1], outputs[v]);
  if (cycle) return problem.edge_ok(outputs[outputs.size() - 1], outputs[0]);
  return true;  // first node of a path has no predecessor check
}

VerifyResult verify_general(const GeneralProblem& problem, const Word& inputs,
                            const Word& outputs) {
  if (inputs.size() != outputs.size() || inputs.empty()) {
    return VerifyResult::failure(0, "input/output size mismatch or empty instance");
  }
  const std::size_t n = inputs.size();
  const std::size_t r = problem.radius();
  const bool cycle = is_cycle(problem.topology());
  for (std::size_t v = 0; v < n; ++v) {
    WindowConstraint window;
    if (cycle) {
      // Full window with wraparound. (For tiny cycles the window may see a
      // node more than once; that matches the universal-cover view the
      // LOCAL model gives an algorithm.)
      window.center = r;
      for (std::size_t k = 0; k < 2 * r + 1; ++k) {
        const std::size_t idx = (v + n + k - r) % n;
        window.inputs.push_back(inputs[idx]);
        window.outputs.push_back(outputs[idx]);
      }
    } else {
      const std::size_t lo = v >= r ? v - r : 0;
      const std::size_t hi = std::min(n - 1, v + r);
      window.center = v - lo;
      for (std::size_t idx = lo; idx <= hi; ++idx) {
        window.inputs.push_back(inputs[idx]);
        window.outputs.push_back(outputs[idx]);
      }
    }
    if (!problem.accepts(window)) {
      return VerifyResult::failure(v, "node " + std::to_string(v) +
                                          ": radius-" + std::to_string(r) +
                                          " window not acceptable");
    }
  }
  return VerifyResult::success();
}

std::optional<Word> solve_by_dp(const PairwiseProblem& problem, const Word& inputs) {
  std::vector<std::optional<Label>> fixed(inputs.size());
  return complete_by_dp(problem, inputs, fixed);
}

std::optional<Word> complete_by_dp(const PairwiseProblem& problem, const Word& inputs,
                                   const std::vector<std::optional<Label>>& fixed) {
  const std::size_t n = inputs.size();
  if (n == 0 || fixed.size() != n) return std::nullopt;
  const std::size_t beta = problem.num_outputs();
  const bool cycle = is_cycle(problem.topology());

  // candidates[v] = outputs allowed at v by C_node and the pre-assignment.
  std::vector<BitVector> candidates(n);
  for (std::size_t v = 0; v < n; ++v) {
    BitVector c = (!cycle && v == 0) ? problem.outputs_for_first(inputs[v])
                                     : problem.outputs_for(inputs[v]);
    if (!cycle && v == n - 1 && problem.last_mask().dim() != 0) {
      c = c & problem.last_mask();
    }
    if (fixed[v].has_value()) {
      BitVector only(beta);
      only.set(*fixed[v], true);
      c = c & only;
    }
    if (!c.any()) return std::nullopt;
    candidates[v] = c;
  }

  const BitMatrix& edge = problem.edge_matrix();

  // For a path: forward reachability with per-position candidate masks,
  // then backward greedy extraction (lexicographically smallest).
  // For a cycle: additionally condition on the first node's label so the
  // wrap edge can be enforced; try first labels in increasing order.
  auto solve_linear = [&](std::optional<Label> forced_first,
                          std::optional<Label> wrap_back_to) -> std::optional<Word> {
    // reach[v] = labels achievable at v extending some valid prefix.
    std::vector<BitVector> reach(n);
    reach[0] = candidates[0];
    if (forced_first.has_value()) {
      BitVector only(beta);
      only.set(*forced_first, true);
      reach[0] = reach[0] & only;
    }
    if (!reach[0].any()) return std::nullopt;
    for (std::size_t v = 1; v < n; ++v) {
      reach[v] = reach[v - 1].multiplied(edge) & candidates[v];
      if (!reach[v].any()) return std::nullopt;
    }
    // Filter the last node by the wrap edge, if requested.
    if (wrap_back_to.has_value()) {
      BitVector can_close(beta);
      for (Label a = 0; a < beta; ++a) {
        if (reach[n - 1].get(a) && edge.get(a, *wrap_back_to)) can_close.set(a, true);
      }
      reach[n - 1] = can_close;
      if (!reach[n - 1].any()) return std::nullopt;
    }
    // Backward extraction: choose the smallest label at each position that
    // still admits a completion. Compute feasible sets right-to-left.
    std::vector<BitVector> feas(n);
    feas[n - 1] = reach[n - 1];
    const BitMatrix edge_t = edge.transposed();
    for (std::size_t v = n - 1; v > 0; --v) {
      feas[v - 1] = feas[v].multiplied(edge_t) & reach[v - 1];
    }
    Word out(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      BitVector allowed = feas[v];
      if (v > 0) {
        // restrict to successors of the already-chosen out[v-1]
        BitVector next(beta);
        for (Label b = 0; b < beta; ++b) {
          if (allowed.get(b) && edge.get(out[v - 1], b)) next.set(b, true);
        }
        allowed = next;
      }
      bool found = false;
      for (Label b = 0; b < beta; ++b) {
        if (allowed.get(b)) {
          out[v] = b;
          found = true;
          break;
        }
      }
      if (!found) return std::nullopt;  // defensive; should not happen
    }
    return out;
  };

  if (!cycle) return solve_linear(std::nullopt, std::nullopt);

  if (n == 1) {
    for (Label b = 0; b < beta; ++b) {
      if (candidates[0].get(b) && edge.get(b, b)) return Word{b};
    }
    return std::nullopt;
  }
  for (Label first = 0; first < beta; ++first) {
    if (!candidates[0].get(first)) continue;
    if (auto out = solve_linear(first, first)) return out;
  }
  return std::nullopt;
}

}  // namespace lclpath
