#include "lcl/problem.hpp"

#include <sstream>
#include <stdexcept>

namespace lclpath {

std::string to_string(Topology topology) {
  switch (topology) {
    case Topology::kDirectedPath: return "directed path";
    case Topology::kDirectedCycle: return "directed cycle";
    case Topology::kUndirectedPath: return "undirected path";
    case Topology::kUndirectedCycle: return "undirected cycle";
  }
  return "?";
}

bool is_cycle(Topology topology) {
  return topology == Topology::kDirectedCycle || topology == Topology::kUndirectedCycle;
}

bool is_directed(Topology topology) {
  return topology == Topology::kDirectedPath || topology == Topology::kDirectedCycle;
}

PairwiseProblem::PairwiseProblem(std::string name, Alphabet inputs, Alphabet outputs,
                                 Topology topology)
    : name_(std::move(name)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      topology_(topology),
      node_allowed_(inputs_.size(), BitVector(outputs_.size())),
      edge_matrix_(outputs_.size()) {}

void PairwiseProblem::allow_node(Label input, Label output) {
  if (input >= inputs_.size() || output >= outputs_.size()) {
    throw std::out_of_range("PairwiseProblem::allow_node: label out of range");
  }
  node_allowed_[input].set(output, true);
}

void PairwiseProblem::allow_node(std::string_view input, std::string_view output) {
  allow_node(inputs_.at(input), outputs_.at(output));
}

void PairwiseProblem::allow_edge(Label from_output, Label to_output) {
  if (from_output >= outputs_.size() || to_output >= outputs_.size()) {
    throw std::out_of_range("PairwiseProblem::allow_edge: label out of range");
  }
  edge_matrix_.set(from_output, to_output, true);
}

void PairwiseProblem::allow_edge(std::string_view from_output, std::string_view to_output) {
  allow_edge(outputs_.at(from_output), outputs_.at(to_output));
}

void PairwiseProblem::forbid_edge(Label from_output, Label to_output) {
  edge_matrix_.set(from_output, to_output, false);
}

bool PairwiseProblem::node_ok(Label input, Label output) const {
  return node_allowed_[input].get(output);
}

bool PairwiseProblem::edge_ok(Label from_output, Label to_output) const {
  return edge_matrix_.get(from_output, to_output);
}

void PairwiseProblem::allow_node_first(Label input, Label output) {
  if (input >= inputs_.size() || output >= outputs_.size()) {
    throw std::out_of_range("PairwiseProblem::allow_node_first: label out of range");
  }
  if (node_first_.empty()) {
    node_first_.assign(inputs_.size(), BitVector(outputs_.size()));
  }
  node_first_[input].set(output, true);
}

void PairwiseProblem::allow_node_first(std::string_view input, std::string_view output) {
  allow_node_first(inputs_.at(input), outputs_.at(output));
}

bool PairwiseProblem::node_first_ok(Label input, Label output) const {
  if (node_first_.empty()) return node_ok(input, output);
  return node_first_[input].get(output);
}

const BitVector& PairwiseProblem::outputs_for_first(Label input) const {
  if (node_first_.empty()) return outputs_for(input);
  if (input >= node_first_.size()) {
    throw std::out_of_range("PairwiseProblem::outputs_for_first: bad input label");
  }
  return node_first_[input];
}

void PairwiseProblem::restrict_last(const BitVector& allowed) {
  if (allowed.dim() != outputs_.size()) {
    throw std::invalid_argument("PairwiseProblem::restrict_last: dimension mismatch");
  }
  last_mask_ = allowed;
}

void PairwiseProblem::forbid_last(Label output) {
  if (last_mask_.dim() == 0) last_mask_ = BitVector::ones(outputs_.size());
  last_mask_.set(output, false);
}

bool PairwiseProblem::last_ok(Label output) const {
  if (last_mask_.dim() == 0) return true;
  return last_mask_.get(output);
}

const BitVector& PairwiseProblem::last_mask() const {
  static const BitVector kEmpty;
  if (last_mask_.dim() == 0) {
    // Callers should check dim() == 0 as "no restriction"; returning the
    // stored (empty) mask keeps the accessor allocation-free.
    return kEmpty;
  }
  return last_mask_;
}

const BitVector& PairwiseProblem::outputs_for(Label input) const {
  if (input >= node_allowed_.size()) {
    throw std::out_of_range("PairwiseProblem::outputs_for: bad input label");
  }
  return node_allowed_[input];
}

bool PairwiseProblem::is_orientation_symmetric() const {
  return edge_matrix_ == edge_matrix_.transposed();
}

PairwiseProblem PairwiseProblem::reversed() const {
  PairwiseProblem rev = *this;
  rev.edge_matrix_ = edge_matrix_.transposed();
  rev.name_ = name_ + " (reversed)";
  return rev;
}

std::string PairwiseProblem::describe() const {
  std::ostringstream out;
  out << "LCL '" << name_ << "' on " << to_string(topology_) << "\n";
  out << "  Sigma_in  = " << inputs_.to_string() << "\n";
  out << "  Sigma_out = " << outputs_.to_string() << "\n";
  out << "  C_node:";
  for (Label in = 0; in < inputs_.size(); ++in) {
    for (Label o = 0; o < outputs_.size(); ++o) {
      if (node_ok(in, o)) out << " (" << inputs_.name(in) << "," << outputs_.name(o) << ")";
    }
  }
  out << "\n  C_edge:";
  for (Label a = 0; a < outputs_.size(); ++a) {
    for (Label b = 0; b < outputs_.size(); ++b) {
      if (edge_ok(a, b)) out << " (" << outputs_.name(a) << "->" << outputs_.name(b) << ")";
    }
  }
  out << "\n";
  return out.str();
}

bool PairwiseProblem::operator==(const PairwiseProblem& other) const {
  if (!(inputs_ == other.inputs_) || !(outputs_ == other.outputs_)) return false;
  if (topology_ != other.topology_) return false;
  if (!(edge_matrix_ == other.edge_matrix_)) return false;
  if (node_first_ != other.node_first_ || !(last_mask_ == other.last_mask_)) return false;
  return node_allowed_ == other.node_allowed_;
}

GeneralProblem::GeneralProblem(std::string name, Alphabet inputs, Alphabet outputs,
                               std::size_t radius, Topology topology)
    : name_(std::move(name)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      radius_(radius),
      topology_(topology) {
  if (radius_ == 0) throw std::invalid_argument("GeneralProblem: radius must be >= 1");
}

void GeneralProblem::allow(WindowConstraint window) {
  if (window.inputs.size() != window.outputs.size()) {
    throw std::invalid_argument("GeneralProblem::allow: input/output size mismatch");
  }
  if (window.center >= window.inputs.size()) {
    throw std::invalid_argument("GeneralProblem::allow: center out of window");
  }
  windows_.push_back(std::move(window));
}

void GeneralProblem::allow_where(
    const std::function<bool(const WindowConstraint&)>& predicate) {
  const std::size_t full = 2 * radius_ + 1;
  // Window shapes: full windows (center = radius) always; when the topology
  // is a path, also truncated ones missing a prefix (center < radius) or a
  // suffix (window shorter on the right).
  struct Shape {
    std::size_t width;
    std::size_t center;
  };
  std::vector<Shape> shapes;
  shapes.push_back({full, radius_});
  if (!is_cycle(topology_)) {
    for (std::size_t missing_left = 1; missing_left <= radius_; ++missing_left) {
      for (std::size_t missing_right = 0; missing_right <= radius_; ++missing_right) {
        const std::size_t width = full - missing_left - missing_right;
        shapes.push_back({width, radius_ - missing_left});
      }
    }
    for (std::size_t missing_right = 1; missing_right <= radius_; ++missing_right) {
      shapes.push_back({full - missing_right, radius_});
    }
  }
  for (const Shape& shape : shapes) {
    for_each_word(inputs_.size(), shape.width, [&](const Word& in) {
      for_each_word(outputs_.size(), shape.width, [&](const Word& out) {
        WindowConstraint window{in, out, shape.center};
        if (predicate(window)) windows_.push_back(window);
      });
    });
  }
}

bool GeneralProblem::accepts(const WindowConstraint& window) const {
  for (const WindowConstraint& w : windows_) {
    if (w == window) return true;
  }
  return false;
}

}  // namespace lclpath
