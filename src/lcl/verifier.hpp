// Centralized verifiers for LCL labelings on paths and cycles.
//
// The paper's verifier taxonomy (Section 3.5): V_in-out checks each node's
// (input, output) pair, V_out-out checks each directed edge's (output,
// output) pair, and V_in,in-out,out sees both nodes of an edge in full.
// PairwiseProblem bundles the first two; GeneralProblem carries radius-r
// window constraints. These functions evaluate them over whole instances
// (words of inputs/outputs) and also expose per-node "locally consistent
// at v" checks, which Section 4's extendibility machinery is defined from.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "lcl/problem.hpp"

namespace lclpath {

/// Outcome of verification; on failure, identifies the first offending node
/// and a human-readable reason (for test diagnostics).
struct VerifyResult {
  bool ok = true;
  std::size_t failed_at = 0;
  std::string reason;

  static VerifyResult success() { return {}; }
  static VerifyResult failure(std::size_t at, std::string why) {
    return {false, at, std::move(why)};
  }
};

/// Checks a complete labeling of a directed path/cycle against a pairwise
/// problem. `inputs` and `outputs` must have equal, nonzero size. For
/// cycles, the edge (last -> first) is checked too. For undirected
/// topologies the problem must be orientation-symmetric and the same check
/// applies (symmetry makes the orientation choice irrelevant).
VerifyResult verify_pairwise(const PairwiseProblem& problem, const Word& inputs,
                             const Word& outputs);

/// A single verifier failure located in verify_pairwise's fixed phase order:
///   phase 0  per-node (input, output) checks, nodes ascending
///   phase 1  path-end check (last_ok), at node n-1
///   phase 2  internal edge checks (u -> u+1), reported at node u+1 ascending
///   phase 3  cycle wrap edge (n-1 -> 0, or the n == 1 self-loop), at node 0
/// verify_pairwise reports the failure that is smallest under lexicographic
/// (phase, at) order; the streaming verifier reproduces that exactly by
/// tracking per-chunk minima and merging.
struct PairwiseFailure {
  int phase = 0;
  std::size_t at = 0;
  std::string reason;

  friend bool operator<(const PairwiseFailure& a, const PairwiseFailure& b) {
    return a.phase != b.phase ? a.phase < b.phase : a.at < b.at;
  }
};

/// Everything the chunk-merge step needs from one verified chunk: its node
/// range, the boundary outputs (for the seam edge to the neighbouring chunks
/// and the cycle wrap edge), and the best (phase, at)-minimal failure the
/// chunk saw internally, if any.
struct ChunkVerdict {
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive
  Label first_output = 0;
  Label last_output = 0;
  std::optional<PairwiseFailure> failure;
};

/// Streaming verifier for one contiguous chunk [begin, end) of an n-node
/// instance. Feed (input, output) pairs for nodes begin, begin+1, ... in
/// order via push(); the verifier holds O(1) state (previous output, first
/// output, best failure) so huge runs never need the full output Word.
/// Checks performed here: phase 0 node checks (with the first-of-path rule
/// when begin == 0), the phase 1 path-end check when the chunk contains node
/// n-1, and phase 2 edges *internal* to the chunk. Seam edges between chunks
/// and the cycle wrap edge belong to finish_chunked_verify.
///
/// Throws std::logic_error for undirected topologies whose edge constraint
/// is not orientation-symmetric, mirroring verify_pairwise.
class PairwiseChunkVerifier {
 public:
  PairwiseChunkVerifier(const PairwiseProblem& problem, std::size_t n,
                        std::size_t begin, std::size_t end);

  /// Consume the next node's (input, output) pair. Must be called exactly
  /// end - begin times.
  void push(Label input, Label output);

  /// The chunk summary; valid once all end - begin nodes were pushed.
  ChunkVerdict verdict() const;

 private:
  const PairwiseProblem& problem_;
  std::size_t n_;
  std::size_t begin_;
  std::size_t end_;
  std::size_t count_ = 0;
  Label first_output_ = 0;
  Label prev_output_ = 0;
  bool node_failed_ = false;  // phase 0 minima are found in push order,
  bool edge_failed_ = false;  // so later checks of the same phase can stop
  std::optional<PairwiseFailure> best_;
};

/// Merge per-chunk verdicts into the whole-instance verdict. `verdicts` must
/// cover [0, n) contiguously in index order (chunk i+1 begins where chunk i
/// ends). Adds the phase 2 seam edge between consecutive chunks and the
/// phase 3 cycle wrap edge, then returns the (phase, at)-minimal failure —
/// bit-identical to verify_pairwise on the concatenated outputs.
VerifyResult finish_chunked_verify(const PairwiseProblem& problem,
                                   const std::vector<ChunkVerdict>& verdicts);

/// Convenience wrapper: run the streaming verifier over `outputs` in chunks
/// of `chunk_size` nodes and merge. Agrees exactly with verify_pairwise
/// (same verdict, same failed_at, same reason) for every chunk size >= 1;
/// exists as the reference point for the agreement tests.
VerifyResult verify_pairwise_chunked(const PairwiseProblem& problem,
                                     const Word& inputs, const Word& outputs,
                                     std::size_t chunk_size);

/// Paper Section 4 "locally consistent at v" for the pairwise (r = 1) form:
/// node v's own (input, output) pair is allowed, and — if v has a
/// predecessor (v > 0, or any v on a cycle) — the incoming edge pair is
/// allowed. `cycle` controls whether index 0 wraps to the last node.
bool locally_consistent_at(const PairwiseProblem& problem, const Word& inputs,
                           const Word& outputs, std::size_t v, bool cycle);

/// Checks a complete labeling against a radius-r general problem: every
/// node's (possibly truncated) window must be among the accepted ones.
VerifyResult verify_general(const GeneralProblem& problem, const Word& inputs,
                            const Word& outputs);

/// Exhaustively searches for a valid output labeling of the given inputs
/// under a pairwise problem (dynamic programming over the path / cycle).
/// Returns std::nullopt if none exists. Deterministic: returns the
/// lexicographically smallest valid labeling. This is the Theta(n) baseline
/// ("gather everything and solve locally") and the ground truth oracle for
/// all decidability tests.
std::optional<Word> solve_by_dp(const PairwiseProblem& problem, const Word& inputs);

/// Like solve_by_dp but with some positions pre-assigned (fixed[i] set).
/// Returns the lexicographically smallest completion consistent with the
/// pairwise constraints at *all* nodes, or nullopt.
std::optional<Word> complete_by_dp(const PairwiseProblem& problem, const Word& inputs,
                                   const std::vector<std::optional<Label>>& fixed);

}  // namespace lclpath
