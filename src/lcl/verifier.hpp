// Centralized verifiers for LCL labelings on paths and cycles.
//
// The paper's verifier taxonomy (Section 3.5): V_in-out checks each node's
// (input, output) pair, V_out-out checks each directed edge's (output,
// output) pair, and V_in,in-out,out sees both nodes of an edge in full.
// PairwiseProblem bundles the first two; GeneralProblem carries radius-r
// window constraints. These functions evaluate them over whole instances
// (words of inputs/outputs) and also expose per-node "locally consistent
// at v" checks, which Section 4's extendibility machinery is defined from.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "lcl/problem.hpp"

namespace lclpath {

/// Outcome of verification; on failure, identifies the first offending node
/// and a human-readable reason (for test diagnostics).
struct VerifyResult {
  bool ok = true;
  std::size_t failed_at = 0;
  std::string reason;

  static VerifyResult success() { return {}; }
  static VerifyResult failure(std::size_t at, std::string why) {
    return {false, at, std::move(why)};
  }
};

/// Checks a complete labeling of a directed path/cycle against a pairwise
/// problem. `inputs` and `outputs` must have equal, nonzero size. For
/// cycles, the edge (last -> first) is checked too. For undirected
/// topologies the problem must be orientation-symmetric and the same check
/// applies (symmetry makes the orientation choice irrelevant).
VerifyResult verify_pairwise(const PairwiseProblem& problem, const Word& inputs,
                             const Word& outputs);

/// Paper Section 4 "locally consistent at v" for the pairwise (r = 1) form:
/// node v's own (input, output) pair is allowed, and — if v has a
/// predecessor (v > 0, or any v on a cycle) — the incoming edge pair is
/// allowed. `cycle` controls whether index 0 wraps to the last node.
bool locally_consistent_at(const PairwiseProblem& problem, const Word& inputs,
                           const Word& outputs, std::size_t v, bool cycle);

/// Checks a complete labeling against a radius-r general problem: every
/// node's (possibly truncated) window must be among the accepted ones.
VerifyResult verify_general(const GeneralProblem& problem, const Word& inputs,
                            const Word& outputs);

/// Exhaustively searches for a valid output labeling of the given inputs
/// under a pairwise problem (dynamic programming over the path / cycle).
/// Returns std::nullopt if none exists. Deterministic: returns the
/// lexicographically smallest valid labeling. This is the Theta(n) baseline
/// ("gather everything and solve locally") and the ground truth oracle for
/// all decidability tests.
std::optional<Word> solve_by_dp(const PairwiseProblem& problem, const Word& inputs);

/// Like solve_by_dp but with some positions pre-assigned (fixed[i] set).
/// Returns the lexicographically smallest completion consistent with the
/// pairwise constraints at *all* nodes, or nullopt.
std::optional<Word> complete_by_dp(const PairwiseProblem& problem, const Word& inputs,
                                   const std::vector<std::optional<Label>>& fixed);

}  // namespace lclpath
