// LCL problem representations.
//
// The paper (Section 2) defines an LCL by (Sigma_in, Sigma_out, r, C) where
// C is a finite set of acceptable labeled radius-r neighborhoods, and a
// "beta-normalized" special case whose verifier only checks (input, output)
// pairs per node plus (output, output) pairs per directed edge. We keep both:
//
//  * PairwiseProblem — the beta-normalized shape generalized to arbitrary
//    alphabet sizes: node constraint C_node subset Sigma_in x Sigma_out and
//    edge constraint C_edge subset Sigma_out x Sigma_out, checked along the
//    direction of the path (predecessor -> node). All of Section 4's
//    decidability machinery operates on this form.
//
//  * GeneralProblem — radius-r window constraints, compiled down to a
//    PairwiseProblem by lcl/compile.hpp (window construction).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/alphabet.hpp"
#include "core/bitmatrix.hpp"

namespace lclpath {

/// Which graph family an instance/problem lives on. Directed means a
/// globally consistent orientation is part of the input (every node knows
/// its predecessor); undirected problems must be orientation-symmetric.
enum class Topology : std::uint8_t {
  kDirectedPath,
  kDirectedCycle,
  kUndirectedPath,
  kUndirectedCycle,
};

std::string to_string(Topology topology);
bool is_cycle(Topology topology);
bool is_directed(Topology topology);

/// The beta-normalized LCL form (paper Section 2, "beta-normalized LCLs",
/// alphabet sizes generalized). Semantics on a directed path p0 -> p1 -> ...:
///   * every node v must satisfy node_ok(in(v), out(v));
///   * every node v with a predecessor u must satisfy edge_ok(out(u), out(v)).
/// On cycles every node has a predecessor. On undirected topologies the
/// problem must satisfy is_orientation_symmetric(); validity is then
/// orientation-independent and the verifier checks each edge once.
class PairwiseProblem {
 public:
  PairwiseProblem() = default;
  PairwiseProblem(std::string name, Alphabet inputs, Alphabet outputs, Topology topology);

  const std::string& name() const { return name_; }
  const Alphabet& inputs() const { return inputs_; }
  const Alphabet& outputs() const { return outputs_; }
  Topology topology() const { return topology_; }
  void set_topology(Topology t) { topology_ = t; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }

  /// Constraint mutation (by dense indices or by names).
  void allow_node(Label input, Label output);
  void allow_node(std::string_view input, std::string_view output);
  void allow_edge(Label from_output, Label to_output);
  void allow_edge(std::string_view from_output, std::string_view to_output);
  void forbid_edge(Label from_output, Label to_output);

  bool node_ok(Label input, Label output) const;
  bool edge_ok(Label from_output, Label to_output) const;

  /// Path topologies only: a distinct node constraint for the *first* node
  /// (the one with no predecessor) and an allowed-output mask for the
  /// *last* node. The paper encodes degree-1 behavior through these
  /// (Section 4's opening remark; Lemma 3's Er rule needs the last-node
  /// mask). Defaults: first nodes use C_node; last nodes allow everything.
  void allow_node_first(Label input, Label output);
  void allow_node_first(std::string_view input, std::string_view output);
  bool node_first_ok(Label input, Label output) const;
  bool has_first_constraint() const { return !node_first_.empty(); }
  const BitVector& outputs_for_first(Label input) const;

  void restrict_last(const BitVector& allowed);
  void forbid_last(Label output);
  bool last_ok(Label output) const;
  const BitVector& last_mask() const;

  /// Drop the endpoint rules again (first nodes fall back to C_node, last
  /// nodes allow everything). The synthesized path algorithms complete
  /// *interior* sub-words by DP, where the endpoint rules must not fire;
  /// they run those completions on a stripped copy of the problem.
  void clear_first_constraint() { node_first_.clear(); }
  void clear_last_mask() { last_mask_ = BitVector(); }

  /// The edge constraint as a boolean matrix (row = predecessor's output).
  const BitMatrix& edge_matrix() const { return edge_matrix_; }

  /// Set of outputs allowed for a given input, as a row bit vector.
  const BitVector& outputs_for(Label input) const;

  /// True if C_edge is symmetric; required for undirected topologies where
  /// "predecessor" is not well defined.
  bool is_orientation_symmetric() const;

  /// The problem with every edge constraint reversed (out,out') -> (out',out).
  /// Running the reversed problem on the reversed path is equivalent to the
  /// original; used by the undirected gap deciders.
  PairwiseProblem reversed() const;

  /// Human-readable multi-line description.
  std::string describe() const;

  bool operator==(const PairwiseProblem& other) const;

 private:
  std::string name_;
  Alphabet inputs_;
  Alphabet outputs_;
  Topology topology_ = Topology::kDirectedCycle;
  std::vector<BitVector> node_allowed_;  // indexed by input label
  BitMatrix edge_matrix_;
  // First-node constraint (empty = same as node_allowed_).
  std::vector<BitVector> node_first_;
  // Last-node allowed outputs (empty bits-dim-0 = everything allowed).
  BitVector last_mask_;
};

/// A radius-r LCL with window constraints: the set of acceptable
/// (inputs, outputs) windows of width 2r+1 centered on each node.
/// For nodes closer than r to a path endpoint, the window is truncated;
/// windows carry the offset of the center to disambiguate.
struct WindowConstraint {
  /// Inputs / outputs of the window, in path order. Sizes are equal and in
  /// [r+1, 2r+1] (truncation only at path endpoints).
  Word inputs;
  Word outputs;
  /// Index of the center node within the window (r except near endpoints).
  std::size_t center = 0;

  bool operator==(const WindowConstraint& other) const = default;
};

class GeneralProblem {
 public:
  GeneralProblem() = default;
  GeneralProblem(std::string name, Alphabet inputs, Alphabet outputs, std::size_t radius,
                 Topology topology);

  const std::string& name() const { return name_; }
  const Alphabet& inputs() const { return inputs_; }
  const Alphabet& outputs() const { return outputs_; }
  std::size_t radius() const { return radius_; }
  Topology topology() const { return topology_; }

  /// Declares a window acceptable.
  void allow(WindowConstraint window);
  /// Convenience: declares every full window accepted by `predicate`
  /// acceptable (enumerates |Sigma_in|^(2r+1) x |Sigma_out|^(2r+1) windows;
  /// fine for the small alphabets the paper deals in). Truncated endpoint
  /// windows are enumerated as well when the topology is a path.
  void allow_where(
      const std::function<bool(const WindowConstraint&)>& predicate);

  const std::vector<WindowConstraint>& windows() const { return windows_; }
  bool accepts(const WindowConstraint& window) const;

 private:
  std::string name_;
  Alphabet inputs_;
  Alphabet outputs_;
  std::size_t radius_ = 1;
  Topology topology_ = Topology::kDirectedCycle;
  std::vector<WindowConstraint> windows_;
};

}  // namespace lclpath
