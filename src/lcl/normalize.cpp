#include "lcl/normalize.hpp"

#include <stdexcept>

namespace lclpath {

PairwiseProblem normalize_edge_verifier(const EdgeVerifierProblem& source) {
  const std::size_t alpha = source.inputs.size();
  const std::size_t beta = source.outputs.size();
  Alphabet out_alpha;
  for (Label i = 0; i < alpha; ++i) {
    for (Label o = 0; o < beta; ++o) {
      out_alpha.add(source.inputs.name(i) + "/" + source.outputs.name(o));
    }
  }
  PairwiseProblem problem(source.name + " (lemma2)", source.inputs, out_alpha,
                          source.topology);
  auto pack = [beta](Label in, Label out) { return static_cast<Label>(in * beta + out); };
  for (Label i = 0; i < alpha; ++i) {
    for (Label o = 0; o < beta; ++o) {
      // The copied input must match; the original node check applies.
      if (source.node_ok(i, o)) problem.allow_node(i, pack(i, o));
    }
  }
  for (Label ia = 0; ia < alpha; ++ia) {
    for (Label oa = 0; oa < beta; ++oa) {
      for (Label ib = 0; ib < alpha; ++ib) {
        for (Label ob = 0; ob < beta; ++ob) {
          if (source.edge_ok(ia, oa, ib, ob)) {
            problem.allow_edge(pack(ia, oa), pack(ib, ob));
          }
        }
      }
    }
  }
  return problem;
}

namespace {

std::size_t ceil_log2(std::size_t x) {
  std::size_t bits = 0;
  std::size_t value = 1;
  while (value < x) {
    value *= 2;
    ++bits;
  }
  return bits;
}

}  // namespace

Word BinaryNormalized::encode_inputs(const Word& original) const {
  Word out;
  out.reserve(original.size() * gamma);
  const std::size_t a = bits_per_input;
  for (Label input : original) {
    for (std::size_t k = 0; k <= a; ++k) out.push_back(1);  // a+1 ones
    out.push_back(0);
    for (std::size_t k = 0; k < a; ++k) out.push_back((input >> (a - 1 - k)) & 1u);
    out.push_back(0);
  }
  return out;
}

Word BinaryNormalized::decode_outputs(const Word& normalized_outputs) const {
  Word out;
  const std::size_t tags = original_outputs + 3;
  for (std::size_t g = 0; g * gamma < normalized_outputs.size(); ++g) {
    const Label label = normalized_outputs[g * gamma];
    const std::size_t tag = label % tags;
    if (tag >= original_outputs) {
      throw std::invalid_argument("decode_outputs: group " + std::to_string(g) +
                                  " carries an error tag");
    }
    out.push_back(static_cast<Label>(tag));
  }
  return out;
}

BinaryNormalized normalize_binary(const PairwiseProblem& original) {
  if (is_cycle(original.topology())) {
    // Lemma 3 is stated for directed paths (the Er rule needs the path
    // end); Section 3.7 lifts to cycles separately.
    throw std::invalid_argument("normalize_binary: directed paths only");
  }
  const std::size_t alpha = original.num_inputs();
  const std::size_t beta = original.num_outputs();
  const std::size_t a = std::max<std::size_t>(1, ceil_log2(alpha));
  const std::size_t gamma = 2 * a + 3;
  const std::size_t windows = std::size_t{1} << gamma;
  const std::size_t tags = beta + 3;  // Sigma_out + {El, E, Er}
  const Label tag_el = static_cast<Label>(beta);
  const Label tag_e = static_cast<Label>(beta + 1);
  const Label tag_er = static_cast<Label>(beta + 2);

  // Output label = window * tags + tag; window bit j = input of the j-th
  // successor (bit 0 = own input), packed little-endian by position.
  auto pack = [tags](std::size_t window, std::size_t tag) {
    return static_cast<Label>(window * tags + tag);
  };
  auto window_bit = [](std::size_t window, std::size_t j) -> Label {
    return static_cast<Label>((window >> j) & 1u);
  };

  Alphabet in_alpha({"0", "1"});
  Alphabet out_alpha;
  for (std::size_t w = 0; w < windows; ++w) {
    std::string bits;
    for (std::size_t j = 0; j < gamma; ++j) bits += static_cast<char>('0' + window_bit(w, j));
    for (std::size_t t = 0; t < tags; ++t) {
      std::string tag_name =
          t < beta ? original.outputs().name(static_cast<Label>(t))
                   : (t == beta ? "<El>" : (t == beta + 1 ? "<E>" : "<Er>"));
      out_alpha.add(bits + ":" + tag_name);
    }
  }

  BinaryNormalized result{
      PairwiseProblem(original.name() + " (lemma3)", in_alpha, out_alpha,
                      Topology::kDirectedPath),
      a, gamma, beta};
  PairwiseProblem& p = result.problem;

  // Template compatibility: is the window consistent with *some* position
  // inside a valid Figure-3 encoding? Template over one period (length
  // gamma): positions 0..a = 1; a+1 = 0; a+2..2a+1 = payload (free);
  // 2a+2 = 0.
  auto template_fixed = [&](std::size_t pos_in_group) -> int {  // -1 = free
    if (pos_in_group <= a) return 1;
    if (pos_in_group == a + 1 || pos_in_group == 2 * a + 2) return 0;
    return -1;
  };
  auto window_encodable = [&](std::size_t window) {
    for (std::size_t offset = 0; offset < gamma; ++offset) {
      bool ok = true;
      for (std::size_t j = 0; j < gamma && ok; ++j) {
        const int fixed = template_fixed((offset + j) % gamma);
        if (fixed >= 0 && window_bit(window, j) != static_cast<Label>(fixed)) ok = false;
      }
      if (ok) return true;
    }
    return false;
  };
  auto group_start = [&](std::size_t window) {
    // The a+1 leading ones followed by 0 identify a group start.
    for (std::size_t j = 0; j <= a; ++j) {
      if (window_bit(window, j) != 1) return false;
    }
    return window_bit(window, a + 1) == 0 && window_bit(window, 2 * a + 2) == 0;
  };
  auto payload_of = [&](std::size_t window) -> Label {
    Label x = 0;
    for (std::size_t k = 0; k < a; ++k) {
      x = static_cast<Label>((x << 1) | window_bit(window, a + 2 + k));
    }
    return x;
  };

  // Node constraints (V'_in-out).
  for (std::size_t w = 0; w < windows; ++w) {
    for (std::size_t t = 0; t < tags; ++t) {
      const Label out = pack(w, t);
      const Label own = window_bit(w, 0);
      bool ok = true;
      if (t < beta) {
        if (group_start(w)) {
          const Label x = payload_of(w);
          ok = x < alpha && original.node_ok(x, static_cast<Label>(t));
        }
      } else if (t == tag_e) {
        ok = !window_encodable(w);
      }
      if (ok) p.allow_node(own, out);
    }
  }

  // Edge constraints (V'_out-out).
  for (std::size_t wp = 0; wp < windows; ++wp) {
    // Successor windows consistent with the shift: w[j] = wp[j+1].
    for (std::size_t t_pred = 0; t_pred < tags; ++t_pred) {
      for (Label last_bit = 0; last_bit < 2; ++last_bit) {
        const std::size_t w = (wp >> 1) | (static_cast<std::size_t>(last_bit) << (gamma - 1));
        for (std::size_t t = 0; t < tags; ++t) {
          bool ok = true;
          if (t < beta && t_pred < beta) {
            if (group_start(w)) {
              ok = original.edge_ok(static_cast<Label>(t_pred), static_cast<Label>(t));
            } else {
              ok = t == t_pred;
            }
          } else if (t == tag_el) {
            ok = t_pred == tag_el || t_pred == tag_e;  // error lies to the left
          } else if (t < beta) {
            ok = ok && t_pred != tag_er;
          }
          if (ok) p.allow_edge(pack(wp, t_pred), pack(w, t));
        }
      }
    }
  }
  // Er must always have a successor pointing on toward an E: forbid it at
  // the path's last node (the paper's "must have a successor").
  for (std::size_t w = 0; w < windows; ++w) p.forbid_last(pack(w, tag_er));
  // An Er's successor must continue the chain or be the E itself:
  // enforced from the successor side above for plain tags; El after Er is
  // also impossible (El requires pred in {El, E}); Er -> Er and Er -> E
  // remain allowed.
  return result;
}

}  // namespace lclpath
