// LCL normalization (Section 3.5, Lemmas 2 and 3, Figure 3).
//
// Lemma 2: a problem checked by a V_in,in-out,out verifier (which sees
// both endpoints of an edge in full) becomes a problem checked by
// V_in-out + V_out-out (our PairwiseProblem) by extending the output
// alphabet to Sigma_in x Sigma_out: each node repeats its input in its
// output, the node verifier checks the copy, and the edge verifier
// replays the original check on the copied pairs.
//
// Lemma 3: any pairwise problem with alpha inputs and beta outputs
// becomes a *beta'-normalized* problem (binary inputs!) by blowing every
// node up to gamma = 2*ceil(log2 alpha) + 3 nodes laid out as
//
//     1^(a+1)  0  b_1 .. b_a  0        (a = ceil(log2 alpha))
//
// (Figure 3). Outputs carry the gamma-bit input window plus the original
// output or one of the error escapes {El, E, Er}; beta' = 2^gamma *
// (beta + 3). The construction preserves the complexity class up to the
// constant factor gamma (the paper's Theta(gamma * T(n / gamma))).
#pragma once

#include <functional>

#include "lcl/problem.hpp"

namespace lclpath {

/// A problem whose verifier sees (in_u, out_u, in_v, out_v) on every
/// directed edge u -> v, plus a per-node (in, out) check.
struct EdgeVerifierProblem {
  std::string name;
  Alphabet inputs;
  Alphabet outputs;
  Topology topology = Topology::kDirectedCycle;
  /// Node check (first node of a path is checked only by this).
  std::function<bool(Label in, Label out)> node_ok;
  /// Full edge check.
  std::function<bool(Label in_u, Label out_u, Label in_v, Label out_v)> edge_ok;
};

/// Lemma 2: compile to the pairwise form with |Sigma_out'| = alpha * beta.
/// The new output label (i, o) is named "<in>/<out>".
PairwiseProblem normalize_edge_verifier(const EdgeVerifierProblem& problem);

/// Lemma 3 artifacts.
struct BinaryNormalized {
  PairwiseProblem problem;      ///< binary-input beta'-normalized problem
  std::size_t bits_per_input;   ///< a = ceil(log2 alpha)
  std::size_t gamma;            ///< nodes per original node

  /// Encodes an original instance's input word (Figure 3 layout).
  Word encode_inputs(const Word& original) const;
  /// Decodes the original outputs from the normalized ones (one original
  /// output per gamma-node group, read at the group's first node).
  Word decode_outputs(const Word& normalized_outputs) const;

  std::size_t original_outputs = 0;
};

/// Lemma 3: binary normalization of a pairwise problem.
BinaryNormalized normalize_binary(const PairwiseProblem& original);

}  // namespace lclpath
