#include "hardness/feasibility.hpp"

namespace lclpath::hardness {

PiFeasibility::PiFeasibility(const PiProblem& problem) : problem_(&problem) {
  const PiLabels& labels = problem.labels();
  const std::size_t num_out = labels.num_outputs();
  outputs_.reserve(num_out);
  for (Label o = 0; o < num_out; ++o) outputs_.push_back(labels.decode_output(o));
  last_allowed_ = BitVector(num_out);
  for (Label o = 0; o < num_out; ++o) {
    if (problem.allowed_at_last(outputs_[o])) last_allowed_.set(o, true);
  }
}

const PiFeasibility::Transfer& PiFeasibility::transfer(const InLabel& in_pred,
                                                       const InLabel& in) const {
  const PiLabels& labels = problem_->labels();
  const std::size_t key =
      labels.encode(in_pred) * labels.num_inputs() + labels.encode(in);
  const auto it = transfers_.find(key);
  if (it != transfers_.end()) return it->second;

  const std::size_t num_out = outputs_.size();
  Transfer built{BitMatrix(num_out), BitMatrix(num_out)};
  for (Label p = 0; p < num_out; ++p) {
    for (Label o = 0; o < num_out; ++o) {
      // node_ok is position-independent (any i > 0 behaves alike).
      if (problem_->node_ok(1, in, outputs_[o], &in_pred, &outputs_[p])) {
        built.forward.set(p, o, true);
        built.backward.set(o, p, true);
      }
    }
  }
  return transfers_.emplace(key, std::move(built)).first->second;
}

const BitVector& PiFeasibility::first_allowed(const InLabel& in) const {
  const std::size_t key = problem_->labels().encode(in);
  const auto it = first_.find(key);
  if (it != first_.end()) return it->second;
  BitVector allowed(outputs_.size());
  for (Label o = 0; o < outputs_.size(); ++o) {
    if (problem_->node_ok(0, in, outputs_[o], nullptr, nullptr)) allowed.set(o, true);
  }
  return first_.emplace(key, std::move(allowed)).first->second;
}

std::vector<BitVector> PiFeasibility::feasible_sets(
    const std::vector<InLabel>& input, const ExecutionBudget* budget) const {
  const std::size_t n = input.size();
  if (n == 0) return {};
  std::vector<BitVector> reach(n);
  reach[0] = first_allowed(input[0]);
  for (std::size_t v = 1; v < n; ++v) {
    budget_checkpoint(budget);
    reach[v] = BitVector(outputs_.size());
    reach[v - 1].multiply_into(transfer(input[v - 1], input[v]).forward, reach[v]);
  }
  // Backward prune: feasible[v-1] keeps the predecessors some feasible
  // successor extends (one vector * transposed-matrix product per edge).
  std::vector<BitVector> feasible = std::move(reach);
  feasible[n - 1] &= last_allowed_;
  BitVector extendable(outputs_.size());
  for (std::size_t v = n - 1; v > 0; --v) {
    budget_checkpoint(budget);
    feasible[v].multiply_into(transfer(input[v - 1], input[v]).backward, extendable);
    feasible[v - 1] &= extendable;
  }
  return feasible;
}

std::vector<std::size_t> PiFeasibility::feasible_counts(
    const std::vector<InLabel>& input, const ExecutionBudget* budget) const {
  const std::vector<BitVector> sets = feasible_sets(input, budget);
  std::vector<std::size_t> counts;
  counts.reserve(sets.size());
  for (const BitVector& set : sets) counts.push_back(set.count());
  return counts;
}

}  // namespace lclpath::hardness
