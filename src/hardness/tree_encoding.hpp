// Section 3.8: encoding input labels as attached trees (Theorems 6-7).
//
// Enc(S) turns a 2^k-bit string into a rooted tree of maximum degree 3:
// a full binary tree of depth k whose left-child edges are subdivided
// (so left children are recognizable by degree), with the i-th leaf (in
// in-order) growing two children, each extended by one extra node iff
// bit s_i = 1. Dec() recovers the string. G* attaches Enc(L(v)) to every
// path node v; the peeling decomposition (A_i / B_i of the paper)
// identifies V_label and lets each main node recover its input without
// any input labels — this is how the PSPACE-hardness transfers to
// unlabeled trees of maximum degree 3 (Theorem 7).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/alphabet.hpp"

namespace lclpath::hardness {

/// Undirected graph with adjacency lists (small; tree encodings only).
struct Graph {
  std::vector<std::vector<std::size_t>> adj;

  std::size_t size() const { return adj.size(); }
  std::size_t add_node();
  void add_edge(std::size_t u, std::size_t v);
  std::size_t degree(std::size_t v) const { return adj[v].size(); }
};

/// Enc(S): bits.size() must be a power of two (2^k). Returns the tree and
/// its root index.
struct EncodedTree {
  Graph tree;
  std::size_t root = 0;
};
EncodedTree encode_bits(const std::vector<int>& bits);

/// Dec(T): recovers the bit string from a tree rooted at `root`
/// (std::nullopt if the tree is not a valid encoding).
std::optional<std::vector<int>> decode_bits(const Graph& tree, std::size_t root);

/// G*: a path with one encoded tree per node. `bits_per_label` must be a
/// power of two with 2^bits_per_label >= alphabet size... precisely,
/// labels are encoded as distinct bit strings of that length.
struct GStar {
  Graph graph;
  std::vector<std::size_t> path_nodes;  ///< the original path, in order
};
GStar build_gstar(const Word& input_labels, std::size_t num_labels);

/// Recovers the input labels from a G* built by build_gstar, using only
/// the graph structure (the peeling decomposition + Dec). Returns
/// std::nullopt if the structure is not a valid G*.
std::optional<Word> recover_labels(const GStar& gstar, std::size_t num_labels);

/// Number of bits used per label for the given alphabet size (the paper's
/// 2^k with k = ceil(log log |Sigma_in|)).
std::size_t bits_per_label(std::size_t num_labels);

}  // namespace lclpath::hardness
