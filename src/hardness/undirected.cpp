#include "hardness/undirected.hpp"

#include <stdexcept>

namespace lclpath::hardness {

namespace {

void require_uniform_ends(const PairwiseProblem& p, const char* who) {
  if (p.has_first_constraint()) {
    throw std::invalid_argument(std::string(who) +
                                ": source problems with a distinct first-node "
                                "constraint are not supported");
  }
}

}  // namespace

PairwiseProblem lift_to_undirected(const PairwiseProblem& directed) {
  require_uniform_ends(directed, "lift_to_undirected");
  if (directed.last_mask().dim() != 0) {
    throw std::invalid_argument("lift_to_undirected: last-node masks unsupported");
  }
  const std::size_t alpha = directed.num_inputs();
  const std::size_t beta = directed.num_outputs();

  // Escape tags for nodes adjacent to orientation defects (Section 3.7's
  // E output, split so each variant is *pinned* to the defect geometry it
  // claims — a pairwise verifier cannot see triples, so the claim must be
  // checkable edge by edge):
  //   kColl: both incident edges point at me (two predecessors);
  //   kDiv:  both incident edges point away (two successors);
  //   kSolo: both incident edges have equal counters;
  //   kLast: my successor-side edge is broken (I end a stretch);
  //   kFirst: my predecessor-side edge is broken (I start a stretch).
  enum EscapeTag : std::size_t { kColl = 0, kDiv, kSolo, kLast, kFirst, kNumEscapes };
  const std::size_t tags = beta + kNumEscapes;
  const char* escape_names[kNumEscapes] = {"Ecoll", "Ediv", "Esolo", "Elast", "Efirst"};

  Alphabet in_alpha;
  for (Label i = 0; i < alpha; ++i) {
    for (int o = 0; o < 3; ++o) {
      in_alpha.add(directed.inputs().name(i) + "@" + std::to_string(o));
    }
  }
  Alphabet out_alpha;
  for (std::size_t t = 0; t < tags; ++t) {
    const std::string base = t < beta ? directed.outputs().name(static_cast<Label>(t))
                                      : escape_names[t - beta];
    for (int o = 0; o < 3; ++o) out_alpha.add(base + "@" + std::to_string(o));
  }
  const Topology topology = is_cycle(directed.topology()) ? Topology::kUndirectedCycle
                                                          : Topology::kUndirectedPath;
  PairwiseProblem lifted(directed.name() + " (undirected)", in_alpha, out_alpha, topology);
  auto pack_in = [](Label i, int o) { return static_cast<Label>(i * 3 + o); };
  auto pack_out = [](std::size_t t, int o) { return static_cast<Label>(t * 3 + o); };

  // Node checks: normal tags replay the original (counter copied); escape
  // tags only copy the counter.
  for (Label i = 0; i < alpha; ++i) {
    for (int o = 0; o < 3; ++o) {
      for (std::size_t t = 0; t < tags; ++t) {
        const bool ok =
            t >= beta || directed.node_ok(i, static_cast<Label>(t));
        if (ok) lifted.allow_node(pack_in(i, o), pack_out(t, o));
      }
    }
  }

  // Edge checks. For the pair (A@oa, B@ob) in global order, the counter
  // relation r = (ob - oa) mod 3 determines the intended direction:
  // r = 1: A -> B; r = 2: B -> A; r = 0: broken edge.
  enum View { kIAmPred, kIAmSucc, kBroken };
  auto endpoint_ok = [&](std::size_t tag, View view) {
    if (tag < beta) return true;
    switch (tag - beta) {
      case kColl: return view == kIAmSucc;
      case kDiv: return view == kIAmPred;
      case kSolo: return view == kBroken;
      case kLast: return view == kIAmSucc || view == kBroken;
      case kFirst: return view == kIAmPred || view == kBroken;
      default: return false;
    }
  };
  for (std::size_t ta = 0; ta < tags; ++ta) {
    for (int oa = 0; oa < 3; ++oa) {
      for (std::size_t tb = 0; tb < tags; ++tb) {
        for (int ob = 0; ob < 3; ++ob) {
          const int r = ((ob - oa) % 3 + 3) % 3;
          bool ok;
          if (r == 0) {
            ok = endpoint_ok(ta, kBroken) && endpoint_ok(tb, kBroken);
          } else if (r == 1) {  // A -> B
            ok = endpoint_ok(ta, kIAmPred) && endpoint_ok(tb, kIAmSucc);
            if (ok && ta < beta && tb < beta) {
              ok = directed.edge_ok(static_cast<Label>(ta), static_cast<Label>(tb));
            }
          } else {  // B -> A
            ok = endpoint_ok(ta, kIAmSucc) && endpoint_ok(tb, kIAmPred);
            if (ok && ta < beta && tb < beta) {
              ok = directed.edge_ok(static_cast<Label>(tb), static_cast<Label>(ta));
            }
          }
          if (ok) lifted.allow_edge(pack_out(ta, oa), pack_out(tb, ob));
        }
      }
    }
  }
  return lifted;
}

PairwiseProblem lift_path_to_cycle(const PairwiseProblem& path_problem) {
  if (is_cycle(path_problem.topology())) {
    throw std::invalid_argument("lift_path_to_cycle: source must be a path problem");
  }
  require_uniform_ends(path_problem, "lift_path_to_cycle");
  const std::size_t alpha = path_problem.num_inputs();
  const std::size_t beta = path_problem.num_outputs();

  Alphabet in_alpha;
  for (Label i = 0; i < alpha; ++i) {
    in_alpha.add(path_problem.inputs().name(i) + "|plain");
  }
  for (Label i = 0; i < alpha; ++i) {
    in_alpha.add(path_problem.inputs().name(i) + "|mark");
  }
  Alphabet out_alpha = path_problem.outputs();
  const Label out_s = out_alpha.add("S");
  const Label out_x = out_alpha.add("X");

  PairwiseProblem lifted(path_problem.name() + " (cycle)", in_alpha, out_alpha,
                         Topology::kDirectedCycle);
  for (Label i = 0; i < alpha; ++i) {
    for (Label t = 0; t < beta; ++t) {
      if (path_problem.node_ok(i, t)) lifted.allow_node(i, t);  // plain node
    }
    lifted.allow_node(i, out_x);                                 // escape (plain only)
    lifted.allow_node(static_cast<Label>(alpha + i), out_s);     // marked -> S
  }
  for (Label ta = 0; ta < beta; ++ta) {
    for (Label tb = 0; tb < beta; ++tb) {
      if (path_problem.edge_ok(ta, tb)) lifted.allow_edge(ta, tb);
    }
    // Segment end: the last node of a segment must respect the last mask.
    if (path_problem.last_ok(ta)) lifted.allow_edge(ta, out_s);
    // Segment start: the first node after a separator is unconstrained by
    // its (virtual) predecessor.
    lifted.allow_edge(out_s, ta);
  }
  lifted.allow_edge(out_s, out_s);
  lifted.allow_edge(out_x, out_x);
  return lifted;
}

Word orient_inputs(const PairwiseProblem& directed, const Word& inputs,
                   std::size_t offset) {
  (void)directed;
  Word out;
  out.reserve(inputs.size());
  for (std::size_t v = 0; v < inputs.size(); ++v) {
    out.push_back(static_cast<Label>(inputs[v] * 3 + (v + offset) % 3));
  }
  return out;
}

Word mark_inputs(const PairwiseProblem& path_problem, const Word& inputs,
                 const std::vector<std::size_t>& marked_positions) {
  const std::size_t alpha = path_problem.num_inputs();
  Word out = inputs;
  for (std::size_t pos : marked_positions) {
    if (pos >= out.size()) throw std::out_of_range("mark_inputs: bad position");
    out[pos] = static_cast<Label>(out[pos] + alpha);
  }
  return out;
}

}  // namespace lclpath::hardness
