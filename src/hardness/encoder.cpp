#include "hardness/encoder.hpp"

#include <stdexcept>

namespace lclpath::hardness {

std::size_t encoding_length(std::size_t tape_size, std::size_t steps) {
  return 1 + (steps + 1) * (tape_size + 1);
}

std::vector<InLabel> good_input(const lba::Machine& machine, std::size_t tape_size,
                                Secret secret, std::size_t steps, std::size_t n) {
  const std::size_t need = encoding_length(tape_size, steps);
  if (n < need) {
    throw std::invalid_argument("good_input: path too short for the encoding (" +
                                std::to_string(need) + " nodes needed)");
  }
  std::vector<InLabel> input(n, InLabel{InKind::kEmpty, lba::Symbol::k0, 0, false});
  input[0].kind = secret == Secret::kA ? InKind::kStartA : InKind::kStartB;

  // Step the packed configuration in place through the machine's cached
  // StepTable — one table shared across every encoding size — and spell
  // each configuration into its block.
  const lba::StepTable& table = machine.step_table();
  lba::PackedConfig config(machine, tape_size);
  std::size_t pos = 1;
  for (std::size_t step = 0; step <= steps; ++step) {
    input[pos].kind = InKind::kSeparator;
    ++pos;
    const lba::State state = config.state();
    const std::size_t head = config.head();
    for (std::size_t j = 0; j < tape_size; ++j) {
      InLabel& cell = input[pos + j];
      cell.kind = InKind::kTape;
      cell.content = config.cell(j);
      cell.state = state;
      cell.head = head == j;
    }
    pos += tape_size;
    if (step < steps) config.step(table);
  }
  return input;
}

std::vector<InLabel> corrupt(const lba::Machine& machine, std::size_t tape_size,
                             std::vector<InLabel> input, Corruption corruption,
                             std::size_t block) {
  // Block b (1-based) occupies positions [1 + (b-1)(B+1), 1 + b(B+1)).
  const std::size_t begin = 1 + (block - 1) * (tape_size + 1);
  const std::size_t cells = begin + 1;  // first tape cell of the block
  if (begin + tape_size >= input.size() ||
      input[begin].kind != InKind::kSeparator) {
    throw std::invalid_argument("corrupt: block out of range");
  }
  auto flip_content = [](InLabel& cell) {
    cell.content = cell.content == lba::Symbol::k0 ? lba::Symbol::k1 : lba::Symbol::k0;
  };
  switch (corruption) {
    case Corruption::kWrongInitialTape:
      // Damage the first block's interior cell (must be block 1 for the
      // Error0 witness, but any block gives *some* inconsistency).
      flip_content(input[cells + 1]);
      break;
    case Corruption::kTapeTooLong: {
      // Duplicate one tape cell: shift the rest right by one (dropping the
      // final Empty).
      InLabel extra = input[cells];
      input.insert(input.begin() + static_cast<std::ptrdiff_t>(cells), extra);
      input.pop_back();
      break;
    }
    case Corruption::kTapeTooShort:
      input.erase(input.begin() + static_cast<std::ptrdiff_t>(cells + 1));
      input.push_back(InLabel{InKind::kEmpty, lba::Symbol::k0, 0, false});
      break;
    case Corruption::kWrongCopy:
      // Change a non-head cell so it no longer matches the previous
      // block's copy (Figure 2's red cell).
      for (std::size_t j = 0; j < tape_size; ++j) {
        InLabel& cell = input[cells + j];
        if (cell.kind == InKind::kTape && !cell.head) {
          flip_content(cell);
          return input;
        }
      }
      throw std::invalid_argument("corrupt: no non-head cell to damage");
    case Corruption::kInconsistentState: {
      InLabel& cell = input[cells + tape_size - 1];
      cell.state = static_cast<lba::State>((cell.state + 1) % machine.num_states());
      break;
    }
    case Corruption::kWrongTransition: {
      // Move the head flag of the NEXT block one cell over, so the
      // recorded transition is impossible.
      const std::size_t next = cells + tape_size + 1;
      if (next + tape_size > input.size() || input[next - 1].kind != InKind::kSeparator) {
        throw std::invalid_argument("corrupt: no next block for a transition error");
      }
      std::size_t head_at = 0;
      bool found = false;
      for (std::size_t j = 0; j < tape_size; ++j) {
        if (input[next + j].kind == InKind::kTape && input[next + j].head) {
          head_at = j;
          found = true;
          break;
        }
      }
      if (!found) throw std::invalid_argument("corrupt: next block has no head");
      input[next + head_at].head = false;
      input[next + (head_at + 1) % tape_size].head = true;
      break;
    }
    case Corruption::kTwoHeads:
      for (std::size_t j = 0; j < tape_size; ++j) {
        InLabel& cell = input[cells + j];
        if (cell.kind == InKind::kTape && !cell.head) {
          cell.head = true;
          return input;
        }
      }
      throw std::invalid_argument("corrupt: no cell for a second head");
  }
  return input;
}

Word pack(const PiLabels& labels, const std::vector<InLabel>& input) {
  Word out;
  out.reserve(input.size());
  for (const InLabel& l : input) out.push_back(labels.encode(l));
  return out;
}

std::vector<OutLabel> unpack_outputs(const PiLabels& labels, const Word& outputs) {
  std::vector<OutLabel> out;
  out.reserve(outputs.size());
  for (Label l : outputs) out.push_back(labels.decode_output(l));
  return out;
}

}  // namespace lclpath::hardness
