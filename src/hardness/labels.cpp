#include "hardness/labels.hpp"

#include <stdexcept>

namespace lclpath::hardness {

namespace {
constexpr std::size_t kNumTapeSymbols = lba::kNumSymbols;
}

PiLabels::PiLabels(const lba::Machine& machine, std::size_t tape_size)
    : machine_(&machine), b_(tape_size), q_(machine.num_states()) {
  if (tape_size < 2) throw std::invalid_argument("PiLabels: tape size must be >= 2");
}

// Input layout: [StartA, StartB, Separator, Empty, Tape * (4 * Q * 2)]
std::size_t PiLabels::num_inputs() const { return 4 + kNumTapeSymbols * q_ * 2; }

Label PiLabels::encode(const InLabel& label) const {
  switch (label.kind) {
    case InKind::kStartA: return 0;
    case InKind::kStartB: return 1;
    case InKind::kSeparator: return 2;
    case InKind::kEmpty: return 3;
    case InKind::kTape:
      return static_cast<Label>(
          4 + (static_cast<std::size_t>(label.content) * q_ + label.state) * 2 +
          (label.head ? 1 : 0));
  }
  throw std::logic_error("PiLabels::encode(InLabel): bad kind");
}

InLabel PiLabels::decode_input(Label label) const {
  InLabel out;
  switch (label) {
    case 0: out.kind = InKind::kStartA; return out;
    case 1: out.kind = InKind::kStartB; return out;
    case 2: out.kind = InKind::kSeparator; return out;
    case 3: out.kind = InKind::kEmpty; return out;
    default: break;
  }
  std::size_t rest = label - 4;
  if (rest >= kNumTapeSymbols * q_ * 2) {
    throw std::out_of_range("PiLabels::decode_input: bad label");
  }
  out.kind = InKind::kTape;
  out.head = (rest % 2) == 1;
  rest /= 2;
  out.state = static_cast<lba::State>(rest % q_);
  out.content = static_cast<lba::Symbol>(rest / q_);
  return out;
}

// Output layout:
//   [StartA, StartB, Empty, Error,
//    Error0 * (B+2), Error1 * (B+1), Error2 * (4 * (B+2)), Error3,
//    Error4 * (Q * 4 * (B+3)), Error5 * 2]
std::size_t PiLabels::num_outputs() const {
  return 4 + (b_ + 2) + (b_ + 1) + kNumTapeSymbols * (b_ + 2) + 1 +
         q_ * kNumTapeSymbols * (b_ + 3) + 2;
}

Label PiLabels::encode(const OutLabel& label) const {
  std::size_t base = 0;
  switch (label.kind) {
    case OutKind::kStartA: return 0;
    case OutKind::kStartB: return 1;
    case OutKind::kEmpty: return 2;
    case OutKind::kError: return 3;
    case OutKind::kError0:
      base = 4;
      if (label.index > b_ + 1) throw std::out_of_range("Error0 index");
      return static_cast<Label>(base + label.index);
    case OutKind::kError1:
      base = 4 + (b_ + 2);
      if (label.index > b_) throw std::out_of_range("Error1 index");
      return static_cast<Label>(base + label.index);
    case OutKind::kError2:
      base = 4 + (b_ + 2) + (b_ + 1);
      if (label.index > b_ + 1) throw std::out_of_range("Error2 index");
      return static_cast<Label>(base + static_cast<std::size_t>(label.content) * (b_ + 2) +
                                label.index);
    case OutKind::kError3:
      return static_cast<Label>(4 + (b_ + 2) + (b_ + 1) + kNumTapeSymbols * (b_ + 2));
    case OutKind::kError4: {
      base = 4 + (b_ + 2) + (b_ + 1) + kNumTapeSymbols * (b_ + 2) + 1;
      if (label.index > b_ + 2) throw std::out_of_range("Error4 index");
      const std::size_t packed =
          (label.state * kNumTapeSymbols + static_cast<std::size_t>(label.content)) *
              (b_ + 3) +
          label.index;
      return static_cast<Label>(base + packed);
    }
    case OutKind::kError5:
      base = 4 + (b_ + 2) + (b_ + 1) + kNumTapeSymbols * (b_ + 2) + 1 +
             q_ * kNumTapeSymbols * (b_ + 3);
      if (label.bit > 1) throw std::out_of_range("Error5 bit");
      return static_cast<Label>(base + label.bit);
  }
  throw std::logic_error("PiLabels::encode(OutLabel): bad kind");
}

OutLabel PiLabels::decode_output(Label label) const {
  OutLabel out;
  std::size_t x = label;
  if (x == 0) { out.kind = OutKind::kStartA; return out; }
  if (x == 1) { out.kind = OutKind::kStartB; return out; }
  if (x == 2) { out.kind = OutKind::kEmpty; return out; }
  if (x == 3) { out.kind = OutKind::kError; return out; }
  x -= 4;
  if (x < b_ + 2) { out.kind = OutKind::kError0; out.index = x; return out; }
  x -= b_ + 2;
  if (x < b_ + 1) { out.kind = OutKind::kError1; out.index = x; return out; }
  x -= b_ + 1;
  if (x < kNumTapeSymbols * (b_ + 2)) {
    out.kind = OutKind::kError2;
    out.content = static_cast<lba::Symbol>(x / (b_ + 2));
    out.index = x % (b_ + 2);
    return out;
  }
  x -= kNumTapeSymbols * (b_ + 2);
  if (x == 0) { out.kind = OutKind::kError3; return out; }
  x -= 1;
  if (x < q_ * kNumTapeSymbols * (b_ + 3)) {
    out.kind = OutKind::kError4;
    out.index = x % (b_ + 3);
    const std::size_t sc = x / (b_ + 3);
    out.content = static_cast<lba::Symbol>(sc % kNumTapeSymbols);
    out.state = static_cast<lba::State>(sc / kNumTapeSymbols);
    return out;
  }
  x -= q_ * kNumTapeSymbols * (b_ + 3);
  if (x < 2) { out.kind = OutKind::kError5; out.bit = x; return out; }
  throw std::out_of_range("PiLabels::decode_output: bad label");
}

std::string PiLabels::name(const InLabel& label) const {
  switch (label.kind) {
    case InKind::kStartA: return "Start(a)";
    case InKind::kStartB: return "Start(b)";
    case InKind::kSeparator: return "Sep";
    case InKind::kEmpty: return "Empty";
    case InKind::kTape:
      return "Tape(" + lba::to_string(label.content) + "," +
             machine_->state_name(label.state) + "," + (label.head ? "H" : "-") + ")";
  }
  return "?";
}

std::string PiLabels::name(const OutLabel& label) const {
  switch (label.kind) {
    case OutKind::kStartA: return "a";
    case OutKind::kStartB: return "b";
    case OutKind::kEmpty: return "empty";
    case OutKind::kError: return "Err";
    case OutKind::kError0: return "E0[" + std::to_string(label.index) + "]";
    case OutKind::kError1: return "E1[" + std::to_string(label.index) + "]";
    case OutKind::kError2:
      return "E2(" + lba::to_string(label.content) + ")[" + std::to_string(label.index) + "]";
    case OutKind::kError3: return "E3";
    case OutKind::kError4:
      return "E4(" + machine_->state_name(label.state) + "," +
             lba::to_string(label.content) + ")[" + std::to_string(label.index) + "]";
    case OutKind::kError5: return "E5(" + std::to_string(label.bit) + ")";
  }
  return "?";
}

Alphabet PiLabels::input_alphabet() const {
  Alphabet a;
  for (Label l = 0; l < num_inputs(); ++l) a.add(name(decode_input(l)));
  return a;
}

Alphabet PiLabels::output_alphabet() const {
  Alphabet a;
  for (Label l = 0; l < num_outputs(); ++l) a.add(name(decode_output(l)));
  return a;
}

}  // namespace lclpath::hardness
