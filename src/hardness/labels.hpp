// Label spaces of the LCL family Pi_MB (paper Sections 3.2.1 / 3.2.3).
//
// Inputs:   Start(a), Start(b), Separator, Empty, Tape(c, s, h)
//           with c in {0,1,L,R}, s in Q, h in {false,true}.
// Outputs:  Start(a), Start(b), Empty, Error (generic),
//           Error0(i) 0<=i<=B+1, Error1(i) 0<=i<=B,
//           Error2(x, i) x in {0,1,L,R}, 0<=i<=B+1, Error3,
//           Error4(state, content, i) 0<=i<=B+2, Error5(x) x in {0,1}.
//
// The input label count is independent of B (the paper stresses this);
// the outputs grow as O(B * |Q|).
#pragma once

#include <cstdint>
#include <string>

#include "core/alphabet.hpp"
#include "lba/lba.hpp"

namespace lclpath::hardness {

enum class InKind : std::uint8_t { kStartA, kStartB, kSeparator, kEmpty, kTape };
enum class OutKind : std::uint8_t {
  kStartA,
  kStartB,
  kEmpty,
  kError,   // generic
  kError0,
  kError1,
  kError2,
  kError3,
  kError4,
  kError5,
};

struct InLabel {
  InKind kind = InKind::kEmpty;
  lba::Symbol content = lba::Symbol::k0;  // Tape only
  lba::State state = 0;                   // Tape only
  bool head = false;                      // Tape only

  bool operator==(const InLabel&) const = default;
};

struct OutLabel {
  OutKind kind = OutKind::kEmpty;
  std::size_t index = 0;                  // ErrorK chain position
  lba::Symbol content = lba::Symbol::k0;  // Error2's x / Error4's tape content
  lba::State state = 0;                   // Error4's current state
  std::size_t bit = 0;                    // Error5's x

  bool operator==(const OutLabel&) const = default;
  bool is_specific_error() const {
    return kind >= OutKind::kError0 && kind <= OutKind::kError5;
  }
};

/// Dense codec between structured labels and alphabet indices.
class PiLabels {
 public:
  PiLabels(const lba::Machine& machine, std::size_t tape_size);

  std::size_t tape_size() const { return b_; }
  const lba::Machine& machine() const { return *machine_; }

  std::size_t num_inputs() const;
  std::size_t num_outputs() const;

  Label encode(const InLabel& label) const;
  Label encode(const OutLabel& label) const;
  InLabel decode_input(Label label) const;
  OutLabel decode_output(Label label) const;

  std::string name(const InLabel& label) const;
  std::string name(const OutLabel& label) const;

  /// Alphabets with human-readable names (index-aligned with encode()).
  Alphabet input_alphabet() const;
  Alphabet output_alphabet() const;

 private:
  const lba::Machine* machine_;
  std::size_t b_;
  std::size_t q_;  // number of machine states
};

}  // namespace lclpath::hardness
