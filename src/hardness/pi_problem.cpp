#include "hardness/pi_problem.hpp"

namespace lclpath::hardness {

namespace {
using lba::Move;
using lba::State;
using lba::Symbol;

bool is_start(const InLabel& in) {
  return in.kind == InKind::kStartA || in.kind == InKind::kStartB;
}
}  // namespace

PiProblem::PiProblem(const lba::Machine& machine, std::size_t tape_size)
    : labels_(machine, tape_size) {
  machine.validate();
}

std::size_t PiProblem::error4_final_index(State state, Symbol content) const {
  const std::size_t b = labels_.tape_size();
  if (state == machine().final_state()) return b + 1;  // treated like a Stay
  switch (machine().transition(state, content).move) {
    case Move::kLeft: return b;
    case Move::kStay: return b + 1;
    case Move::kRight: return b + 2;
  }
  return b + 1;
}

bool PiProblem::error4_final(const OutLabel& out) const {
  if (out.kind != OutKind::kError4) return false;
  return out.index == error4_final_index(out.state, out.content);
}

bool PiProblem::node_ok(std::size_t /*i*/, const InLabel& in, const OutLabel& out,
                        const InLabel* in_pred, const OutLabel* out_pred) const {
  const std::size_t b = labels_.tape_size();
  const bool has_pred = in_pred != nullptr && out_pred != nullptr;
  const State q0 = machine().initial();

  // Constraint 12: adjacent specific errors must share the type.
  if (out.is_specific_error() && has_pred && out_pred->is_specific_error() &&
      out_pred->kind != out.kind) {
    return false;
  }

  switch (out.kind) {
    case OutKind::kEmpty:
      // Constraint 2 — plus: an error chain cannot be dropped without its
      // terminating witness (paper erratum; Section 3.4's acceptance
      // argument assumes chains end at an Error node).
      if (has_pred && out_pred->is_specific_error()) return false;
      return in.kind == InKind::kEmpty;

    case OutKind::kStartA:
    case OutKind::kStartB: {
      // Constraint 3 (first node): the secret must match the input.
      if (!has_pred) {
        if (out.kind == OutKind::kStartA && in.kind != InKind::kStartA) return false;
        if (out.kind == OutKind::kStartB && in.kind != InKind::kStartB) return false;
        return true;
      }
      // Constraint 4: the two secrets never touch. Additionally (same
      // erratum as for Empty): no secret directly after a specific error
      // chain, which would abandon the chain without a witness.
      if (out.kind == OutKind::kStartA && out_pred->kind == OutKind::kStartB) return false;
      if (out.kind == OutKind::kStartB && out_pred->kind == OutKind::kStartA) return false;
      if (out_pred->is_specific_error()) return false;
      return true;
    }

    case OutKind::kError0: {
      // Constraint 5.
      if (out.index == 0) return !has_pred;
      return has_pred && out_pred->kind == OutKind::kError0 &&
             out_pred->index == out.index - 1;
    }

    case OutKind::kError1: {
      // Constraint 6.
      if (out.index == 0) return in.kind == InKind::kSeparator;
      return in.kind != InKind::kSeparator && has_pred &&
             out_pred->kind == OutKind::kError1 && out_pred->index == out.index - 1;
    }

    case OutKind::kError2: {
      // Constraint 7 (with the chain required at j = B+1; see header).
      // Extension for wrong *writes*: the chain may also start at the head
      // cell, carrying the content delta(s, c) writes — so a mismatch at
      // distance B+1 witnesses a mis-copied written cell. On good inputs
      // the written value matches, so no false proof exists.
      if (out.index == 0) {
        if (in.kind != InKind::kTape) return false;
        if (!in.head) return in.content == out.content;
        if (in.state == machine().final_state()) return false;
        return machine().transition(in.state, in.content).write == out.content;
      }
      const bool chained = has_pred && out_pred->kind == OutKind::kError2 &&
                           out_pred->content == out.content &&
                           out_pred->index == out.index - 1;
      if (out.index == b + 1) {
        return chained && in.kind == InKind::kTape && in.content != out.content;
      }
      return chained;
    }

    case OutKind::kError3: {
      // Constraint 8.
      return in.kind == InKind::kTape && has_pred && in_pred->kind == InKind::kTape &&
             in_pred->state != in.state;
    }

    case OutKind::kError4: {
      // Constraint 9.
      if (out.index == 0) {
        return in.kind == InKind::kTape && in.content == out.content &&
               in.state == out.state && in.head;
      }
      const std::size_t final_index = error4_final_index(out.state, out.content);
      if (out.index > final_index) return false;
      const bool chained = has_pred && out_pred->kind == OutKind::kError4 &&
                           out_pred->state == out.state &&
                           out_pred->content == out.content &&
                           out_pred->index == out.index - 1;
      if (!chained) return false;
      if (out.index == final_index) {
        // A transition *from* the final state is an error only if the
        // encoding actually continues (a Tape cell where nothing should
        // follow); otherwise every good input's last block would admit a
        // free Error4 chain (paper erratum).
        if (out.state == machine().final_state()) return in.kind == InKind::kTape;
        const State transition_state =
            machine().transition(out.state, out.content).next_state;
        return in.kind == InKind::kTape &&
               (in.state != transition_state || !in.head);
      }
      return true;
    }

    case OutKind::kError5: {
      // Constraint 10 (chain starts only at a head with bit 0).
      const bool pred_is_e5 = has_pred && out_pred->kind == OutKind::kError5;
      if (!pred_is_e5) {
        return in.kind == InKind::kTape && in.head && out.bit == 0;
      }
      return out.bit == 1 && in.kind == InKind::kTape;
    }

    case OutKind::kError: {
      // Constraint 11: one witness must hold. When the predecessor is a
      // specific error, *only* the matching chain-end witness applies —
      // otherwise a chain could dangle and borrow an unrelated generic
      // justification (paper erratum; Section 3.4 assumes chains are
      // accepted only at their witness).
      if (!has_pred) return !is_start(in);
      if (out_pred->is_specific_error()) {
        switch (out_pred->kind) {
          case OutKind::kError0: {
            const std::size_t j = out_pred->index;
            if (j == 0) return false;
            if (j == 1) return in_pred->kind != InKind::kSeparator;
            if (in_pred->kind != InKind::kTape) return true;
            if (j == 2) {
              return in_pred->content != Symbol::kL || in_pred->state != q0 ||
                     !in_pred->head;
            }
            if (j <= b) {
              return in_pred->content != Symbol::k0 || in_pred->state != q0 ||
                     in_pred->head;
            }
            if (j == b + 1) {
              return in_pred->content != Symbol::kR || in_pred->state != q0 ||
                     in_pred->head;
            }
            return false;
          }
          case OutKind::kError1:
            if (in.kind == InKind::kSeparator && out_pred->index != b) return true;
            // A tape cell where a separator was expected (tape too long);
            // requiring Tape (not merely "not Separator") keeps the witness
            // dead on good inputs, whose encodings end in Empty.
            if (in.kind == InKind::kTape && out_pred->index == b) return true;
            return false;
          case OutKind::kError2: return out_pred->index == b + 1;
          case OutKind::kError3: return true;
          case OutKind::kError4: return error4_final(*out_pred);
          case OutKind::kError5:
            return out_pred->bit == 1 && in_pred->kind == InKind::kTape &&
                   in_pred->head;
          default: return false;
        }
      }
      if (is_start(in)) return true;
      if (in_pred->kind == InKind::kEmpty || out_pred->kind == OutKind::kEmpty) return true;
      if (out_pred->kind == OutKind::kError) return true;
      return false;
    }
  }
  return false;
}

VerifyResult PiProblem::verify(const std::vector<InLabel>& inputs,
                               const std::vector<OutLabel>& outputs) const {
  if (inputs.size() != outputs.size() || inputs.empty()) {
    return VerifyResult::failure(0, "size mismatch or empty");
  }
  if (!allowed_at_last(outputs.back())) {
    return VerifyResult::failure(inputs.size() - 1,
                                 "specific error dangling at the path end");
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const InLabel* in_pred = i > 0 ? &inputs[i - 1] : nullptr;
    const OutLabel* out_pred = i > 0 ? &outputs[i - 1] : nullptr;
    if (!node_ok(i, inputs[i], outputs[i], in_pred, out_pred)) {
      return VerifyResult::failure(
          i, "Pi constraint violated at node " + std::to_string(i) + " (in=" +
                 labels_.name(inputs[i]) + ", out=" + labels_.name(outputs[i]) + ")");
    }
  }
  return VerifyResult::success();
}

}  // namespace lclpath::hardness
