#include "hardness/study.hpp"

#include <utility>

#include "hardness/pi_problem.hpp"
#include "hardness/undirected.hpp"
#include "lcl/catalog.hpp"

namespace lclpath::hardness {

PairwiseProblem pi_pairwise(const lba::Machine& machine, std::size_t tape_size,
                            std::string name) {
  const PiProblem pi(machine, tape_size);
  const PiLabels& labels = pi.labels();
  const std::size_t num_in = labels.num_inputs();
  const std::size_t num_out = labels.num_outputs();

  // Decode every label once; the product loops below probe node_ok with
  // structured labels, not codec indices.
  std::vector<InLabel> ins;
  ins.reserve(num_in);
  for (Label i = 0; i < num_in; ++i) ins.push_back(labels.decode_input(i));
  std::vector<OutLabel> outs;
  outs.reserve(num_out);
  for (Label o = 0; o < num_out; ++o) outs.push_back(labels.decode_output(o));

  // Product output alphabet: one pairwise output label per (input, output)
  // pair, so the edge constraint can replay the verifier's access to the
  // predecessor's input (Lemma 2's device).
  const Alphabet in_alphabet = labels.input_alphabet();
  const Alphabet pi_out_alphabet = labels.output_alphabet();
  Alphabet out_alphabet;
  for (Label i = 0; i < num_in; ++i) {
    for (Label o = 0; o < num_out; ++o) {
      out_alphabet.add(in_alphabet.name(i) + "|" + pi_out_alphabet.name(o));
    }
  }
  const auto pack = [num_out](Label i, Label o) {
    return static_cast<Label>(i * num_out + o);
  };

  if (name.empty()) {
    name = "pi_mb_pairwise(B=" + std::to_string(tape_size) + ")";
  }
  PairwiseProblem product(std::move(name), in_alphabet, std::move(out_alphabet),
                          Topology::kDirectedPath);

  // Edge pass. Besides the edge constraint itself it derives the interior
  // node support: a pair (in, out) is usable at a node with a predecessor
  // iff *some* predecessor pair verifies with it — no separate existence
  // scan.
  std::vector<bool> any_pred(num_in * num_out, false);
  for (Label ib = 0; ib < num_in; ++ib) {
    for (Label ob = 0; ob < num_out; ++ob) {
      bool supported = false;
      for (Label ia = 0; ia < num_in; ++ia) {
        for (Label oa = 0; oa < num_out; ++oa) {
          if (pi.node_ok(1, ins[ib], outs[ob], &ins[ia], &outs[oa])) {
            product.allow_edge(pack(ia, oa), pack(ib, ob));
            supported = true;
          }
        }
      }
      any_pred[ib * num_out + ob] = supported;
    }
  }

  // Node constraints: a pairwise output is usable only when its input
  // component matches the node's actual input. Interior nodes additionally
  // need predecessor support (the edge constraint would dead-end them
  // anyway; stating it in C_node keeps the transition system small). The
  // first node instead runs the verifier's no-predecessor case.
  for (Label i = 0; i < num_in; ++i) {
    for (Label o = 0; o < num_out; ++o) {
      if (any_pred[i * num_out + o]) product.allow_node(i, pack(i, o));
      if (pi.node_ok(0, ins[i], outs[o], nullptr, nullptr)) {
        product.allow_node_first(i, pack(i, o));
      }
    }
  }

  // Last-node rule: no dangling specific-error chains (Lemma 3's Er rule).
  BitVector last(num_in * num_out);
  for (Label i = 0; i < num_in; ++i) {
    for (Label o = 0; o < num_out; ++o) {
      if (pi.allowed_at_last(outs[o])) last.set(pack(i, o), true);
    }
  }
  product.restrict_last(last);
  return product;
}

std::vector<PairwiseProblem> lift_workload() {
  std::vector<PairwiseProblem> problems;
  // Cycle lifts of directed-path problems.
  problems.push_back(lift_path_to_cycle(catalog::agreement(Topology::kDirectedPath)));
  problems.push_back(
      lift_path_to_cycle(catalog::prefix_parity(Topology::kDirectedPath)));
  // Undirected lifts across the known classes: kConstant, kLogStar, kLinear.
  problems.push_back(
      lift_to_undirected(catalog::constant_output(Topology::kDirectedPath)));
  problems.push_back(
      lift_to_undirected(catalog::two_coloring(Topology::kDirectedPath)));
  problems.push_back(
      lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath)));
  problems.push_back(lift_to_undirected(catalog::shift_input()));
  // A renamed duplicate: canonical keys ignore cosmetic names, so the batch
  // engine must classify this once and share the outcome.
  PairwiseProblem renamed =
      lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath));
  renamed.set_name(renamed.name() + " (renamed duplicate)");
  problems.push_back(std::move(renamed));
  return problems;
}

StudyResult classify_hardness(std::span<const PairwiseProblem> problems,
                              const StudyOptions& options) {
  MonoidCache local_monoids;
  MonoidCache* monoids =
      options.monoid_cache != nullptr ? options.monoid_cache : &local_monoids;
  const std::uint64_t hits_before = monoids->hits();
  const std::uint64_t misses_before = monoids->misses();

  BatchOptions batch;
  batch.num_threads = options.num_threads;
  batch.cache = options.batch_cache;
  batch.classify.max_monoid = options.max_monoid;
  batch.classify.certificate_mode = CertificateMode::kAuto;
  batch.classify.monoid_cache = monoids;
  batch.classify.budget = options.budget;
  batch.problem_deadline_ms = options.problem_deadline_ms;
  batch.batch_deadline_ms = options.study_deadline_ms;

  StudyResult result;
  result.entries = classify_batch(problems, batch);
  result.summary = summarize_batch(result.entries);
  result.monoid_hits = monoids->hits() - hits_before;
  result.monoid_misses = monoids->misses() - misses_before;
  result.timeouts =
      result.summary.by_error[static_cast<std::size_t>(BatchErrorKind::kTimeout)];
  result.budget_overflows =
      result.summary.by_error[static_cast<std::size_t>(BatchErrorKind::kBudget)];
  result.cancelled =
      result.summary.by_error[static_cast<std::size_t>(BatchErrorKind::kCancelled)];
  return result;
}

}  // namespace lclpath::hardness
