// The LCL family Pi_MB (paper Section 3.2) and its verifier
// (constraints 1-12 of Section 3.2.4).
//
// Pi_MB is checked by a V_in,in-out,out verifier (each node inspects its
// own input/output and its predecessor's), so this module keeps a
// dedicated structured verifier; Lemma 2's product construction
// (lcl/normalize.hpp) converts it to the pairwise form when needed.
//
// Two errata of the paper are fixed here and documented in DESIGN.md:
//   * constraint 7's j = B+1 case must also continue the chain
//     (Output(p_{i-1}) = Error2(x, B)), otherwise a lone Error2(x, B+1)
//     falsely "proves" an error on good inputs;
//   * the upper-bound algorithm's cases 4 and 7 emit Error1(i - k) and
//     Error4(s, c, i - k) (the paper's k - i is a sign slip).
#pragma once

#include <optional>

#include "hardness/labels.hpp"
#include "lcl/verifier.hpp"

namespace lclpath::hardness {

class PiProblem {
 public:
  PiProblem(const lba::Machine& machine, std::size_t tape_size);

  const PiLabels& labels() const { return labels_; }
  const lba::Machine& machine() const { return labels_.machine(); }
  std::size_t tape_size() const { return labels_.tape_size(); }

  /// True iff node i's constraints (1-12) hold given its own labels and
  /// (for i > 0) the predecessor's.
  bool node_ok(std::size_t i, const InLabel& in, const OutLabel& out,
               const InLabel* in_pred, const OutLabel* out_pred) const;

  /// Whole-path verification on structured labels.
  VerifyResult verify(const std::vector<InLabel>& inputs,
                      const std::vector<OutLabel>& outputs) const;

  /// The "Error4 final node" predicate (constraint 9 / 11).
  bool error4_final(const OutLabel& out) const;

  /// Last-node rule: a specific error chain may not end dangling at the
  /// path's last node (its witness lives at the successor). Mirrors
  /// Lemma 3's "Er must have a successor" device.
  bool allowed_at_last(const OutLabel& out) const { return !out.is_specific_error(); }

  /// Expected chain length of an Error4 witness starting at the head
  /// (depends on the transition's move; B+1 for final states).
  std::size_t error4_final_index(lba::State state, lba::Symbol content) const;

 private:
  PiLabels labels_;
};

}  // namespace lclpath::hardness
