#include "hardness/tree_encoding.hpp"

#include <algorithm>
#include <stdexcept>

namespace lclpath::hardness {

std::size_t Graph::add_node() {
  adj.emplace_back();
  return adj.size() - 1;
}

void Graph::add_edge(std::size_t u, std::size_t v) {
  adj[u].push_back(v);
  adj[v].push_back(u);
}

namespace {

/// Recursive helper: builds the full binary tree with subdivided left
/// edges over bits[lo, hi); returns the subtree root.
std::size_t build_subtree(Graph& g, const std::vector<int>& bits, std::size_t lo,
                          std::size_t hi) {
  const std::size_t node = g.add_node();
  if (hi - lo == 1) {
    // Leaf: two children x, y; bit 1 extends both by one node.
    const std::size_t x = g.add_node();
    const std::size_t y = g.add_node();
    g.add_edge(node, x);
    g.add_edge(node, y);
    if (bits[lo] == 1) {
      const std::size_t xx = g.add_node();
      const std::size_t yy = g.add_node();
      g.add_edge(x, xx);
      g.add_edge(y, yy);
    }
    return node;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  // Left child behind a subdivision node; right child direct.
  const std::size_t w = g.add_node();
  const std::size_t left = build_subtree(g, bits, lo, mid);
  g.add_edge(node, w);
  g.add_edge(w, left);
  const std::size_t right = build_subtree(g, bits, mid, hi);
  g.add_edge(node, right);
  return node;
}

bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// In-order decode walk. `parent` disambiguates direction.
bool decode_walk(const Graph& g, std::size_t node, std::size_t parent,
                 std::vector<int>& bits) {
  std::vector<std::size_t> children;
  for (std::size_t u : g.adj[node]) {
    if (u != parent) children.push_back(u);
  }
  if (children.size() != 2) return false;
  // Leaf test: both children have degree 1 (bit 0) or degree 2 with a
  // pendant below (bit 1).
  const std::size_t d0 = g.degree(children[0]);
  const std::size_t d1 = g.degree(children[1]);
  if (d0 == 1 && d1 == 1) {
    bits.push_back(0);
    return true;
  }
  if (d0 == 2 && d1 == 2) {
    // Distinguish leaf-with-extensions from an internal node: a leaf's
    // children have only pendant subtrees (grandchildren of degree 1).
    auto pendant = [&](std::size_t child) {
      for (std::size_t u : g.adj[child]) {
        if (u != node && g.degree(u) != 1) return false;
      }
      return true;
    };
    if (pendant(children[0]) && pendant(children[1])) {
      bits.push_back(1);
      return true;
    }
  }
  // Internal node: the left child hides behind a degree-2 subdivision
  // node; the right child is direct (degree 3).
  std::size_t left_mid = 0, right = 0;
  if (d0 == 2 && d1 == 3) {
    left_mid = children[0];
    right = children[1];
  } else if (d1 == 2 && d0 == 3) {
    left_mid = children[1];
    right = children[0];
  } else {
    return false;
  }
  std::size_t left = 0;
  bool found = false;
  for (std::size_t u : g.adj[left_mid]) {
    if (u != node) {
      left = u;
      found = true;
    }
  }
  if (!found) return false;
  return decode_walk(g, left, left_mid, bits) && decode_walk(g, right, node, bits);
}

}  // namespace

EncodedTree encode_bits(const std::vector<int>& bits) {
  if (!is_power_of_two(bits.size())) {
    throw std::invalid_argument("encode_bits: bit count must be a power of two");
  }
  EncodedTree out;
  out.root = build_subtree(out.tree, bits, 0, bits.size());
  return out;
}

std::optional<std::vector<int>> decode_bits(const Graph& tree, std::size_t root) {
  std::vector<int> bits;
  // The root has no parent: treat the attachment edge (if present in a
  // larger graph) as the parent by convention of the caller; here we use
  // an invalid parent index.
  if (!decode_walk(tree, root, static_cast<std::size_t>(-1), bits)) return std::nullopt;
  if (!is_power_of_two(bits.size())) return std::nullopt;
  return bits;
}

std::size_t bits_per_label(std::size_t num_labels) {
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < num_labels) ++bits;
  // Round up to a power of two (the paper's 2^k shape).
  std::size_t rounded = 1;
  while (rounded < bits) rounded *= 2;
  return rounded;
}

GStar build_gstar(const Word& input_labels, std::size_t num_labels) {
  const std::size_t nbits = bits_per_label(num_labels);
  GStar out;
  for (std::size_t v = 0; v < input_labels.size(); ++v) {
    out.path_nodes.push_back(out.graph.add_node());
    if (v > 0) out.graph.add_edge(out.path_nodes[v - 1], out.path_nodes[v]);
  }
  // One encoded tree per *distinct* label, spliced once per occurrence —
  // Pi inputs repeat a handful of labels (Empty padding, tape cells)
  // thousands of times, so re-encoding per node dominated the build.
  std::vector<std::optional<EncodedTree>> encoded(num_labels);
  for (std::size_t v = 0; v < input_labels.size(); ++v) {
    const Label label = input_labels[v];
    if (label >= num_labels) throw std::invalid_argument("build_gstar: label out of range");
    if (!encoded[label]) {
      std::vector<int> bits(nbits, 0);
      for (std::size_t k = 0; k < nbits; ++k) {
        bits[k] = static_cast<int>((label >> (nbits - 1 - k)) & 1u);
      }
      encoded[label] = encode_bits(bits);
    }
    // Splice the encoded tree into the shared graph.
    const EncodedTree& enc = *encoded[label];
    const std::size_t offset = out.graph.size();
    for (std::size_t u = 0; u < enc.tree.size(); ++u) out.graph.add_node();
    for (std::size_t u = 0; u < enc.tree.size(); ++u) {
      for (std::size_t w : enc.tree.adj[u]) {
        if (w > u) out.graph.add_edge(offset + u, offset + w);
      }
    }
    out.graph.add_edge(out.path_nodes[v], offset + enc.root);
  }
  return out;
}

std::optional<Word> recover_labels(const GStar& gstar, std::size_t num_labels) {
  const Graph& g = gstar.graph;
  const std::size_t nbits = bits_per_label(num_labels);
  std::size_t k = 0;
  while ((std::size_t{1} << k) < nbits) ++k;  // nbits = 2^k

  // Peeling decomposition: A_i = degree-1 nodes of G_i; B_i = degree-2
  // nodes of G_i adjacent to A_i; k+2 rounds (paper Section 3.8).
  // Degrees are maintained as counters (decremented when a neighbor is
  // removed) instead of rescanning adjacency lists every round.
  std::vector<char> removed(g.size(), 0);
  std::vector<std::size_t> deg(g.size(), 0);
  for (std::size_t v = 0; v < g.size(); ++v) deg[v] = g.degree(v);
  std::vector<char> in_label(g.size(), 0);
  for (std::size_t round = 0; round < k + 2; ++round) {
    std::vector<std::size_t> a_nodes;
    for (std::size_t v = 0; v < g.size(); ++v) {
      if (!removed[v] && deg[v] <= 1) a_nodes.push_back(v);
    }
    std::vector<std::size_t> b_nodes;
    if (round < k + 1) {
      std::vector<char> is_a(g.size(), 0);
      for (std::size_t v : a_nodes) is_a[v] = 1;
      for (std::size_t v = 0; v < g.size(); ++v) {
        if (removed[v] || deg[v] != 2 || is_a[v]) continue;
        for (std::size_t u : g.adj[v]) {
          if (!removed[u] && is_a[u]) {
            b_nodes.push_back(v);
            break;
          }
        }
      }
    }
    const auto remove_node = [&](std::size_t v) {
      removed[v] = 1;
      in_label[v] = 1;
      for (std::size_t u : g.adj[v]) {
        if (!removed[u]) --deg[u];
      }
    };
    for (std::size_t v : a_nodes) remove_node(v);
    for (std::size_t v : b_nodes) remove_node(v);
  }

  // Each main node's unique V_label neighbor roots its encoding tree.
  Word labels;
  labels.reserve(gstar.path_nodes.size());
  for (std::size_t v : gstar.path_nodes) {
    std::size_t root = 0;
    std::size_t count = 0;
    for (std::size_t u : g.adj[v]) {
      if (in_label[u]) {
        root = u;
        ++count;
      }
    }
    if (count != 1) return std::nullopt;
    std::vector<int> bits;
    if (!decode_walk(g, root, v, bits) ||
        bits.size() != nbits) {
      return std::nullopt;
    }
    Label label = 0;
    for (int bit : bits) label = static_cast<Label>((label << 1) | static_cast<Label>(bit));
    if (label >= num_labels) return std::nullopt;
    labels.push_back(label);
  }
  return labels;
}

}  // namespace lclpath::hardness
