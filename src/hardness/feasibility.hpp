// Word-parallel feasibility DP over Pi_MB outputs (the Section 3.4 lower
// bound, executed).
//
// The scalar form — for every position, for every output, for every
// predecessor output, call node_ok() — decodes labels and re-derives the
// same (input_pred, input) transfer relation at every position. But
// PiProblem::node_ok is position-independent: the set of (out_pred, out)
// pairs it accepts depends only on the two adjacent *input* labels. So
// the DP factors into per-input-pair transfer matrices over the output
// alphabet, built once, cached, and reused across positions and encoding
// sizes; the forward reach and backward prune sweeps become one
// BitVector * BitMatrix product per position (the multiply_into idiom of
// the monoid layer).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/bitmatrix.hpp"
#include "core/cancel.hpp"
#include "hardness/pi_problem.hpp"

namespace lclpath::hardness {

/// Caches the transfer structure of one PiProblem. Instances are cheap
/// (tables fill lazily per distinct input pair) but not thread-safe: use
/// one per thread.
class PiFeasibility {
 public:
  explicit PiFeasibility(const PiProblem& problem);

  const PiProblem& problem() const { return *problem_; }

  /// Feasible output sets per position: forward reach intersected with
  /// the backward prune, honoring the first-node rule and the last-node
  /// mask (allowed_at_last). Matches the scalar reference DP bit for bit
  /// (pinned by tests/hardness_diff_test.cpp). A non-null `budget` is
  /// checkpointed once per position in both sweeps, so long encoding
  /// chains honor deadlines and cancellation.
  std::vector<BitVector> feasible_sets(const std::vector<InLabel>& input,
                                       const ExecutionBudget* budget = nullptr) const;

  /// Number of feasible output labels per position.
  std::vector<std::size_t> feasible_counts(const std::vector<InLabel>& input,
                                           const ExecutionBudget* budget = nullptr) const;

  /// Transfer matrices for one adjacent input pair: forward[p][o] = 1 iff
  /// node_ok(in, o | in_pred, p); backward is its transpose. Built on
  /// first use and cached for the lifetime of this object.
  struct Transfer {
    BitMatrix forward;
    BitMatrix backward;
  };
  const Transfer& transfer(const InLabel& in_pred, const InLabel& in) const;

  /// Outputs allowed at a path-first node with the given input.
  const BitVector& first_allowed(const InLabel& in) const;

  /// Outputs allowed at the last node (the dangling-chain rule).
  const BitVector& last_allowed() const { return last_allowed_; }

  /// Distinct input pairs with a built transfer matrix so far (the reuse
  /// the cache buys; asserted by tests).
  std::size_t cached_transfers() const { return transfers_.size(); }

 private:
  const PiProblem* problem_;
  std::vector<OutLabel> outputs_;  ///< decoded once, indexed by Label
  BitVector last_allowed_;
  mutable std::unordered_map<std::size_t, Transfer> transfers_;
  mutable std::unordered_map<std::size_t, BitVector> first_;
};

}  // namespace lclpath::hardness
