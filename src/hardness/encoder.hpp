// Good inputs (Definition 1, Figure 1) and the corrupted variants
// (Figure 2) for the Pi_MB hardness experiments.
#pragma once

#include <vector>

#include "hardness/labels.hpp"

namespace lclpath::hardness {

/// Which secret the first node carries.
enum class Secret : std::uint8_t { kA, kB };

/// Encodes the first `steps + 1` configurations of the machine's run as a
/// good input of total length n (padding with Empty; throws if the
/// encoding does not fit). Layout (Definition 1):
///   p0 = Start(secret); then per configuration i: Separator followed by
///   the B tape cells Tape(tape[j], state_i, head_i == j).
std::vector<InLabel> good_input(const lba::Machine& machine, std::size_t tape_size,
                                Secret secret, std::size_t steps, std::size_t n);

/// Length of the encoding part (without Empty padding): 1 + (steps+1)(B+1).
std::size_t encoding_length(std::size_t tape_size, std::size_t steps);

/// The seven corruption kinds exercised by Figure 2 and the tests.
enum class Corruption : std::uint8_t {
  kWrongInitialTape,    // a 1 in the initial tape (Error0 witness)
  kTapeTooLong,         // an extra cell in one block (Error1 witness)
  kTapeTooShort,        // a missing cell in one block (Error1 witness)
  kWrongCopy,           // tape cell changed between steps (Error2, Figure 2)
  kInconsistentState,   // state differs inside one block (Error3 witness)
  kWrongTransition,     // head/state evolve wrongly (Error4 witness)
  kTwoHeads,            // an extra head inside a block (Error5 witness)
};

/// Applies the corruption to a good input (in-place semantics: returns the
/// corrupted copy). `block` selects which configuration block to damage
/// (1-based; must exist).
std::vector<InLabel> corrupt(const lba::Machine& machine, std::size_t tape_size,
                             std::vector<InLabel> input, Corruption corruption,
                             std::size_t block);

/// Packs structured inputs to dense labels (PiLabels::encode).
Word pack(const PiLabels& labels, const std::vector<InLabel>& input);
std::vector<OutLabel> unpack_outputs(const PiLabels& labels, const Word& outputs);

}  // namespace lclpath::hardness
