// Routing the hardness constructions through the batch classification
// engine.
//
// The Section 3.7 lifts and the Lemma 2 product form of Pi_MB all produce
// ordinary PairwiseProblems — so the Theorem 4/5 studies and the lift
// regressions should not hand-roll classify() loops: classify_hardness()
// funnels them through classify_batch with a shared MonoidCache and
// CertificateMode::kAuto, which buys in-batch dedup, cross-call caching,
// thread-pool parallelism and lazy certificates in one place.
//
// For Pi_MB itself the interesting outcome is *failure*: deciding its
// class is deciding LBA halting (Theorem 5, PSPACE-hard), so the generic
// decider hits its monoid budget on all but the most trivial machines.
// classify_batch records that per entry instead of throwing, which makes
// the budget-capped census a measurable quantity (the fourth CI bench
// family reports it).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "decide/batch.hpp"
#include "lba/lba.hpp"

namespace lclpath::hardness {

/// Lemma 2 product form of Pi_MB on the directed path: outputs are
/// (input, output) pairs so each edge can replay the V_in,in-out,out
/// verifier; the first-node constraint carries the no-predecessor checks
/// and the last mask carries the dangling-chain rule. Construction cost is
/// Theta((|Sigma_in| * |Sigma_out|)^2) node_ok probes — itself part of the
/// Theorem 5 story (the product alphabet grows with B * |Q|).
PairwiseProblem pi_pairwise(const lba::Machine& machine, std::size_t tape_size,
                            std::string name = {});

/// Every Section 3.7 lift construction that yields a classifiable problem:
/// undirected lifts and cycle lifts over the catalog, plus a renamed
/// duplicate (semantically identical problems must be classified once —
/// the dedup path the batch engine gives hardness for free).
std::vector<PairwiseProblem> lift_workload();

struct StudyOptions {
  /// Worker threads; 0 means hardware concurrency.
  std::size_t num_threads = 0;
  /// Monoid budget per problem; overflows are recorded, not thrown.
  std::size_t max_monoid = 500000;
  /// Optional shared caches (null: per-call locals). Sharing across calls
  /// is what makes repeated constructions — parameter sweeps, re-runs —
  /// hit instead of recompute.
  MonoidCache* monoid_cache = nullptr;
  BatchCache* batch_cache = nullptr;
  /// Per-problem / study-wide deadlines in milliseconds (0 = none),
  /// forwarded to BatchOptions. A timed-out problem records a kTimeout
  /// entry — for the Theorem 5 studies a first-class observable alongside
  /// budget overflows, since a deadline is just the wall-clock face of the
  /// same PSPACE wall.
  std::uint64_t problem_deadline_ms = 0;
  std::uint64_t study_deadline_ms = 0;
  /// Optional cooperative cancellation/deadline budget shared by every
  /// worker in the study (core/cancel.hpp). Null = unbounded.
  const ExecutionBudget* budget = nullptr;
};

struct StudyResult {
  std::vector<BatchEntry> entries;  ///< aligned with the input problems
  BatchSummary summary;
  /// MonoidCache traffic attributable to this call (approximate when the
  /// caller shares the cache with concurrent batches).
  std::uint64_t monoid_hits = 0;
  std::uint64_t monoid_misses = 0;
  /// Failure census by kind (summary.by_error re-exposed under the names
  /// the hardness reports print).
  std::size_t timeouts = 0;
  std::size_t budget_overflows = 0;
  std::size_t cancelled = 0;
};

/// classify_batch over the given problems with the hardness defaults:
/// shared MonoidCache, CertificateMode::kAuto, per-entry failure capture.
StudyResult classify_hardness(std::span<const PairwiseProblem> problems,
                              const StudyOptions& options = {});

}  // namespace lclpath::hardness
