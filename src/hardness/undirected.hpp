// Section 3.7: lifting directed-path LCLs to undirected paths and to
// cycles.
//
// Undirected lift: inputs gain an orientation counter in {0,1,2}; outputs
// repeat it, so any two neighbors can recover the intended direction from
// their output pair alone and replay the original directed edge check.
// Where the counters are inconsistent, both sides are treated as path
// ends (the paper's "treat the places where the orientation is not
// consistent as a place where the path ends"). Consistently-counted
// instances embed the original problem, so the complexity class is
// preserved; the lifted edge constraint is orientation-symmetric by
// construction.
//
// Cycle lift: inputs gain a separator mark; marked nodes output the
// dedicated label S and cut the cycle into independent path instances.
// If no node is marked, the whole cycle may output the escape label X
// (and nothing else), which marked nodes can never join.
//
// Both lifts require the source problem to use the same node constraint
// at path-interior and path-first nodes (true for every catalog problem);
// the last-node mask is honored by the cycle lift.
#pragma once

#include "lcl/problem.hpp"

namespace lclpath::hardness {

/// Directed path/cycle problem -> undirected same-shape problem.
PairwiseProblem lift_to_undirected(const PairwiseProblem& directed);

/// Directed path problem -> directed cycle problem (separator marks).
PairwiseProblem lift_path_to_cycle(const PairwiseProblem& path_problem);

/// Instance helpers: attach a consistent orientation counter (offset
/// selectable) / separator marks at the given positions.
Word orient_inputs(const PairwiseProblem& directed, const Word& inputs,
                   std::size_t offset = 0);
Word mark_inputs(const PairwiseProblem& path_problem, const Word& inputs,
                 const std::vector<std::size_t>& marked_positions);

}  // namespace lclpath::hardness
