#include "hardness/solver.hpp"

#include <algorithm>
#include <stdexcept>

namespace lclpath::hardness {

namespace {
using lba::Move;
using lba::Symbol;

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
}  // namespace

PiSolver::PiSolver(const PiProblem& problem, std::size_t steps)
    : problem_(&problem),
      steps_(steps),
      radius_(2 + (problem.tape_size() + 1) * (steps + 1)) {
  // Precompute the unique good encoding (Definition 1); the secret at p0
  // is matched dynamically.
  const std::size_t n = encoding_length(problem.tape_size(), steps) + 1;
  expected_ = good_input(problem.machine(), problem.tape_size(), Secret::kA, steps, n);
}

std::size_t PiSolver::first_defect(const std::vector<InLabel>& inputs,
                                   std::size_t limit) const {
  for (std::size_t p = 0; p < limit; ++p) {
    const InLabel actual = inputs[p];
    if (p == 0) {
      if (actual.kind != InKind::kStartA && actual.kind != InKind::kStartB) return 0;
      continue;
    }
    const InLabel expected = p < expected_.size()
                                 ? expected_[p]
                                 : InLabel{InKind::kEmpty, Symbol::k0, 0, false};
    if (!(actual == expected)) return p;
  }
  return kNone;
}

std::vector<OutLabel> PiSolver::solve(const std::vector<InLabel>& inputs) const {
  // One global defect scan; node v sees it iff it falls in v's visible
  // prefix [0, v + T']. This keeps solve() linear where the per-node
  // output_of() rescans would make it quadratic.
  const std::size_t global = first_defect(inputs, inputs.size());
  std::vector<OutLabel> out;
  out.reserve(inputs.size());
  for (std::size_t v = 0; v < inputs.size(); ++v) {
    const std::size_t limit = std::min(inputs.size(), v + radius_ + 1);
    out.push_back(output_with_defect(inputs, v, global < limit ? global : kNone));
  }
  return out;
}

std::vector<OutLabel> PiSolver::solve_looping(const std::vector<InLabel>& inputs) {
  std::vector<OutLabel> out(inputs.size());
  const bool has_secret =
      inputs[0].kind == InKind::kStartA || inputs[0].kind == InKind::kStartB;
  for (std::size_t v = 0; v < inputs.size(); ++v) {
    if (!has_secret) {
      out[v].kind = OutKind::kError;
    } else if (inputs[v].kind == InKind::kEmpty) {
      out[v].kind = OutKind::kEmpty;
    } else {
      out[v].kind = inputs[0].kind == InKind::kStartA ? OutKind::kStartA : OutKind::kStartB;
    }
  }
  return out;
}

OutLabel PiSolver::output_of(const std::vector<InLabel>& inputs, std::size_t v) const {
  // Visible prefix: the ball of v covers [0, v + T'].
  const std::size_t limit = std::min(inputs.size(), v + radius_ + 1);
  return output_with_defect(inputs, v, first_defect(inputs, limit));
}

OutLabel PiSolver::output_with_defect(const std::vector<InLabel>& inputs, std::size_t v,
                                      std::size_t j) const {
  const std::size_t b = problem_->tape_size();
  const std::size_t n = inputs.size();
  const lba::Machine& machine = problem_->machine();
  OutLabel out;

  // Ball does not reach p0, or p0 carries no secret: Empty-input nodes
  // stay Empty, the rest emit the generic Error.
  if (v > radius_ ||
      (inputs[0].kind != InKind::kStartA && inputs[0].kind != InKind::kStartB)) {
    out.kind = inputs[v].kind == InKind::kEmpty ? OutKind::kEmpty : OutKind::kError;
    return out;
  }
  const OutKind secret =
      inputs[0].kind == InKind::kStartA ? OutKind::kStartA : OutKind::kStartB;

  if (j == kNone) {
    out.kind = inputs[v].kind == InKind::kEmpty ? OutKind::kEmpty : secret;
    return out;
  }

  auto secret_out = [&] {
    OutLabel s;
    s.kind = inputs[v].kind == InKind::kEmpty ? OutKind::kEmpty : secret;
    return s;
  };
  auto error_out = [] {
    OutLabel e;
    e.kind = OutKind::kError;
    return e;
  };
  const std::size_t i = v;

  // Case 1: a second Start marker.
  if (j != 0 && (inputs[j].kind == InKind::kStartA || inputs[j].kind == InKind::kStartB)) {
    if (i < j) return secret_out();
    return error_out();
  }
  // Case 2: broken initialization (defect within the first block).
  if (j <= b + 1) {
    if (i <= j) {
      out.kind = OutKind::kError0;
      out.index = i;
      return out;
    }
    return error_out();
  }
  // Case 3: tape too long — a separator was expected at j.
  if (inputs[j - (b + 1)].kind == InKind::kSeparator &&
      inputs[j].kind != InKind::kSeparator && expected_[j].kind == InKind::kSeparator) {
    if (i < j - (b + 1)) return secret_out();
    if (i > j) return error_out();
    out.kind = OutKind::kError1;
    out.index = i - (j - (b + 1));
    return out;
  }
  // Case 4: tape too short — an early separator at j.
  if (inputs[j].kind == InKind::kSeparator) {
    std::size_t k = kNone;
    for (std::size_t d = 1; d < b + 1 && d <= j; ++d) {
      if (inputs[j - d].kind == InKind::kSeparator) {
        k = j - d;
        break;
      }
    }
    if (k != kNone) {
      if (i < k) return secret_out();
      if (i >= j) return error_out();
      out.kind = OutKind::kError1;
      out.index = i - k;  // paper's k - i; sign erratum
      return out;
    }
  }
  // Case 5: tape copied wrongly between consecutive blocks (including the
  // written head cell, via the rule-7 extension).
  if (j >= b + 1 && inputs[j - (b + 1)].kind == InKind::kTape &&
      inputs[j].kind == InKind::kTape) {
    const InLabel& src = inputs[j - (b + 1)];
    Symbol expected_copy = src.content;
    bool applicable = !src.head;
    if (src.head && src.state != machine.final_state()) {
      expected_copy = machine.transition(src.state, src.content).write;
      applicable = true;
    }
    if (applicable && inputs[j].content != expected_copy) {
      if (i < j - (b + 1)) return secret_out();
      if (i > j) return error_out();
      out.kind = OutKind::kError2;
      out.content = expected_copy;
      out.index = i - (j - (b + 1));
      return out;
    }
  }
  // Case 6: inconsistent states inside the block that starts at j.
  if (inputs[j].kind == InKind::kTape && j > 0 &&
      inputs[j - 1].kind == InKind::kSeparator) {
    for (std::size_t k = j + 1; k < std::min(n, j + b); ++k) {
      if (inputs[k].kind != InKind::kTape) break;
      if (inputs[k].state != inputs[k - 1].state) {
        if (i < k) return secret_out();
        if (i > k) return error_out();
        out.kind = OutKind::kError3;
        return out;
      }
    }
  }
  // Case 6': inconsistent states with the defect at j itself (the state
  // changed mid-block at j).
  if (inputs[j].kind == InKind::kTape && j > 0 && inputs[j - 1].kind == InKind::kTape &&
      inputs[j - 1].state != inputs[j].state) {
    if (i < j) return secret_out();
    if (i > j) return error_out();
    out.kind = OutKind::kError3;
    return out;
  }
  // Case 7: broken transition — chain from the previous block's head.
  {
    std::size_t k = kNone;
    for (std::size_t d = 1; d <= b + 2 && d <= j; ++d) {
      const InLabel& cand = inputs[j - d];
      if (cand.kind == InKind::kTape && cand.head) {
        k = j - d;
        break;
      }
    }
    if (k != kNone) {
      const InLabel& head = inputs[k];
      const std::size_t fi = problem_->error4_final_index(head.state, head.content);
      const std::size_t end = k + fi;
      bool end_valid = false;
      if (end < n) {
        if (head.state == machine.final_state()) {
          end_valid = true;
        } else {
          const lba::State ts = machine.transition(head.state, head.content).next_state;
          const InLabel& fin = inputs[end];
          end_valid = fin.kind == InKind::kTape && (fin.state != ts || !fin.head);
        }
      }
      if (end_valid) {
        if (i < k) return secret_out();
        if (i > end) return error_out();
        out.kind = OutKind::kError4;
        out.state = head.state;
        out.content = head.content;
        out.index = i - k;  // paper's k - i; sign erratum
        return out;
      }
    }
  }
  // Case 8: two heads within one block (the second head may sit on either
  // side of the first defect).
  if (inputs[j].kind == InKind::kTape && inputs[j].head) {
    std::size_t other = kNone;
    for (std::size_t d = 1; d < b && d <= j; ++d) {
      const InLabel& cand = inputs[j - d];
      if (cand.kind != InKind::kTape) break;
      if (cand.head) {
        other = j - d;
        break;
      }
    }
    if (other == kNone) {
      for (std::size_t d = 1; d < b && j + d < n; ++d) {
        const InLabel& cand = inputs[j + d];
        if (cand.kind != InKind::kTape) break;
        if (cand.head) {
          other = j + d;
          break;
        }
      }
    }
    if (other != kNone) {
      const std::size_t lo = std::min(other, j);
      const std::size_t hi = std::max(other, j);
      if (i < lo) return secret_out();
      if (i > hi) return error_out();
      out.kind = OutKind::kError5;
      out.bit = i == lo ? 0 : 1;
      return out;
    }
  }
  throw std::logic_error(
      "PiSolver: defect at position " + std::to_string(j) +
      " matches no error case (unsupported corruption pattern)");
}

}  // namespace lclpath::hardness
