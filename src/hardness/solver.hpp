// The Section 3.3 upper-bound algorithm for Pi_MB.
//
// If the machine halts in T steps, Pi_MB is solvable in T' = 2 + (B+1)T
// rounds: every node gathers its radius-T' ball; nodes that do not see p0
// output the generic Error; nodes that see a good prefix output the
// secret Start(phi); otherwise the nodes around the *first* defect emit
// the matching locally-checkable error chain (cases 1-8 of the paper,
// with the sign errata fixed). If the machine loops, the problem is
// Theta(n): solve_looping() is the gather-everything fallback.
#pragma once

#include "hardness/encoder.hpp"
#include "hardness/pi_problem.hpp"

namespace lclpath::hardness {

class PiSolver {
 public:
  /// `steps` = the machine's halting time T (from lba::run).
  PiSolver(const PiProblem& problem, std::size_t steps);

  /// T' = 2 + (B+1) * T.
  std::size_t radius() const { return radius_; }

  /// Output of node v computed from its radius-T' ball only (positions
  /// [v - T', v + T'] clipped to the path); the full-input signature is
  /// (inputs, v) but the function provably reads just the ball — the
  /// locality test in tests/hardness_test.cpp checks exactly that.
  OutLabel output_of(const std::vector<InLabel>& inputs, std::size_t v) const;

  /// Whole-path solution. Computes the first defect once and derives every
  /// node's output from it (O(n * B)); output_of() re-scans per node and is
  /// kept for the locality test.
  std::vector<OutLabel> solve(const std::vector<InLabel>& inputs) const;

  /// The Theta(n) fallback for looping machines (also valid for halting
  /// ones): all-secret if p0 carries one, all-Error otherwise.
  static std::vector<OutLabel> solve_looping(const std::vector<InLabel>& inputs);

 private:
  const PiProblem* problem_;
  std::size_t steps_;
  std::size_t radius_;
  std::vector<InLabel> expected_;  ///< the good encoding (secret-agnostic at p0)

  /// First position in [0, limit) where inputs deviate from the good
  /// encoding (treating either Start at p0 as good); npos if none.
  std::size_t first_defect(const std::vector<InLabel>& inputs, std::size_t limit) const;

  /// The case analysis of Section 3.3 given the first defect `j` visible
  /// from node v (npos if none); shared by output_of() and solve().
  OutLabel output_with_defect(const std::vector<InLabel>& inputs, std::size_t v,
                              std::size_t j) const;
};

}  // namespace lclpath::hardness
