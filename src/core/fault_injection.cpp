#include "core/fault_injection.hpp"

#ifdef LCLPATH_FAULT_INJECTION

#include <atomic>
#include <new>

#include "core/cancel.hpp"

namespace lclpath::fault {
namespace {

// All atomics: the sweep tests arm from the main thread and run workloads
// on pool workers, and the concurrent-cancellation test hits checkpoints
// from several threads at once.
std::atomic<std::uint64_t> counter{0};
std::atomic<std::uint64_t> fire_at{0};
std::atomic<Kind> armed_kind{Kind::kNone};
std::atomic<bool> has_fired{false};

// The I/O harness mirrors the checkpoint harness but counts per point:
// one commit crosses write, fsync and rename sites, and the sweep arms
// each family independently to hit every index of every family.
std::atomic<std::uint64_t> io_counters[kNumIoPoints] = {};
std::atomic<std::uint64_t> io_fire_at{0};
std::atomic<IoPoint> io_armed{IoPoint::kNone};
std::atomic<bool> io_has_fired{false};

}  // namespace

void arm(Kind kind, std::uint64_t at) {
  armed_kind.store(Kind::kNone, std::memory_order_relaxed);
  counter.store(0, std::memory_order_relaxed);
  fire_at.store(at, std::memory_order_relaxed);
  has_fired.store(false, std::memory_order_relaxed);
  armed_kind.store(kind, std::memory_order_release);
}

void disarm() { armed_kind.store(Kind::kNone, std::memory_order_relaxed); }

std::uint64_t checkpoints() { return counter.load(std::memory_order_relaxed); }

bool fired() { return has_fired.load(std::memory_order_relaxed); }

void on_checkpoint() {
  const Kind kind = armed_kind.load(std::memory_order_acquire);
  if (kind == Kind::kNone) {
    counter.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t index = counter.fetch_add(1, std::memory_order_relaxed);
  if (index != fire_at.load(std::memory_order_relaxed)) return;
  // The fetch_add hands each concurrent checkpoint a unique index, so
  // exactly one thread reaches this point per arm().
  has_fired.store(true, std::memory_order_relaxed);
  if (kind == Kind::kBadAlloc) throw std::bad_alloc();
  throw CancelledError(CancelReason::kCancelled,
                       "fault injection: scripted cancellation");
}

void arm_io(IoPoint point, std::uint64_t at) {
  io_armed.store(IoPoint::kNone, std::memory_order_relaxed);
  for (auto& c : io_counters) c.store(0, std::memory_order_relaxed);
  io_fire_at.store(at, std::memory_order_relaxed);
  io_has_fired.store(false, std::memory_order_relaxed);
  io_armed.store(point, std::memory_order_release);
}

void disarm_io() { io_armed.store(IoPoint::kNone, std::memory_order_relaxed); }

std::uint64_t io_occurrences(IoPoint point) {
  return io_counters[static_cast<std::size_t>(point)].load(std::memory_order_relaxed);
}

bool io_fired() { return io_has_fired.load(std::memory_order_relaxed); }

bool io_should_fail(IoPoint point) {
  const std::uint64_t index =
      io_counters[static_cast<std::size_t>(point)].fetch_add(1, std::memory_order_relaxed);
  if (io_armed.load(std::memory_order_acquire) != point) return false;
  if (index != io_fire_at.load(std::memory_order_relaxed)) return false;
  io_has_fired.store(true, std::memory_order_relaxed);
  return true;
}

}  // namespace lclpath::fault

#endif  // LCLPATH_FAULT_INJECTION
