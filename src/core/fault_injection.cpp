#include "core/fault_injection.hpp"

#ifdef LCLPATH_FAULT_INJECTION

#include <atomic>
#include <new>

#include "core/cancel.hpp"

namespace lclpath::fault {
namespace {

// All atomics: the sweep tests arm from the main thread and run workloads
// on pool workers, and the concurrent-cancellation test hits checkpoints
// from several threads at once.
std::atomic<std::uint64_t> counter{0};
std::atomic<std::uint64_t> fire_at{0};
std::atomic<Kind> armed_kind{Kind::kNone};
std::atomic<bool> has_fired{false};

}  // namespace

void arm(Kind kind, std::uint64_t at) {
  armed_kind.store(Kind::kNone, std::memory_order_relaxed);
  counter.store(0, std::memory_order_relaxed);
  fire_at.store(at, std::memory_order_relaxed);
  has_fired.store(false, std::memory_order_relaxed);
  armed_kind.store(kind, std::memory_order_release);
}

void disarm() { armed_kind.store(Kind::kNone, std::memory_order_relaxed); }

std::uint64_t checkpoints() { return counter.load(std::memory_order_relaxed); }

bool fired() { return has_fired.load(std::memory_order_relaxed); }

void on_checkpoint() {
  const Kind kind = armed_kind.load(std::memory_order_acquire);
  if (kind == Kind::kNone) {
    counter.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t index = counter.fetch_add(1, std::memory_order_relaxed);
  if (index != fire_at.load(std::memory_order_relaxed)) return;
  // The fetch_add hands each concurrent checkpoint a unique index, so
  // exactly one thread reaches this point per arm().
  has_fired.store(true, std::memory_order_relaxed);
  if (kind == Kind::kBadAlloc) throw std::bad_alloc();
  throw CancelledError(CancelReason::kCancelled,
                       "fault injection: scripted cancellation");
}

}  // namespace lclpath::fault

#endif  // LCLPATH_FAULT_INJECTION
