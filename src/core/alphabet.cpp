#include "core/alphabet.hpp"

#include <stdexcept>

namespace lclpath {

Alphabet::Alphabet(std::vector<std::string> names) {
  for (auto& n : names) add(std::move(n));
}

Label Alphabet::add(std::string name) {
  if (index_.contains(name)) {
    throw std::invalid_argument("Alphabet::add: duplicate label '" + name + "'");
  }
  const Label label = static_cast<Label>(names_.size());
  index_.emplace(name, label);
  names_.push_back(std::move(name));
  return label;
}

Label Alphabet::add_or_get(std::string_view name) {
  if (auto found = find(name)) return *found;
  return add(std::string(name));
}

const std::string& Alphabet::name(Label label) const {
  if (label >= names_.size()) throw std::out_of_range("Alphabet::name: bad label index");
  return names_[label];
}

std::optional<Label> Alphabet::find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Label Alphabet::at(std::string_view name) const {
  if (auto found = find(name)) return *found;
  throw std::out_of_range("Alphabet::at: unknown label '" + std::string(name) + "' in " +
                          to_string());
}

std::string Alphabet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += names_[i];
  }
  out += "}";
  return out;
}

std::string word_to_string(const Alphabet& alphabet, const Word& word) {
  std::string out;
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += alphabet.name(word[i]);
  }
  return out;
}

Word word_from_string(const Alphabet& alphabet, std::string_view text) {
  Word word;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < text.size() && text[end] != ' ') ++end;
    if (end > pos) word.push_back(alphabet.at(text.substr(pos, end - pos)));
    pos = end;
  }
  return word;
}

Word reversed(const Word& word) { return Word(word.rbegin(), word.rend()); }

Word repeated(const Word& word, std::size_t k) {
  Word out;
  out.reserve(word.size() * k);
  for (std::size_t i = 0; i < k; ++i) out.insert(out.end(), word.begin(), word.end());
  return out;
}

Word concat(const Word& a, const Word& b) {
  Word out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

bool is_primitive(const Word& word) {
  const std::size_t n = word.size();
  if (n == 0) return false;
  for (std::size_t period = 1; period * 2 <= n; ++period) {
    if (n % period != 0) continue;
    bool repeats = true;
    for (std::size_t i = period; i < n && repeats; ++i) {
      repeats = word[i] == word[i - period];
    }
    if (repeats) return false;
  }
  return true;
}

void for_each_word(std::size_t alphabet_size, std::size_t length,
                   const std::function<void(const Word&)>& fn) {
  Word word(length, 0);
  while (true) {
    fn(word);
    std::size_t i = length;
    while (i > 0) {
      --i;
      if (++word[i] < alphabet_size) break;
      word[i] = 0;
      if (i == 0) return;
    }
    if (length == 0) return;
  }
}

}  // namespace lclpath
