// Named finite alphabets (input and output label sets of an LCL).
//
// LCL problems in the paper are defined over constant-size label sets
// Sigma_in / Sigma_out. Internally labels are dense indices (0..size-1);
// the Alphabet keeps the human-readable names for serialization, examples
// and error messages.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lclpath {

/// Dense index of a label within its alphabet.
using Label = std::uint32_t;

/// An ordered set of named labels. Indices are assigned in insertion order.
class Alphabet {
 public:
  Alphabet() = default;
  /// Convenience: alphabet with the given names, in order.
  explicit Alphabet(std::vector<std::string> names);

  /// Adds a label (must be new) and returns its index.
  Label add(std::string name);
  /// Adds the label if absent; returns its index either way.
  Label add_or_get(std::string_view name);

  std::size_t size() const { return names_.size(); }
  const std::string& name(Label label) const;
  std::optional<Label> find(std::string_view name) const;
  /// Like find() but throws std::out_of_range with a helpful message.
  Label at(std::string_view name) const;
  bool contains(std::string_view name) const { return find(name).has_value(); }

  const std::vector<std::string>& names() const { return names_; }

  bool operator==(const Alphabet& other) const { return names_ == other.names_; }

  /// "{a, b, c}"
  std::string to_string() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Label> index_;
};

/// A word over an alphabet, stored as dense label indices. The decidability
/// machinery manipulates input words of paths; this alias keeps signatures
/// readable.
using Word = std::vector<Label>;

/// Renders a word with label names separated by spaces.
std::string word_to_string(const Alphabet& alphabet, const Word& word);

/// Parses a space-separated word; throws std::out_of_range on unknown names.
Word word_from_string(const Alphabet& alphabet, std::string_view text);

/// Reverse of a word.
Word reversed(const Word& word);

/// w repeated k times.
Word repeated(const Word& word, std::size_t k);

/// Concatenation.
Word concat(const Word& a, const Word& b);

/// True if the word cannot be written as x^i with i >= 2 (Section 4.3:
/// "primitive" strings are the periods used by the O(1) partition).
bool is_primitive(const Word& word);

/// Enumerates all words of the given length over an alphabet of
/// `alphabet_size` labels, invoking fn(word) for each. Lexicographic order.
void for_each_word(std::size_t alphabet_size, std::size_t length,
                   const std::function<void(const Word&)>& fn);

}  // namespace lclpath
