// Deterministic pseudo-random generation for tests, benchmarks and
// workload generators. We avoid std::mt19937 state-size overhead and
// implementation-defined distribution behavior: every draw here is exactly
// reproducible across platforms, which the property-test suites rely on.
#pragma once

#include <cstdint>
#include <vector>

namespace lclpath {

/// splitmix64-based generator: tiny, fast, and portable-deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64();

  /// Uniform in [0, bound) for bound >= 1 (debiased by rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Bernoulli(p_num / p_den).
  bool next_bool(std::uint64_t p_num = 1, std::uint64_t p_den = 2);

  /// Random permutation of {0, .., n-1} (Fisher-Yates).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t state_;
};

}  // namespace lclpath
