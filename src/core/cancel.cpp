#include "core/cancel.hpp"

namespace lclpath {

std::string to_string(CancelReason reason) {
  switch (reason) {
    case CancelReason::kDeadline: return "deadline";
    case CancelReason::kCancelled: return "cancelled";
    case CancelReason::kMemory: return "memory";
  }
  return "unknown";
}

void ExecutionBudget::check() const {
  if (cancel_.load(std::memory_order_relaxed)) {
    throw CancelledError(CancelReason::kCancelled, "execution cancelled");
  }
  if (has_deadline_ && Clock::now() >= deadline_) {
    throw CancelledError(CancelReason::kDeadline, "execution deadline exceeded");
  }
  if (memory_limit_ != 0 &&
      memory_charged_.load(std::memory_order_relaxed) > memory_limit_) {
    throw CancelledError(CancelReason::kMemory,
                         "execution memory budget exceeded");
  }
  if (parent_ != nullptr) parent_->check();
}

void ExecutionBudget::charge_memory(std::size_t bytes) const {
  const std::size_t total =
      memory_charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (memory_limit_ != 0 && total > memory_limit_) {
    throw CancelledError(CancelReason::kMemory,
                         "execution memory budget exceeded");
  }
  if (parent_ != nullptr) parent_->charge_memory(bytes);
}

}  // namespace lclpath
