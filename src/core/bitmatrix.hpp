// Boolean square matrices over the output alphabet.
//
// These are the workhorse of the decidability engine (Section 4 of the
// paper): the "type" of an input-labeled path (Lemma 12/13) is represented
// by a reachability matrix over output labels, and path concatenation is
// boolean matrix multiplication. Matrices are small (dimension = |Sigma_out|,
// typically < 100) but multiplied millions of times during monoid
// enumeration, so rows are packed into 64-bit words.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace lclpath {

/// Dense boolean square matrix with bit-packed rows.
///
/// Invariant: all bits at column indices >= dim() are zero, which makes
/// operator== and hashing well defined on the raw words.
class BitMatrix {
 public:
  BitMatrix() = default;
  explicit BitMatrix(std::size_t dim);

  /// Identity matrix of the given dimension.
  static BitMatrix identity(std::size_t dim);
  /// All-zero matrix of the given dimension.
  static BitMatrix zero(std::size_t dim);
  /// All-ones matrix of the given dimension.
  static BitMatrix ones(std::size_t dim);

  std::size_t dim() const { return dim_; }

  bool get(std::size_t row, std::size_t col) const;
  void set(std::size_t row, std::size_t col, bool value);

  /// Boolean matrix product: (a*b)[i][j] = OR_k a[i][k] AND b[k][j].
  BitMatrix operator*(const BitMatrix& other) const;
  BitMatrix& operator*=(const BitMatrix& other);
  /// this * other written into `out` (same dim, distinct object), reusing
  /// its storage — for hot loops (monoid enumeration probes) that cannot
  /// afford an allocation per product.
  void multiply_into(const BitMatrix& other, BitMatrix& out) const;

  /// Element-wise OR / AND.
  BitMatrix operator|(const BitMatrix& other) const;
  BitMatrix operator&(const BitMatrix& other) const;

  BitMatrix transposed() const;

  /// k-th boolean power (k >= 0; power(0) == identity).
  BitMatrix power(std::uint64_t k) const;

  /// Boolean powers of a matrix are eventually periodic; this finds the
  /// repeat structure (Lemma 15's workhorse): exponents (first, period)
  /// with power(first) == power(first + period).
  struct Stabilization;
  Stabilization stabilize() const;

  bool any() const;
  /// True if some diagonal entry is set.
  bool any_diagonal() const;
  std::size_t count() const;

  /// Row as a bit vector packed into words (for vector-matrix products).
  const std::uint64_t* row_words(std::size_t row) const;
  std::size_t words_per_row() const { return words_per_row_; }

  bool operator==(const BitMatrix& other) const = default;

  /// Multi-line ASCII art (for debugging and golden tests).
  std::string to_string() const;

  std::size_t hash() const;

 private:
  std::size_t dim_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Bit-packed boolean row vector of fixed dimension, used for
/// reachability sweeps (vector * matrix).
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t dim);

  static BitVector unit(std::size_t dim, std::size_t index);
  static BitVector ones(std::size_t dim);

  std::size_t dim() const { return dim_; }
  bool get(std::size_t index) const;
  void set(std::size_t index, bool value);
  bool any() const;
  std::size_t count() const;

  /// v * M (boolean): result[j] = OR_i v[i] AND M[i][j].
  BitVector multiplied(const BitMatrix& m) const;
  /// v * M written into `out` (same dim), reusing its storage — for hot
  /// loops that cannot afford an allocation per product.
  void multiply_into(const BitMatrix& m, BitVector& out) const;

  /// Inner product: OR_i a[i] AND b[i].
  bool intersects(const BitVector& other) const;
  /// True if every set bit of *this is set in `other`.
  bool subset_of(const BitVector& other) const;
  /// Index of the lowest set bit, or dim() if none.
  std::size_t first_set() const;

  BitVector operator|(const BitVector& other) const;
  BitVector operator&(const BitVector& other) const;
  BitVector& operator|=(const BitVector& other);
  BitVector& operator&=(const BitVector& other);
  /// Clears the bits set in `other` (this &= ~other, within dim()).
  BitVector& remove(const BitVector& other);
  /// Zeroes every bit, keeping the dimension.
  void clear();

  bool operator==(const BitVector& other) const = default;
  std::size_t hash() const;
  std::string to_string() const;

 private:
  std::size_t dim_ = 0;
  std::vector<std::uint64_t> words_;
};

struct BitMatrix::Stabilization {
  BitMatrix stable_power;   ///< M^first (== M^{first + period})
  std::uint64_t first = 0;  ///< smallest exponent where the cycle starts
  std::uint64_t period = 1; ///< cycle length of the power sequence
};

struct BitMatrixHash {
  std::size_t operator()(const BitMatrix& m) const { return m.hash(); }
};
struct BitVectorHash {
  std::size_t operator()(const BitVector& v) const { return v.hash(); }
};

/// 64-bit mixing for composing hashes (splitmix64 finalizer).
inline std::size_t hash_mix(std::size_t seed, std::size_t value) {
  std::uint64_t x = static_cast<std::uint64_t>(seed) * 0x9E3779B97F4A7C15ull +
                    static_cast<std::uint64_t>(value);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

}  // namespace lclpath
