#include "core/bitmatrix.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace lclpath {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t dim) { return (dim + kWordBits - 1) / kWordBits; }
}  // namespace

BitMatrix::BitMatrix(std::size_t dim)
    : dim_(dim), words_per_row_(words_for(dim)), words_(dim * words_per_row_, 0) {}

BitMatrix BitMatrix::identity(std::size_t dim) {
  BitMatrix m(dim);
  for (std::size_t i = 0; i < dim; ++i) m.set(i, i, true);
  return m;
}

BitMatrix BitMatrix::zero(std::size_t dim) { return BitMatrix(dim); }

BitMatrix BitMatrix::ones(std::size_t dim) {
  BitMatrix m(dim);
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j < dim; ++j) m.set(i, j, true);
  return m;
}

bool BitMatrix::get(std::size_t row, std::size_t col) const {
  assert(row < dim_ && col < dim_);
  return (words_[row * words_per_row_ + col / kWordBits] >> (col % kWordBits)) & 1u;
}

void BitMatrix::set(std::size_t row, std::size_t col, bool value) {
  assert(row < dim_ && col < dim_);
  std::uint64_t& w = words_[row * words_per_row_ + col / kWordBits];
  const std::uint64_t bit = std::uint64_t{1} << (col % kWordBits);
  if (value) {
    w |= bit;
  } else {
    w &= ~bit;
  }
}

BitMatrix BitMatrix::operator*(const BitMatrix& other) const {
  assert(dim_ == other.dim_);
  BitMatrix result(dim_);
  // Row-by-row: for every set bit k in row i of *this, OR in row k of other.
  for (std::size_t i = 0; i < dim_; ++i) {
    std::uint64_t* out = &result.words_[i * words_per_row_];
    const std::uint64_t* row = &words_[i * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t bits = row[w];
      while (bits != 0) {
        const std::size_t k = w * kWordBits + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint64_t* other_row = &other.words_[k * words_per_row_];
        for (std::size_t ww = 0; ww < words_per_row_; ++ww) out[ww] |= other_row[ww];
      }
    }
  }
  return result;
}

BitMatrix& BitMatrix::operator*=(const BitMatrix& other) {
  *this = *this * other;
  return *this;
}

void BitMatrix::multiply_into(const BitMatrix& other, BitMatrix& out) const {
  assert(dim_ == other.dim_ && out.dim_ == dim_);
  assert(&out != this && &out != &other);  // out is cleared before reads
  for (std::uint64_t& w : out.words_) w = 0;
  for (std::size_t i = 0; i < dim_; ++i) {
    std::uint64_t* dst = &out.words_[i * words_per_row_];
    const std::uint64_t* row = &words_[i * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t bits = row[w];
      while (bits != 0) {
        const std::size_t k = w * kWordBits + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint64_t* other_row = &other.words_[k * words_per_row_];
        for (std::size_t ww = 0; ww < words_per_row_; ++ww) dst[ww] |= other_row[ww];
      }
    }
  }
}

BitMatrix BitMatrix::operator|(const BitMatrix& other) const {
  assert(dim_ == other.dim_);
  BitMatrix result = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) result.words_[i] |= other.words_[i];
  return result;
}

BitMatrix BitMatrix::operator&(const BitMatrix& other) const {
  assert(dim_ == other.dim_);
  BitMatrix result = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) result.words_[i] &= other.words_[i];
  return result;
}

BitMatrix BitMatrix::transposed() const {
  BitMatrix result(dim_);
  for (std::size_t i = 0; i < dim_; ++i)
    for (std::size_t j = 0; j < dim_; ++j)
      if (get(i, j)) result.set(j, i, true);
  return result;
}

BitMatrix BitMatrix::power(std::uint64_t k) const {
  BitMatrix result = identity(dim_);
  BitMatrix base = *this;
  while (k > 0) {
    if (k & 1) result *= base;
    base *= base;
    k >>= 1;
  }
  return result;
}

BitMatrix::Stabilization BitMatrix::stabilize() const {
  // Floyd-free approach: the power sequence of a boolean matrix over a
  // finite monoid enters a cycle; enumerate powers with a hash map from
  // matrix to first exponent. Dimension is small so this is cheap.
  std::unordered_map<BitMatrix, std::uint64_t, BitMatrixHash> seen;
  BitMatrix current = *this;
  std::uint64_t exponent = 1;
  while (true) {
    auto [it, inserted] = seen.emplace(current, exponent);
    if (!inserted) {
      Stabilization s;
      s.first = it->second;
      s.period = exponent - it->second;
      s.stable_power = power(s.first);
      return s;
    }
    current *= *this;
    ++exponent;
  }
}

bool BitMatrix::any() const {
  for (std::uint64_t w : words_)
    if (w != 0) return true;
  return false;
}

bool BitMatrix::any_diagonal() const {
  for (std::size_t i = 0; i < dim_; ++i)
    if (get(i, i)) return true;
  return false;
}

std::size_t BitMatrix::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

const std::uint64_t* BitMatrix::row_words(std::size_t row) const {
  assert(row < dim_);
  return &words_[row * words_per_row_];
}

std::string BitMatrix::to_string() const {
  std::string out;
  out.reserve(dim_ * (dim_ + 1));
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) out.push_back(get(i, j) ? '1' : '.');
    out.push_back('\n');
  }
  return out;
}

std::size_t BitMatrix::hash() const {
  std::size_t h = hash_mix(0x1234, dim_);
  for (std::uint64_t w : words_) h = hash_mix(h, static_cast<std::size_t>(w));
  return h;
}

BitVector::BitVector(std::size_t dim) : dim_(dim), words_(words_for(dim), 0) {}

BitVector BitVector::unit(std::size_t dim, std::size_t index) {
  BitVector v(dim);
  v.set(index, true);
  return v;
}

BitVector BitVector::ones(std::size_t dim) {
  BitVector v(dim);
  for (std::size_t i = 0; i < dim; ++i) v.set(i, true);
  return v;
}

bool BitVector::get(std::size_t index) const {
  assert(index < dim_);
  return (words_[index / kWordBits] >> (index % kWordBits)) & 1u;
}

void BitVector::set(std::size_t index, bool value) {
  assert(index < dim_);
  std::uint64_t& w = words_[index / kWordBits];
  const std::uint64_t bit = std::uint64_t{1} << (index % kWordBits);
  if (value) {
    w |= bit;
  } else {
    w &= ~bit;
  }
}

bool BitVector::any() const {
  for (std::uint64_t w : words_)
    if (w != 0) return true;
  return false;
}

std::size_t BitVector::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

BitVector BitVector::multiplied(const BitMatrix& m) const {
  assert(dim_ == m.dim());
  BitVector result(dim_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w];
    while (bits != 0) {
      const std::size_t i = w * kWordBits + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::uint64_t* row = m.row_words(i);
      for (std::size_t ww = 0; ww < result.words_.size(); ++ww) result.words_[ww] |= row[ww];
    }
  }
  return result;
}

void BitVector::multiply_into(const BitMatrix& m, BitVector& out) const {
  assert(dim_ == m.dim() && out.dim_ == dim_);
  assert(&out != this);  // out is cleared before this is read
  for (std::uint64_t& w : out.words_) w = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w];
    while (bits != 0) {
      const std::size_t i = w * kWordBits + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::uint64_t* row = m.row_words(i);
      for (std::size_t ww = 0; ww < out.words_.size(); ++ww) out.words_[ww] |= row[ww];
    }
  }
}

bool BitVector::intersects(const BitVector& other) const {
  assert(dim_ == other.dim_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    if ((words_[w] & other.words_[w]) != 0) return true;
  return false;
}

bool BitVector::subset_of(const BitVector& other) const {
  assert(dim_ == other.dim_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  return true;
}

std::size_t BitVector::first_set() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return dim_;
}

BitVector BitVector::operator|(const BitVector& other) const {
  assert(dim_ == other.dim_);
  BitVector result = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) result.words_[w] |= other.words_[w];
  return result;
}

BitVector BitVector::operator&(const BitVector& other) const {
  assert(dim_ == other.dim_);
  BitVector result = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) result.words_[w] &= other.words_[w];
  return result;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  assert(dim_ == other.dim_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  assert(dim_ == other.dim_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

BitVector& BitVector::remove(const BitVector& other) {
  assert(dim_ == other.dim_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
  return *this;
}

void BitVector::clear() {
  for (std::uint64_t& w : words_) w = 0;
}

std::size_t BitVector::hash() const {
  std::size_t h = hash_mix(0x5678, dim_);
  for (std::uint64_t w : words_) h = hash_mix(h, static_cast<std::size_t>(w));
  return h;
}

std::string BitVector::to_string() const {
  std::string out;
  out.reserve(dim_);
  for (std::size_t i = 0; i < dim_; ++i) out.push_back(get(i) ? '1' : '.');
  return out;
}

}  // namespace lclpath
