// Cooperative cancellation, deadlines and resource ceilings for the
// classification runtime.
//
// The deciders are total in theory but wildly variable in practice: a
// hostile problem can wedge the pairwise oracle for hours, and a
// long-running catalog service cannot afford a worker pinned forever.
// ExecutionBudget is the one mechanism every unbounded hot loop honors:
//
//   * a steady-clock deadline (optional),
//   * an atomic cancel flag any thread may set,
//   * an optional memory ceiling charged by the allocating loops,
//   * an optional parent budget, checked transitively — classify_batch
//     chains per-problem budget -> batch watchdog budget -> caller budget,
//     so one flag cancels a whole tree of workers.
//
// Instrumented loops call checkpoint() (via the budget_checkpoint helper,
// which accepts the ubiquitous nullable pointer). checkpoint() is
// amortized: a relaxed atomic tick plus a branch on the fast path, with
// the real clock read / flag walk only every kCheckpointStride ticks — so
// sprinkling it through per-element inner loops is free at benchmark
// resolution. When a limit trips, checkpoint() (and the unamortized
// check()) throw CancelledError carrying the tripped CancelReason; the
// batch layer maps reasons onto the BatchError taxonomy (kDeadline ->
// kTimeout, kCancelled -> kCancelled, kMemory -> kBudget).
//
// Budgets are passed as `const ExecutionBudget*` everywhere: the object
// is logically const to the loops that poll it (ticks, the memo of
// charged bytes and the cancel flag are atomics). cancel() is the only
// mutating entry point and is safe to call from any thread while workers
// poll. A null budget means "unbounded" and costs one pointer test per
// checkpoint site.
//
// With the LCLPATH_FAULT_INJECTION build option every checkpoint()
// additionally reports to the fault-injection harness
// (core/fault_injection.hpp), which can throw a scripted failure at the
// k-th checkpoint — the mechanism the sweep tests use to prove every exit
// path unwinds cleanly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace lclpath {

#ifdef LCLPATH_FAULT_INJECTION
namespace fault {
/// Defined in core/fault_injection.cpp; may throw a scripted failure.
void on_checkpoint();
}  // namespace fault
#endif

/// Which limit tripped a cancellation.
enum class CancelReason : std::uint8_t {
  kDeadline,   ///< the steady-clock deadline passed
  kCancelled,  ///< cancel() was called (by a caller or a parent budget)
  kMemory,     ///< the charged bytes exceeded the memory ceiling
};

std::string to_string(CancelReason reason);

/// Thrown by ExecutionBudget::checkpoint()/check() when a limit trips.
/// The instrumented loops let it propagate untouched; classify_batch maps
/// reason() onto BatchErrorKind.
class CancelledError : public std::runtime_error {
 public:
  CancelledError(CancelReason reason, const std::string& message)
      : std::runtime_error(message), reason_(reason) {}

  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

class ExecutionBudget {
 public:
  using Clock = std::chrono::steady_clock;

  /// Real limit checks happen every this many checkpoint() ticks.
  static constexpr std::uint32_t kCheckpointStride = 4096;

  ExecutionBudget() = default;
  /// Budgets are polled by address from many threads; they never move.
  ExecutionBudget(const ExecutionBudget&) = delete;
  ExecutionBudget& operator=(const ExecutionBudget&) = delete;

  /// Absolute steady-clock deadline. Call before handing the budget to
  /// workers (not synchronized against concurrent checkpoints).
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  /// Convenience: now + timeout.
  void set_timeout(std::chrono::milliseconds timeout) {
    set_deadline(Clock::now() + timeout);
  }
  /// Memory ceiling in bytes for charge_memory(); 0 = unlimited. Set
  /// before handing the budget to workers.
  void set_memory_limit(std::size_t bytes) { memory_limit_ = bytes; }
  /// Chains this budget under `parent`: check() fails when any ancestor's
  /// limit trips, with the ancestor's reason. Set before handing the
  /// budget to workers; the parent must outlive this budget.
  void set_parent(const ExecutionBudget* parent) { parent_ = parent; }

  /// Requests cancellation; safe from any thread, idempotent. Workers
  /// observe it at their next slow-path checkpoint.
  void cancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const { return cancel_.load(std::memory_order_relaxed); }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// Bytes charged so far via charge_memory().
  std::size_t memory_charged() const {
    return memory_charged_.load(std::memory_order_relaxed);
  }

  /// Full limit check (cancel flag, deadline, parent chain); throws
  /// CancelledError on the first tripped limit. Use at task entry and at
  /// natural phase boundaries; hot loops use checkpoint() instead.
  void check() const;

  /// Amortized check for hot loops: one relaxed fetch_add per call, a
  /// real check() every kCheckpointStride calls. Thread-safe (workers
  /// sharing one budget contend only on the tick counter).
  void checkpoint() const {
#ifdef LCLPATH_FAULT_INJECTION
    fault::on_checkpoint();
#endif
    if ((ticks_.fetch_add(1, std::memory_order_relaxed) % kCheckpointStride) != 0) {
      return;
    }
    check();
  }

  /// Accounts `bytes` against the memory ceiling; throws
  /// CancelledError{kMemory} once the total exceeds it. Charged totals
  /// are cumulative for the budget's lifetime (budgets are per-run).
  void charge_memory(std::size_t bytes) const;

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::size_t memory_limit_ = 0;
  const ExecutionBudget* parent_ = nullptr;
  std::atomic<bool> cancel_{false};
  mutable std::atomic<std::uint32_t> ticks_{0};
  mutable std::atomic<std::size_t> memory_charged_{0};
};

/// The checkpoint idiom for the nullable budget pointers every
/// instrumented API carries: free when no budget is attached.
inline void budget_checkpoint(const ExecutionBudget* budget) {
  if (budget != nullptr) budget->checkpoint();
}

/// check() through a nullable pointer (task entry, phase boundaries).
inline void budget_check(const ExecutionBudget* budget) {
  if (budget != nullptr) budget->check();
}

/// charge_memory() through a nullable pointer.
inline void budget_charge_memory(const ExecutionBudget* budget, std::size_t bytes) {
  if (budget != nullptr) budget->charge_memory(bytes);
}

}  // namespace lclpath
