#include "core/thread_pool.hpp"

#include <stdexcept>

namespace lclpath {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  try {
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this]() { worker_loop(); });
    }
  } catch (...) {
    // Thread creation failed partway (e.g. OS thread limit): shut down the
    // workers that did start, or their joinable std::threads would
    // terminate the process during unwinding.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  // Deliberately no queue_.clear(): workers drain the FIFO to empty before
  // exiting (see worker_loop's stop condition), so every future obtained
  // from submit() resolves — with a value or an exception, never a
  // broken_promise. Dropping the queue here used to lose tasks enqueued
  // after an earlier task threw, deadlocking callers blocked on their
  // futures' results.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace lclpath
