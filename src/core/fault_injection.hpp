// Deterministic fault injection at budget checkpoints.
//
// Compiled in only under the LCLPATH_FAULT_INJECTION CMake option (which
// defines the macro PUBLICly on the library). When armed, the harness
// counts every ExecutionBudget::checkpoint() call process-wide — before
// the amortization stride, so indices are dense — and throws a scripted
// failure at exactly the k-th one:
//
//   fault::arm(fault::Kind::kCancel, k);    // CancelledError{kCancelled}
//   fault::arm(fault::Kind::kBadAlloc, k);  // std::bad_alloc
//
// The sweep tests iterate k over a clean run's checkpoint count to prove
// every exit path unwinds cleanly and leaves both caches consistent. All
// state is atomic, so arming from a test thread while pool workers hit
// checkpoints is TSan-clean; exactly one checkpoint fires per arm()
// (compare_exchange claims the index).
//
// A second, independent harness covers the persistent store's I/O paths
// (src/store/): every write/fsync/rename during an atomic shard commit and
// every shard load reports its fault point via io_should_fail(), and
// arm_io() makes exactly the k-th occurrence of one point report failure.
// The store layer turns that into the same StoreIoError / dirty-shard
// handling a real ENOSPC, power cut, or torn read would produce — which is
// what makes the crash-consistency sweep in tests/store_test.cpp
// deterministic.
//
// Without the option this header still compiles: arm()/disarm() are
// no-ops, io_should_fail() is constant-false, and checkpoints pay nothing.
#pragma once

#include <cstdint>

namespace lclpath::fault {

enum class Kind : std::uint8_t {
  kNone,      ///< disarmed
  kCancel,    ///< throw CancelledError{kCancelled} at the armed checkpoint
  kBadAlloc,  ///< throw std::bad_alloc at the armed checkpoint
};

/// Fault points in the store's shard I/O protocol (write-temp -> fsync ->
/// atomic rename on the commit side, whole-file read on the load side).
enum class IoPoint : std::uint8_t {
  kNone,    ///< disarmed
  kWrite,   ///< a write() of shard bytes into the temp file
  kFsync,   ///< an fsync() of the temp file or its directory
  kRename,  ///< the atomic rename(temp -> shard)
  kLoad,    ///< a whole-shard read during load/reload
};
inline constexpr std::size_t kNumIoPoints = 5;

#ifdef LCLPATH_FAULT_INJECTION

/// Is the harness compiled into this build?
constexpr bool compiled_in() { return true; }

/// Arms the harness: the `at`-th checkpoint() after this call (0-based)
/// throws per `kind`. Resets the checkpoint counter. Not meant to race
/// with in-flight checkpoints — arm between runs.
void arm(Kind kind, std::uint64_t at);

/// Disarms without resetting the counter (reads of checkpoints() stay
/// meaningful for sizing the next sweep).
void disarm();

/// Checkpoints observed since the last arm()/reset. Use a clean armed-
/// at-infinity run to measure a workload's checkpoint count.
std::uint64_t checkpoints();

/// True iff the armed fault has fired since arm().
bool fired();

/// Called by ExecutionBudget::checkpoint(); throws when armed and the
/// counter hits the armed index.
void on_checkpoint();

/// Arms the I/O harness: the `at`-th occurrence (0-based) of `point`
/// observed after this call reports failure. Resets all per-point
/// occurrence counters. One point armed at a time; arm between commits,
/// not while one is in flight.
void arm_io(IoPoint point, std::uint64_t at);

/// Disarms the I/O harness without resetting the occurrence counters
/// (io_occurrences() stays meaningful for sizing the next sweep).
void disarm_io();

/// Occurrences of `point` observed since the last arm_io().
std::uint64_t io_occurrences(IoPoint point);

/// True iff the armed I/O fault has fired since arm_io().
bool io_fired();

/// Called by the store's I/O layer at each fault point. Returns true when
/// the armed failure should fire — exactly once per arm_io(); the caller
/// then behaves as if the syscall failed.
bool io_should_fail(IoPoint point);

#else

constexpr bool compiled_in() { return false; }
inline void arm(Kind, std::uint64_t) {}
inline void disarm() {}
inline std::uint64_t checkpoints() { return 0; }
inline bool fired() { return false; }
inline void on_checkpoint() {}
inline void arm_io(IoPoint, std::uint64_t) {}
inline void disarm_io() {}
inline std::uint64_t io_occurrences(IoPoint) { return 0; }
inline bool io_fired() { return false; }
inline bool io_should_fail(IoPoint) { return false; }

#endif

}  // namespace lclpath::fault
