// Deterministic fault injection at budget checkpoints.
//
// Compiled in only under the LCLPATH_FAULT_INJECTION CMake option (which
// defines the macro PUBLICly on the library). When armed, the harness
// counts every ExecutionBudget::checkpoint() call process-wide — before
// the amortization stride, so indices are dense — and throws a scripted
// failure at exactly the k-th one:
//
//   fault::arm(fault::Kind::kCancel, k);    // CancelledError{kCancelled}
//   fault::arm(fault::Kind::kBadAlloc, k);  // std::bad_alloc
//
// The sweep tests iterate k over a clean run's checkpoint count to prove
// every exit path unwinds cleanly and leaves both caches consistent. All
// state is atomic, so arming from a test thread while pool workers hit
// checkpoints is TSan-clean; exactly one checkpoint fires per arm()
// (compare_exchange claims the index).
//
// Without the option this header still compiles: arm()/disarm() are
// no-ops and checkpoints pay nothing.
#pragma once

#include <cstdint>

namespace lclpath::fault {

enum class Kind : std::uint8_t {
  kNone,      ///< disarmed
  kCancel,    ///< throw CancelledError{kCancelled} at the armed checkpoint
  kBadAlloc,  ///< throw std::bad_alloc at the armed checkpoint
};

#ifdef LCLPATH_FAULT_INJECTION

/// Is the harness compiled into this build?
constexpr bool compiled_in() { return true; }

/// Arms the harness: the `at`-th checkpoint() after this call (0-based)
/// throws per `kind`. Resets the checkpoint counter. Not meant to race
/// with in-flight checkpoints — arm between runs.
void arm(Kind kind, std::uint64_t at);

/// Disarms without resetting the counter (reads of checkpoints() stay
/// meaningful for sizing the next sweep).
void disarm();

/// Checkpoints observed since the last arm()/reset. Use a clean armed-
/// at-infinity run to measure a workload's checkpoint count.
std::uint64_t checkpoints();

/// True iff the armed fault has fired since arm().
bool fired();

/// Called by ExecutionBudget::checkpoint(); throws when armed and the
/// counter hits the armed index.
void on_checkpoint();

#else

constexpr bool compiled_in() { return false; }
inline void arm(Kind, std::uint64_t) {}
inline void disarm() {}
inline std::uint64_t checkpoints() { return 0; }
inline bool fired() { return false; }
inline void on_checkpoint() {}

#endif

}  // namespace lclpath::fault
