#include "core/rng.hpp"

#include <cassert>
#include <numeric>

namespace lclpath {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound >= 1);
  // Rejection sampling over the top multiple of bound to avoid modulo bias.
  const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return draw % bound;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : next_below(span));
}

bool Rng::next_bool(std::uint64_t p_num, std::uint64_t p_den) {
  assert(p_den >= 1 && p_num <= p_den);
  return next_below(p_den) < p_num;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(next_below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace lclpath
