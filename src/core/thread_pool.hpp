// A fixed-size worker pool with a shared FIFO queue.
//
// The decision procedure is CPU-bound and embarrassingly parallel across
// problems (each classify() call builds its own transition system and
// monoid), so a simple lock-based queue is plenty: tasks are coarse
// (milliseconds to seconds each) and contention on the queue mutex is
// negligible. Exceptions thrown by a task are captured in its future.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace lclpath {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains everything: shutdown rejects new submissions, but the workers
  /// run every task already in the FIFO — in submission order relative to
  /// each worker's pulls — before joining. Every future obtained from
  /// submit() therefore resolves (value or exception); none is abandoned
  /// as a broken promise, even when an earlier task threw. Destruction
  /// blocks until the queue is empty, so cancel long-running tasks (e.g.
  /// via an ExecutionBudget) before dropping the pool if prompt shutdown
  /// matters.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a nullary callable; the returned future yields its result or
  /// rethrows its exception. Throws std::runtime_error after shutdown began.
  template <typename F>
  auto submit(F f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace lclpath
