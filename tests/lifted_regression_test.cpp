// Regression tests for the PR-1 stack-overflow family: classifying
// hardness::lift_to_undirected(...) of directed-path catalog problems.
// PR 1 fixed the segfault (deep recursion in the pair-wise search) but the
// quadratic point-pair sweep remained effectively non-terminating on the
// ~10^5-point lifted domains; the factorized aggregate engine classifies
// them in well under a second, so the whole family is pinned here under a
// tight ctest timeout (see CMakeLists.txt).
//
// Expected classes: the lift's orientation counter hands every node its
// position mod 3 — a free 3-coloring — so symmetry breaking is free and
// every Theta(log* n) source collapses to O(1) (e.g. 3-coloring: output
// the color indexed by the input counter; counter-defect edges only admit
// escape tags or are "broken" and unconstrained among normal tags).
// Theta(n) sources stay Theta(n): a mod-3 counter yields neither parity
// (2-coloring) nor global agreement.
#include <gtest/gtest.h>

#include "decide/classifier.hpp"
#include "hardness/undirected.hpp"
#include "test_util.hpp"

namespace lclpath {
namespace {

ClassifiedProblem classify_lift(const PairwiseProblem& source) {
  return classify(hardness::lift_to_undirected(source));
}

TEST(LiftedUndirectedRegression, ColoringPathIsClassifiable) {
  // The ROADMAP headline case: monoid 90, ~7 * 10^5 domain points. Used to
  // stack-overflow (pre PR 1), then to grind forever; now sub-second.
  const ClassifiedProblem result =
      classify_lift(catalog::coloring(3, Topology::kDirectedPath));
  EXPECT_EQ(result.complexity(), ComplexityClass::kConstant) << result.summary();
  EXPECT_EQ(result.monoid_size(), 90u);
  EXPECT_TRUE(result.linear_certificate().feasible);
  EXPECT_TRUE(result.const_certificate().feasible);
}

TEST(LiftedUndirectedRegression, TwoColoringPathStaysLinear) {
  const ClassifiedProblem result =
      classify_lift(catalog::two_coloring(Topology::kDirectedPath));
  EXPECT_EQ(result.complexity(), ComplexityClass::kLinear) << result.summary();
  EXPECT_FALSE(result.linear_certificate().feasible);
}

TEST(LiftedUndirectedRegression, ConstantOutputPathStaysConstant) {
  const ClassifiedProblem result =
      classify_lift(catalog::constant_output(Topology::kDirectedPath));
  EXPECT_EQ(result.complexity(), ComplexityClass::kConstant) << result.summary();
}

TEST(LiftedUndirectedRegression, ColoringCycleIsClassifiable) {
  // Cycle flavor of the same family.
  const ClassifiedProblem result = classify_lift(catalog::coloring(3));
  EXPECT_EQ(result.complexity(), ComplexityClass::kConstant) << result.summary();
}

TEST(LiftedUndirectedRegression, ShiftInputCycleLiftClassifiesThroughLazyCertificate) {
  // The ISSUE 5 headline case: monoid 930, ~2.9 * 10^7 domain points. The
  // factorized search (PR 2) made the *decision* fast, but materializing
  // the certificate tables still took ~30 s and GBs of hash map; the lazy
  // class-indexed certificate classifies this end-to-end in ~1 s and MBs.
  // This test runs under the binary's tight ctest TIMEOUT, so a regression
  // back to eager materialization fails loudly.
  const ClassifiedProblem result = classify_lift(catalog::shift_input());
  EXPECT_EQ(result.complexity(), ComplexityClass::kConstant) << result.summary();
  EXPECT_EQ(result.monoid_size(), 930u);
  ASSERT_TRUE(result.linear_certificate().feasible);
  EXPECT_EQ(result.linear_certificate().backend(), CertificateBackend::kLazy);
  EXPECT_EQ(result.linear_certificate().domain_size(), 29160000u);
  // Spot-check the lazy feasible function through the same lookup the
  // synthesized algorithm would issue: every domain point has a value, and
  // its reversed point (undirected topology) resolves too.
  const Monoid& monoid = result.monoid();
  const std::vector<std::size_t> layer = monoid.layer_at(result.linear_certificate().ell_ctx);
  ASSERT_FALSE(layer.empty());
  const BlockPoint probe{BlockKind::kInterior, layer.front(), 0, 1, layer.back()};
  const BlockValue value = result.linear_certificate().value_at(probe);
  EXPECT_TRUE(result.linear_certificate().contains(probe.reversed(monoid)));
  const BlockValue rev_value =
      result.linear_certificate().value_at(probe.reversed(monoid));
  EXPECT_LT(value.a, result.problem().num_outputs());
  EXPECT_LT(rev_value.a, result.problem().num_outputs());
}

TEST(LiftedUndirectedRegression, LiftedSolvabilityIsPreserved) {
  // The classifier end of the solvability round-trips hardness_test pins:
  // two_coloring's lift is solvable on paths (odd cycles are the obstacle).
  const ClassifiedProblem result =
      classify_lift(catalog::two_coloring(Topology::kDirectedPath));
  EXPECT_TRUE(result.solvability().solvable);
}

// ISSUE 3: the lifted O(1) problems must synthesize *runnable* constant
// algorithms on their undirected topologies — no gather-all fallback. The
// monoid-90 certificates keep the structured-regime radii large even
// under the per-problem margins (the seed-domination term scales with
// the input-alphabet size times the claim scale), so execution here is
// pinned in the full-view regime (n below the radius, where radius(n)
// clamps to the full-view threshold and the canonical solve answers);
// sub-linearity is pinned by the radius being a constant far below a
// huge n.
void ExpectLiftSynthesizesConstant(const PairwiseProblem& source, std::uint64_t seed) {
  const PairwiseProblem lifted = hardness::lift_to_undirected(source);
  const ClassifiedProblem result = classify(lifted);
  ASSERT_EQ(result.complexity(), ComplexityClass::kConstant) << result.summary();
  const auto algorithm = result.synthesize();
  EXPECT_NE(algorithm->name(), "gather-all");
  EXPECT_LT(algorithm->radius(std::size_t{1} << 40), std::size_t{1} << 40);
  Rng rng(seed);
  for (std::size_t n : {std::size_t{9}, std::size_t{257}}) {
    Instance instance = random_instance(lifted.topology(), n, lifted.num_inputs(), rng);
    const auto sim = simulate(*algorithm, lifted, instance);
    EXPECT_TRUE(sim.verdict.ok) << "n=" << n << ": " << sim.verdict.reason;
  }
}

TEST(LiftedUndirectedRegression, ColoringPathLiftSynthesizesConstant) {
  ExpectLiftSynthesizesConstant(catalog::coloring(3, Topology::kDirectedPath), 301);
}

TEST(LiftedUndirectedRegression, ConstantOutputPathLiftSynthesizesConstant) {
  ExpectLiftSynthesizesConstant(catalog::constant_output(Topology::kDirectedPath), 302);
}

TEST(LiftedUndirectedRegression, ColoringCycleLiftSynthesizesConstant) {
  ExpectLiftSynthesizesConstant(catalog::coloring(3), 303);
}

}  // namespace
}  // namespace lclpath
