// Cross-topology synthesis (ISSUE 3): synthesize() must return a
// sub-linear executable algorithm for every kConstant / kLogStar problem
// on *all four* topologies — no gather-all fallback — and the outputs must
// verify under simulation. One test per (problem, topology, instance
// shape) so ctest parallelizes the O(radius^2) simulations, mirroring the
// synthesized_test.cpp split.
//
// Undirected topologies additionally get the locality properties the
// directed suite cannot express: window agreement on undirected paths
// (equal canonicalized windows => equal outputs) and reversal
// equivariance (on cycles the mirrored instance must produce exactly the
// mirrored labeling; on paths the two physical ends are distinguishable —
// the first/last rules anchor there — so only the end-free interior
// mirrors, and both labelings must verify).
#include <gtest/gtest.h>

#include <algorithm>

#include "decide/classifier.hpp"
#include "test_util.hpp"

namespace lclpath {
namespace {

// `end_anchored_regime` (paths only): simulate at n in (r, 2r) — still the
// structured regime, but every node sees an end, which halves the
// O(n * radius) cost; used for the heavyweight O(1) path radii whose
// end-free interiors are already covered by the cycle and mixed tests.
void ExpectSynthesisSolves(const PairwiseProblem& problem, ComplexityClass expected,
                           std::uint64_t seed, bool end_anchored_regime = false) {
  Rng rng(seed);
  const ClassifiedProblem result = classify(problem);
  ASSERT_EQ(result.complexity(), expected) << result.summary();
  const auto algorithm = result.synthesize();
  EXPECT_NE(algorithm->name(), "gather-all");
  const std::size_t r = algorithm->radius(1 << 20);
  EXPECT_LT(r, std::size_t{1} << 20) << "radius must be o(n)";
  const std::size_t structured = end_anchored_regime ? r + 999 : 2 * r + 7;
  for (std::size_t n : {std::size_t{9}, structured}) {
    Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
    const auto sim = simulate(*algorithm, problem, instance);
    EXPECT_TRUE(sim.verdict.ok)
        << problem.name() << " on " << to_string(problem.topology()) << " n=" << n
        << ": " << sim.verdict.reason;
  }
}

// --------------------------------------------------------- Theta(log* n)

TEST(SynthesizedTopologies, LogStarColoringDirectedPath) {
  ExpectSynthesisSolves(catalog::coloring(3, Topology::kDirectedPath),
                        ComplexityClass::kLogStar, 201);
}

TEST(SynthesizedTopologies, LogStarColoringUndirectedCycle) {
  ExpectSynthesisSolves(catalog::coloring(3, Topology::kUndirectedCycle),
                        ComplexityClass::kLogStar, 202);
}

TEST(SynthesizedTopologies, LogStarColoringUndirectedPath) {
  ExpectSynthesisSolves(catalog::coloring(3, Topology::kUndirectedPath),
                        ComplexityClass::kLogStar, 203);
}

TEST(SynthesizedTopologies, LogStarFourColoringUndirectedPath) {
  // A second output-alphabet size through the undirected machinery.
  ExpectSynthesisSolves(catalog::coloring(4, Topology::kUndirectedPath),
                        ComplexityClass::kLogStar, 204);
}

// ----------------------------------------------------------------- O(1)

TEST(SynthesizedTopologies, ConstantOutputDirectedPath) {
  ExpectSynthesisSolves(catalog::constant_output(Topology::kDirectedPath),
                        ComplexityClass::kConstant, 205);
}

TEST(SynthesizedTopologies, AlwaysAcceptDirectedPath) {
  ExpectSynthesisSolves(catalog::always_accept(Topology::kDirectedPath),
                        ComplexityClass::kConstant, 206, /*end_anchored_regime=*/true);
}

TEST(SynthesizedTopologies, ConstantOutputUndirectedCycle) {
  ExpectSynthesisSolves(catalog::constant_output(Topology::kUndirectedCycle),
                        ComplexityClass::kConstant, 207);
}

TEST(SynthesizedTopologies, ConstantOutputUndirectedPath) {
  ExpectSynthesisSolves(catalog::constant_output(Topology::kUndirectedPath),
                        ComplexityClass::kConstant, 208, /*end_anchored_regime=*/true);
}

// copy-input exercises the endpoint machinery against real input
// structure: periodic regions, irregular chunks, and their boundaries
// near a path end. One instance shape per test (CI-budget split).
void ExpectCopyInputPathSolves(bool mixed) {
  Rng rng(209);
  const PairwiseProblem problem = catalog::copy_input(Topology::kDirectedPath);
  const ClassifiedProblem result = classify(problem);
  ASSERT_EQ(result.complexity(), ComplexityClass::kConstant) << result.summary();
  const auto algorithm = result.synthesize();
  const std::size_t r = algorithm->radius(1 << 20);
  // Random: n in (r, 2r) — structured regime with every node seeing an
  // end, which is exactly the endpoint machinery under test (end-free
  // interiors are the cycle suite's job) and halves the O(n * r) cost.
  // Mixed: n above 2r so end-free nodes cross the region/chunk boundary.
  const std::size_t n = mixed ? 2 * r + 9 : r + 999;
  Instance instance = random_instance(problem.topology(), n, 2, rng);
  if (mixed) {
    // A long periodic stretch between random quarters: regression for the
    // chunk-vs-periodic-region interaction (a seed pair must never pump
    // across a claimed region and swallow its anchors).
    for (std::size_t v = n / 4; v < (3 * n) / 4; ++v) instance.inputs[v] = v % 2;
  }
  const auto sim = simulate(*algorithm, problem, instance);
  EXPECT_TRUE(sim.verdict.ok) << sim.verdict.reason;
}

TEST(SynthesizedTopologies, CopyInputDirectedPathRandom) {
  ExpectCopyInputPathSolves(false);
}

TEST(SynthesizedTopologies, CopyInputDirectedPathMixed) {
  ExpectCopyInputPathSolves(true);
}

// ------------------------------------------------- locality properties

// Equal (canonicalized) windows on different undirected-path instances
// must produce equal outputs — the undirected analog of
// Synthesized.WindowAgreementProperty.
TEST(SynthesizedTopologies, WindowAgreementUndirectedPath) {
  Rng rng(210);
  const PairwiseProblem problem = catalog::coloring(3, Topology::kUndirectedPath);
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  const std::size_t r = algorithm->radius(1 << 20);
  const std::size_t n = 2 * r + 41;
  Instance a = random_instance(problem.topology(), n, 1, rng);
  Instance b = a;
  // Permute IDs outside node 0's window.
  for (std::size_t v = r + 5; v + 3 < n; v += 2) {
    std::swap(b.ids[v], b.ids[v + 1]);
  }
  const View va = extract_view(a, 0, r);
  const View vb = extract_view(b, 0, r);
  ASSERT_EQ(va.ids, vb.ids);
  EXPECT_EQ(algorithm->run(va), algorithm->run(vb));
}

// On an undirected cycle the storage direction is not observable: the
// reversed instance must produce exactly the mirrored labeling.
TEST(SynthesizedTopologies, ReversalEquivarianceUndirectedCycle) {
  Rng rng(211);
  const PairwiseProblem problem = catalog::coloring(3, Topology::kUndirectedCycle);
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  const std::size_t n = 2 * algorithm->radius(1 << 20) + 23;
  Instance a = random_instance(problem.topology(), n, 1, rng);
  Instance b = a;
  std::reverse(b.inputs.begin(), b.inputs.end());
  std::reverse(b.ids.begin(), b.ids.end());
  const auto sa = simulate(*algorithm, problem, a);
  const auto sb = simulate(*algorithm, problem, b);
  ASSERT_TRUE(sa.verdict.ok) << sa.verdict.reason;
  ASSERT_TRUE(sb.verdict.ok) << sb.verdict.reason;
  for (std::size_t v = 0; v < n; ++v) {
    ASSERT_EQ(sa.outputs[v], sb.outputs[n - 1 - v]) << "node " << v;
  }
}

// On an undirected path the two ends are distinguishable (the first/last
// rules anchor there), so reversal only mirrors the end-free interior;
// both labelings must verify either way.
TEST(SynthesizedTopologies, ReversalUndirectedPath) {
  Rng rng(212);
  const PairwiseProblem problem = catalog::coloring(3, Topology::kUndirectedPath);
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  const std::size_t r = algorithm->radius(1 << 20);
  const std::size_t n = 2 * r + 37;
  Instance a = random_instance(problem.topology(), n, 1, rng);
  Instance b = a;
  std::reverse(b.inputs.begin(), b.inputs.end());
  std::reverse(b.ids.begin(), b.ids.end());
  const auto sa = simulate(*algorithm, problem, a);
  const auto sb = simulate(*algorithm, problem, b);
  ASSERT_TRUE(sa.verdict.ok) << sa.verdict.reason;
  ASSERT_TRUE(sb.verdict.ok) << sb.verdict.reason;
  for (std::size_t v = r + 1; v + r + 1 < n; ++v) {
    ASSERT_EQ(sa.outputs[v], sb.outputs[n - 1 - v]) << "end-free node " << v;
  }
}

// ------------------------------------------------- per-problem radii

// Pinned ceilings ~10% above the measured per-problem radii (ISSUE 7: the
// margins are derived from each problem's own certificate structure, not
// worst-case composition). A regression that reintroduces a worst-case
// term fails here long before it shows up as a slow benchmark row.
TEST(SynthesizedTopologies, RadiusCeilings) {
  const std::size_t n = 1 << 20;
  const auto radius_of = [n](const PairwiseProblem& p) {
    return classify(p).synthesize()->radius(n);
  };
  // Theta(log* n): 3-coloring. Measured 519 / 570 / 987 / 1038.
  EXPECT_LE(radius_of(catalog::coloring(3, Topology::kDirectedCycle)), 600u);
  EXPECT_LE(radius_of(catalog::coloring(3, Topology::kDirectedPath)), 650u);
  EXPECT_LE(radius_of(catalog::coloring(3, Topology::kUndirectedCycle)), 1100u);
  EXPECT_LE(radius_of(catalog::coloring(3, Topology::kUndirectedPath)), 1150u);
  // O(1), unary inputs: constant-output. Measured 264 / 428 / 1589 / 1753.
  EXPECT_LE(radius_of(catalog::constant_output(Topology::kDirectedCycle)), 300u);
  EXPECT_LE(radius_of(catalog::constant_output(Topology::kDirectedPath)), 480u);
  EXPECT_LE(radius_of(catalog::constant_output(Topology::kUndirectedCycle)), 1750u);
  EXPECT_LE(radius_of(catalog::constant_output(Topology::kUndirectedPath)), 1950u);
  // O(1), binary inputs (seed machinery live): copy-input, shift-input.
  // Measured 2404 / 2728 and 4924 / 5528.
  EXPECT_LE(radius_of(catalog::copy_input(Topology::kDirectedCycle)), 2700u);
  EXPECT_LE(radius_of(catalog::copy_input(Topology::kDirectedPath)), 3000u);
  EXPECT_LE(radius_of(catalog::shift_input(Topology::kDirectedCycle)), 5500u);
  EXPECT_LE(radius_of(catalog::shift_input(Topology::kDirectedPath)), 6100u);
  // O(1), trivial constraints: always-accept. Measured 284 / 458.
  EXPECT_LE(radius_of(catalog::always_accept(Topology::kDirectedCycle)), 320u);
  EXPECT_LE(radius_of(catalog::always_accept(Topology::kDirectedPath)), 520u);
}

// Gather-all self-selection: below the structured regime, radius(n) clamps
// to the full-view threshold — (n + 1) / 2 on cycles, n - 1 on paths — so
// the advertised radius can never exceed the instance (the ISSUE 7 bench
// pathology: an "O(1)" algorithm whose radius is 5x the cycle).
TEST(SynthesizedTopologies, RadiusClampsToFullViewThreshold) {
  for (Topology t : {Topology::kDirectedCycle, Topology::kDirectedPath,
                     Topology::kUndirectedCycle, Topology::kUndirectedPath}) {
    for (const PairwiseProblem& p :
         {catalog::coloring(3, t), catalog::constant_output(t)}) {
      const auto algorithm = classify(p).synthesize();
      const std::size_t structured = algorithm->radius(1 << 20);
      for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{9},
                            std::size_t{257}, structured, 2 * structured}) {
        const std::size_t r = algorithm->radius(n);
        EXPECT_LE(r, n) << p.name() << " " << to_string(t) << " n=" << n;
        const std::size_t full = is_cycle(t) ? (n + 1) / 2 : n - 1;
        EXPECT_LE(r, full) << p.name() << " " << to_string(t) << " n=" << n;
      }
    }
  }
}

// Adversarial instance shapes for the O(1) partition: bands of constant,
// short-period, long-period (12: above any claimed period the analysis
// might prefer), and random inputs, abutting each other and the path ends.
// Every band boundary is a periodic-region/irregular-chunk seam; the
// per-run pre-period margins must still enclose every virtual gap.
TEST(SynthesizedTopologies, AdversarialMixedShapes) {
  Rng rng(213);
  for (Topology t : {Topology::kDirectedCycle, Topology::kDirectedPath}) {
    const PairwiseProblem problem = catalog::copy_input(t);
    const ClassifiedProblem result = classify(problem);
    ASSERT_EQ(result.complexity(), ComplexityClass::kConstant) << result.summary();
    const auto algorithm = result.synthesize();
    const std::size_t r = algorithm->radius(1 << 20);
    const std::size_t n = 2 * r + 61;
    Instance instance = random_instance(t, n, 2, rng);
    const std::size_t band = n / 6;
    for (std::size_t v = 0; v < n; ++v) {
      switch (v / band) {
        case 0: instance.inputs[v] = 0; break;            // constant
        case 1: instance.inputs[v] = v % 2; break;        // period 2
        case 2: break;                                    // random
        case 3: instance.inputs[v] = v % 12 < 5; break;   // period 12
        case 4: instance.inputs[v] = 1; break;            // constant
        default: break;                                   // random tail
      }
    }
    const auto sim = simulate(*algorithm, problem, instance);
    EXPECT_TRUE(sim.verdict.ok)
        << problem.name() << " on " << to_string(t) << ": " << sim.verdict.reason;
  }
}

// The strategy names surface in the algorithm names (the CLI prints them).
TEST(SynthesizedTopologies, AlgorithmNamesCarryStrategy) {
  EXPECT_EQ(classify(catalog::coloring(3)).synthesize()->name(),
            "synthesized-logstar[directed-cycle]");
  EXPECT_EQ(classify(catalog::coloring(3, Topology::kUndirectedPath)).synthesize()->name(),
            "synthesized-logstar[undirected-path]");
  EXPECT_EQ(
      classify(catalog::constant_output(Topology::kUndirectedCycle)).synthesize()->name(),
      "synthesized-constant[undirected-cycle]");
  EXPECT_EQ(classify(catalog::constant_output(Topology::kDirectedPath)).synthesize()->name(),
            "synthesized-constant[directed-path]");
}

}  // namespace
}  // namespace lclpath
