// The persistent catalog store's contract, end to end.
//
// Three layers are under test here:
//   * shard.{hpp,cpp} — encode/decode round-trips (classifications and
//     every failure-observation kind), and the validate-before-trust
//     decoder: truncated tails, bit flips, unknown versions, hostile
//     bytes and record-count lies all come back "dirty", never a crash;
//   * store.{hpp,cpp} — directory load/put/commit semantics, the retry
//     taxonomy, and warm_start() preloading a BatchCache so a 10^4-record
//     batch classifies with zero decider runs (verified via the cache's
//     own hit/miss counters);
//   * serve.{hpp,cpp} — the validated hot-reload loop: a corrupted shard
//     rewrite is rejected while the server keeps answering from the last
//     good snapshot, and concurrent snapshot() readers are safe against
//     the poller's RCU swaps (the TSan job runs these suites).
//
// The crash-consistency sweep (StoreFaultSweep) needs the
// LCLPATH_FAULT_INJECTION build: it arms every write/fsync/rename
// occurrence of a multi-shard commit in turn and asserts each shard file
// on disk is the complete old file or the complete new file — and that
// retrying the failed commit verbatim finishes the job. Without the
// option those sweeps GTEST_SKIP; everything else runs in any build.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_injection.hpp"
#include "decide/batch.hpp"
#include "decide/classifier.hpp"
#include "lcl/catalog.hpp"
#include "lcl/serialize.hpp"
#include "store/serve.hpp"
#include "store/shard.hpp"
#include "store/store.hpp"

namespace lclpath::store {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty directory for one test, removed on destruction.
class ScopedDir {
 public:
  explicit ScopedDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("lclpath_store_test_" + tag + "_" +
              std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

StoreRecord classified_record(PairwiseProblem problem, ComplexityClass c,
                              LinearGapEngine engine = LinearGapEngine::kFactorized,
                              CertificateMode mode = CertificateMode::kAuto) {
  StoreRecord record;
  record.problem = std::move(problem);
  record.engine = engine;
  record.mode = mode;
  record.classified = c;
  return record;
}

StoreRecord observed_record(PairwiseProblem problem, BatchErrorKind kind,
                            std::string message) {
  StoreRecord record;
  record.problem = std::move(problem);
  record.observation = BatchError{kind, std::move(message)};
  return record;
}

/// Distinct tiny problems: outputs o0..o3, single input, edge relation
/// taken from the low 16 bits of `index` — 2^16 distinct canonical keys,
/// far more than any test here needs. Never meant to be classified.
PairwiseProblem synthetic_problem(std::size_t index) {
  Alphabet in, out;
  in.add("a");
  for (std::size_t o = 0; o < 4; ++o) out.add("o" + std::to_string(o));
  PairwiseProblem p("synthetic-" + std::to_string(index), in, out,
                    Topology::kDirectedCycle);
  for (Label o = 0; o < 4; ++o) p.allow_node(0, o);
  for (Label a = 0; a < 4; ++a) {
    for (Label b = 0; b < 4; ++b) {
      if ((index >> (a * 4 + b)) & 1u) p.allow_edge(a, b);
    }
  }
  return p;
}

// ------------------------------------------------------------- shards

TEST(Store, ShardRoundTripClassifications) {
  std::vector<StoreRecord> records;
  records.push_back(classified_record(catalog::coloring(3), ComplexityClass::kLogStar));
  records.push_back(classified_record(catalog::constant_output(),
                                      ComplexityClass::kConstant,
                                      LinearGapEngine::kPairwise,
                                      CertificateMode::kDense));
  records.push_back(
      classified_record(catalog::two_coloring(), ComplexityClass::kUnsolvable));

  const std::string bytes = encode_shard(records);
  const ShardLoadResult loaded = decode_shard(bytes);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.version, kShardFormatVersion);
  ASSERT_EQ(loaded.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded.records[i].cache_key(), records[i].cache_key()) << i;
    ASSERT_TRUE(loaded.records[i].ok()) << i;
    EXPECT_EQ(*loaded.records[i].classified, *records[i].classified) << i;
    EXPECT_EQ(loaded.records[i].engine, records[i].engine) << i;
    EXPECT_EQ(loaded.records[i].mode, records[i].mode) << i;
  }
}

TEST(Store, ShardRoundTripEveryErrorKind) {
  const BatchErrorKind kinds[] = {BatchErrorKind::kTimeout, BatchErrorKind::kBudget,
                                  BatchErrorKind::kMalformed,
                                  BatchErrorKind::kCancelled,
                                  BatchErrorKind::kInternal};
  std::vector<StoreRecord> records;
  std::size_t i = 0;
  for (const BatchErrorKind kind : kinds) {
    records.push_back(observed_record(synthetic_problem(i++), kind,
                                      "failed: " + to_string(kind)));
  }
  const ShardLoadResult loaded = decode_shard(encode_shard(records));
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.records.size(), records.size());
  for (std::size_t r = 0; r < records.size(); ++r) {
    ASSERT_FALSE(loaded.records[r].ok()) << r;
    ASSERT_TRUE(loaded.records[r].observation.has_value()) << r;
    EXPECT_EQ(loaded.records[r].observation->kind, records[r].observation->kind) << r;
    EXPECT_EQ(loaded.records[r].observation->message,
              records[r].observation->message)
        << r;
  }
}

TEST(Store, ShardFlattensMultiLineMessages) {
  // A failure message with embedded newlines must not be able to smuggle
  // extra "record"/"end" lines into the text format.
  std::vector<StoreRecord> records;
  records.push_back(observed_record(synthetic_problem(1), BatchErrorKind::kInternal,
                                    "line one\nend\nrecord injection"));
  const ShardLoadResult loaded = decode_shard(encode_shard(records));
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.records.size(), 1u);
  const std::string& message = loaded.records[0].observation->message;
  EXPECT_EQ(message.find('\n'), std::string::npos);
  EXPECT_NE(message.find("line one"), std::string::npos);
}

TEST(Store, CacheKeyMatchesBatchIdentity) {
  const StoreRecord record = classified_record(
      catalog::coloring(3), ComplexityClass::kLogStar, LinearGapEngine::kPairwise,
      CertificateMode::kLazy);
  EXPECT_EQ(record.cache_key(),
            canonical_key(record.problem) +
                cache_identity_suffix(LinearGapEngine::kPairwise,
                                      CertificateMode::kLazy));
}

TEST(Store, DecodeRejectsTruncatedTail) {
  const std::string bytes = encode_shard(
      {classified_record(catalog::coloring(3), ComplexityClass::kLogStar)});
  // Every strict prefix must be dirty, never a crash or a partial parse.
  for (std::size_t keep : {bytes.size() - 1, bytes.size() / 2, std::size_t{1},
                           std::size_t{0}}) {
    const ShardLoadResult loaded = decode_shard(bytes.substr(0, keep));
    EXPECT_FALSE(loaded.ok) << "prefix of " << keep << " bytes decoded";
    EXPECT_TRUE(loaded.records.empty());
  }
}

TEST(Store, DecodeRejectsBitFlips) {
  const std::string bytes = encode_shard(
      {classified_record(catalog::coloring(3), ComplexityClass::kLogStar)});
  // Flip the low bit of a byte at a spread of positions across header and
  // payload. (Not 0x20: case-flipping a hex digit of the checksum field is
  // the one byte change that is semantically neutral.)
  for (std::size_t at = 0; at < bytes.size(); at += 7) {
    std::string flipped = bytes;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x01);
    const ShardLoadResult loaded = decode_shard(flipped);
    EXPECT_FALSE(loaded.ok) << "bit flip at byte " << at << " decoded";
  }
}

TEST(Store, DecodeRejectsUnknownVersion) {
  std::string bytes = encode_shard(
      {classified_record(catalog::coloring(3), ComplexityClass::kLogStar)});
  ASSERT_EQ(bytes.rfind("lclshard 1 ", 0), 0u);
  bytes.replace(0, std::string("lclshard 1").size(), "lclshard 99");
  const ShardLoadResult loaded = decode_shard(bytes);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("version"), std::string::npos) << loaded.error;
}

TEST(Store, DecodeRejectsRecordCountLie) {
  // Same payload, same checksum, header claims one record too many: the
  // count check has to catch what the checksum cannot.
  const std::string bytes = encode_shard(
      {classified_record(catalog::coloring(3), ComplexityClass::kLogStar)});
  const std::size_t newline = bytes.find('\n');
  ASSERT_NE(newline, std::string::npos);
  std::istringstream header(bytes.substr(0, newline));
  std::string magic, checksum;
  std::uint32_t version = 0;
  std::size_t count = 0;
  header >> magic >> version >> count >> checksum;
  ASSERT_EQ(count, 1u);
  const std::string lied = magic + " " + std::to_string(version) + " " +
                           std::to_string(count + 1) + " " + checksum +
                           bytes.substr(newline);
  const ShardLoadResult loaded = decode_shard(lied);
  EXPECT_FALSE(loaded.ok);
}

TEST(Store, DecodeRejectsHostileBytes) {
  for (const char* hostile :
       {"", "garbage", "lclshard", "lclshard one two three",
        "lclshard 1 0 nothex!!\n", "\xff\xfe binary soup"}) {
    const ShardLoadResult loaded = decode_shard(hostile);
    EXPECT_FALSE(loaded.ok) << '"' << hostile << '"';
  }
}

// ----------------------------------------------------------- directory

TEST(Store, CommitReloadRoundTrip) {
  ScopedDir dir("roundtrip");
  ResultStore store(dir.path(), {4});
  store.put(classified_record(catalog::coloring(3), ComplexityClass::kLogStar));
  store.put(classified_record(catalog::constant_output(), ComplexityClass::kConstant));
  store.put(observed_record(synthetic_problem(7), BatchErrorKind::kTimeout,
                            "deadline expired"));
  EXPECT_GE(store.commit(), 1u);
  EXPECT_EQ(store.commit(), 0u) << "clean store rewrote shards";

  ResultStore reloaded(dir.path(), {4});
  const LoadReport report = reloaded.load();
  EXPECT_TRUE(report.dirty.empty());
  EXPECT_EQ(report.records, 3u);
  EXPECT_EQ(reloaded.size(), 3u);
  for (const auto& [key, record] : store.records()) {
    const StoreRecord* found = reloaded.find(key);
    ASSERT_NE(found, nullptr) << key;
    EXPECT_EQ(found->ok(), record.ok());
  }
  EXPECT_TRUE(fsck(dir.path()).clean);
}

TEST(Store, LoadSkipsDirtyShardsAndKeepsGoodOnes) {
  ScopedDir dir("dirty_skip");
  ResultStore store(dir.path(), {1});
  store.put(classified_record(catalog::coloring(3), ComplexityClass::kLogStar));
  store.commit();
  // A second shard file written by hand (different layout — records are
  // self-describing, so load() unions whatever validates)...
  write_file(dir.path() + "/extra-0000.lcls",
             encode_shard({classified_record(catalog::constant_output(),
                                             ComplexityClass::kConstant)}));
  // ...and a corrupted third.
  std::string bad = encode_shard(
      {classified_record(catalog::two_coloring(), ComplexityClass::kUnsolvable)});
  bad.resize(bad.size() - 3);
  write_file(dir.path() + "/torn-0000.lcls", bad);
  // Stray crash leftovers must be invisible to readers.
  write_file(dir.path() + "/shard-0000.lcls.tmp", "half-written garbage");

  ResultStore reloaded(dir.path(), {1});
  const LoadReport report = reloaded.load();
  EXPECT_EQ(report.shards_seen, 3u);
  EXPECT_EQ(report.shards_ok, 2u);
  ASSERT_EQ(report.dirty.size(), 1u);
  EXPECT_NE(report.dirty[0].find("torn-0000.lcls"), std::string::npos);
  EXPECT_EQ(reloaded.size(), 2u);

  const FsckReport verdict = fsck(dir.path());
  EXPECT_FALSE(verdict.clean);
  EXPECT_EQ(verdict.shards.size(), 3u);
}

TEST(Store, ObservationNeverClobbersClassification) {
  ScopedDir dir("no_clobber");
  ResultStore store(dir.path(), {2});
  StoreRecord good = classified_record(catalog::coloring(3), ComplexityClass::kLogStar);
  const std::string key = good.cache_key();
  store.put(good);
  store.put(observed_record(catalog::coloring(3), BatchErrorKind::kTimeout,
                            "slow machine"));
  ASSERT_NE(store.find(key), nullptr);
  EXPECT_TRUE(store.find(key)->ok()) << "observation clobbered a classification";

  // The other direction must upgrade: observation -> classification.
  store.put(observed_record(synthetic_problem(3), BatchErrorKind::kBudget, "cap"));
  store.put(classified_record(synthetic_problem(3), ComplexityClass::kLinear));
  const StoreRecord* upgraded = store.find(
      classified_record(synthetic_problem(3), ComplexityClass::kLinear).cache_key());
  ASSERT_NE(upgraded, nullptr);
  EXPECT_TRUE(upgraded->ok());
}

TEST(Store, RetryTaxonomy) {
  EXPECT_TRUE(retry_eligible(BatchErrorKind::kTimeout));
  EXPECT_TRUE(retry_eligible(BatchErrorKind::kBudget));
  EXPECT_TRUE(retry_eligible(BatchErrorKind::kCancelled));
  EXPECT_TRUE(retry_eligible(BatchErrorKind::kInternal));
  EXPECT_FALSE(retry_eligible(BatchErrorKind::kMalformed));
}

TEST(Store, RecordOfCapturesOutcomeAndConfiguration) {
  const PairwiseProblem problem = catalog::coloring(3);
  BatchOptions options;
  options.num_threads = 1;
  options.classify.linear_engine = LinearGapEngine::kFactorized;
  options.classify.certificate_mode = CertificateMode::kLazy;
  const std::vector<BatchEntry> entries =
      classify_batch(std::span<const PairwiseProblem>(&problem, 1), options);
  ASSERT_EQ(entries.size(), 1u);
  ASSERT_TRUE(entries[0].ok());
  const StoreRecord record = record_of(problem, entries[0], options.classify);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record.classified, ComplexityClass::kLogStar);
  EXPECT_EQ(record.mode, CertificateMode::kLazy);

  // A failed entry persists as an observation.
  BatchEntry failed;
  auto outcome = std::make_shared<BatchOutcome>();
  outcome->error = BatchError{BatchErrorKind::kTimeout, "deadline"};
  failed.outcome = outcome;
  const StoreRecord observed = record_of(problem, failed, options.classify);
  EXPECT_FALSE(observed.ok());
  EXPECT_EQ(observed.observation->kind, BatchErrorKind::kTimeout);
}

// ----------------------------------------------------------- warm start

TEST(Store, WarmStartSkipsFailureObservations) {
  ScopedDir dir("warm_failures");
  ResultStore store(dir.path(), {2});
  store.put(classified_record(catalog::coloring(3), ComplexityClass::kLogStar));
  store.put(observed_record(synthetic_problem(11), BatchErrorKind::kTimeout, "t"));
  store.put(observed_record(synthetic_problem(12), BatchErrorKind::kMalformed, "m"));

  BatchCache cache;
  EXPECT_EQ(store.warm_start(cache), 1u);
  EXPECT_EQ(store.preloaded(), 1u);
  EXPECT_EQ(cache.size(), 1u) << "a failure observation was preloaded";
}

TEST(Store, WarmStartedEntriesAreRestoredResults) {
  ResultStore store("unused-dir", {2});
  store.put(classified_record(catalog::constant_output(), ComplexityClass::kConstant));
  BatchCache cache;
  ASSERT_EQ(store.warm_start(cache), 1u);

  const std::string key =
      canonical_key(catalog::constant_output()) +
      cache_identity_suffix(LinearGapEngine::kFactorized, CertificateMode::kAuto);
  const auto outcome = cache.find(canonical_hash(key), key);
  ASSERT_NE(outcome, nullptr);
  ASSERT_TRUE(outcome->ok());
  const ClassifiedProblem& restored = *outcome->classified;
  EXPECT_TRUE(restored.restored());
  EXPECT_EQ(restored.complexity(), ComplexityClass::kConstant);
  EXPECT_EQ(restored.monoid_size(), 0u);
  EXPECT_NE(restored.summary().find("restored"), std::string::npos);
  // Certificates were deliberately not persisted: sub-linear synthesis
  // demands a re-classify instead of guessing.
  EXPECT_THROW((void)restored.synthesize(), std::logic_error);
}

TEST(Store, WarmStartTenThousandRecordsZeroClassifyCalls) {
  constexpr std::size_t kRecords = 10000;
  ScopedDir dir("warm_10k");
  std::vector<PairwiseProblem> problems;
  problems.reserve(kRecords);
  {
    ResultStore writer(dir.path(), {16});
    for (std::size_t i = 0; i < kRecords; ++i) {
      problems.push_back(synthetic_problem(i));
      writer.put(classified_record(problems.back(), ComplexityClass::kConstant));
    }
    ASSERT_EQ(writer.size(), kRecords);
    EXPECT_EQ(writer.commit(), 16u);
  }

  // Cold start: directory read + warm_start, then a full batch over the
  // same 10^4 problems must be served entirely from the cache — zero
  // decider runs, confirmed by the cache's own counters.
  ResultStore store(dir.path(), {16});
  const LoadReport report = store.load();
  EXPECT_TRUE(report.dirty.empty());
  ASSERT_EQ(report.records, kRecords);
  BatchCache cache;
  ASSERT_EQ(store.warm_start(cache), kRecords);

  BatchOptions options;
  options.cache = &cache;
  const std::vector<BatchEntry> entries = classify_batch(problems, options);
  ASSERT_EQ(entries.size(), kRecords);
  EXPECT_EQ(cache.hits(), kRecords);
  EXPECT_EQ(cache.misses(), 0u);
  for (const BatchEntry& entry : entries) {
    ASSERT_TRUE(entry.ok());
    EXPECT_TRUE(entry.from_cache);
    EXPECT_EQ(entry.classified().complexity(), ComplexityClass::kConstant);
  }
  const BatchSummary summary = summarize_batch(entries);
  EXPECT_EQ(summary.ok, kRecords);
  EXPECT_EQ(summary.failed, 0u);
}

// ----------------------------------------------------- crash consistency

/// The record sets a shard file may legally hold after an interrupted
/// commit: exactly its slice of the old store or of the new store.
using KeyToClass = std::map<std::string, ComplexityClass>;

KeyToClass classes_of(const std::vector<StoreRecord>& records) {
  KeyToClass map;
  for (const StoreRecord& record : records) {
    map.emplace(record.cache_key(), *record.classified);
  }
  return map;
}

TEST(StoreFaultSweep, CommitIsOldCompleteOrNewCompletePerShard) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "needs -DLCLPATH_FAULT_INJECTION=ON";
  }
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kProblems = 12;

  std::vector<StoreRecord> old_records, new_records;
  for (std::size_t i = 0; i < kProblems; ++i) {
    old_records.push_back(
        classified_record(synthetic_problem(i), ComplexityClass::kConstant));
    new_records.push_back(
        classified_record(synthetic_problem(i), ComplexityClass::kLogStar));
  }
  const KeyToClass old_classes = classes_of(old_records);
  const KeyToClass new_classes = classes_of(new_records);

  // Measure the clean commit's occurrence counts: armed at infinity,
  // every point counts but none fires.
  std::map<fault::IoPoint, std::uint64_t> clean;
  {
    ScopedDir dir("sweep_clean");
    ResultStore store(dir.path(), {kShards});
    for (const StoreRecord& record : old_records) store.put(record);
    store.commit();
    for (const StoreRecord& record : new_records) store.put(record);
    fault::arm_io(fault::IoPoint::kWrite, ~std::uint64_t{0});
    EXPECT_EQ(store.commit(), kShards);
    for (const fault::IoPoint point :
         {fault::IoPoint::kWrite, fault::IoPoint::kFsync, fault::IoPoint::kRename}) {
      clean[point] = fault::io_occurrences(point);
      EXPECT_GT(clean[point], 0u) << static_cast<int>(point);
    }
    fault::disarm_io();
    EXPECT_FALSE(fault::io_fired());
  }

  for (const auto& [point, total] : clean) {
    for (std::uint64_t at = 0; at < total; ++at) {
      ScopedDir dir("sweep");
      ResultStore store(dir.path(), {kShards});
      for (const StoreRecord& record : old_records) store.put(record);
      ASSERT_EQ(store.commit(), kShards);
      for (const StoreRecord& record : new_records) store.put(record);

      fault::arm_io(point, at);
      EXPECT_THROW(store.commit(), StoreIoError)
          << "point " << static_cast<int>(point) << " at " << at;
      EXPECT_TRUE(fault::io_fired());
      fault::disarm_io();

      // Every shard file on disk decodes whole and is its complete old
      // slice or its complete new slice — never a torn mix, and the
      // crashed temp file is invisible.
      EXPECT_TRUE(fsck(dir.path()).clean);
      std::size_t old_files = 0, new_files = 0;
      for (const std::string& file : list_shard_files(dir.path())) {
        const ShardLoadResult loaded = decode_shard(read_file(file));
        ASSERT_TRUE(loaded.ok)
            << file << " torn by " << static_cast<int>(point) << "@" << at << ": "
            << loaded.error;
        ASSERT_FALSE(loaded.records.empty()) << file;
        bool all_old = true, all_new = true;
        for (const StoreRecord& record : loaded.records) {
          const std::string key = record.cache_key();
          ASSERT_TRUE(record.ok()) << file;
          all_old &= (*record.classified == old_classes.at(key));
          all_new &= (*record.classified == new_classes.at(key));
        }
        EXPECT_TRUE(all_old || all_new)
            << file << " mixes old and new records after "
            << static_cast<int>(point) << "@" << at;
        old_files += all_old && !all_new;
        new_files += all_new && !all_old;
      }

      // Retrying the failed commit verbatim finishes the remaining
      // shards; the store then reloads fully new.
      EXPECT_GT(store.commit(), 0u);
      ResultStore recovered(dir.path(), {kShards});
      const LoadReport report = recovered.load();
      EXPECT_TRUE(report.dirty.empty());
      KeyToClass recovered_classes;
      for (const auto& [key, record] : recovered.records()) {
        recovered_classes.emplace(key, *record.classified);
      }
      EXPECT_EQ(recovered_classes, new_classes);
      EXPECT_TRUE(fsck(dir.path()).clean);
    }
  }
}

TEST(StoreFaultSweep, LoadFaultMakesShardDirtyNotFatal) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "needs -DLCLPATH_FAULT_INJECTION=ON";
  }
  ScopedDir dir("load_fault");
  ResultStore store(dir.path(), {1});
  store.put(classified_record(catalog::coloring(3), ComplexityClass::kLogStar));
  store.commit();

  fault::arm_io(fault::IoPoint::kLoad, 0);
  ResultStore reloaded(dir.path(), {1});
  const LoadReport report = reloaded.load();
  fault::disarm_io();
  ASSERT_EQ(report.dirty.size(), 1u);
  EXPECT_EQ(reloaded.size(), 0u);

  // The bytes on disk were always fine; a clean retry sees them.
  ResultStore retried(dir.path(), {1});
  EXPECT_TRUE(retried.load().dirty.empty());
  EXPECT_EQ(retried.size(), 1u);
}

// ------------------------------------------------------------ hot reload

TEST(CatalogServer, ServesAndHotReloads) {
  ScopedDir dir("serve_reload");
  ResultStore store(dir.path(), {2});
  StoreRecord first = classified_record(catalog::coloring(3), ComplexityClass::kLogStar);
  store.put(first);
  store.commit();

  CatalogServer server(dir.path());
  ReloadReport report = server.poll();
  EXPECT_GE(report.reloaded, 1u);
  ASSERT_NE(server.snapshot()->find(first.cache_key()), nullptr);
  const std::uint64_t generation = server.generation();

  // An untouched directory publishes nothing new.
  report = server.poll();
  EXPECT_EQ(report.reloaded, 0u);
  EXPECT_EQ(server.generation(), generation);

  // A committed change is picked up and swapped in.
  StoreRecord second =
      classified_record(catalog::constant_output(), ComplexityClass::kConstant);
  store.put(second);
  store.commit();
  report = server.poll();
  EXPECT_GE(report.reloaded, 1u);
  EXPECT_GT(server.generation(), generation);
  EXPECT_NE(server.snapshot()->find(second.cache_key()), nullptr);
  EXPECT_NE(server.snapshot()->find(first.cache_key()), nullptr);
}

TEST(CatalogServer, RejectsCorruptedRewriteAndKeepsServing) {
  ScopedDir dir("serve_reject");
  ResultStore store(dir.path(), {1});
  StoreRecord record = classified_record(catalog::coloring(3), ComplexityClass::kLogStar);
  store.put(record);
  store.commit();
  const std::string shard_file = list_shard_files(dir.path()).at(0);

  CatalogServer server(dir.path());
  server.poll();
  ASSERT_NE(server.snapshot()->find(record.cache_key()), nullptr);
  const std::uint64_t generation = server.generation();

  // Corrupt the shard in place (a torn rewrite / bit rot). The next poll
  // must reject it — and keep answering from the last good snapshot.
  std::string bytes = read_file(shard_file);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  write_file(shard_file, bytes + "trailing garbage");
  const ReloadReport rejected = server.poll();
  EXPECT_GE(rejected.rejected, 1u);
  EXPECT_GE(server.rejections(), 1u);
  EXPECT_EQ(server.generation(), generation) << "a rejected shard was published";
  ASSERT_NE(server.snapshot()->find(record.cache_key()), nullptr)
      << "server stopped serving the last good state";

  // An untouched bad file is not re-counted forever...
  EXPECT_EQ(server.poll().rejected, 0u);

  // ...and a valid rewrite recovers, serving both old key and new.
  StoreRecord extra =
      classified_record(catalog::constant_output(), ComplexityClass::kConstant);
  write_file(shard_file, encode_shard({record, extra}));
  const ReloadReport recovered = server.poll();
  EXPECT_GE(recovered.reloaded, 1u);
  EXPECT_GT(server.generation(), generation);
  EXPECT_NE(server.snapshot()->find(record.cache_key()), nullptr);
  EXPECT_NE(server.snapshot()->find(extra.cache_key()), nullptr);
}

TEST(CatalogServer, RemovedShardLeavesTheSnapshot) {
  ScopedDir dir("serve_remove");
  ResultStore store(dir.path(), {1});
  StoreRecord record = classified_record(catalog::coloring(3), ComplexityClass::kLogStar);
  store.put(record);
  store.commit();

  CatalogServer server(dir.path());
  server.poll();
  ASSERT_EQ(server.snapshot()->size(), 1u);
  fs::remove(list_shard_files(dir.path()).at(0));
  const ReloadReport report = server.poll();
  EXPECT_EQ(report.removed, 1u);
  EXPECT_EQ(server.snapshot()->size(), 0u);
}

TEST(CatalogServer, InjectedLoadFaultIsRejectedLikeCorruption) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "needs -DLCLPATH_FAULT_INJECTION=ON";
  }
  ScopedDir dir("serve_load_fault");
  ResultStore store(dir.path(), {1});
  StoreRecord record = classified_record(catalog::coloring(3), ComplexityClass::kLogStar);
  store.put(record);
  store.commit();

  CatalogServer server(dir.path());
  server.poll();
  ASSERT_NE(server.snapshot()->find(record.cache_key()), nullptr);

  // A changed file whose read fails mid-reload: rejected, old state kept.
  StoreRecord extra =
      classified_record(catalog::constant_output(), ComplexityClass::kConstant);
  store.put(extra);
  store.commit();
  fault::arm_io(fault::IoPoint::kLoad, 0);
  const ReloadReport report = server.poll();
  fault::disarm_io();
  EXPECT_GE(report.rejected, 1u);
  ASSERT_NE(server.snapshot()->find(record.cache_key()), nullptr);
  EXPECT_EQ(server.snapshot()->find(extra.cache_key()), nullptr);

  // The transient fault clears: rewrite (stat changes) and poll again.
  store.put(classified_record(synthetic_problem(21), ComplexityClass::kLinear));
  store.commit();
  EXPECT_GE(server.poll().reloaded, 1u);
  EXPECT_NE(server.snapshot()->find(extra.cache_key()), nullptr);
}

TEST(CatalogServer, ConcurrentReadersSurviveSwaps) {
  // The RCU contract under fire: reader threads hold snapshots across
  // the poller's swaps (including rejected polls) and must always see a
  // complete, internally consistent map. The TSan CI job runs this.
  ScopedDir dir("serve_rcu");
  ResultStore store(dir.path(), {1});
  StoreRecord a = classified_record(catalog::coloring(3), ComplexityClass::kLogStar);
  StoreRecord b =
      classified_record(catalog::constant_output(), ComplexityClass::kConstant);
  store.put(a);
  store.commit();
  const std::string shard_file = list_shard_files(dir.path()).at(0);
  const std::string one_record = encode_shard({a});
  const std::string two_records = encode_shard({a, b});

  CatalogServer server(dir.path());
  server.poll();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const auto snapshot = server.snapshot();
        const std::size_t size = snapshot->size();
        EXPECT_TRUE(size == 1 || size == 2) << size;
        // `a` is in every published state; a held snapshot must answer
        // consistently even while the poller swaps underneath.
        EXPECT_NE(snapshot->find(a.cache_key()), nullptr);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int round = 0; round < 30; ++round) {
    write_file(shard_file, (round % 2) ? two_records : one_record);
    server.poll();
    if (round % 5 == 0) {
      // A corrupted interlude: rejected, readers keep their view.
      write_file(shard_file, "lclshard 1 totally bogus\n");
      server.poll();
    }
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(server.generation(), 0u);
}

}  // namespace
}  // namespace lclpath::store
