#include <gtest/gtest.h>

#include "decide/classifier.hpp"
#include "automata/solvability.hpp"
#include "hardness/undirected.hpp"
#include "test_util.hpp"

namespace lclpath {
namespace {

// Theorems 8 + 9: the decision procedure reproduces the textbook
// complexity of every catalog problem.
class CatalogClassification : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CatalogClassification, MatchesKnownClass) {
  const auto entries = catalog::validation_catalog();
  const CatalogEntry& entry = entries.at(GetParam());
  const ClassifiedProblem result = classify(entry.problem);
  EXPECT_EQ(result.complexity(), entry.expected)
      << result.summary() << " — " << entry.note;
}

INSTANTIATE_TEST_SUITE_P(AllCatalogEntries, CatalogClassification,
                         ::testing::Range<std::size_t>(
                             0, catalog::validation_catalog().size()),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           std::string name =
                               catalog::validation_catalog()[info.param].problem.name() +
                               "_" + std::to_string(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(Classifier, UndirectedColoringIsLogStar) {
  const PairwiseProblem p = catalog::coloring(3, Topology::kUndirectedCycle);
  const ClassifiedProblem result = classify(p);
  EXPECT_EQ(result.complexity(), ComplexityClass::kLogStar) << result.summary();
}

TEST(Classifier, UndirectedCopyInputIsConstant) {
  const PairwiseProblem p = catalog::copy_input(Topology::kUndirectedCycle);
  const ClassifiedProblem result = classify(p);
  EXPECT_EQ(result.complexity(), ComplexityClass::kConstant) << result.summary();
}

TEST(Classifier, UndirectedTwoColoringUnsolvable) {
  const PairwiseProblem p = catalog::two_coloring(Topology::kUndirectedCycle);
  const ClassifiedProblem result = classify(p);
  EXPECT_EQ(result.complexity(), ComplexityClass::kUnsolvable) << result.summary();
}

TEST(Classifier, RejectsAsymmetricUndirectedProblems) {
  // A problem whose edge constraint is direction-dependent cannot be an
  // undirected LCL.
  Alphabet in({"_"});
  Alphabet out({"x", "y"});
  PairwiseProblem p("asym", in, out, Topology::kUndirectedCycle);
  p.allow_node("_", "x");
  p.allow_node("_", "y");
  p.allow_edge("x", "y");  // but not y -> x
  EXPECT_THROW(classify(p), std::invalid_argument);
}

TEST(Classifier, SectionThreeSevenUndirectedLiftStructure) {
  // The Section 3.7 lift produces orientation-symmetric problems whose
  // solvability matches the source: consistently-counted instances embed
  // the original, and defective instances are rescued by the pinned
  // escape tags. (Full classification of lifted problems — including the
  // big path lifts the old pair-wise decide_linear_gap could never finish
  // — is pinned in lifted_regression_test.cpp; this test covers the
  // solvability layer.)
  for (PairwiseProblem source :
       {catalog::constant_output(), catalog::agreement(), catalog::two_coloring()}) {
    const PairwiseProblem lifted = hardness::lift_to_undirected(source);
    EXPECT_TRUE(lifted.is_orientation_symmetric()) << lifted.name();
    const Monoid monoid = Monoid::enumerate(TransitionSystem::build(lifted));
    const auto report = check_solvability(monoid, lifted.topology());
    // two_coloring is unsolvable on (consistent odd) cycles; the others
    // stay solvable everywhere thanks to the escape tags.
    const bool expect_solvable = source.name() != "2-coloring";
    EXPECT_EQ(report.solvable, expect_solvable) << lifted.name();
  }
}

TEST(Classifier, SectionThreeSevenCycleLiftKeepsAgreementLinear) {
  const PairwiseProblem path_problem = catalog::agreement(Topology::kDirectedPath);
  const PairwiseProblem lifted = hardness::lift_path_to_cycle(path_problem);
  EXPECT_EQ(lifted.topology(), Topology::kDirectedCycle);
  const ClassifiedProblem result = classify(lifted);
  EXPECT_EQ(result.complexity(), ComplexityClass::kLinear) << result.summary();
}

TEST(Classifier, CertificatesArePopulated) {
  const ClassifiedProblem logstar = classify(catalog::coloring(3));
  EXPECT_TRUE(logstar.linear_certificate().feasible);
  EXPECT_FALSE(logstar.const_certificate().feasible);
  EXPECT_GT(logstar.monoid_size(), 0u);

  const ClassifiedProblem constant = classify(catalog::copy_input());
  EXPECT_TRUE(constant.linear_certificate().feasible);
  EXPECT_TRUE(constant.const_certificate().feasible);

  const ClassifiedProblem linear = classify(catalog::agreement());
  EXPECT_FALSE(linear.linear_certificate().feasible);
}

TEST(Classifier, UnsolvableRefusesToSynthesize) {
  const ClassifiedProblem result = classify(catalog::two_coloring());
  EXPECT_EQ(result.complexity(), ComplexityClass::kUnsolvable);
  EXPECT_THROW((void)result.synthesize(), std::logic_error);
}

TEST(Classifier, MonoidBudgetIsEnforced) {
  EXPECT_THROW(classify(catalog::agreement(), /*max_monoid=*/3), std::runtime_error);
}

}  // namespace
}  // namespace lclpath
