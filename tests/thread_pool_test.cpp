#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace lclpath {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter]() { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.submit([]() { return 7; });
  EXPECT_EQ(good.get(), 7);
  try {
    bad.get();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.submit([]() { return 41 + 1; }).get(), 42);
}

// Stress: far more tasks than workers, with tasks themselves submitting
// nothing but churning the queue from many producers.
TEST(ThreadPool, StressManyTasksFewThreads) {
  ThreadPool pool(2);
  constexpr int kTasks = 2000;
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 1; i <= kTasks; ++i) {
    futures.push_back(pool.submit([&sum, i]() { sum += i; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(sum.load(), static_cast<long>(kTasks) * (kTasks + 1) / 2);
}

TEST(ThreadPool, TasksRunConcurrentlyWhenThreadsAllow) {
  ThreadPool pool(2);
  // Two tasks that each wait for the other to start: completes only if
  // both run at the same time.
  std::promise<void> first_started;
  std::shared_future<void> first_started_future(first_started.get_future());
  auto a = pool.submit([&first_started]() { first_started.set_value(); });
  auto b = pool.submit([first_started_future]() {
    ASSERT_EQ(first_started_future.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
  });
  a.get();
  b.get();
}

// The destructor drains the queue: tasks enqueued after an earlier task
// threw (while the first task blocks the single worker) must still run,
// and every future must resolve — the old clear-on-destruction behavior
// abandoned them as broken promises.
TEST(ThreadPool, DestructionDrainsQueuedTasksAfterAThrowingTask) {
  std::promise<void> release_first;
  std::shared_future<void> release(release_first.get_future());
  std::atomic<int> ran{0};
  std::future<void> blocker;
  std::future<int> thrower;
  std::vector<std::future<int>> later;
  {
    ThreadPool pool(1);
    blocker = pool.submit([release]() { release.wait(); });
    thrower = pool.submit([&ran]() -> int {
      ++ran;
      throw std::runtime_error("task failed");
    });
    for (int i = 0; i < 8; ++i) {
      later.push_back(pool.submit([&ran, i]() {
        ++ran;
        return i;
      }));
    }
    // Everything past the blocker is still queued when the destructor runs.
    release_first.set_value();
  }  // ~ThreadPool: must execute the throwing task AND all 8 queued after it
  blocker.get();
  EXPECT_THROW(thrower.get(), std::runtime_error);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(later[static_cast<std::size_t>(i)].get(), i);  // not broken_promise
  }
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPool, DestructionJoinsRunningTasks) {
  std::atomic<bool> started{false};
  std::atomic<bool> finished{false};
  {
    ThreadPool pool(1);
    pool.submit([&started, &finished]() {
      started = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      finished = true;
    });
    while (!started.load()) std::this_thread::yield();
  }  // destructor must wait for the in-flight task
  EXPECT_TRUE(finished.load());
}

}  // namespace
}  // namespace lclpath
