// The chunked simulation engine's contract (simulator.hpp): for every
// thread count and chunk size — including chunk_size >= n and chunk_size
// < radius — simulate() is bit-identical to simulate_reference() (same
// outputs, same verdict down to failed_at and reason, same exceptions),
// the streaming chunk verifier agrees exactly with whole-word
// verify_pairwise, the memoized full-view regime matches the per-node
// gather baseline, and adversarial (bit-reversed) ID instances round-trip
// validate() while actually being worst-case for Cole–Vishkin.
//
// Every TEST here is prefixed SimulationEngine / StreamingVerify /
// AdversarialIds; the SimulationEngine lazy-certificate hammers run in
// the TSan CI job (segment workers sharing one lazy linear-gap
// certificate).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "decide/classifier.hpp"
#include "lcl/catalog.hpp"
#include "local/cole_vishkin.hpp"
#include "local/simulator.hpp"
#include "test_util.hpp"

namespace lclpath {
namespace {

constexpr Topology kAllTopologies[] = {
    Topology::kDirectedPath, Topology::kDirectedCycle, Topology::kUndirectedPath,
    Topology::kUndirectedCycle};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// A deterministic function of the *entire* view content (inputs, IDs,
/// center, boundary flags, n). Any divergence between the sliding-window
/// presentation and extract_view — one element, one flag, a center off by
/// one — changes the output label, which makes this the sharpest possible
/// probe for presentation bit-identity.
class ViewHashAlgorithm final : public LocalAlgorithm {
 public:
  ViewHashAlgorithm(std::size_t radius, std::size_t num_outputs)
      : radius_(radius), num_outputs_(num_outputs) {}
  std::string name() const override { return "view-hash"; }
  std::size_t radius(std::size_t) const override { return radius_; }
  Label run(const View& view) const override {
    std::uint64_t h = 0xdeadbeefcafef00dull;
    h = mix(h, view.n);
    h = mix(h, view.center);
    h = mix(h, view.sees_left_end ? 1 : 0);
    h = mix(h, view.sees_right_end ? 2 : 0);
    h = mix(h, static_cast<std::uint64_t>(view.topology));
    for (Label in : view.inputs) h = mix(h, in);
    for (NodeId id : view.ids) h = mix(h, id);
    return static_cast<Label>(h % num_outputs_);
  }

 private:
  std::size_t radius_;
  std::size_t num_outputs_;
};

void ExpectSameResult(const SimulationResult& got, const SimulationResult& want,
                      const std::string& what) {
  EXPECT_EQ(got.outputs, want.outputs) << what;
  EXPECT_EQ(got.radius, want.radius) << what;
  EXPECT_EQ(got.verdict.ok, want.verdict.ok) << what;
  EXPECT_EQ(got.verdict.failed_at, want.verdict.failed_at) << what;
  EXPECT_EQ(got.verdict.reason, want.verdict.reason) << what;
}

/// Sweep every engine configuration against the serial reference on one
/// instance.
void SweepConfigs(const LocalAlgorithm& algorithm, const PairwiseProblem& problem,
                  const Instance& instance, const std::string& what) {
  const SimulationResult want = simulate_reference(algorithm, problem, instance);
  const std::size_t n = instance.size();
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                              std::size_t{64}, std::size_t{0}}) {
      SimulationOptions options;
      options.threads = threads;
      options.chunk_size = chunk;
      const SimulationResult got = simulate(algorithm, problem, instance, options);
      ExpectSameResult(got, want,
                       what + " n=" + std::to_string(n) + " threads=" +
                           std::to_string(threads) + " chunk=" + std::to_string(chunk));
    }
  }
}

TEST(SimulationEngine, BitIdenticalToReferenceAcrossConfigs) {
  Rng rng(4242);
  for (Topology topology : kAllTopologies) {
    const PairwiseProblem problem = catalog::coloring(3, topology);
    for (std::size_t radius : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                               std::size_t{17}}) {
      const ViewHashAlgorithm algorithm(radius, problem.num_outputs());
      for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                            std::size_t{5}, std::size_t{9}, std::size_t{30},
                            std::size_t{64}}) {
        const Instance instance = random_instance(topology, n, problem.num_inputs(), rng);
        SweepConfigs(algorithm, problem, instance,
                     to_string(topology) + " r=" + std::to_string(radius));
      }
    }
  }
}

TEST(SimulationEngine, BitIdenticalOnAdversarialIds) {
  Rng rng(777);
  for (Topology topology : kAllTopologies) {
    const PairwiseProblem problem = catalog::coloring(3, topology);
    const ViewHashAlgorithm algorithm(5, problem.num_outputs());
    for (std::size_t n : {std::size_t{4}, std::size_t{13}, std::size_t{47}}) {
      const Instance instance =
          adversarial_instance(topology, n, problem.num_inputs(), rng);
      SweepConfigs(algorithm, problem, instance,
                   "adversarial " + std::string(to_string(topology)));
    }
  }
}

TEST(SimulationEngine, GatherAllMemoMatchesReference) {
  Rng rng(99);
  for (Topology topology : kAllTopologies) {
    const PairwiseProblem problem = catalog::coloring(3, topology);
    const GatherAllAlgorithm algorithm(problem);
    for (std::size_t n : {std::size_t{2}, std::size_t{3}, std::size_t{5},
                          std::size_t{9}, std::size_t{24}}) {
      const Instance instance = random_instance(topology, n, problem.num_inputs(), rng);
      const SimulationResult want = simulate_reference(algorithm, problem, instance);
      ASSERT_TRUE(want.verdict.ok) << want.verdict.reason;
      // Memoized canonical solve (the default).
      const SimulationResult memo = simulate(algorithm, problem, instance);
      ExpectSameResult(memo, want, "memo " + std::string(to_string(topology)));
      // Honest per-node gather (memo disabled) through the chunked engine.
      SimulationOptions honest;
      honest.full_view_memo = false;
      honest.threads = 2;
      honest.chunk_size = 4;
      const SimulationResult per_node = simulate(algorithm, problem, instance, honest);
      ExpectSameResult(per_node, want, "honest " + std::string(to_string(topology)));
    }
  }
}

TEST(SimulationEngine, UnsolvableInstanceThrowsLikeReference) {
  Rng rng(7);
  // 2-coloring an odd cycle is unsolvable; the engine's memoized solve,
  // the honest per-node path and the serial reference must all throw the
  // same runtime_error.
  const PairwiseProblem problem = catalog::two_coloring(Topology::kDirectedCycle);
  const GatherAllAlgorithm algorithm(problem);
  const Instance instance = random_instance(Topology::kDirectedCycle, 5,
                                            problem.num_inputs(), rng);
  EXPECT_THROW(simulate_reference(algorithm, problem, instance), std::runtime_error);
  EXPECT_THROW(simulate(algorithm, problem, instance), std::runtime_error);
  SimulationOptions honest;
  honest.full_view_memo = false;
  EXPECT_THROW(simulate(algorithm, problem, instance, honest), std::runtime_error);
}

TEST(SimulationEngine, KeepOutputsFalsePreservesVerdict) {
  Rng rng(31337);
  for (Topology topology : kAllTopologies) {
    const PairwiseProblem problem = catalog::coloring(3, topology);
    // The hash algorithm colors essentially at random, so small instances
    // exercise both passing and failing verdicts.
    const ViewHashAlgorithm algorithm(2, problem.num_outputs());
    for (std::size_t n : {std::size_t{3}, std::size_t{8}, std::size_t{21}}) {
      const Instance instance = random_instance(topology, n, problem.num_inputs(), rng);
      const SimulationResult want = simulate_reference(algorithm, problem, instance);
      SimulationOptions options;
      options.keep_outputs = false;
      options.threads = 2;
      options.chunk_size = 5;
      const SimulationResult got = simulate(algorithm, problem, instance, options);
      EXPECT_TRUE(got.outputs.empty());
      EXPECT_EQ(got.verdict.ok, want.verdict.ok);
      EXPECT_EQ(got.verdict.failed_at, want.verdict.failed_at);
      EXPECT_EQ(got.verdict.reason, want.verdict.reason);
    }
  }
}

TEST(SimulationEngine, ReportsPlanAndAutoScalesDown) {
  Rng rng(5);
  const PairwiseProblem problem = catalog::coloring(3, Topology::kDirectedCycle);
  const ViewHashAlgorithm algorithm(1, problem.num_outputs());
  const Instance instance = random_instance(Topology::kDirectedCycle, 100,
                                            problem.num_inputs(), rng);
  // Auto options: a 100-node instance stays serial.
  const SimulationResult automatic = simulate(algorithm, problem, instance);
  EXPECT_EQ(automatic.threads_used, 1u);
  // Explicit options are honored exactly.
  SimulationOptions options;
  options.threads = 5;
  options.chunk_size = 7;
  const SimulationResult explicit_run = simulate(algorithm, problem, instance, options);
  EXPECT_EQ(explicit_run.chunks, 15u);  // ceil(100 / 7)
  EXPECT_EQ(explicit_run.threads_used, 5u);
}

// ------------------------------------------------------------------------
// Synthesized algorithms on the chunked engine: structured regime
// bit-identity, and the shared-lazy-certificate hammer for TSan.
// ------------------------------------------------------------------------

void ExpectSynthesizedChunkedMatches(const PairwiseProblem& problem,
                                     CertificateMode mode, std::uint64_t seed) {
  Rng rng(seed);
  ClassifyOptions classify_options;
  classify_options.certificate_mode = mode;
  const ClassifiedProblem result = classify(problem, classify_options);
  ASSERT_EQ(result.complexity(), ComplexityClass::kLogStar) << result.summary();
  const auto algorithm = result.synthesize();
  const std::size_t r = algorithm->radius(1 << 20);
  const std::size_t n = 2 * r + 33;  // just inside the structured regime
  const Instance instance = random_instance(problem.topology(), n,
                                            problem.num_inputs(), rng);
  const SimulationResult want = simulate_reference(*algorithm, problem, instance);
  ASSERT_TRUE(want.verdict.ok) << want.verdict.reason;
  // Many small chunks across several workers: every worker slides its own
  // window while all of them resolve values through the one shared
  // (lazily materialized) certificate.
  SimulationOptions options;
  options.threads = 4;
  options.chunk_size = r / 3 + 7;  // chunk_size < radius: halo spans chunks
  const SimulationResult got = simulate(*algorithm, problem, instance, options);
  ExpectSameResult(got, want, problem.name() + " chunked");
}

TEST(SimulationEngine, SynthesizedBitIdenticalDirectedPath) {
  ExpectSynthesizedChunkedMatches(catalog::coloring(3, Topology::kDirectedPath),
                                  CertificateMode::kAuto, 11);
}

TEST(SimulationEngine, SynthesizedBitIdenticalUndirectedPath) {
  ExpectSynthesizedChunkedMatches(catalog::coloring(3, Topology::kUndirectedPath),
                                  CertificateMode::kAuto, 12);
}

TEST(SimulationEngine, SharedLazyCertificateHammerDirectedCycle) {
  ExpectSynthesizedChunkedMatches(catalog::coloring(3, Topology::kDirectedCycle),
                                  CertificateMode::kLazy, 13);
}

TEST(SimulationEngine, SharedLazyCertificateHammerUndirectedCycle) {
  ExpectSynthesizedChunkedMatches(catalog::coloring(3, Topology::kUndirectedCycle),
                                  CertificateMode::kLazy, 14);
}

// ------------------------------------------------------------------------
// Streaming verification vs whole-word verify_pairwise.
// ------------------------------------------------------------------------

void ExpectChunkedVerifyAgrees(const PairwiseProblem& problem, const Word& inputs,
                               const Word& outputs) {
  const VerifyResult want = verify_pairwise(problem, inputs, outputs);
  const std::size_t n = inputs.size();
  for (std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                            std::size_t{5}, n, 2 * n}) {
    const VerifyResult got = verify_pairwise_chunked(problem, inputs, outputs, chunk);
    EXPECT_EQ(got.ok, want.ok) << problem.name() << " chunk=" << chunk;
    EXPECT_EQ(got.failed_at, want.failed_at) << problem.name() << " chunk=" << chunk;
    EXPECT_EQ(got.reason, want.reason) << problem.name() << " chunk=" << chunk;
  }
}

TEST(StreamingVerify, AgreesWithWholeWordOnRandomInstances) {
  Rng rng(2024);
  std::vector<PairwiseProblem> problems;
  for (Topology topology : kAllTopologies) {
    problems.push_back(catalog::coloring(3, topology));
    problems.push_back(catalog::copy_input(topology));
  }
  problems.push_back(testing::automata_fixture());
  for (const PairwiseProblem& problem : problems) {
    for (std::size_t n = 1; n <= 12; ++n) {
      for (int rep = 0; rep < 8; ++rep) {
        Word inputs, outputs;
        for (std::size_t v = 0; v < n; ++v) {
          inputs.push_back(static_cast<Label>(rng.next_below(problem.num_inputs())));
          outputs.push_back(static_cast<Label>(rng.next_below(problem.num_outputs())));
        }
        ExpectChunkedVerifyAgrees(problem, inputs, outputs);
      }
    }
  }
}

TEST(StreamingVerify, NodePhaseBeatsEarlierEdgeFailure) {
  // verify_pairwise checks *all* nodes before any edge, so a node failure
  // at a high index must beat an edge failure at a lower one — the
  // subtlest property the chunk merge has to preserve.
  Alphabet in({"0", "1"});
  Alphabet out({"o0", "o1"});
  PairwiseProblem problem("ordered", in, out, Topology::kDirectedPath);
  problem.allow_node("0", "o0");
  problem.allow_node("1", "o1");
  problem.allow_edge("o0", "o0");
  problem.allow_edge("o0", "o1");
  problem.allow_edge("o1", "o1");  // (o1, o0) forbidden
  const Word inputs = {1, 0, 1};
  const Word outputs = {1, 0, 0};  // edge o1->o0 fails at 1; node fails at 2
  const VerifyResult want = verify_pairwise(problem, inputs, outputs);
  ASSERT_FALSE(want.ok);
  EXPECT_EQ(want.failed_at, 2u);
  EXPECT_NE(want.reason.find("C_node"), std::string::npos);
  ExpectChunkedVerifyAgrees(problem, inputs, outputs);
}

TEST(StreamingVerify, SeamWrapAndPathEndFailures) {
  // Wrap-edge failure on a cycle: located at node 0, phase after all
  // internal edges.
  const PairwiseProblem cycle3 = catalog::coloring(3, Topology::kDirectedCycle);
  ExpectChunkedVerifyAgrees(cycle3, {0, 0, 0}, {0, 1, 0});  // wrap c0->c0
  // Degenerate one-node cycle: the wrap edge is the self-loop.
  ExpectChunkedVerifyAgrees(cycle3, {0}, {1});
  // Path-end mask: a problem that forbids one output at the last node.
  Alphabet in({"_"});
  Alphabet out({"a", "b"});
  PairwiseProblem ended("ended", in, out, Topology::kDirectedPath);
  ended.allow_node("_", "a");
  ended.allow_node("_", "b");
  for (Label x = 0; x < 2; ++x)
    for (Label y = 0; y < 2; ++y) ended.allow_edge(x, y);
  ended.forbid_last(1);
  const VerifyResult last = verify_pairwise(ended, {0, 0, 0}, {0, 0, 1});
  ASSERT_FALSE(last.ok);
  EXPECT_EQ(last.failed_at, 2u);
  ExpectChunkedVerifyAgrees(ended, {0, 0, 0}, {0, 0, 1});
}

// ------------------------------------------------------------------------
// Adversarial (bit-reversed) IDs.
// ------------------------------------------------------------------------

TEST(AdversarialIds, RoundTripValidate) {
  Rng rng(55);
  for (Topology topology : {Topology::kDirectedCycle, Topology::kUndirectedPath}) {
    Instance instance = adversarial_instance(topology, 257, 2, rng);
    EXPECT_NO_THROW(instance.validate());  // sparse-ID sort path
    // Forced duplicate still detected on the sparse path.
    instance.ids[200] = instance.ids[3];
    EXPECT_THROW(instance.validate(), std::invalid_argument);
  }
  // Compact path still detects duplicates too.
  Instance compact = make_instance(Topology::kDirectedCycle, Word(64, 0));
  compact.ids[10] = compact.ids[40];
  EXPECT_THROW(compact.validate(), std::invalid_argument);
}

TEST(AdversarialIds, SaltPreservesDifferences) {
  const auto plain = adversarial_ids(32, 0);
  const auto salted = adversarial_ids(32, 0x123456789abcdef0ull);
  for (std::size_t v = 0; v + 1 < plain.size(); ++v) {
    EXPECT_EQ(plain[v] ^ plain[v + 1], salted[v] ^ salted[v + 1]);
  }
}

TEST(AdversarialIds, WorstCaseForColeVishkin) {
  const std::size_t n = 1024;
  const auto adversarial = adversarial_ids(n, 9);
  std::uint64_t adversarial_max = 0;
  for (std::size_t v = 0; v + 1 < n; ++v) {
    adversarial_max = std::max(adversarial_max,
                               cv_step(adversarial[v], adversarial[v + 1]));
  }
  std::uint64_t sequential_max = 0;
  for (std::size_t v = 0; v + 1 < n; ++v) {
    sequential_max = std::max(sequential_max, cv_step(v, v + 1));
  }
  // Sequential IDs differ in a low bit (<= log2 n), so one halving step
  // already collapses them to small colors; bit-reversed IDs differ at the
  // top of the word, pinning the first step near its 2*63+1 maximum.
  EXPECT_LE(sequential_max, 2 * 10 + 1);
  EXPECT_GE(adversarial_max, 2 * 60);
}

}  // namespace
}  // namespace lclpath
