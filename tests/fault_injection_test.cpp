// Fault-injection sweep over the cancellation checkpoints.
//
// With LCLPATH_FAULT_INJECTION compiled in, fault::arm() makes exactly one
// ExecutionBudget::checkpoint() throw a scripted failure. The sweep runs a
// representative workload, measures its clean checkpoint count, then
// re-runs it with the fault armed at a spread of indices — every armed run
// must surface a structured BatchError (never crash, never hang), leave
// sibling results bit-identical to the clean run, and leave zero poisoned
// entries in the Monoid/Batch caches. Without the option every sweep
// GTEST_SKIPs; the concurrent-cancellation test at the bottom runs in any
// build and is what the TSan CI job exercises.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "automata/monoid.hpp"
#include "core/cancel.hpp"
#include "core/fault_injection.hpp"
#include "decide/batch.hpp"
#include "hardness/undirected.hpp"
#include "lcl/catalog.hpp"

namespace lclpath {
namespace {

// Workloads chosen so the sweep crosses every instrumented loop family:
// monoid BFS + factorized linear-gap (default engine), the pairwise
// engine's domain/arc-consistency/backtracking loops, and const-gap /
// feasibility via the cheap catalog problems.
std::vector<PairwiseProblem> sweep_problems() {
  return {catalog::coloring(3),
          catalog::agreement(),
          hardness::lift_to_undirected(catalog::two_coloring())};
}

// Caps the sweep cost: when a clean run hits many checkpoints, sample the
// index space with a fixed stride instead of sweeping every index.
std::vector<std::uint64_t> sample_indices(std::uint64_t total) {
  std::vector<std::uint64_t> indices;
  if (total == 0) return indices;
  constexpr std::uint64_t kMaxArms = 64;
  const std::uint64_t stride = std::max<std::uint64_t>(1, total / kMaxArms);
  for (std::uint64_t at = 0; at < total; at += stride) indices.push_back(at);
  indices.push_back(total - 1);  // the last checkpoint is a boundary case
  return indices;
}

struct CleanRun {
  std::vector<BatchEntry> entries;
  std::uint64_t checkpoints = 0;
};

CleanRun run_clean(const std::vector<PairwiseProblem>& problems,
                   const BatchOptions& options) {
  // Armed "at infinity": counts checkpoints without ever firing. Fresh
  // caches mirror the armed runs so the checkpoint counts line up.
  MonoidCache monoids;
  BatchCache cache;
  BatchOptions clean_options = options;
  clean_options.classify.monoid_cache = &monoids;
  clean_options.cache = &cache;
  fault::arm(fault::Kind::kCancel, ~std::uint64_t{0});
  CleanRun clean;
  clean.entries = classify_batch(problems, clean_options);
  clean.checkpoints = fault::checkpoints();
  fault::disarm();
  for (const auto& entry : clean.entries) {
    EXPECT_TRUE(entry.ok()) << entry.error();
  }
  return clean;
}

void expect_entries_match(const std::vector<BatchEntry>& got,
                          const std::vector<BatchEntry>& want,
                          std::size_t skip_ok_check_if_failed) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (i == skip_ok_check_if_failed && !got[i].ok()) continue;
    ASSERT_TRUE(got[i].ok()) << got[i].error();
    EXPECT_EQ(got[i].classified().complexity(), want[i].classified().complexity());
    EXPECT_EQ(got[i].classified().summary(), want[i].classified().summary());
    EXPECT_EQ(got[i].classified().monoid_size(), want[i].classified().monoid_size());
  }
}

void sweep(fault::Kind kind, BatchErrorKind expected_kind) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "build with -DLCLPATH_FAULT_INJECTION=ON to run the sweep";
  }
  const std::vector<PairwiseProblem> problems = sweep_problems();
  // checkpoint() only runs (and only feeds the fault harness) when a
  // budget is installed; a limitless one keeps the clean run clean.
  ExecutionBudget limitless;
  BatchOptions options;
  options.num_threads = 1;  // deterministic checkpoint ordering for the sweep
  options.classify.budget = &limitless;
  const CleanRun clean = run_clean(problems, options);
  ASSERT_GT(clean.checkpoints, 0u)
      << "workload never hit a checkpoint — instrumentation regressed";

  for (const std::uint64_t at : sample_indices(clean.checkpoints)) {
    MonoidCache monoids;
    BatchCache cache;
    BatchOptions armed_options = options;
    armed_options.classify.monoid_cache = &monoids;
    armed_options.cache = &cache;
    fault::arm(kind, at);
    const auto entries = classify_batch(problems, armed_options);
    fault::disarm();

    // Exactly one slot failed (the one whose checkpoint fired), with the
    // structured kind; every other slot matches the clean run exactly.
    std::size_t failed_at = entries.size();
    std::size_t failures = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      ASSERT_NE(entries[i].outcome, nullptr) << "missing outcome at k=" << at;
      if (!entries[i].ok()) {
        failed_at = i;
        ++failures;
        EXPECT_EQ(entries[i].error_kind(), expected_kind)
            << "k=" << at << ": " << entries[i].error();
      }
    }
    ASSERT_TRUE(fault::fired()) << "armed checkpoint k=" << at << " never ran";
    ASSERT_EQ(failures, 1u) << "k=" << at;
    expect_entries_match(entries, clean.entries, failed_at);

    // No poisoned cache entries: the batch cache holds exactly the ok
    // slots, and re-running with the same caches must reproduce the clean
    // results (a stale half-built monoid would corrupt them).
    EXPECT_EQ(cache.size(), entries.size() - failures) << "k=" << at;
    const auto healed = classify_batch(problems, armed_options);
    expect_entries_match(healed, clean.entries, entries.size());
    EXPECT_TRUE(healed[failed_at].ok()) << healed[failed_at].error();
    EXPECT_FALSE(healed[failed_at].from_cache)
        << "k=" << at << ": failed slot was served from a poisoned cache";
  }
}

TEST(FaultInjection, CancelSweepUnwindsCleanlyEverywhere) {
  sweep(fault::Kind::kCancel, BatchErrorKind::kCancelled);
}

TEST(FaultInjection, BadAllocSweepUnwindsCleanlyEverywhere) {
  sweep(fault::Kind::kBadAlloc, BatchErrorKind::kBudget);
}

// Single-problem sweep through classify() directly (no batch machinery):
// the CancelledError must propagate typed, and a shared MonoidCache must
// end the run empty — never holding the aborted problem's monoid.
TEST(FaultInjection, ClassifySweepLeavesMonoidCacheEmpty) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "build with -DLCLPATH_FAULT_INJECTION=ON to run the sweep";
  }
  const PairwiseProblem problem = hardness::lift_to_undirected(catalog::two_coloring());
  ExecutionBudget limitless;
  {
    MonoidCache monoids;
    ClassifyOptions options;
    options.budget = &limitless;
    options.monoid_cache = &monoids;
    fault::arm(fault::Kind::kCancel, ~std::uint64_t{0});
    (void)classify(problem, options);
    fault::disarm();
  }
  const std::uint64_t total = fault::checkpoints();
  ASSERT_GT(total, 0u);

  for (const std::uint64_t at : sample_indices(total)) {
    MonoidCache monoids;
    ClassifyOptions options;
    options.budget = &limitless;
    options.monoid_cache = &monoids;
    fault::arm(fault::Kind::kCancel, at);
    try {
      (void)classify(problem, options);
    } catch (const CancelledError& e) {
      EXPECT_EQ(e.reason(), CancelReason::kCancelled) << "k=" << at;
    }
    fault::disarm();
    EXPECT_EQ(monoids.size(), 0u)
        << "k=" << at << ": cancelled classify published a monoid";
  }
}

// Runs in every build (no fault harness needed); under the TSan CI job
// this is the cancellation data-race check: one thread flips the budget
// while pool workers hammer checkpoint() on it.
TEST(FaultInjection, ConcurrentCancellationIsRaceFree) {
  for (int round = 0; round < 3; ++round) {
    ExecutionBudget budget;
    std::vector<PairwiseProblem> problems(
        4, hardness::lift_to_undirected(catalog::two_coloring()));
    BatchOptions options;
    options.num_threads = 2;
    options.dedup = false;
    options.classify.budget = &budget;
    std::thread canceller([&budget, round]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(5 * round));
      budget.cancel();
    });
    const auto entries = classify_batch(problems, options);
    canceller.join();
    for (const auto& entry : entries) {
      ASSERT_NE(entry.outcome, nullptr);
      if (!entry.ok()) {
        EXPECT_EQ(entry.error_kind(), BatchErrorKind::kCancelled);
      }
    }
  }
}

}  // namespace
}  // namespace lclpath
