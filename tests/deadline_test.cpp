// Deadline-aware classification: the cooperative cancellation runtime
// (core/cancel.hpp) end to end through classify_batch.
//
// The acceptance scenario: one pathological problem (the undirected lift
// of shift-input, decided by the pairwise engine — minutes of work
// unbounded) rides in a batch with fast siblings under a per-problem
// deadline. The pathological slot must time out promptly with a
// structured kTimeout error, the siblings must classify bit-identically
// to a deadline-free run, and no cache may retain anything from the
// timed-out problem.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "automata/monoid.hpp"
#include "core/cancel.hpp"
#include "decide/batch.hpp"
#include "hardness/study.hpp"
#include "hardness/undirected.hpp"
#include "lcl/catalog.hpp"
#include "lcl/serialize.hpp"

namespace lclpath {
namespace {

// Wall-clock bound for "timed out promptly". The strict 2x-deadline gate
// runs in Release CI (lclpath_cli deadline-suite); under sanitizers every
// clock inflates, so the unit test only pins the order of magnitude
// against the minutes-long unbounded runtime.
constexpr auto kPromptBound = std::chrono::milliseconds(20000);

PairwiseProblem pathological_problem() {
  return hardness::lift_to_undirected(catalog::shift_input());
}

std::vector<PairwiseProblem> sibling_problems() {
  return {catalog::coloring(3),
          catalog::constant_output(),
          catalog::maximal_independent_set(),
          catalog::agreement(),
          catalog::prefix_parity(),
          catalog::coloring(3, Topology::kDirectedPath),
          catalog::two_coloring()};
}

TEST(ExecutionBudget, DeadlineTripsAndReportsReason) {
  ExecutionBudget budget;
  budget.set_timeout(std::chrono::milliseconds(0));
  try {
    budget.check();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kDeadline);
  }
}

TEST(ExecutionBudget, CancellationTripsEvenWithoutDeadline) {
  ExecutionBudget budget;
  budget.check();  // no limits: fine
  budget.cancel();
  try {
    budget.check();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kCancelled);
  }
}

TEST(ExecutionBudget, MemoryCeilingTrips) {
  ExecutionBudget budget;
  budget.set_memory_limit(1024);
  budget.charge_memory(512);
  EXPECT_EQ(budget.memory_charged(), 512u);
  try {
    budget.charge_memory(1024);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kMemory);
  }
}

TEST(ExecutionBudget, ParentLimitsApplyThroughTheChain) {
  ExecutionBudget parent;
  parent.cancel();
  ExecutionBudget child;
  child.set_parent(&parent);
  EXPECT_THROW(child.check(), CancelledError);
}

TEST(ExecutionBudget, CheckpointEventuallyObservesTheDeadline) {
  ExecutionBudget budget;
  budget.set_timeout(std::chrono::milliseconds(0));
  // The amortized checkpoint reads the clock every kCheckpointStride
  // ticks, so within two strides it must throw.
  EXPECT_THROW(
      {
        for (std::uint32_t i = 0; i < 2 * ExecutionBudget::kCheckpointStride; ++i) {
          budget.checkpoint();
        }
      },
      CancelledError);
}

TEST(ExecutionBudget, NullBudgetHelpersAreNoOps) {
  budget_checkpoint(nullptr);
  budget_check(nullptr);
  budget_charge_memory(nullptr, 1 << 30);
}

// A classify() with an expired deadline throws CancelledError directly.
TEST(Deadline, ClassifyThrowsCancelledErrorOnDeadline) {
  ExecutionBudget budget;
  budget.set_timeout(std::chrono::milliseconds(0));
  ClassifyOptions options;
  options.budget = &budget;
  try {
    classify(pathological_problem(), options);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kDeadline);
  }
}

// A cancelled classify must leave the shared MonoidCache without the
// aborted problem's skeleton (a half-used monoid must not be published by
// a run that failed).
TEST(Deadline, TimedOutClassifyLeavesMonoidCacheClean) {
  MonoidCache monoids;
  ExecutionBudget budget;
  budget.set_timeout(std::chrono::milliseconds(50));
  ClassifyOptions options;
  options.budget = &budget;
  options.monoid_cache = &monoids;
  options.linear_engine = LinearGapEngine::kPairwise;
  EXPECT_THROW(classify(pathological_problem(), options), CancelledError);
  EXPECT_EQ(monoids.size(), 0u);
}

// The acceptance scenario.
TEST(Deadline, PathologicalProblemTimesOutWithoutDisturbingSiblings) {
  std::vector<PairwiseProblem> problems = sibling_problems();
  const std::size_t pathological_at = 3;
  problems.insert(problems.begin() + pathological_at, pathological_problem());
  ASSERT_EQ(problems.size(), 8u);

  // Reference: the siblings classified with no deadline at all. Its wall
  // clock also calibrates the deadline — 100 ms in a Release build, but
  // sanitizer builds run ~10x slower and a fixed deadline would trip on
  // the legitimate siblings; the pathological problem is minutes of work
  // on any build, so a scaled deadline still times it out.
  std::vector<PairwiseProblem> siblings = sibling_problems();
  BatchOptions free_options;
  free_options.classify.linear_engine = LinearGapEngine::kPairwise;
  const auto reference_start = std::chrono::steady_clock::now();
  const auto reference = classify_batch(siblings, free_options);
  const auto reference_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - reference_start)
                                .count();
  for (const auto& entry : reference) ASSERT_TRUE(entry.ok()) << entry.error();

  BatchCache cache;
  BatchOptions options;
  options.classify.linear_engine = LinearGapEngine::kPairwise;
  options.problem_deadline_ms =
      std::max<std::uint64_t>(100, static_cast<std::uint64_t>(5 * reference_ms));
  options.cache = &cache;
  const auto start = std::chrono::steady_clock::now();
  const auto batch = classify_batch(problems, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_EQ(batch.size(), 8u);

  // The pathological slot: structured timeout, promptly.
  EXPECT_FALSE(batch[pathological_at].ok());
  EXPECT_EQ(batch[pathological_at].error_kind(), BatchErrorKind::kTimeout);
  EXPECT_FALSE(batch[pathological_at].error().empty());
  EXPECT_LT(elapsed, kPromptBound);

  // Every sibling: classified, bit-identical to the deadline-free run.
  for (std::size_t i = 0, r = 0; i < batch.size(); ++i) {
    if (i == pathological_at) continue;
    ASSERT_TRUE(batch[i].ok()) << batch[i].error();
    EXPECT_EQ(batch[i].classified().complexity(), reference[r].classified().complexity());
    EXPECT_EQ(batch[i].classified().monoid_size(), reference[r].classified().monoid_size());
    EXPECT_EQ(batch[i].classified().summary(), reference[r].classified().summary());
    ++r;
  }

  // The cache holds the siblings and nothing for the timed-out problem.
  EXPECT_EQ(cache.size(), siblings.size());
  const std::string key =
      canonical_key(problems[pathological_at]) + "\nlinear-engine pairwise\ncertificate auto";
  EXPECT_EQ(cache.find(canonical_hash(key), key), nullptr);

  // The summary reports the timeout as a first-class observable.
  const BatchSummary summary = summarize_batch(batch);
  EXPECT_EQ(summary.total, 8u);
  EXPECT_EQ(summary.ok, 7u);
  EXPECT_EQ(summary.failed, 1u);
  EXPECT_EQ(summary.by_error[static_cast<std::size_t>(BatchErrorKind::kTimeout)], 1u);
}

// The batch-level deadline is the cooperative watchdog: once a slow head
// problem exhausts it on the only worker thread, every task still queued
// behind it fails fast at its entry check — deterministic partial
// results, every slot populated, all failures structured as kTimeout.
TEST(Deadline, ExhaustedBatchDeadlineFailsQueuedEntriesAsTimeouts) {
  std::vector<PairwiseProblem> problems = sibling_problems();
  problems.insert(problems.begin(), pathological_problem());
  BatchOptions options;
  options.num_threads = 1;
  options.batch_deadline_ms = 50;
  options.classify.linear_engine = LinearGapEngine::kPairwise;
  const auto batch = classify_batch(problems, options);
  ASSERT_EQ(batch.size(), problems.size());
  for (const auto& entry : batch) {
    ASSERT_NE(entry.outcome, nullptr);
    EXPECT_FALSE(entry.ok());
    EXPECT_EQ(entry.error_kind(), BatchErrorKind::kTimeout);
  }
  const BatchSummary summary = summarize_batch(batch);
  EXPECT_EQ(summary.by_error[static_cast<std::size_t>(BatchErrorKind::kTimeout)],
            problems.size());
}

// An explicit cancel() on the caller's budget surfaces as kCancelled.
TEST(Deadline, CallerCancellationSurfacesAsCancelledEntries) {
  ExecutionBudget budget;
  budget.cancel();
  std::vector<PairwiseProblem> problems = sibling_problems();
  BatchOptions options;
  options.classify.budget = &budget;
  const auto batch = classify_batch(problems, options);
  for (const auto& entry : batch) {
    EXPECT_FALSE(entry.ok());
    EXPECT_EQ(entry.error_kind(), BatchErrorKind::kCancelled);
  }
}

// Concurrent cancellation from a second thread while workers are deep in
// classification: the batch returns (promptly) with every slot either
// classified or kCancelled — never deadlocked, never missing.
TEST(Deadline, ConcurrentCancellationFromSecondThread) {
  ExecutionBudget budget;
  std::vector<PairwiseProblem> problems(4, pathological_problem());
  BatchOptions options;
  options.num_threads = 2;
  options.dedup = false;
  options.classify.budget = &budget;
  options.classify.linear_engine = LinearGapEngine::kPairwise;
  std::thread canceller([&budget]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    budget.cancel();
  });
  const auto batch = classify_batch(problems, options);
  canceller.join();
  ASSERT_EQ(batch.size(), 4u);
  for (const auto& entry : batch) {
    ASSERT_NE(entry.outcome, nullptr);
    if (!entry.ok()) EXPECT_EQ(entry.error_kind(), BatchErrorKind::kCancelled);
  }
}

// Deadline observables flow through classify_hardness.
TEST(Deadline, HardnessStudyReportsTimeouts) {
  std::vector<PairwiseProblem> problems = {pathological_problem(),
                                           catalog::coloring(3)};
  hardness::StudyOptions options;
  options.problem_deadline_ms = 100;
  const hardness::StudyResult result = hardness::classify_hardness(problems, options);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_TRUE(result.entries[1].ok()) << result.entries[1].error();
  // The lifted pathological problem under the default (factorized) engine
  // either finishes inside the deadline on a fast machine or times out;
  // whichever happens, the census must agree with the entries.
  const std::size_t expected_timeouts = result.entries[0].ok() ? 0u : 1u;
  EXPECT_EQ(result.timeouts, expected_timeouts);
  EXPECT_EQ(result.summary.by_error[static_cast<std::size_t>(BatchErrorKind::kTimeout)],
            expected_timeouts);
}

TEST(BatchError, KindNamesAreStable) {
  EXPECT_EQ(to_string(BatchErrorKind::kTimeout), "timeout");
  EXPECT_EQ(to_string(BatchErrorKind::kBudget), "budget");
  EXPECT_EQ(to_string(BatchErrorKind::kMalformed), "malformed");
  EXPECT_EQ(to_string(BatchErrorKind::kCancelled), "cancelled");
  EXPECT_EQ(to_string(BatchErrorKind::kInternal), "internal");
}

// Budget overflows (MonoidBudgetError) map to kBudget, malformed problems
// (std::invalid_argument out of classify) to kMalformed.
TEST(BatchError, ErrorTaxonomyMapsExceptionTypes) {
  const PairwiseProblem big = catalog::coloring(4);
  const std::size_t big_monoid = classify(big).monoid_size();
  BatchOptions tight;
  tight.classify.max_monoid = big_monoid - 1;
  const auto overflow = classify_batch(std::vector<PairwiseProblem>{big}, tight);
  ASSERT_FALSE(overflow[0].ok());
  EXPECT_EQ(overflow[0].error_kind(), BatchErrorKind::kBudget);

  // An orientation-asymmetric undirected problem is rejected by the
  // transition-system builder with std::invalid_argument.
  Alphabet in, out;
  in.add("_");
  out.add("a");
  out.add("b");
  PairwiseProblem asymmetric("asymmetric", in, out, Topology::kUndirectedCycle);
  asymmetric.allow_node(0, 0);
  asymmetric.allow_node(0, 1);
  asymmetric.allow_edge(0, 1);  // (a, b) without (b, a): direction leaks
  const auto malformed =
      classify_batch(std::vector<PairwiseProblem>{asymmetric}, BatchOptions{});
  ASSERT_FALSE(malformed[0].ok());
  EXPECT_EQ(malformed[0].error_kind(), BatchErrorKind::kMalformed);
}

}  // namespace
}  // namespace lclpath
