// Parser hardening: parse_problem / parse_problems over hostile bytes.
//
// Contract under test (serialize.hpp): the parser either returns a valid
// problem or throws std::invalid_argument with a line number — it never
// crashes, never hangs, and never lets an absurd declaration (a
// million-label alphabet) through to become an allocation bomb in the
// classifier. The fuzz loop mutates valid catalog serializations with a
// seeded RNG so every CI run exercises the same corpus.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "lcl/catalog.hpp"
#include "lcl/serialize.hpp"

namespace lclpath {
namespace {

std::vector<std::string> corpus() {
  std::vector<std::string> texts;
  for (const PairwiseProblem& problem :
       {catalog::coloring(3), catalog::constant_output(),
        catalog::maximal_independent_set(), catalog::agreement(),
        catalog::prefix_parity(), catalog::two_coloring(),
        catalog::shift_input(), catalog::input_gated_coloring()}) {
    texts.push_back(serialize(problem));
  }
  return texts;
}

// The only acceptable behaviors: a parse that round-trips, or a clean
// std::invalid_argument. Anything else (other exception types, crashes)
// fails the test.
void expect_parse_is_total(const std::string& text) {
  try {
    const PairwiseProblem parsed = parse_problem(text);
    EXPECT_EQ(parse_problem(serialize(parsed)), parsed);
  } catch (const std::invalid_argument&) {
    // fine: structured rejection
  }
  try {
    std::istringstream in(text);
    (void)parse_problems(in);
  } catch (const std::invalid_argument&) {
  }
}

TEST(SerializeFuzz, CorpusRoundTrips) {
  for (const std::string& text : corpus()) {
    const PairwiseProblem parsed = parse_problem(text);
    EXPECT_EQ(serialize(parsed), text);
  }
}

TEST(SerializeFuzz, SeededMutationsNeverCrashTheParser) {
  const std::vector<std::string> texts = corpus();
  Rng rng(0xf0220dull);
  constexpr int kIterations = 4000;
  // Built piecewise: a "\0..." literal would truncate at the NUL.
  const std::string garbage =
      std::string(1, '\0') + "\t\x7f lcl topology node edge end # 9999999999";
  for (int iter = 0; iter < kIterations; ++iter) {
    std::string text = texts[rng.next_below(texts.size())];
    const int mutations = 1 + static_cast<int>(rng.next_below(4));
    for (int m = 0; m < mutations; ++m) {
      if (text.empty()) break;
      switch (rng.next_below(6)) {
        case 0:  // flip a byte
          text[rng.next_below(text.size())] =
              static_cast<char>(rng.next_below(256));
          break;
        case 1:  // delete a span
          text.erase(rng.next_below(text.size()),
                     1 + rng.next_below(8));
          break;
        case 2:  // duplicate a prefix of a line somewhere
          text.insert(rng.next_below(text.size()),
                      text.substr(0, rng.next_below(text.size())));
          break;
        case 3:  // truncate (lost 'end', mid-line cuts)
          text.resize(rng.next_below(text.size()));
          break;
        case 4:  // splice in hostile bytes
          text.insert(rng.next_below(text.size()), garbage);
          break;
        case 5:  // swap two lines' worth of bytes crudely
          std::swap(text[rng.next_below(text.size())],
                    text[rng.next_below(text.size())]);
          break;
      }
    }
    expect_parse_is_total(text);
  }
}

TEST(SerializeFuzz, TruncatedBlockIsRejected) {
  const std::string text = serialize(catalog::coloring(3));
  // Cut before the trailing "end\n": a truncated block must not parse.
  const std::string truncated = text.substr(0, text.size() - 4);
  EXPECT_THROW((void)parse_problem(truncated), std::invalid_argument);
  std::istringstream in(truncated);
  EXPECT_THROW((void)parse_problems(in), std::invalid_argument);
}

TEST(SerializeFuzz, DuplicateDeclarationLinesAreRejected) {
  for (const char* line :
       {"lcl again", "topology directed-cycle", "inputs _", "outputs x y"}) {
    std::string text = "lcl p\ntopology directed-cycle\ninputs _\noutputs a b\n";
    text += line;
    text += "\nnode _ a\nedge a b\nend\n";
    EXPECT_THROW((void)parse_problem(text), std::invalid_argument)
        << "duplicate line not rejected: " << line;
  }
}

TEST(SerializeFuzz, AbsurdAlphabetDeclarationIsRejectedCheaply) {
  // 100k labels on one 'outputs' line: must be rejected by the size cap,
  // not accepted into an O(|outputs|^2) edge table downstream.
  std::string text = "lcl bomb\ntopology directed-cycle\ninputs _\noutputs";
  for (int i = 0; i < 100000; ++i) text += " l" + std::to_string(i);
  text += "\nnode _ l0\nedge l0 l0\nend\n";
  EXPECT_THROW((void)parse_problem(text), std::invalid_argument);
}

TEST(SerializeFuzz, DuplicateLabelWithinAlphabetIsRejected) {
  const std::string text =
      "lcl p\ntopology directed-cycle\ninputs _\noutputs a a\n"
      "node _ a\nedge a a\nend\n";
  EXPECT_THROW((void)parse_problem(text), std::invalid_argument);
}

TEST(SerializeFuzz, MultiProblemStreamSurvivesATrailingMalformedBlock) {
  std::string text = serialize(catalog::coloring(3));
  text += "\nlcl broken\ntopology directed-cycle\ninputs _\n";  // no end
  std::istringstream in(text);
  EXPECT_THROW((void)parse_problems(in), std::invalid_argument);
}

}  // namespace
}  // namespace lclpath
