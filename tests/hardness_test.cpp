#include <gtest/gtest.h>

#include "hardness/encoder.hpp"
#include "hardness/pi_problem.hpp"
#include "hardness/solver.hpp"
#include "hardness/tree_encoding.hpp"
#include "hardness/undirected.hpp"
#include "lba/machines.hpp"
#include "test_util.hpp"

namespace lclpath::hardness {
namespace {

TEST(Lba, MachineRuntimes) {
  // immediate halt: 1 step regardless of B.
  for (std::size_t b : {2u, 4u, 6u}) {
    const auto run = lba::run(lba::immediate_halt(), b);
    EXPECT_TRUE(run.halts);
    EXPECT_EQ(run.steps, 1u);
  }
  // unary counter: Theta(B^2) steps, monotone in B.
  std::size_t prev = 0;
  for (std::size_t b : {3u, 4u, 5u, 6u}) {
    const auto run = lba::run(lba::unary_counter(), b);
    ASSERT_TRUE(run.halts) << "B=" << b;
    EXPECT_GT(run.steps, prev);
    prev = run.steps;
  }
  // binary counter: Theta(2^B) growth.
  const auto r4 = lba::run(lba::binary_counter(), 4);
  const auto r6 = lba::run(lba::binary_counter(), 6);
  const auto r8 = lba::run(lba::binary_counter(), 8);
  ASSERT_TRUE(r4.halts && r6.halts && r8.halts);
  EXPECT_GT(r6.steps, 2 * r4.steps);
  EXPECT_GT(r8.steps, 2 * r6.steps);
  // looper: detected as looping, with the lazily-materialized trace ending
  // at the first repeat of the loop-entry configuration.
  const auto loop = lba::run(lba::looper(), 4);
  EXPECT_FALSE(loop.halts);
  ASSERT_TRUE(loop.loop_start.has_value());
  const auto& trace = loop.trace();
  ASSERT_EQ(trace.size(), loop.trace_length());
  EXPECT_EQ(trace.back(), trace[*loop.loop_start]);
}

TEST(Lba, ConfigurationStepSemantics) {
  const auto machine = lba::binary_counter();
  auto config = lba::initial_configuration(machine, 4);
  EXPECT_EQ(config.tape.front(), lba::Symbol::kL);
  EXPECT_EQ(config.tape.back(), lba::Symbol::kR);
  EXPECT_EQ(config.head, 0u);
  const auto next = lba::step(machine, config);
  EXPECT_EQ(next.head, 1u);  // q0 moves right over L
}

TEST(PiLabels, CodecRoundTrip) {
  const auto machine = lba::unary_counter();
  const PiLabels labels(machine, 3);
  for (Label l = 0; l < labels.num_inputs(); ++l) {
    EXPECT_EQ(labels.encode(labels.decode_input(l)), l);
  }
  for (Label l = 0; l < labels.num_outputs(); ++l) {
    EXPECT_EQ(labels.encode(labels.decode_output(l)), l);
  }
  // Alphabets align with the codec.
  const Alphabet in = labels.input_alphabet();
  EXPECT_EQ(in.size(), labels.num_inputs());
  EXPECT_EQ(in.name(labels.encode(InLabel{InKind::kSeparator, {}, 0, false})), "Sep");
}

TEST(PiProblem, GoodInputAcceptsAllSecretLabeling) {
  for (std::size_t b : {2u, 3u}) {
    const auto machine = lba::unary_counter();
    const auto run = lba::run(machine, b);
    ASSERT_TRUE(run.halts);
    const PiProblem problem(machine, b);
    const std::size_t n = encoding_length(b, run.steps) + 5;
    for (Secret secret : {Secret::kA, Secret::kB}) {
      const auto input = good_input(machine, b, secret, run.steps, n);
      std::vector<OutLabel> output(n);
      for (std::size_t v = 0; v < n; ++v) {
        if (input[v].kind == InKind::kEmpty) {
          output[v].kind = OutKind::kEmpty;
        } else {
          output[v].kind = secret == Secret::kA ? OutKind::kStartA : OutKind::kStartB;
        }
      }
      const auto verdict = problem.verify(input, output);
      EXPECT_TRUE(verdict.ok) << "B=" << b << ": " << verdict.reason;
    }
  }
}

// Section 3.4 in executable form: on a good input, *no* valid labeling
// lets a non-Empty node avoid the secret. Checked exhaustively via DP
// over the full-edge verifier.
TEST(PiProblem, LowerBoundNoEscapeOnGoodInputs) {
  const auto machine = lba::immediate_halt();
  const std::size_t b = 2;
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const PiLabels& labels = problem.labels();
  const std::size_t n = encoding_length(b, run.steps) + 2;
  const auto input = good_input(machine, b, Secret::kA, run.steps, n);

  // DP over (position, output label) with reachability: can any node with
  // non-Empty input output something other than Start(a)?
  const std::size_t num_out = labels.num_outputs();
  std::vector<std::vector<char>> reach(n, std::vector<char>(num_out, 0));
  for (Label o = 0; o < num_out; ++o) {
    if (problem.node_ok(0, input[0], labels.decode_output(o), nullptr, nullptr)) {
      reach[0][o] = 1;
    }
  }
  for (std::size_t v = 1; v < n; ++v) {
    for (Label o = 0; o < num_out; ++o) {
      const OutLabel out = labels.decode_output(o);
      for (Label p = 0; p < num_out && !reach[v][o]; ++p) {
        if (!reach[v - 1][p]) continue;
        const OutLabel out_pred = labels.decode_output(p);
        if (problem.node_ok(v, input[v], out, &input[v - 1], &out_pred)) {
          reach[v][o] = 1;
        }
      }
    }
  }
  // Backward prune: only labels that extend to the end survive; the last
  // node additionally obeys the dangling-chain rule.
  std::vector<std::vector<char>> feasible = reach;
  for (Label o = 0; o < num_out; ++o) {
    if (!problem.allowed_at_last(labels.decode_output(o))) feasible[n - 1][o] = 0;
  }
  for (std::size_t v = n - 1; v > 0; --v) {
    for (Label p = 0; p < num_out; ++p) {
      if (!feasible[v - 1][p]) continue;
      bool extends = false;
      const OutLabel out_pred = labels.decode_output(p);
      for (Label o = 0; o < num_out && !extends; ++o) {
        if (!feasible[v][o]) continue;
        extends = problem.node_ok(v, input[v], labels.decode_output(o), &input[v - 1],
                                  &out_pred);
      }
      if (!extends) feasible[v - 1][p] = 0;
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (input[v].kind == InKind::kEmpty) continue;
    for (Label o = 0; o < num_out; ++o) {
      if (!feasible[v][o]) continue;
      EXPECT_EQ(labels.decode_output(o).kind, OutKind::kStartA)
          << "node " << v << " could output " << labels.name(labels.decode_output(o));
    }
  }
}

class CorruptionCase : public ::testing::TestWithParam<Corruption> {};

TEST_P(CorruptionCase, SolverEmitsVerifiableProof) {
  const auto machine = lba::unary_counter();
  for (std::size_t b : {2u, 3u}) {
    const auto run = lba::run(machine, b);
    ASSERT_TRUE(run.halts);
    const PiProblem problem(machine, b);
    const PiSolver solver(problem, run.steps);
    const std::size_t n = encoding_length(b, run.steps) + 6;
    for (std::size_t block : {1u, 2u}) {
      auto input = good_input(machine, b, Secret::kA, run.steps, n);
      try {
        input = corrupt(machine, b, std::move(input), GetParam(), block);
      } catch (const std::invalid_argument&) {
        continue;  // corruption not applicable to this block/size
      }
      const auto output = solver.solve(input);
      const auto verdict = problem.verify(input, output);
      EXPECT_TRUE(verdict.ok) << "B=" << b << " block=" << block << ": "
                              << verdict.reason;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCorruptions, CorruptionCase,
    ::testing::Values(Corruption::kWrongInitialTape, Corruption::kTapeTooLong,
                      Corruption::kTapeTooShort, Corruption::kWrongCopy,
                      Corruption::kInconsistentState, Corruption::kWrongTransition,
                      Corruption::kTwoHeads),
    [](const ::testing::TestParamInfo<Corruption>& info) {
      switch (info.param) {
        case Corruption::kWrongInitialTape: return "WrongInitialTape";
        case Corruption::kTapeTooLong: return "TapeTooLong";
        case Corruption::kTapeTooShort: return "TapeTooShort";
        case Corruption::kWrongCopy: return "WrongCopy";
        case Corruption::kInconsistentState: return "InconsistentState";
        case Corruption::kWrongTransition: return "WrongTransition";
        case Corruption::kTwoHeads: return "TwoHeads";
      }
      return "Unknown";
    });

TEST(PiSolver, GoodInputsYieldSecrets) {
  const auto machine = lba::unary_counter();
  const std::size_t b = 3;
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const PiSolver solver(problem, run.steps);
  EXPECT_EQ(solver.radius(), 2 + (b + 1) * (run.steps + 1));
  const std::size_t n = encoding_length(b, run.steps) + 4;
  for (Secret secret : {Secret::kA, Secret::kB}) {
    const auto input = good_input(machine, b, secret, run.steps, n);
    const auto output = solver.solve(input);
    EXPECT_TRUE(problem.verify(input, output).ok);
    const OutKind want = secret == Secret::kA ? OutKind::kStartA : OutKind::kStartB;
    for (std::size_t v = 0; v < n; ++v) {
      if (input[v].kind != InKind::kEmpty) {
        EXPECT_EQ(output[v].kind, want) << "node " << v;
      }
    }
  }
}

TEST(PiSolver, LocalityOfOutputs) {
  // The solver's decision at v only reads the radius-T' ball: changing the
  // input beyond the ball leaves the output unchanged.
  const auto machine = lba::immediate_halt();
  const std::size_t b = 2;
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const PiSolver solver(problem, run.steps);
  const std::size_t n = 40;
  auto input = good_input(machine, b, Secret::kA, run.steps, n);
  auto far_modified = input;
  const std::size_t v = 3;
  const std::size_t far = v + solver.radius() + 2;
  ASSERT_LT(far, n);
  far_modified[far].kind = InKind::kSeparator;
  EXPECT_EQ(solver.output_of(input, v), solver.output_of(far_modified, v));
}

TEST(PiSolver, LoopingFallback) {
  const auto machine = lba::looper();
  const std::size_t b = 3;
  const PiProblem problem(machine, b);
  // A looping machine still admits the all-secret / all-Error labeling.
  std::vector<InLabel> input(12, InLabel{InKind::kEmpty, lba::Symbol::k0, 0, false});
  input[0].kind = InKind::kStartB;
  input[1].kind = InKind::kSeparator;
  const auto output = PiSolver::solve_looping(input);
  EXPECT_TRUE(problem.verify(input, output).ok);
  // Without a secret marker: all-Error.
  input[0].kind = InKind::kEmpty;
  const auto errors = PiSolver::solve_looping(input);
  EXPECT_TRUE(problem.verify(input, errors).ok);
  EXPECT_EQ(errors[5].kind, OutKind::kError);
}

TEST(TreeEncoding, BitsRoundTrip) {
  Rng rng(7);
  for (std::size_t nbits : {1u, 2u, 4u, 8u}) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<int> bits(nbits);
      for (auto& bit : bits) bit = rng.next_bool() ? 1 : 0;
      const EncodedTree enc = encode_bits(bits);
      // Max degree 3 (the paper's Delta bound).
      for (std::size_t v = 0; v < enc.tree.size(); ++v) {
        EXPECT_LE(enc.tree.degree(v), 3u);
      }
      const auto decoded = decode_bits(enc.tree, enc.root);
      ASSERT_TRUE(decoded.has_value()) << "nbits=" << nbits;
      EXPECT_EQ(*decoded, bits);
    }
  }
}

TEST(TreeEncoding, GStarRecoversLabels) {
  Rng rng(8);
  for (std::size_t num_labels : {2u, 3u, 5u}) {
    Word labels;
    for (int v = 0; v < 20; ++v) {
      labels.push_back(static_cast<Label>(rng.next_below(num_labels)));
    }
    const GStar gstar = build_gstar(labels, num_labels);
    // Max degree: path interior (2) + tree (1) = 3... endpoints lower.
    for (std::size_t v : gstar.path_nodes) {
      EXPECT_LE(gstar.graph.degree(v), 3u);
    }
    const auto recovered = recover_labels(gstar, num_labels);
    ASSERT_TRUE(recovered.has_value()) << "labels=" << num_labels;
    EXPECT_EQ(*recovered, labels);
  }
}

TEST(UndirectedLift, OrientedInstancesSolveAndEmbed) {
  const PairwiseProblem directed = catalog::agreement();
  const PairwiseProblem lifted = lift_to_undirected(directed);
  EXPECT_TRUE(lifted.is_orientation_symmetric());
  Rng rng(9);
  // Consistently oriented instances correspond to original ones.
  const std::size_t n = 9;  // multiple of 3 keeps the wrap consistent
  Word base;
  for (std::size_t v = 0; v < n; ++v) {
    base.push_back(static_cast<Label>(rng.next_below(directed.num_inputs())));
  }
  const Word lifted_inputs = orient_inputs(directed, base);
  const auto solved = solve_by_dp(lifted, lifted_inputs);
  ASSERT_TRUE(solved.has_value());
  EXPECT_TRUE(verify_pairwise(lifted, lifted_inputs, *solved).ok);
}

TEST(UndirectedLift, BrokenOrientationStillSolvable) {
  const PairwiseProblem directed = catalog::agreement();
  const PairwiseProblem lifted = lift_to_undirected(directed);
  // n not divisible by 3 forces an orientation defect at the wrap.
  for (std::size_t n : {4u, 5u, 7u, 8u}) {
    Word inputs;
    for (std::size_t v = 0; v < n; ++v) {
      // input "0" of the original, counter v mod 3.
      inputs.push_back(static_cast<Label>(2 * 3 + v % 3));
    }
    const auto solved = solve_by_dp(lifted, inputs);
    EXPECT_TRUE(solved.has_value()) << "n=" << n;
  }
}

TEST(CycleLift, SeparatorsCutIntoSegments) {
  const PairwiseProblem path_problem = catalog::two_coloring(Topology::kDirectedPath);
  const PairwiseProblem lifted = lift_path_to_cycle(path_problem);
  // With a separator, odd cycles become solvable (the segment is a path).
  Word inputs(7, 0);
  const Word marked = mark_inputs(path_problem, inputs, {0});
  const auto solved = solve_by_dp(lifted, marked);
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ((*solved)[0], lifted.outputs().at("S"));
  // Without separators, only the all-X escape works for odd length.
  const auto escape = solve_by_dp(lifted, inputs);
  ASSERT_TRUE(escape.has_value());
  for (Label l : *escape) EXPECT_EQ(l, lifted.outputs().at("X"));
}

}  // namespace
}  // namespace lclpath::hardness
